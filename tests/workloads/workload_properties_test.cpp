#include <gtest/gtest.h>

#include <map>

#include "analysis/moduleanalysis.h"
#include "core/builder.h"
#include "interp/interpreter.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace wet {
namespace workloads {
namespace {

/**
 * Heavier end-to-end property on real workloads: build the WET with
 * a full recording attached and verify that the value labels
 * reconstruct the exact per-statement value sequences, that every
 * recorded dependence instance is represented by an edge label (or
 * an inferred local edge), and that dependence totals agree.
 */
struct Built
{
    std::unique_ptr<ir::Module> mod;
    std::unique_ptr<analysis::ModuleAnalysis> ma;
    test::RecordingSink rec;
    core::WetGraph graph;
};

std::unique_ptr<Built>
buildRecorded(const std::string& name, uint64_t scale)
{
    const Workload& w = workloadByName(name);
    auto b = std::make_unique<Built>();
    b->mod = std::make_unique<ir::Module>(compileWorkload(w));
    b->ma = std::make_unique<analysis::ModuleAnalysis>(*b->mod);
    auto input = makeWorkloadInput(w, scale);
    core::WetBuilder builder(*b->ma);
    interp::TeeSink tee;
    tee.addSink(&builder);
    tee.addSink(&b->rec);
    interp::Interpreter interp(*b->ma, *input, &tee);
    interp.run();
    b->graph = builder.take();
    return b;
}

class WorkloadProperty : public ::testing::TestWithParam<const char*>
{
};

TEST_P(WorkloadProperty, ValueLabelsReconstructPerStatement)
{
    auto b = buildRecorded(GetParam(), 1);
    // Values[i] = UVals[Pattern[i]] per member, merged over nodes,
    // must equal the recorded multiset per statement (order within a
    // statement can differ across nodes under recursion, so compare
    // sorted).
    std::map<ir::StmtId, std::vector<int64_t>> rebuilt;
    for (const auto& node : b->graph.nodes) {
        for (const auto& grp : node.groups) {
            for (size_t mi = 0; mi < grp.members.size(); ++mi) {
                auto& vec = rebuilt[node.stmts[grp.members[mi]]];
                for (uint32_t pidx : grp.pattern)
                    vec.push_back(grp.uvals[mi][pidx]);
            }
        }
    }
    std::map<ir::StmtId, std::vector<int64_t>> reference;
    for (const auto& ev : b->rec.stmts) {
        if (!ev.hasValue ||
            b->mod->instr(ev.stmt).op == ir::Opcode::Const)
        {
            continue;
        }
        reference[ev.stmt].push_back(ev.value);
    }
    ASSERT_EQ(rebuilt.size(), reference.size());
    for (auto& [stmt, vals] : reference) {
        auto it = rebuilt.find(stmt);
        ASSERT_NE(it, rebuilt.end()) << "stmt " << stmt;
        std::sort(vals.begin(), vals.end());
        std::sort(it->second.begin(), it->second.end());
        ASSERT_EQ(it->second, vals) << "stmt " << stmt;
    }
}

TEST_P(WorkloadProperty, DependenceTotalsMatchRecording)
{
    auto b = buildRecorded(GetParam(), 1);
    uint64_t deps = 0;
    for (const auto& ev : b->rec.stmts)
        deps += ev.numDeps;
    EXPECT_EQ(b->graph.depInstancesTotal, deps);
    uint64_t cds = 0;
    for (const auto& blk : b->rec.blocks)
        if (blk.control.valid())
            ++cds;
    EXPECT_EQ(b->graph.cdInstancesTotal, cds);
    EXPECT_EQ(b->graph.droppedDeps, 0u);
    // Every label instance is stored once (pooled sequences count
    // once per referencing edge) or inferred on a local edge.
    uint64_t stored = 0;
    for (const auto& e : b->graph.edges) {
        if (e.local)
            stored += b->graph.nodes[e.useNode].instances();
        else
            stored += b->graph.labelPool[e.labelPool].useInst.size();
    }
    EXPECT_EQ(stored, deps + cds);
}

INSTANTIATE_TEST_SUITE_P(
    SelectedWorkloads, WorkloadProperty,
    ::testing::Values("126.gcc", "181.mcf", "300.twolf"),
    [](const ::testing::TestParamInfo<const char*>& info) {
        std::string n = info.param;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace workloads
} // namespace wet
