#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "workloads/runner.h"

namespace wet {
namespace workloads {
namespace {

TEST(WorkloadsTest, AllTwelveCompile)
{
    ASSERT_EQ(allWorkloads().size(), 12u);
    for (const auto& w : allWorkloads()) {
        ir::Module m = compileWorkload(w);
        EXPECT_GT(m.numStmts(), 0u) << w.name;
        EXPECT_TRUE(m.hasFunction("main")) << w.name;
    }
}

TEST(WorkloadsTest, LookupByName)
{
    EXPECT_EQ(workloadByName("181.mcf").name, "181.mcf");
    EXPECT_THROW(workloadByName("404.missing"), WetError);
}

class WorkloadRun : public ::testing::TestWithParam<size_t>
{
};

TEST_P(WorkloadRun, RunsAndProducesOutput)
{
    const Workload& w = allWorkloads()[GetParam()];
    // Tiny scale: just prove the program runs to completion and is
    // deterministic.
    auto r1 = runOnly(w, 20);
    auto r2 = runOnly(w, 20);
    EXPECT_FALSE(r1.outputs.empty()) << w.name;
    EXPECT_EQ(r1.outputs, r2.outputs) << w.name;
    EXPECT_EQ(r1.stmtsExecuted, r2.stmtsExecuted) << w.name;
    EXPECT_GT(r1.stmtsExecuted, 1000u) << w.name;
}

TEST_P(WorkloadRun, ScaleControlsRunLength)
{
    const Workload& w = allWorkloads()[GetParam()];
    auto small = runOnly(w, 1);
    auto big = runOnly(w, 4);
    EXPECT_GT(big.stmtsExecuted, small.stmtsExecuted) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRun, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
        std::string n = allWorkloads()[info.param].name;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace workloads
} // namespace wet
