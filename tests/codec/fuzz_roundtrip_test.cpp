#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "codec/cursor.h"
#include "codec/encoder.h"
#include "codec/model.h"
#include "codec/selector.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

/**
 * Iterations per (distribution, codec) pair. Defaults stay cheap for
 * CI; set FUZZ_ITERS higher locally for a deep soak run.
 */
unsigned
fuzzIters()
{
    const char* env = std::getenv("FUZZ_ITERS");
    if (!env)
        return 6;
    unsigned long v = std::strtoul(env, nullptr, 10);
    return (v > 0 && v <= 1000000) ? static_cast<unsigned>(v) : 6;
}

/** One generated value stream plus the recipe that made it. */
struct Generated
{
    std::string shape;
    std::vector<int64_t> vals;
};

/**
 * Stream generators spanning the codecs' qualitative regimes:
 * constant (every codec's best case), strided (DFCM/last-n-stride
 * territory), FCM-friendly small alphabets with repeating context,
 * adversarial full-width random values (worst case: the encoder must
 * still round-trip even when prediction never pays), plus the two
 * shapes the SYNC section adds — per-thread seq streams (strictly
 * increasing with irregular gaps, a subsequence of the global
 * interleaving counter) and kind streams (tiny 0..5 alphabet in
 * bursty lock-section phrases).
 */
Generated
generate(support::Rng& rng, unsigned which)
{
    Generated g;
    const size_t n = static_cast<size_t>(rng.range(0, 2500));
    g.vals.reserve(n);
    switch (which % 6) {
    case 0: {
        g.shape = "constant";
        const int64_t c = rng.range(-1000000, 1000000);
        g.vals.assign(n, c);
        break;
    }
    case 1: {
        g.shape = "stride";
        int64_t x = rng.range(-1000, 1000);
        const int64_t stride = rng.range(-64, 64);
        for (size_t i = 0; i < n; ++i, x += stride)
            g.vals.push_back(x);
        break;
    }
    case 2: {
        g.shape = "fcm-friendly";
        // Small alphabet with a repeating phrase structure: FCM
        // contexts repeat, so table hits dominate.
        const size_t alpha =
            static_cast<size_t>(rng.range(2, 12));
        std::vector<int64_t> phrase(
            static_cast<size_t>(rng.range(3, 17)));
        for (auto& p : phrase)
            p = static_cast<int64_t>(rng.below(alpha));
        for (size_t i = 0; i < n; ++i) {
            if (rng.chance(1, 50)) // occasional glitch
                g.vals.push_back(
                    static_cast<int64_t>(rng.below(alpha * 4)));
            else
                g.vals.push_back(phrase[i % phrase.size()]);
        }
        break;
    }
    case 3: {
        g.shape = "sync-seq";
        // A thread's slice of the global sync counter: strictly
        // increasing, with gap bursts where other threads ran.
        int64_t seq = 1 + rng.range(0, 50);
        for (size_t i = 0; i < n; ++i) {
            g.vals.push_back(seq);
            seq += rng.chance(1, 4) ? rng.range(2, 40) : 1;
        }
        break;
    }
    case 4: {
        g.shape = "sync-kind";
        // Lock-section phrases over the 0..5 kind alphabet:
        // acquire, a run of reads/writes, release — with occasional
        // spawn/join punctuation.
        for (size_t i = 0; i < n;) {
            if (rng.chance(1, 12) && i < n) {
                g.vals.push_back(rng.chance(1, 2) ? 0 : 1);
                ++i;
                continue;
            }
            if (i < n) {
                g.vals.push_back(2); // acquire
                ++i;
            }
            const size_t body =
                static_cast<size_t>(rng.range(0, 6));
            for (size_t j = 0; j < body && i < n; ++j, ++i)
                g.vals.push_back(rng.chance(1, 2) ? 4 : 5);
            if (i < n) {
                g.vals.push_back(3); // release
                ++i;
            }
        }
        break;
    }
    default: {
        g.shape = "adversarial-random";
        for (size_t i = 0; i < n; ++i)
            g.vals.push_back(static_cast<int64_t>(rng.next()));
        break;
    }
    }
    return g;
}

void
expectExactRoundTrip(const Generated& g, const CompressedStream& s,
                     const std::string& codec)
{
    ASSERT_EQ(s.length, g.vals.size()) << g.shape << " " << codec;

    // Forward decode through a Forward-mode cursor.
    {
        StreamCursor cur(s, StreamCursor::Mode::Forward);
        for (size_t i = 0; i < g.vals.size(); ++i)
            ASSERT_EQ(cur.next(), g.vals[i])
                << g.shape << " " << codec << " fwd @" << i;
    }
    // Backward decode: a Bidirectional cursor sweeps to the end and
    // walks the whole stream back.
    {
        StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
        for (size_t i = 0; i < g.vals.size(); ++i)
            ASSERT_EQ(cur.next(), g.vals[i])
                << g.shape << " " << codec << " pre-sweep @" << i;
        for (size_t i = g.vals.size(); i-- > 0;)
            ASSERT_EQ(cur.prev(), g.vals[i])
                << g.shape << " " << codec << " bwd @" << i;
    }
}

TEST(CodecFuzzRoundTrip, EveryCodecEveryDistribution)
{
    const unsigned iters = fuzzIters();
    support::Rng rng(0x5EED5EED);
    for (unsigned iter = 0; iter < iters; ++iter) {
        for (unsigned shape = 0; shape < 6; ++shape) {
            Generated g = generate(rng, shape);
            // Random checkpointing exercises the seek machinery of
            // both decode directions.
            const uint64_t interval =
                rng.chance(1, 2) ? 0
                                 : static_cast<uint64_t>(
                                       rng.range(32, 512));
            for (const CodecConfig& cfg : candidateConfigs()) {
                CompressedStream s =
                    encodeStream(g.vals, cfg, interval);
                expectExactRoundTrip(
                    g, s,
                    methodName(cfg.method, cfg.context));
            }
            CompressedStream raw = encodeStream(
                g.vals, CodecConfig{Method::Raw, 0, 0}, interval);
            expectExactRoundTrip(g, raw, "raw");
        }
    }
}

TEST(CodecFuzzRoundTrip, SelectorChoiceAlwaysRoundTrips)
{
    const unsigned iters = fuzzIters();
    support::Rng rng(0xFACADE);
    for (unsigned iter = 0; iter < iters; ++iter) {
        for (unsigned shape = 0; shape < 6; ++shape) {
            Generated g = generate(rng, shape);
            SelectorOptions opt;
            opt.checkpointInterval =
                rng.chance(1, 2) ? 0 : 256;
            SelectionInfo info;
            CompressedStream s = compressBest(g.vals, opt, &info);
            expectExactRoundTrip(
                g, s,
                "selected:" + methodName(s.config.method,
                                         s.config.context));
        }
    }
}

} // namespace
} // namespace codec
} // namespace wet
