#include "codec/selector.h"

#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

TEST(SelectorTest, PicksDfcmForStrides)
{
    std::vector<int64_t> v;
    for (int i = 0; i < 20000; ++i)
        v.push_back(1000 + 7 * i);
    SelectionInfo info;
    CompressedStream s = compressBest(v, {}, &info);
    EXPECT_TRUE(s.config.method == Method::Dfcm ||
                s.config.method == Method::LastNStride)
        << methodName(s.config.method, s.config.context);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(SelectorTest, PicksValueBasedForPeriodic)
{
    std::vector<int64_t> v;
    const int64_t period[4] = {12, 99, -4, 12};
    for (int i = 0; i < 20000; ++i)
        v.push_back(period[i % 4]);
    SelectionInfo info;
    CompressedStream s = compressBest(v, {}, &info);
    // Any predictor nails a short periodic stream (its stride stream
    // is periodic too); what matters is that a context-based method
    // wins and compresses to almost nothing.
    EXPECT_NE(s.config.method, Method::Raw)
        << methodName(s.config.method, s.config.context);
    EXPECT_LT(s.sizeBytes(), v.size());
    EXPECT_EQ(decodeAll(s), v);
}

TEST(SelectorTest, TinyStreamsGoRaw)
{
    std::vector<int64_t> v = {1, 2, 3};
    CompressedStream s = compressBest(v);
    EXPECT_EQ(s.config.method, Method::Raw);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(SelectorTest, CompressesBelowRawForTypicalProfiles)
{
    // Timestamp-like stream: strictly increasing, mostly-regular
    // strides. The winner must beat 8 bytes/value by a wide margin.
    support::Rng rng(3);
    std::vector<int64_t> v;
    int64_t t = 0;
    for (int i = 0; i < 100000; ++i) {
        t += rng.chance(9, 10) ? 3 : static_cast<int64_t>(
                                         rng.below(20));
        v.push_back(t);
    }
    CompressedStream s = compressBest(v);
    EXPECT_LT(s.sizeBytes() * 4, v.size() * 8);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(SelectorTest, EstimateIsReasonablyAccurate)
{
    std::vector<int64_t> v;
    for (int64_t i = 0; i < 50000; ++i)
        v.push_back((i * i) % 977);
    for (const auto& cfg : candidateConfigs()) {
        uint64_t est = estimateBytes(v, cfg, 4096);
        CompressedStream s = encodeStream(v, cfg);
        uint64_t real = s.sizeBytes();
        // Within a factor of three either way (the estimate samples
        // a prefix).
        EXPECT_LT(est, real * 3 + 1024)
            << methodName(cfg.method, cfg.context);
        EXPECT_LT(real, est * 3 + 1024)
            << methodName(cfg.method, cfg.context);
    }
}

TEST(SelectorTest, RandomDataFallsBackGracefully)
{
    support::Rng rng(17);
    std::vector<int64_t> v;
    for (int i = 0; i < 10000; ++i)
        v.push_back(static_cast<int64_t>(rng.next()));
    CompressedStream s = compressBest(v);
    // Incompressible data must not blow up badly (victim entries add
    // at most ~ one varint per value plus the flag bit).
    EXPECT_LT(s.sizeBytes(), v.size() * 12);
    EXPECT_EQ(decodeAll(s), v);
}

} // namespace
} // namespace codec
} // namespace wet
