#include "codec/encoder.h"

#include <gtest/gtest.h>

#include "codec/model.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

std::vector<int64_t>
constantStream(size_t n, int64_t v)
{
    return std::vector<int64_t>(n, v);
}

std::vector<int64_t>
strideStream(size_t n, int64_t start, int64_t stride)
{
    std::vector<int64_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(start + static_cast<int64_t>(i) * stride);
    return v;
}

std::vector<int64_t>
periodicStream(size_t n, std::vector<int64_t> period)
{
    std::vector<int64_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(period[i % period.size()]);
    return v;
}

std::vector<int64_t>
randomStream(size_t n, uint64_t seed, uint64_t span)
{
    support::Rng rng(seed);
    std::vector<int64_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(static_cast<int64_t>(rng.below(span)));
    return v;
}

class CodecRoundTrip
    : public ::testing::TestWithParam<CodecConfig>
{
};

TEST_P(CodecRoundTrip, AllShapesDecodeExactly)
{
    CodecConfig cfg = GetParam();
    std::vector<std::vector<int64_t>> streams = {
        constantStream(500, 7),
        strideStream(500, 3, 5),
        strideStream(500, 1000, -3),
        periodicStream(500, {1, 2, 3}),
        periodicStream(512, {42, -17}),
        randomStream(500, 1, 1u << 30),
        randomStream(500, 2, 8),
        {},                        // empty
        {5},                       // single value
        {1, 2, 3},                 // shorter than any context
        constantStream(17, 0),     // boundary near min length
    };
    for (size_t i = 0; i < streams.size(); ++i) {
        CompressedStream s = encodeStream(streams[i], cfg);
        EXPECT_EQ(decodeAll(s), streams[i])
            << methodName(cfg.method, cfg.context) << " stream " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CodecRoundTrip,
    ::testing::ValuesIn(candidateConfigs()),
    [](const ::testing::TestParamInfo<CodecConfig>& info) {
        return methodName(info.param.method, info.param.context);
    });

TEST(CodecTest, ConstantStreamCompressesHard)
{
    auto v = constantStream(100000, 99);
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 1, 0});
    // 100k values -> ~12.5 KB of hit flags plus table overhead.
    EXPECT_LT(s.sizeBytes(), v.size()); // far below 8 bytes/value
    EXPECT_EQ(decodeAll(s), v);
}

TEST(CodecTest, StrideStreamFavorsDfcm)
{
    auto v = strideStream(100000, 0, 12345);
    CompressedStream dfcm =
        encodeStream(v, CodecConfig{Method::Dfcm, 1, 0});
    CompressedStream fcm =
        encodeStream(v, CodecConfig{Method::Fcm, 1, 0});
    EXPECT_LT(dfcm.sizeBytes() * 10, fcm.sizeBytes());
    EXPECT_EQ(decodeAll(dfcm), v);
}

TEST(CodecTest, PeriodicStreamFavorsFcm)
{
    auto v = periodicStream(100000, {5, 9, 2, 7});
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 2, 0});
    EXPECT_LT(s.sizeBytes(), v.size() / 4);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(CodecTest, AlternatingValuesFavorLastN)
{
    auto v = periodicStream(50000, {100, 200, 100, 300});
    CompressedStream s =
        encodeStream(v, CodecConfig{Method::LastN, 4, 0});
    EXPECT_LT(s.sizeBytes(), v.size());
    EXPECT_EQ(decodeAll(s), v);
}

TEST(CodecTest, RawFallbackForTinyStreams)
{
    std::vector<int64_t> v = {1, 2, 3, 4, 5};
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 3, 0});
    EXPECT_EQ(s.config.method, Method::Raw);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(CodecTest, NegativeAndExtremeValues)
{
    std::vector<int64_t> v = {INT64_MIN, INT64_MAX, -1, 0, 1,
                              INT64_MIN, INT64_MAX, -1, 0, 1,
                              INT64_MIN, INT64_MAX, -1, 0, 1,
                              INT64_MIN, INT64_MAX, -1, 0, 1};
    for (const auto& cfg : candidateConfigs()) {
        CompressedStream s = encodeStream(v, cfg);
        EXPECT_EQ(decodeAll(s), v)
            << methodName(cfg.method, cfg.context);
    }
}

TEST(CodecTest, LongRandomRoundTrip)
{
    auto v = randomStream(200000, 77, UINT64_MAX);
    for (Method m : {Method::Fcm, Method::Dfcm, Method::LastN,
                     Method::LastNStride})
    {
        CompressedStream s = encodeStream(v, CodecConfig{m, 2, 0});
        EXPECT_EQ(decodeAll(s), v) << methodName(m, 2);
    }
}

TEST(CodecTest, CheckpointsDoNotChangeContent)
{
    auto v = periodicStream(20000, {1, 5, 9, 5, 1});
    CompressedStream plain =
        encodeStream(v, CodecConfig{Method::Fcm, 2, 0});
    CompressedStream ckpt =
        encodeStream(v, CodecConfig{Method::Fcm, 2, 0}, 1024);
    EXPECT_FALSE(ckpt.checkpoints.empty());
    EXPECT_EQ(decodeAll(ckpt), v);
    EXPECT_EQ(plain.payloadBytes(), ckpt.payloadBytes());
    EXPECT_GT(ckpt.sizeBytes(), plain.sizeBytes());
}

} // namespace
} // namespace codec
} // namespace wet
