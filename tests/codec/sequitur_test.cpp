#include "codec/sequitur.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "codec/encoder.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

void
roundTrip(const std::vector<int64_t>& v, const char* what)
{
    SequiturGrammar g(v);
    EXPECT_EQ(g.expand(), v) << what;
    std::vector<int64_t> back = g.expandBackward();
    std::reverse(back.begin(), back.end());
    EXPECT_EQ(back, v) << what << " (backward)";
}

TEST(SequiturTest, SimpleRepetition)
{
    roundTrip({1, 2, 1, 2, 1, 2, 1, 2}, "abababab");
}

TEST(SequiturTest, ClassicExample)
{
    // "abcabdabcabd" from the Sequitur paper.
    roundTrip({1, 2, 3, 1, 2, 4, 1, 2, 3, 1, 2, 4}, "abcabdabcabd");
}

TEST(SequiturTest, RunsOfOneSymbol)
{
    roundTrip(std::vector<int64_t>(100, 7), "aaaa...");
    roundTrip({7, 7, 7}, "aaa");
    roundTrip({7, 7}, "aa");
}

TEST(SequiturTest, EdgeSizes)
{
    roundTrip({}, "empty");
    roundTrip({42}, "single");
    roundTrip({1, 2}, "pair");
}

TEST(SequiturTest, NestedRepetition)
{
    // (ab)^4 c (ab)^4 c — rules over rules.
    std::vector<int64_t> v;
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 4; ++i) {
            v.push_back(1);
            v.push_back(2);
        }
        v.push_back(3);
    }
    roundTrip(v, "nested");
    SequiturGrammar g(v);
    EXPECT_GT(g.numRules(), 1u);
}

TEST(SequiturTest, HierarchyCompressesPeriodicStreams)
{
    std::vector<int64_t> v;
    for (int i = 0; i < 4096; ++i)
        v.push_back(i % 6);
    SequiturGrammar g(v);
    EXPECT_EQ(g.expand(), v);
    // Grammar for a periodic stream is logarithmic-ish in length.
    EXPECT_LT(g.totalSymbols(), 200u);
    EXPECT_LT(g.sizeBytes(), v.size());
}

TEST(SequiturTest, RandomSmallAlphabetFuzz)
{
    support::Rng rng(2718);
    for (int round = 0; round < 40; ++round) {
        size_t len = 1 + rng.below(400);
        uint64_t alpha = 1 + rng.below(5);
        std::vector<int64_t> v;
        v.reserve(len);
        for (size_t i = 0; i < len; ++i)
            v.push_back(static_cast<int64_t>(rng.below(alpha)));
        SequiturGrammar g(v);
        ASSERT_EQ(g.expand(), v) << "round " << round;
        std::vector<int64_t> back = g.expandBackward();
        std::reverse(back.begin(), back.end());
        ASSERT_EQ(back, v) << "round " << round << " backward";
    }
}

TEST(SequiturTest, RandomLargeValuesFuzz)
{
    support::Rng rng(31337);
    for (int round = 0; round < 10; ++round) {
        size_t len = 1000 + rng.below(2000);
        std::vector<int64_t> v;
        for (size_t i = 0; i < len; ++i) {
            // Mixture of repeating motifs and noise.
            if (rng.chance(1, 3))
                v.push_back(static_cast<int64_t>(rng.next()));
            else
                v.push_back(static_cast<int64_t>(rng.below(4)) -
                            2);
        }
        SequiturGrammar g(v);
        ASSERT_EQ(g.expand(), v) << "round " << round;
    }
}

TEST(SequiturTest, PredictorsBeatSequiturOnValueStreams)
{
    // The paper's §4 claim: Sequitur is bidirectional but "nearly
    // not as effective as the unidirectional predictors" on value
    // streams. A strided value stream is FCM/DFCM bread and butter.
    std::vector<int64_t> v;
    support::Rng rng(5);
    int64_t x = 1000;
    for (int i = 0; i < 50000; ++i) {
        x += 3 + static_cast<int64_t>(rng.below(2)); // stride 3/4
        v.push_back(x);
    }
    SequiturGrammar g(v);
    ASSERT_EQ(g.expand(), v);
    CompressedStream best =
        encodeStream(v, CodecConfig{Method::Dfcm, 1, 0});
    EXPECT_LT(best.sizeBytes() * 4, g.sizeBytes())
        << "DFCM should compress a strided value stream far better "
           "than Sequitur";
}

} // namespace
} // namespace codec
} // namespace wet
