#include "codec/cursor.h"

#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

std::vector<int64_t>
mixedStream(size_t n, uint64_t seed)
{
    support::Rng rng(seed);
    std::vector<int64_t> v;
    int64_t x = 0;
    for (size_t i = 0; i < n; ++i) {
        if (rng.chance(3, 4))
            x += static_cast<int64_t>(rng.below(4)); // gentle strides
        else
            x = static_cast<int64_t>(rng.below(1000));
        v.push_back(x);
    }
    return v;
}

class CursorTest : public ::testing::TestWithParam<CodecConfig>
{
};

TEST_P(CursorTest, BackwardSweepMatchesForward)
{
    auto v = mixedStream(5000, 11);
    CompressedStream s = encodeStream(v, GetParam());
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    // Forward to the end.
    for (size_t i = 0; i < v.size(); ++i)
        ASSERT_EQ(cur.next(), v[i]) << "fwd " << i;
    // Then all the way back.
    for (size_t i = v.size(); i-- > 0;)
        ASSERT_EQ(cur.prev(), v[i]) << "bwd " << i;
    // And forward again over the same cursor.
    for (size_t i = 0; i < v.size(); ++i)
        ASSERT_EQ(cur.next(), v[i]) << "fwd2 " << i;
}

TEST_P(CursorTest, RandomWiggleMatchesReference)
{
    auto v = mixedStream(2000, 23);
    CompressedStream s = encodeStream(v, GetParam());
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    support::Rng rng(5);
    uint64_t pos = 0;
    // Drift randomly: the sequence of at() calls exercises both
    // step directions at every boundary.
    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(1, 2)) {
            if (pos + 1 < v.size())
                ++pos;
        } else {
            if (pos > 0)
                --pos;
        }
        ASSERT_EQ(cur.at(pos), v[pos]) << "pos " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CursorTest, ::testing::ValuesIn(candidateConfigs()),
    [](const ::testing::TestParamInfo<CodecConfig>& info) {
        return methodName(info.param.method, info.param.context);
    });

TEST(CursorModeTest, ForwardCursorRestartsForBackJumps)
{
    auto v = mixedStream(3000, 31);
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 2, 0});
    StreamCursor cur(s, StreamCursor::Mode::Forward);
    EXPECT_EQ(cur.at(2500), v[2500]);
    // Jumping back on a forward-only cursor re-scans from the front
    // but must still return the right value.
    EXPECT_EQ(cur.at(100), v[100]);
    EXPECT_EQ(cur.at(2999), v[2999]);
}

TEST(CursorModeTest, CheckpointsSpeedUpBackJumps)
{
    auto v = mixedStream(50000, 41);
    CompressedStream s =
        encodeStream(v, CodecConfig{Method::Fcm, 2, 0}, 4096);
    ASSERT_FALSE(s.checkpoints.empty());
    StreamCursor cur(s, StreamCursor::Mode::Forward);
    // Values at/after a checkpoint must be reachable from it.
    for (uint64_t q : {49999u, 9000u, 4096u, 4095u, 0u})
        EXPECT_EQ(cur.at(q), v[q]) << q;
}

TEST(CursorModeTest, SeekAndSequentialApi)
{
    auto v = mixedStream(1000, 53);
    CompressedStream s = encodeStream(v, CodecConfig{Method::LastN, 4, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    EXPECT_TRUE(cur.hasNext());
    EXPECT_FALSE(cur.hasPrev());
    cur.seek(500);
    EXPECT_EQ(cur.pos(), 500u);
    EXPECT_EQ(cur.next(), v[500]);
    EXPECT_EQ(cur.prev(), v[500]);
    EXPECT_EQ(cur.prev(), v[499]);
}

TEST(CursorModeTest, RawStreamsAreRandomAccess)
{
    std::vector<int64_t> v = {9, -8, 7, -6, 5};
    CompressedStream s = encodeStream(v, CodecConfig{Method::Raw, 0, 0});
    StreamCursor cur(s, StreamCursor::Mode::Forward);
    EXPECT_EQ(cur.at(4), 5);
    EXPECT_EQ(cur.at(0), 9);
    EXPECT_EQ(cur.at(2), 7);
}

// Regression: prev() at position 0 used to wrap the unsigned index
// to 2^64-1 and read garbage instead of trapping like tryPrev; it
// must die on the same assertion now.
TEST(CursorBoundaryTest, PrevAtFrontDies)
{
    std::vector<int64_t> v = {1, 2, 3};
    CompressedStream s = encodeStream(v, CodecConfig{Method::Raw, 0, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    EXPECT_DEATH(cur.prev(), "prev at position 0");
    StreamCursor mid(s, StreamCursor::Mode::Bidirectional);
    EXPECT_EQ(mid.next(), 1);
    EXPECT_EQ(mid.prev(), 1);
    EXPECT_DEATH(mid.prev(), "prev at position 0");
}

// Regression: seek() accepted any position and deferred the failure
// to the next read; it must reject positions past length() itself.
// Seeking exactly to length() stays legal — that is how a backward
// sweep starts.
TEST(CursorBoundaryTest, SeekPastEndDies)
{
    std::vector<int64_t> v = {4, 5, 6};
    CompressedStream s = encodeStream(v, CodecConfig{Method::Raw, 0, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    EXPECT_DEATH(cur.seek(4), "seek past end");
    cur.seek(3);
    EXPECT_FALSE(cur.hasNext());
    EXPECT_EQ(cur.prev(), 6);
}

// The checked sequential API: end-of-stream and past-end are clean
// `false` returns where next()/seek() trap, and an injected decode
// fault poisons the cursor permanently instead of leaving it
// half-stepped.
TEST(CursorCheckedTest, TryNextAndTrySeekBounds)
{
    std::vector<int64_t> v = {10, 20, 30};
    CompressedStream s = encodeStream(v, CodecConfig{Method::Raw, 0, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    int64_t out = 0;
    for (size_t i = 0; i < v.size(); ++i) {
        ASSERT_TRUE(cur.tryNext(out)) << i;
        EXPECT_EQ(out, v[i]);
    }
    EXPECT_FALSE(cur.tryNext(out)); // end of stream, no trap
    EXPECT_EQ(cur.pos(), 3u);

    EXPECT_FALSE(cur.trySeek(4)); // past end: refused, pos unchanged
    EXPECT_EQ(cur.pos(), 3u);
    EXPECT_TRUE(cur.trySeek(3)); // one-past-last stays legal
    EXPECT_TRUE(cur.trySeek(1));
    ASSERT_TRUE(cur.tryNext(out));
    EXPECT_EQ(out, v[1]);
    EXPECT_FALSE(cur.poisoned());
}

TEST(CursorCheckedTest, InjectedFaultPoisonsCursor)
{
    auto v = mixedStream(500, 7);
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 2, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    int64_t out = 0;
    ASSERT_TRUE(cur.tryNext(out));
    support::FailPoints::instance().arm("codec.cursor.step=once");
    bool sawFalse = false;
    for (int i = 0; i < 10 && !sawFalse; ++i)
        sawFalse = !cur.tryNext(out);
    support::FailPoints::instance().disarmAll();
    ASSERT_TRUE(sawFalse) << "fault never surfaced";
    EXPECT_TRUE(cur.poisoned());
    // Poisoned is terminal: every checked call refuses, even ones
    // that would otherwise succeed.
    EXPECT_FALSE(cur.tryNext(out));
    EXPECT_FALSE(cur.trySeek(0));
    // A fresh cursor over the same stream is unaffected.
    StreamCursor fresh(s, StreamCursor::Mode::Bidirectional);
    ASSERT_TRUE(fresh.tryNext(out));
    EXPECT_EQ(out, v[0]);
}

} // namespace
} // namespace codec
} // namespace wet
