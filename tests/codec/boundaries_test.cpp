#include <gtest/gtest.h>

#include "codec/cursor.h"
#include "codec/encoder.h"
#include "codec/model.h"
#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

TEST(CodecBoundaryTest, LengthsAroundTheMinimum)
{
    // encodeStream falls back to Raw below 16 values; check every
    // length around the threshold for every method.
    for (const auto& cfg : candidateConfigs()) {
        for (size_t m = 0; m <= 40; ++m) {
            std::vector<int64_t> v;
            for (size_t i = 0; i < m; ++i)
                v.push_back(static_cast<int64_t>(i * 3 % 7));
            CompressedStream s = encodeStream(v, cfg);
            ASSERT_EQ(decodeAll(s), v)
                << methodName(cfg.method, cfg.context) << " m=" << m;
        }
    }
}

TEST(CodecBoundaryTest, WindowExactlyCoversShortStreams)
{
    // Length equal to windowSize + 1: exactly one entry.
    CodecConfig cfg{Method::Dfcm, 3, 0}; // window = 4 values
    std::vector<int64_t> v = {10, 20, 30, 40, 50, 60, 70, 80, 90,
                              100, 110, 120, 130, 140, 150, 160,
                              170};
    CompressedStream s = encodeStream(v, cfg);
    EXPECT_EQ(s.config.method, Method::Dfcm);
    EXPECT_EQ(decodeAll(s), v);
}

TEST(CodecBoundaryTest, CursorAtFirstAndLastRepeatedly)
{
    support::Rng rng(3);
    std::vector<int64_t> v;
    for (int i = 0; i < 3000; ++i)
        v.push_back(static_cast<int64_t>(rng.below(50)));
    CompressedStream s = encodeStream(v, CodecConfig{Method::Fcm, 2, 0});
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    for (int round = 0; round < 4; ++round) {
        EXPECT_EQ(cur.at(0), v[0]);
        EXPECT_EQ(cur.at(v.size() - 1), v.back());
        EXPECT_EQ(cur.at(v.size() / 2), v[v.size() / 2]);
    }
}

TEST(CodecBoundaryTest, CheckpointJumpsAcrossBoundaries)
{
    support::Rng rng(17);
    std::vector<int64_t> v;
    int64_t x = 0;
    for (int i = 0; i < 40000; ++i) {
        x += static_cast<int64_t>(rng.below(3));
        v.push_back(x);
    }
    CompressedStream s =
        encodeStream(v, CodecConfig{Method::Dfcm, 1, 0}, 4096);
    ASSERT_GE(s.checkpoints.size(), 2u);
    StreamCursor cur(s, StreamCursor::Mode::Forward);
    // Probe positions just before/after each checkpoint, in an
    // adversarial (descending) order that forces jumps.
    for (auto it = s.checkpoints.rbegin(); it != s.checkpoints.rend();
         ++it)
    {
        uint64_t p = it->machinePos;
        EXPECT_EQ(cur.at(p + 1), v[p + 1]);
        EXPECT_EQ(cur.at(p), v[p]);
        EXPECT_EQ(cur.at(p - 1), v[p - 1]);
    }
    EXPECT_EQ(cur.at(0), v[0]);
}

TEST(CodecBoundaryTest, BidirectionalCursorPrefersCheapestRoute)
{
    // A bidirectional cursor deep into the stream asked for an early
    // position should use a checkpoint (or front) rather than
    // stepping backward the whole way — observable only as: results
    // stay correct and sweepStart bookkeeping doesn't trip asserts.
    support::Rng rng(29);
    std::vector<int64_t> v;
    for (int i = 0; i < 60000; ++i)
        v.push_back(static_cast<int64_t>(rng.below(6)));
    CompressedStream s =
        encodeStream(v, CodecConfig{Method::Fcm, 1, 0}, 8192);
    StreamCursor cur(s, StreamCursor::Mode::Bidirectional);
    EXPECT_EQ(cur.at(59000), v[59000]);
    EXPECT_EQ(cur.at(100), v[100]);    // far back: reinit route
    EXPECT_EQ(cur.at(99), v[99]);      // local backward step
    EXPECT_EQ(cur.at(58000), v[58000]); // far forward again
}

TEST(CodecBoundaryTest, RepeatedValuesWithAllMethods)
{
    // Long runs stress the hit paths and last-n rotation.
    std::vector<int64_t> v;
    for (int i = 0; i < 5000; ++i)
        v.push_back(i / 500); // ten long runs
    for (const auto& cfg : candidateConfigs()) {
        CompressedStream s = encodeStream(v, cfg);
        ASSERT_EQ(decodeAll(s), v)
            << methodName(cfg.method, cfg.context);
        EXPECT_LT(s.sizeBytes(), v.size() * 2)
            << methodName(cfg.method, cfg.context);
    }
}

TEST(CodecBoundaryTest, ResolveConfigScalesTableBits)
{
    CodecConfig small =
        resolveConfig(CodecConfig{Method::Fcm, 2, 0}, 100);
    CodecConfig big =
        resolveConfig(CodecConfig{Method::Fcm, 2, 0}, 1 << 20);
    EXPECT_LT(small.tableBits, big.tableBits);
    EXPECT_LE(big.tableBits, 12u);
    // Explicit bits are preserved.
    CodecConfig fixed =
        resolveConfig(CodecConfig{Method::Fcm, 2, 9}, 1 << 20);
    EXPECT_EQ(fixed.tableBits, 9u);
}

} // namespace
} // namespace codec
} // namespace wet
