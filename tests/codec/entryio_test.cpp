#include "codec/entryio.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace wet {
namespace codec {
namespace {

using namespace detail;

Entry
randomEntry(support::Rng& rng, unsigned idx_bits)
{
    Entry e;
    e.hit = rng.chance(1, 2);
    if (e.hit && idx_bits)
        e.hitIndex = rng.below(uint64_t{1} << idx_bits);
    if (!e.hit)
        e.missVictim = static_cast<int64_t>(rng.next());
    return e;
}

void
expectEq(const Entry& a, const Entry& b)
{
    EXPECT_EQ(a.hit, b.hit);
    if (a.hit) {
        EXPECT_EQ(a.hitIndex, b.hitIndex);
    } else {
        EXPECT_EQ(a.missVictim, b.missVictim);
    }
}

TEST(EntryIoTest, ForwardLayoutRoundTrip)
{
    for (unsigned idxBits : {0u, 2u, 3u}) {
        support::Rng rng(idxBits + 1);
        std::vector<Entry> entries;
        support::BitStack flags;
        support::VarintBuffer vals;
        for (int i = 0; i < 500; ++i) {
            entries.push_back(randomEntry(rng, idxBits));
            writeEntryForward(flags, vals, entries.back(), idxBits);
        }
        size_t fp = 0;
        size_t mp = 0;
        for (const Entry& want : entries) {
            Entry got =
                readEntryForward(flags, vals, fp, mp, idxBits);
            expectEq(want, got);
        }
        EXPECT_EQ(fp, flags.size());
        EXPECT_EQ(mp, vals.sizeBytes());
    }
}

TEST(EntryIoTest, UnreadStepsBackwardsExactly)
{
    support::Rng rng(9);
    unsigned idxBits = 3;
    std::vector<Entry> entries;
    support::BitStack flags;
    support::VarintBuffer vals;
    for (int i = 0; i < 200; ++i) {
        entries.push_back(randomEntry(rng, idxBits));
        writeEntryForward(flags, vals, entries.back(), idxBits);
    }
    // Read all forward, then unread all backward.
    size_t fp = 0;
    size_t mp = 0;
    for (const Entry& want : entries)
        expectEq(want, readEntryForward(flags, vals, fp, mp,
                                        idxBits));
    for (size_t i = entries.size(); i-- > 0;)
        unreadEntryForward(flags, vals, fp, mp, entries[i], idxBits);
    EXPECT_EQ(fp, 0u);
    EXPECT_EQ(mp, 0u);
}

TEST(EntryIoTest, ReversedLayoutIsLifo)
{
    for (unsigned idxBits : {0u, 3u}) {
        support::Rng rng(idxBits + 7);
        std::vector<Entry> entries;
        support::BitStack flags;
        support::VarintBuffer vals;
        for (int i = 0; i < 300; ++i) {
            entries.push_back(randomEntry(rng, idxBits));
            pushEntryReversed(flags, vals, entries.back(), idxBits);
        }
        for (size_t i = entries.size(); i-- > 0;) {
            Entry got = popEntryReversed(flags, vals, idxBits);
            expectEq(entries[i], got);
        }
        EXPECT_TRUE(flags.empty());
        EXPECT_TRUE(vals.empty());
    }
}

TEST(EntryIoTest, MixedPushPopInterleaving)
{
    support::Rng rng(13);
    unsigned idxBits = 2;
    std::vector<Entry> shadow;
    support::BitStack flags;
    support::VarintBuffer vals;
    for (int step = 0; step < 3000; ++step) {
        if (shadow.empty() || rng.chance(3, 5)) {
            shadow.push_back(randomEntry(rng, idxBits));
            pushEntryReversed(flags, vals, shadow.back(), idxBits);
        } else {
            Entry got = popEntryReversed(flags, vals, idxBits);
            expectEq(shadow.back(), got);
            shadow.pop_back();
        }
    }
}

} // namespace
} // namespace codec
} // namespace wet
