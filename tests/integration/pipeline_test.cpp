#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/access.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "workloads/runner.h"

namespace wet {
namespace {

using namespace workloads;

/**
 * End-to-end pipeline over real workloads at small scale: build the
 * WET, compress it, and check the headline invariants — sizes shrink
 * tier by tier, and the compressed representation still reproduces
 * the full control flow.
 */
class PipelineTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PipelineTest, BuildCompressQueryRoundTrip)
{
    const Workload& w = allWorkloads()[GetParam()];
    // Enough work that per-stream constants amortize, small enough
    // for a unit-test budget.
    uint64_t scale = std::max<uint64_t>(1, w.defaultScale / 20);
    auto art = buildWet(w, scale);
    const core::WetGraph& g = art->graph;

    // Structural sanity.
    EXPECT_GT(g.nodes.size(), 0u) << w.name;
    EXPECT_EQ(g.stmtInstancesTotal, art->run.stmtsExecuted);
    uint64_t instances = 0;
    for (const auto& node : g.nodes)
        instances += node.instances();
    EXPECT_EQ(instances, g.lastTimestamp);

    // Tier sizes shrink.
    core::TierSizes orig = g.origSizes();
    core::TierSizes t1 = g.tier1Sizes();
    core::WetCompressed comp(g);
    core::TierSizes t2 = comp.sizes();
    EXPECT_LT(t1.total(), orig.total()) << w.name;
    EXPECT_LT(t2.total(), t1.total()) << w.name;

    // The compressed WET regenerates the same control flow trace as
    // the tier-1 WET.
    core::WetAccess a1(g, *art->module);
    core::WetAccess a2(comp, *art->module);
    std::vector<std::pair<core::NodeId, core::Timestamp>> f1;
    std::vector<std::pair<core::NodeId, core::Timestamp>> f2;
    core::ControlFlowQuery q1(a1);
    core::ControlFlowQuery q2(a2);
    uint64_t blocks1 = q1.extractForward(
        [&](core::NodeId n, core::Timestamp t) {
            f1.emplace_back(n, t);
        });
    uint64_t blocks2 = q2.extractForward(
        [&](core::NodeId n, core::Timestamp t) {
            f2.emplace_back(n, t);
        });
    EXPECT_EQ(blocks1, blocks2);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(f1.size(), g.lastTimestamp);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PipelineTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
        std::string n = allWorkloads()[info.param].name;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace wet
