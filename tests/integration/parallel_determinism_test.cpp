#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/artifactverifier.h"
#include "analysis/diag.h"
#include "analysis/moduleverifier.h"
#include "analysis/wetverifier.h"
#include "core/compressed.h"
#include "wetio/wetio.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace {

std::vector<uint8_t>
fileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

/**
 * The parallel pipeline's determinism contract (DESIGN.md §8),
 * checked differentially: for every sample workload the serialized
 * .wetx built at 1, 2, and 8 worker threads must be byte-identical,
 * and the full verifier chain (the in-process equivalent of
 * `wet_cli verify`) must pass on the artifact of every thread count.
 */
class ParallelDeterminismTest
    : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ParallelDeterminismTest, WetxBytesIdenticalAcrossThreadCounts)
{
    const workloads::Workload& w =
        workloads::allWorkloads()[GetParam()];
    // Small but non-trivial scale: enough trace for multi-group
    // nodes and pooled edge streams, small enough to build three
    // times per workload in a unit-test run. The compression-heavy
    // workloads get a lower scale — their per-unit trace (and thus
    // stream-verify cost) is an order of magnitude larger.
    uint64_t scale = 20;
    if (w.name == "164.gzip")
        scale = 2;
    else if (w.name == "181.mcf" || w.name == "256.bzip2")
        scale = 5;
    workloads::BuildConfig cfg;
    auto art = workloads::buildWet(w, scale, nullptr, cfg);

    const std::vector<unsigned> threadCounts = {1, 2, 8};
    std::vector<std::vector<uint8_t>> artifacts;
    for (unsigned threads : threadCounts) {
        core::WetCompressed comp(art->graph, {}, threads);
        std::string path = ::testing::TempDir() + "pdet_" + w.name +
                           "_t" + std::to_string(threads) + ".wetx";
        wetio::save(path, *art->module, art->graph, comp);
        artifacts.push_back(fileBytes(path));

        // `wet_cli verify` equivalent: static IR rules, then load,
        // then graph + artifact invariants.
        analysis::DiagEngine diag;
        analysis::verifyModule(*art->module, diag);
        ASSERT_FALSE(diag.hasErrors()) << diag.renderText();
        wetio::LoadedWet loaded =
            wetio::tryLoad(path, *art->module, diag);
        ASSERT_TRUE(loaded.graph && loaded.compressed)
            << w.name << " threads=" << threads << "\n"
            << diag.renderText();
        EXPECT_TRUE(analysis::verifyWet(*loaded.graph, *art->ma,
                                        diag,
                                        loaded.compressed.get()))
            << w.name << " threads=" << threads << "\n"
            << diag.renderText();
        EXPECT_TRUE(
            analysis::verifyArtifact(*loaded.compressed, diag))
            << w.name << " threads=" << threads << "\n"
            << diag.renderText();
        std::remove(path.c_str());
    }

    ASSERT_FALSE(artifacts[0].empty());
    for (size_t i = 1; i < artifacts.size(); ++i)
        EXPECT_EQ(artifacts[i], artifacts[0])
            << w.name << ": threads=" << threadCounts[i]
            << " artifact differs from serial build";
}

TEST_P(ParallelDeterminismTest, ParallelModuleAnalysisMatchesSerial)
{
    const workloads::Workload& w =
        workloads::allWorkloads()[GetParam()];
    ir::Module mod = workloads::compileWorkload(w);
    analysis::ModuleAnalysis serial(mod);
    analysis::ModuleAnalysis parallel(mod, uint64_t{1} << 24, 8);
    for (ir::FuncId f = 0; f < mod.numFunctions(); ++f) {
        const analysis::FunctionAnalysis& a = serial.fn(f);
        const analysis::FunctionAnalysis& b = parallel.fn(f);
        EXPECT_EQ(a.bl.numPaths(), b.bl.numPaths())
            << w.name << " fn " << f;
        EXPECT_EQ(a.cfg.rpo(), b.cfg.rpo()) << w.name << " fn " << f;
        for (ir::BlockId blk = 0;
             blk < mod.function(f).blocks.size(); ++blk)
            EXPECT_EQ(a.postdom.idom(blk), b.postdom.idom(blk))
                << w.name << " fn " << f << " block " << blk;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelDeterminismTest,
    ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
        std::string n = workloads::allWorkloads()[info.param].name;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace wet
