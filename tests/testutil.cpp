#include "testutil.h"

#include "lang/codegen.h"

namespace wet {
namespace test {

std::unique_ptr<Pipeline>
runPipeline(const std::string& source, std::vector<int64_t> inputs,
            uint64_t mem_words, unsigned threads)
{
    auto p = std::make_unique<Pipeline>();
    p->module = std::make_unique<ir::Module>(
        lang::compileString(source, mem_words));
    p->ma = std::make_unique<analysis::ModuleAnalysis>(
        *p->module, uint64_t{1} << 24, threads);
    interp::VectorInput input(std::move(inputs));
    core::WetBuilder builder(*p->ma);
    interp::TeeSink tee;
    tee.addSink(&builder);
    tee.addSink(&p->record);
    interp::Interpreter interp(*p->ma, input, &tee);
    p->result = interp.run();
    p->graph = builder.take();
    return p;
}

interp::RunResult
runSource(const std::string& source, std::vector<int64_t> inputs,
          uint64_t mem_words)
{
    ir::Module mod = lang::compileString(source, mem_words);
    analysis::ModuleAnalysis ma(mod);
    interp::VectorInput input(std::move(inputs));
    interp::Interpreter interp(ma, input, nullptr);
    return interp.run();
}

} // namespace test
} // namespace wet
