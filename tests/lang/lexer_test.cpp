#include "lang/lexer.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace wet {
namespace lang {
namespace {

std::vector<TokKind>
kinds(const std::string& src)
{
    Lexer lx(src);
    std::vector<TokKind> ks;
    for (const Token& t : lx.lexAll())
        ks.push_back(t.kind);
    return ks;
}

TEST(LexerTest, KeywordsAndIdentifiers)
{
    auto ks = kinds("fn foo var while whale");
    ASSERT_EQ(ks.size(), 6u);
    EXPECT_EQ(ks[0], TokKind::KwFn);
    EXPECT_EQ(ks[1], TokKind::Ident);
    EXPECT_EQ(ks[2], TokKind::KwVar);
    EXPECT_EQ(ks[3], TokKind::KwWhile);
    EXPECT_EQ(ks[4], TokKind::Ident);
    EXPECT_EQ(ks[5], TokKind::End);
}

TEST(LexerTest, IntegerLiterals)
{
    Lexer lx("0 42 0x10 0xdeadBEEF 6364136223846793005");
    auto toks = lx.lexAll();
    EXPECT_EQ(toks[0].value, 0);
    EXPECT_EQ(toks[1].value, 42);
    EXPECT_EQ(toks[2].value, 16);
    EXPECT_EQ(toks[3].value, 0xdeadbeef);
    EXPECT_EQ(toks[4].value, 6364136223846793005LL);
}

TEST(LexerTest, MultiCharOperators)
{
    auto ks = kinds("<= >= == != << >> && || < >");
    EXPECT_EQ(ks[0], TokKind::Le);
    EXPECT_EQ(ks[1], TokKind::Ge);
    EXPECT_EQ(ks[2], TokKind::EqEq);
    EXPECT_EQ(ks[3], TokKind::Ne);
    EXPECT_EQ(ks[4], TokKind::Shl);
    EXPECT_EQ(ks[5], TokKind::Shr);
    EXPECT_EQ(ks[6], TokKind::AndAnd);
    EXPECT_EQ(ks[7], TokKind::OrOr);
    EXPECT_EQ(ks[8], TokKind::Lt);
    EXPECT_EQ(ks[9], TokKind::Gt);
}

TEST(LexerTest, CommentsAreSkipped)
{
    auto ks = kinds("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(ks.size(), 4u);
    EXPECT_EQ(ks[0], TokKind::Ident);
    EXPECT_EQ(ks[1], TokKind::Ident);
    EXPECT_EQ(ks[2], TokKind::Ident);
}

TEST(LexerTest, TracksLineAndColumn)
{
    Lexer lx("a\n  b");
    auto toks = lx.lexAll();
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

TEST(LexerTest, RejectsUnknownCharacter)
{
    Lexer lx("a $ b");
    EXPECT_THROW(lx.lexAll(), WetError);
}

TEST(LexerTest, RejectsUnterminatedBlockComment)
{
    Lexer lx("a /* never closed");
    EXPECT_THROW(lx.lexAll(), WetError);
}

} // namespace
} // namespace lang
} // namespace wet
