#include <gtest/gtest.h>

#include "support/error.h"
#include "testutil.h"

namespace wet {
namespace lang {
namespace {

using test::runSource;

TEST(LangSemanticsTest, DivisionAndRemainderEdgeCases)
{
    auto r = runSource(R"(
        fn main() {
            var zero = 0;
            out(5 / zero);     // defined as 0
            out(5 % zero);     // defined as 0
            out((0 - 7) / 2);  // truncated toward zero
            out((0 - 7) % 2);
        }
    )");
    EXPECT_EQ(r.outputs[0], 0);
    EXPECT_EQ(r.outputs[1], 0);
    EXPECT_EQ(r.outputs[2], -3);
    EXPECT_EQ(r.outputs[3], -1);
}

TEST(LangSemanticsTest, ShiftsAndBitOps)
{
    auto r = runSource(R"(
        fn main() {
            out(1 << 10);
            out(1024 >> 3);
            out(0xff & 0x0f);
            out(0xf0 | 0x0f);
            out(0xff ^ 0x0f);
            out(~0 & 0xff);
        }
    )");
    EXPECT_EQ(r.outputs[0], 1024);
    EXPECT_EQ(r.outputs[1], 128);
    EXPECT_EQ(r.outputs[2], 0x0f);
    EXPECT_EQ(r.outputs[3], 0xff);
    EXPECT_EQ(r.outputs[4], 0xf0);
    EXPECT_EQ(r.outputs[5], 0xff);
}

TEST(LangSemanticsTest, ComparisonChainsViaLogical)
{
    auto r = runSource(R"(
        fn main() {
            var x = 5;
            out(x > 1 && x < 10);
            out(x > 5 || x == 5);
            out(!(x != 5));
        }
    )");
    EXPECT_EQ(r.outputs[0], 1);
    EXPECT_EQ(r.outputs[1], 1);
    EXPECT_EQ(r.outputs[2], 1);
}

TEST(LangSemanticsTest, ForLoopClausesAreOptional)
{
    auto r = runSource(R"(
        fn main() {
            var i = 0;
            for (; i < 3;) { i = i + 1; }
            out(i);
            var s = 0;
            for (var j = 0; ; j = j + 1) {
                if (j == 4) { break; }
                s = s + j;
            }
            out(s);
        }
    )");
    EXPECT_EQ(r.outputs[0], 3);
    EXPECT_EQ(r.outputs[1], 6);
}

TEST(LangSemanticsTest, NestedLoopsWithBreakContinue)
{
    auto r = runSource(R"(
        fn main() {
            var count = 0;
            for (var i = 0; i < 5; i = i + 1) {
                for (var j = 0; j < 5; j = j + 1) {
                    if (j > i) { break; }
                    if ((i + j) % 2 == 1) { continue; }
                    count = count + 1;
                }
            }
            out(count); // pairs with j<=i and even sum
        }
    )");
    // i=0: j=0 -> 1; i=1: j=1? (1+0)=1 skip,(1+1)=2 ok -> 1;
    // i=2: j=0,2 -> 2; i=3: j=1,3 -> 2; i=4: j=0,2,4 -> 3.
    EXPECT_EQ(r.outputs[0], 9);
}

TEST(LangSemanticsTest, MutualRecursion)
{
    auto r = runSource(R"(
        fn is_even(n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        fn is_odd(n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        fn main() {
            out(is_even(10));
            out(is_odd(7));
            out(is_even(3));
        }
    )");
    EXPECT_EQ(r.outputs[0], 1);
    EXPECT_EQ(r.outputs[1], 1);
    EXPECT_EQ(r.outputs[2], 0);
}

TEST(LangSemanticsTest, VoidFunctionsReturnZero)
{
    auto r = runSource(R"(
        fn poke(a) { mem[a] = 7; }
        fn main() {
            var x = poke(3);
            out(x);
            out(mem[3]);
        }
    )");
    EXPECT_EQ(r.outputs[0], 0);
    EXPECT_EQ(r.outputs[1], 7);
}

TEST(LangSemanticsTest, DeepRecursionWithinLimit)
{
    auto r = runSource(R"(
        fn down(n) {
            if (n == 0) { return 0; }
            return down(n - 1) + 1;
        }
        fn main() { out(down(5000)); }
    )");
    EXPECT_EQ(r.outputs[0], 5000);
}

TEST(LangSemanticsTest, CallDepthLimitEnforced)
{
    const char* src = R"(
        fn forever(n) { return forever(n + 1); }
        fn main() { out(forever(0)); }
    )";
    EXPECT_THROW(runSource(src), WetError);
}

TEST(LangSemanticsTest, ArgumentEvaluationOrderIsLeftToRight)
{
    auto r = runSource(R"(
        fn bump() { mem[0] = mem[0] + 1; return mem[0]; }
        fn pair(a, b) { return a * 100 + b; }
        fn main() { out(pair(bump(), bump())); }
    )");
    EXPECT_EQ(r.outputs[0], 102);
}

TEST(LangSemanticsTest, ConstsAreUsableEverywhere)
{
    auto r = runSource(R"(
        const N = 4;
        const BASE = 100;
        fn area() { return N * N; }
        fn main() {
            mem[BASE] = area();
            out(mem[BASE] + N);
        }
    )");
    EXPECT_EQ(r.outputs[0], 20);
}

} // namespace
} // namespace lang
} // namespace wet
