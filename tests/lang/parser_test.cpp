#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "support/error.h"

namespace wet {
namespace lang {
namespace {

Program
parse(const std::string& src)
{
    Lexer lx(src);
    Parser p(lx.lexAll());
    return p.parseProgram();
}

TEST(ParserTest, ParsesFunctionWithParams)
{
    Program prog = parse("fn add(a, b) { return a + b; }");
    ASSERT_EQ(prog.functions.size(), 1u);
    EXPECT_EQ(prog.functions[0].name, "add");
    ASSERT_EQ(prog.functions[0].params.size(), 2u);
    EXPECT_EQ(prog.functions[0].params[1], "b");
    ASSERT_EQ(prog.functions[0].body.size(), 1u);
    EXPECT_EQ(prog.functions[0].body[0]->kind, StmtKind::Return);
}

TEST(ParserTest, ParsesConsts)
{
    Program prog = parse("const A = 5; const B = -3; fn main() {}");
    EXPECT_EQ(prog.consts.at("A"), 5);
    EXPECT_EQ(prog.consts.at("B"), -3);
}

TEST(ParserTest, PrecedenceMulOverAdd)
{
    Program prog = parse("fn main() { var x = 1 + 2 * 3; }");
    const Stmt& decl = *prog.functions[0].body[0];
    ASSERT_EQ(decl.kind, StmtKind::VarDecl);
    const Expr& e = *decl.e1;
    ASSERT_EQ(e.kind, ExprKind::Binary);
    EXPECT_EQ(e.op, TokKind::Plus);
    EXPECT_EQ(e.rhs->kind, ExprKind::Binary);
    EXPECT_EQ(e.rhs->op, TokKind::Star);
}

TEST(ParserTest, LeftAssociativeSubtraction)
{
    Program prog = parse("fn main() { var x = 10 - 3 - 2; }");
    const Expr& e = *prog.functions[0].body[0]->e1;
    // (10 - 3) - 2
    EXPECT_EQ(e.op, TokKind::Minus);
    EXPECT_EQ(e.lhs->kind, ExprKind::Binary);
    EXPECT_EQ(e.rhs->kind, ExprKind::IntLit);
    EXPECT_EQ(e.rhs->intValue, 2);
}

TEST(ParserTest, LogicalOperatorsBecomeShortCircuitNodes)
{
    Program prog = parse("fn main() { var x = 1 && 2 || 3; }");
    const Expr& e = *prog.functions[0].body[0]->e1;
    EXPECT_EQ(e.kind, ExprKind::LogicalOr);
    EXPECT_EQ(e.lhs->kind, ExprKind::LogicalAnd);
}

TEST(ParserTest, ParsesControlFlowForms)
{
    Program prog = parse(R"(
        fn main() {
            if (1) { out(1); } else if (2) { out(2); } else { out(3); }
            while (1) { break; }
            for (var i = 0; i < 10; i = i + 1) { continue; }
            mem[4] = 5;
            var y = mem[4];
            halt;
        }
    )");
    const auto& body = prog.functions[0].body;
    ASSERT_EQ(body.size(), 6u);
    EXPECT_EQ(body[0]->kind, StmtKind::If);
    ASSERT_EQ(body[0]->elseBody.size(), 1u);
    EXPECT_EQ(body[0]->elseBody[0]->kind, StmtKind::If);
    EXPECT_EQ(body[1]->kind, StmtKind::While);
    EXPECT_EQ(body[2]->kind, StmtKind::For);
    ASSERT_TRUE(body[2]->sub1 && body[2]->e1 && body[2]->sub2);
    EXPECT_EQ(body[3]->kind, StmtKind::MemStore);
    EXPECT_EQ(body[4]->kind, StmtKind::VarDecl);
    EXPECT_EQ(body[4]->e1->kind, ExprKind::MemLoad);
    EXPECT_EQ(body[5]->kind, StmtKind::Halt);
}

TEST(ParserTest, ParsesCallsAndInput)
{
    Program prog = parse("fn main() { var x = f(1, in()); f(x); }");
    const Expr& call = *prog.functions[0].body[0]->e1;
    EXPECT_EQ(call.kind, ExprKind::Call);
    ASSERT_EQ(call.args.size(), 2u);
    EXPECT_EQ(call.args[1]->kind, ExprKind::Input);
    EXPECT_EQ(prog.functions[0].body[1]->kind, StmtKind::ExprStmt);
}

TEST(ParserTest, ErrorsCarryLocation)
{
    try {
        parse("fn main() { var = 3; }");
        FAIL() << "expected WetError";
    } catch (const WetError& e) {
        EXPECT_NE(std::string(e.what()).find("1:17"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParserTest, RejectsMissingSemicolon)
{
    EXPECT_THROW(parse("fn main() { var x = 1 }"), WetError);
}

TEST(ParserTest, RejectsTopLevelGarbage)
{
    EXPECT_THROW(parse("var x = 1;"), WetError);
}

} // namespace
} // namespace lang
} // namespace wet
