#include "lang/codegen.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace wet {
namespace lang {
namespace {

using test::runSource;

TEST(CodegenTest, ArithmeticAndOutput)
{
    auto r = runSource("fn main() { out(2 + 3 * 4); out(10 / 3); "
                       "out(10 % 3); out(1 << 6); }");
    ASSERT_EQ(r.outputs.size(), 4u);
    EXPECT_EQ(r.outputs[0], 14);
    EXPECT_EQ(r.outputs[1], 3);
    EXPECT_EQ(r.outputs[2], 1);
    EXPECT_EQ(r.outputs[3], 64);
}

TEST(CodegenTest, UnaryOperators)
{
    auto r = runSource("fn main() { out(-5); out(!0); out(!7); "
                       "out(~0); }");
    ASSERT_EQ(r.outputs.size(), 4u);
    EXPECT_EQ(r.outputs[0], -5);
    EXPECT_EQ(r.outputs[1], 1);
    EXPECT_EQ(r.outputs[2], 0);
    EXPECT_EQ(r.outputs[3], -1);
}

TEST(CodegenTest, IfElseChains)
{
    const char* src = R"(
        fn classify(x) {
            if (x < 0) { return 0 - 1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        fn main() {
            out(classify(0 - 5));
            out(classify(0));
            out(classify(9));
        }
    )";
    auto r = runSource(src);
    ASSERT_EQ(r.outputs.size(), 3u);
    EXPECT_EQ(r.outputs[0], -1);
    EXPECT_EQ(r.outputs[1], 0);
    EXPECT_EQ(r.outputs[2], 1);
}

TEST(CodegenTest, WhileAndForLoops)
{
    const char* src = R"(
        fn main() {
            var s = 0;
            var i = 0;
            while (i < 5) { s = s + i; i = i + 1; }
            out(s);
            var t = 0;
            for (var j = 1; j <= 10; j = j + 1) { t = t + j; }
            out(t);
        }
    )";
    auto r = runSource(src);
    EXPECT_EQ(r.outputs[0], 10);
    EXPECT_EQ(r.outputs[1], 55);
}

TEST(CodegenTest, BreakAndContinue)
{
    const char* src = R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i == 7) { break; }
                if (i % 2 == 0) { continue; }
                s = s + i;
            }
            out(s); // 1 + 3 + 5 = 9
        }
    )";
    EXPECT_EQ(runSource(src).outputs[0], 9);
}

TEST(CodegenTest, ShortCircuitEvaluation)
{
    // The right side must not run when the left side decides.
    const char* src = R"(
        fn bump() { mem[0] = mem[0] + 1; return 1; }
        fn main() {
            var a = 0 && bump();
            var b = 1 || bump();
            out(mem[0]); // neither bump ran
            var c = 1 && bump();
            var d = 0 || bump();
            out(mem[0]); // both ran
            out(a); out(b); out(c); out(d);
        }
    )";
    auto r = runSource(src);
    EXPECT_EQ(r.outputs[0], 0);
    EXPECT_EQ(r.outputs[1], 2);
    EXPECT_EQ(r.outputs[2], 0);
    EXPECT_EQ(r.outputs[3], 1);
    EXPECT_EQ(r.outputs[4], 1);
    EXPECT_EQ(r.outputs[5], 1);
}

TEST(CodegenTest, MemoryAndInput)
{
    const char* src = R"(
        fn main() {
            var n = in();
            for (var i = 0; i < n; i = i + 1) { mem[100 + i] = i * i; }
            var s = 0;
            for (var i = 0; i < n; i = i + 1) { s = s + mem[100 + i]; }
            out(s);
        }
    )";
    auto r = test::runSource(src, {5});
    EXPECT_EQ(r.outputs[0], 0 + 1 + 4 + 9 + 16);
}

TEST(CodegenTest, RecursionAndCalls)
{
    const char* src = R"(
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { out(fib(15)); }
    )";
    EXPECT_EQ(runSource(src).outputs[0], 610);
}

TEST(CodegenTest, ConstsAndScoping)
{
    const char* src = R"(
        const BASE = 1000;
        fn main() {
            var x = 1;
            { var x = 2; out(x + BASE); }
            out(x);
        }
    )";
    auto r = runSource(src);
    EXPECT_EQ(r.outputs[0], 1002);
    EXPECT_EQ(r.outputs[1], 1);
}

TEST(CodegenTest, SemanticErrors)
{
    EXPECT_THROW(runSource("fn main() { out(y); }"), WetError);
    EXPECT_THROW(runSource("fn main() { break; }"), WetError);
    EXPECT_THROW(runSource("fn main() { f(1); }"), WetError);
    EXPECT_THROW(runSource("fn f(a) {} fn main() { f(); }"), WetError);
    EXPECT_THROW(runSource("fn f() {} fn f() {} fn main() {}"),
                 WetError);
    EXPECT_THROW(runSource("fn nomain() {}"), WetError);
    EXPECT_THROW(
        runSource("fn main() { var a = 1; var a = 2; }"), WetError);
}

TEST(CodegenTest, DeadCodeAfterReturnIsTolerated)
{
    const char* src = R"(
        fn f() { return 1; out(99); }
        fn main() { out(f()); }
    )";
    auto r = runSource(src);
    ASSERT_EQ(r.outputs.size(), 1u);
    EXPECT_EQ(r.outputs[0], 1);
}

} // namespace
} // namespace lang
} // namespace wet
