#include "ir/module.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "support/error.h"

namespace wet {
namespace ir {
namespace {

Module
sampleModule()
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    BlockId loop = f.newBlock();
    BlockId done = f.newBlock();
    RegId i = f.emitConst(0);
    f.emitJmp(loop);
    f.switchTo(loop);
    RegId ten = f.emitConst(10);
    RegId c = f.emitBinary(Opcode::CmpLt, i, ten);
    f.emitBr(c, loop, done);
    f.switchTo(done);
    f.emitHalt();
    mb.endFunction();
    return mb.build();
}

TEST(ModuleTest, StmtIdsAreDenseAndResolvable)
{
    Module m = sampleModule();
    EXPECT_GT(m.numStmts(), 0u);
    for (StmtId s = 0; s < m.numStmts(); ++s) {
        const StmtRef& r = m.stmtRef(s);
        const Instr& in =
            m.function(r.func).blocks[r.block].instrs[r.index];
        EXPECT_EQ(in.stmt, s);
        EXPECT_EQ(&m.instr(s), &in);
    }
}

TEST(ModuleTest, EntryFunctionPrefersMain)
{
    Module m = sampleModule();
    EXPECT_EQ(m.entryFunction(), m.functionByName("main"));
}

TEST(ModuleTest, UnknownFunctionNameThrows)
{
    Module m = sampleModule();
    EXPECT_THROW(m.functionByName("missing"), WetError);
    EXPECT_FALSE(m.hasFunction("missing"));
    EXPECT_TRUE(m.hasFunction("main"));
}

TEST(ModuleTest, DumpMentionsBlocksAndOpcodes)
{
    Module m = sampleModule();
    std::string d = m.dump();
    EXPECT_NE(d.find("fn main"), std::string::npos);
    EXPECT_NE(d.find("cmplt"), std::string::npos);
    EXPECT_NE(d.find("b1"), std::string::npos);
}

TEST(ModuleTest, EvalBinaryDefinedSemantics)
{
    // Division/remainder by zero are defined as 0 (value grouping
    // relies on pure, total operations).
    EXPECT_EQ(evalBinary(Opcode::Div, 5, 0), 0);
    EXPECT_EQ(evalBinary(Opcode::Rem, 5, 0), 0);
    EXPECT_EQ(evalBinary(Opcode::Div, INT64_MIN, -1), INT64_MIN);
    EXPECT_EQ(evalBinary(Opcode::Rem, INT64_MIN, -1), 0);
    EXPECT_EQ(evalBinary(Opcode::Shl, 1, 64), 1);
    EXPECT_EQ(evalBinary(Opcode::Add, INT64_MAX, 1), INT64_MIN);
}

TEST(ModuleTest, OpcodeTraits)
{
    EXPECT_TRUE(hasDef(Opcode::Load));
    EXPECT_FALSE(hasDef(Opcode::Store));
    EXPECT_FALSE(hasDef(Opcode::Br));
    EXPECT_TRUE(isTerminator(Opcode::Ret));
    EXPECT_FALSE(isTerminator(Opcode::Call));
    EXPECT_EQ(numUses(Opcode::Store), 2);
    EXPECT_EQ(numUses(Opcode::Const), 0);
    EXPECT_TRUE(isBinaryAlu(Opcode::CmpGe));
    EXPECT_FALSE(isBinaryAlu(Opcode::Neg));
}

} // namespace
} // namespace ir
} // namespace wet
