#include "ir/builder.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace wet {
namespace ir {
namespace {

TEST(IrBuilderTest, BuildsMinimalFunction)
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    RegId a = f.emitConst(2);
    RegId b = f.emitConst(3);
    RegId c = f.emitBinary(Opcode::Add, a, b);
    f.emitOut(c);
    f.emitHalt();
    mb.endFunction();
    Module m = mb.build();

    EXPECT_EQ(m.numFunctions(), 1u);
    EXPECT_EQ(m.numStmts(), 5u);
    const Function& fn = m.function(0);
    EXPECT_EQ(fn.numBlocks(), 1u);
    EXPECT_EQ(fn.blocks[0].instrs.size(), 5u);
    EXPECT_EQ(fn.blocks[0].terminator().op, Opcode::Halt);
}

TEST(IrBuilderTest, ResolvesCallsByName)
{
    ModuleBuilder mb;
    {
        auto& f = mb.beginFunction("callee", 1);
        f.emitRet(f.param(0));
        mb.endFunction();
    }
    {
        auto& f = mb.beginFunction("main", 0);
        RegId a = f.emitConst(7);
        RegId r = f.emitCall("callee", {a});
        f.emitOut(r);
        f.emitHalt();
        mb.endFunction();
    }
    Module m = mb.build();
    FuncId mainId = m.functionByName("main");
    const Instr& call = m.function(mainId).blocks[0].instrs[1];
    EXPECT_EQ(call.op, Opcode::Call);
    EXPECT_EQ(call.imm, m.functionByName("callee"));
}

TEST(IrBuilderTest, BranchesGetSuccessors)
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    BlockId thenB = f.newBlock();
    BlockId elseB = f.newBlock();
    RegId c = f.emitConst(1);
    f.emitBr(c, thenB, elseB);
    f.switchTo(thenB);
    f.emitHalt();
    f.switchTo(elseB);
    f.emitHalt();
    mb.endFunction();
    Module m = mb.build();
    const auto& b0 = m.function(0).blocks[0];
    ASSERT_EQ(b0.succs.size(), 2u);
    EXPECT_EQ(b0.succs[0], thenB);
    EXPECT_EQ(b0.succs[1], elseB);
    // Predecessor lists were derived.
    EXPECT_EQ(m.function(0).blocks[thenB].preds.size(), 1u);
}

TEST(IrBuilderTest, SealWithRetTerminatesOpenBlocks)
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    f.emitConst(1);
    f.sealWithRet();
    mb.endFunction();
    Module m = mb.build();
    EXPECT_EQ(m.function(0).blocks[0].terminator().op, Opcode::Ret);
}

TEST(IrBuilderTest, RejectsUnknownCallee)
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    f.emitCall("nope", {});
    f.emitHalt();
    mb.endFunction();
    EXPECT_THROW(mb.build(), WetError);
}

TEST(IrBuilderTest, RejectsDuplicateFunction)
{
    ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    f.emitHalt();
    mb.endFunction();
    auto& g = mb.beginFunction("main", 0);
    g.emitHalt();
    mb.endFunction();
    EXPECT_THROW(mb.build(), WetError);
}

} // namespace
} // namespace ir
} // namespace wet
