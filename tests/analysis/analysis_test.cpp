#include "analysis/controldep.h"

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "lang/codegen.h"

namespace wet {
namespace analysis {
namespace {

// A diamond with a loop:
//   b0: entry -> b1
//   b1: loop header, br -> b2 (body) | b4 (exit)
//   b2: br -> b3a | b3b ... simplified below via wetlang.
ir::Module
loopModule()
{
    return lang::compileString(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) {
                if (i % 2 == 0) { s = s + 1; } else { s = s + 2; }
            }
            out(s);
        }
    )");
}

TEST(CfgTest, ReachabilityAndBackEdges)
{
    ir::Module m = loopModule();
    const ir::Function& fn = m.function(m.entryFunction());
    CfgInfo cfg(fn);
    // The entry block is reachable; there is exactly one loop header.
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_EQ(cfg.loopHeaders().size(), 1u);
    // Exactly one back edge exists (the for-loop's step -> header).
    int backEdges = 0;
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
        for (size_t i = 0; i < fn.blocks[b].succs.size(); ++i)
            if (cfg.isBackEdge(b, i))
                ++backEdges;
    }
    EXPECT_EQ(backEdges, 1);
    // RPO covers exactly the reachable blocks.
    size_t reachable = 0;
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b)
        if (cfg.reachable(b))
            ++reachable;
    EXPECT_EQ(cfg.rpo().size(), reachable);
}

TEST(DomTest, EntryDominatesEverything)
{
    ir::Module m = loopModule();
    const ir::Function& fn = m.function(m.entryFunction());
    CfgInfo cfg(fn);
    DomTree dom = DomTree::dominators(fn);
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        EXPECT_TRUE(dom.dominates(0, b)) << "block " << b;
        EXPECT_TRUE(dom.dominates(b, b));
    }
}

TEST(DomTest, PostDominatorsRootAtVirtualExit)
{
    ir::Module m = loopModule();
    const ir::Function& fn = m.function(m.entryFunction());
    DomTree pd = DomTree::postDominators(fn);
    ir::BlockId exit = DomTree::virtualExit(fn);
    EXPECT_EQ(pd.root(), exit);
    // The virtual exit post-dominates every block.
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b)
        EXPECT_TRUE(pd.dominates(exit, b)) << "block " << b;
}

TEST(DomTest, IdomChainsTerminate)
{
    ir::Module m = loopModule();
    const ir::Function& fn = m.function(m.entryFunction());
    DomTree dom = DomTree::dominators(fn);
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (dom.depth(b) == UINT32_MAX)
            continue;
        ir::BlockId x = b;
        int steps = 0;
        while (x != dom.root()) {
            x = dom.idom(x);
            ASSERT_LT(++steps, 1000);
        }
    }
}

TEST(ControlDepTest, IfBranchesDependOnThePredicate)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var x = in();
            if (x > 0) { out(1); } else { out(2); }
            out(3);
        }
    )");
    const ir::Function& fn = m.function(m.entryFunction());
    DomTree pd = DomTree::postDominators(fn);
    ControlDep cd(fn, pd);

    // Locate the branch block and the two out() blocks.
    ir::BlockId brBlock = ir::kNoBlock;
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b)
        if (fn.blocks[b].endsInBranch())
            brBlock = b;
    ASSERT_NE(brBlock, ir::kNoBlock);
    ir::BlockId thenB = fn.blocks[brBlock].succs[0];
    ir::BlockId elseB = fn.blocks[brBlock].succs[1];

    ASSERT_EQ(cd.parents(thenB).size(), 1u);
    EXPECT_EQ(cd.parents(thenB)[0].pred, brBlock);
    EXPECT_EQ(cd.parents(thenB)[0].outcome, 0);
    ASSERT_EQ(cd.parents(elseB).size(), 1u);
    EXPECT_EQ(cd.parents(elseB)[0].pred, brBlock);
    EXPECT_EQ(cd.parents(elseB)[0].outcome, 1);
    // The entry block has no intraprocedural parent.
    EXPECT_TRUE(cd.parents(0).empty());
}

TEST(ControlDepTest, LoopBodyDependsOnLoopPredicate)
{
    ir::Module m = loopModule();
    const ir::Function& fn = m.function(m.entryFunction());
    CfgInfo cfg(fn);
    DomTree pd = DomTree::postDominators(fn);
    ControlDep cd(fn, pd);
    // Every block that is a loop-body block (reachable, has a CD
    // parent that branches) has parents consistent with FOW: the
    // parent block must end in a branch.
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        for (const CdParent& p : cd.parents(b)) {
            EXPECT_TRUE(fn.blocks[p.pred].endsInBranch());
            EXPECT_LT(p.outcome, fn.blocks[p.pred].succs.size());
        }
    }
}

TEST(ControlDepTest, InfiniteLoopStaysDefined)
{
    // A body with no path to exit must still get post-dominator and
    // CD entries (conservatively attached to the virtual exit).
    ir::Module m = lang::compileString(
        "fn main() { while (1) { mem[0] = mem[0] + 1; } }", 64);
    const ir::Function& fn = m.function(m.entryFunction());
    DomTree pd = DomTree::postDominators(fn);
    for (ir::BlockId b = 0; b < fn.numBlocks(); ++b)
        EXPECT_NE(pd.depth(b), UINT32_MAX) << "block " << b;
}

} // namespace
} // namespace analysis
} // namespace wet
