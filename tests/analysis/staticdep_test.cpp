#include "analysis/staticdep.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/moduleanalysis.h"
#include "analysis/reachingdefs.h"
#include "ir/builder.h"
#include "lang/codegen.h"

namespace wet {
namespace analysis {
namespace {

/** First statement of @p fn with opcode @p op (asserting it exists). */
ir::StmtId
findStmt(const ir::Function& fn, ir::Opcode op, int skip = 0)
{
    for (const auto& blk : fn.blocks)
        for (const auto& in : blk.instrs)
            if (in.op == op && skip-- == 0)
                return in.stmt;
    ADD_FAILURE() << "opcode not found in " << fn.name;
    return ir::kNoStmt;
}

// ---------------------------------------------------------------- //
// ReachingDefs

TEST(ReachingDefsTest, DiamondMergesBothArmDefs)
{
    // b0: d0: r = 1; cond = in(); br cond -> b1 | b2
    // b1: d1: r = 2; jmp b3        b2: d2: r = 3; jmp b3
    // b3: out(r); halt
    ir::ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    ir::RegId r = f.newReg();
    ir::BlockId b1 = f.newBlock(), b2 = f.newBlock(),
                b3 = f.newBlock();
    f.emitConstInto(r, 1);
    ir::RegId cond = f.emitIn();
    f.emitBr(cond, b1, b2);
    f.switchTo(b1);
    f.emitConstInto(r, 2);
    f.emitJmp(b3);
    f.switchTo(b2);
    f.emitConstInto(r, 3);
    f.emitJmp(b3);
    f.switchTo(b3);
    f.emitOut(r);
    f.emitHalt();
    mb.endFunction();
    ir::Module m = mb.build();

    const ir::Function& fn = m.function(0);
    ReachingDefs rd(m, fn);
    ir::StmtId d0 = findStmt(fn, ir::Opcode::Const, 0);
    ir::StmtId d1 = findStmt(fn, ir::Opcode::Const, 1);
    ir::StmtId d2 = findStmt(fn, ir::Opcode::Const, 2);
    ir::StmtId use = findStmt(fn, ir::Opcode::Out);

    ReachingDefs::RegDefs defs = rd.defsAt(use, r);
    EXPECT_EQ(defs.stmts, (std::vector<ir::StmtId>{d1, d2}));
    EXPECT_FALSE(defs.fromEntry);
    // At the branch itself only d0 has happened.
    ir::StmtId br = findStmt(fn, ir::Opcode::Br);
    ReachingDefs::RegDefs atBr = rd.defsAt(br, r);
    EXPECT_EQ(atBr.stmts, (std::vector<ir::StmtId>{d0}));
    EXPECT_FALSE(atBr.fromEntry);
}

TEST(ReachingDefsTest, LoopHeaderSeesInitialAndCarriedDef)
{
    // b0: d0: i = 0; one = 1; jmp b1
    // b1: out(i); t = i + one; d1: i = t; c = in(); br c -> b1 | b2
    // b2: halt
    ir::ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    ir::RegId i = f.newReg();
    ir::BlockId b1 = f.newBlock(), b2 = f.newBlock();
    f.emitConstInto(i, 0);
    ir::RegId one = f.emitConst(1);
    f.emitJmp(b1);
    f.switchTo(b1);
    f.emitOut(i);
    ir::RegId t = f.emitBinary(ir::Opcode::Add, i, one);
    f.emitMovInto(i, t);
    ir::RegId c = f.emitIn();
    f.emitBr(c, b1, b2);
    f.switchTo(b2);
    f.emitHalt();
    mb.endFunction();
    ir::Module m = mb.build();

    const ir::Function& fn = m.function(0);
    ReachingDefs rd(m, fn);
    ir::StmtId d0 = findStmt(fn, ir::Opcode::Const, 0);
    ir::StmtId d1 = findStmt(fn, ir::Opcode::Mov);
    ir::StmtId use = findStmt(fn, ir::Opcode::Out);

    ReachingDefs::RegDefs defs = rd.defsAt(use, i);
    EXPECT_EQ(defs.stmts, (std::vector<ir::StmtId>{d0, d1}));
    EXPECT_FALSE(defs.fromEntry);
    // After the Mov, only the carried def survives in-block.
    ir::StmtId in = findStmt(fn, ir::Opcode::In);
    EXPECT_EQ(rd.defsAt(in, i).stmts, (std::vector<ir::StmtId>{d1}));
}

TEST(ReachingDefsTest, UndefinedRegisterComesFromEntry)
{
    ir::ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    ir::RegId r = f.newReg();
    f.emitOut(r); // never defined locally
    f.emitHalt();
    mb.endFunction();
    ir::Module m = mb.build();

    const ir::Function& fn = m.function(0);
    ReachingDefs rd(m, fn);
    ReachingDefs::RegDefs defs =
        rd.defsAt(findStmt(fn, ir::Opcode::Out), r);
    EXPECT_TRUE(defs.stmts.empty());
    EXPECT_TRUE(defs.fromEntry);
}

// ---------------------------------------------------------------- //
// slotInfo

TEST(SlotInfoTest, MirrorsInterpreterSlotLayout)
{
    ir::Instr in;
    in.op = ir::Opcode::Add;
    in.src0 = 3;
    in.src1 = 4;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::Reg);
    EXPECT_EQ(slotInfo(in, 0).reg, 3u);
    EXPECT_EQ(slotInfo(in, 1).kind, SlotKind::Reg);
    EXPECT_EQ(slotInfo(in, 1).reg, 4u);

    in.op = ir::Opcode::Load;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::Reg);
    EXPECT_EQ(slotInfo(in, 1).kind, SlotKind::Mem);

    in.op = ir::Opcode::Store;
    EXPECT_EQ(slotInfo(in, 0).reg, 3u); // address
    EXPECT_EQ(slotInfo(in, 1).reg, 4u); // value

    in.op = ir::Opcode::Call;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::CallRet);
    EXPECT_EQ(slotInfo(in, 1).kind, SlotKind::None);

    in.op = ir::Opcode::Const;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::None);

    in.op = ir::Opcode::Ret;
    in.src0 = ir::kNoReg;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::None);
    in.src0 = 2;
    EXPECT_EQ(slotInfo(in, 0).kind, SlotKind::Reg);
}

// ---------------------------------------------------------------- //
// StaticDepGraph, hand-built interprocedural module

struct InterprocModule
{
    ir::Module m;
    ir::StmtId dA, callStmt, useOut, uAdd, retStmt;
    ir::FuncId callee, main;
};

InterprocModule
buildInterproc()
{
    // fn callee(p): r = p + p; ret r
    // fn main(): a = 42; r = callee(a); out(r); halt
    ir::ModuleBuilder mb;
    auto& fc = mb.beginFunction("callee", 1);
    ir::RegId s = fc.emitBinary(ir::Opcode::Add, fc.param(0),
                                fc.param(0));
    fc.emitRet(s);
    mb.endFunction();
    auto& fm = mb.beginFunction("main", 0);
    ir::RegId a = fm.emitConst(42);
    ir::RegId r = fm.emitCall("callee", {a});
    fm.emitOut(r);
    fm.emitHalt();
    mb.endFunction();

    InterprocModule ip{mb.build(), 0, 0, 0, 0, 0, 0, 0};
    ip.callee = ip.m.functionByName("callee");
    ip.main = ip.m.functionByName("main");
    const ir::Function& fcr = ip.m.function(ip.callee);
    const ir::Function& fmr = ip.m.function(ip.main);
    ip.uAdd = findStmt(fcr, ir::Opcode::Add);
    ip.retStmt = findStmt(fcr, ir::Opcode::Ret);
    ip.dA = findStmt(fmr, ir::Opcode::Const);
    ip.callStmt = findStmt(fmr, ir::Opcode::Call);
    ip.useOut = findStmt(fmr, ir::Opcode::Out);
    return ip;
}

TEST(StaticDepGraphTest, ParamInAndRetOutCrossTheCall)
{
    InterprocModule ip = buildInterproc();
    ModuleAnalysis ma(ip.m);
    StaticDepGraph sdg(ma);

    EXPECT_EQ(sdg.callSites(ip.callee),
              (std::vector<ir::StmtId>{ip.callStmt}));
    EXPECT_EQ(sdg.paramIn(ip.callee, 0),
              (std::vector<ir::StmtId>{ip.dA}));
    EXPECT_EQ(sdg.retOut(ip.callee),
              (std::vector<ir::StmtId>{ip.uAdd}));

    // The parameter use inside callee resolves to the caller's def.
    EXPECT_EQ(sdg.mayDefs(ip.uAdd, 0),
              (std::vector<ir::StmtId>{ip.dA}));
    EXPECT_TRUE(sdg.mayDepend(ip.uAdd, 0, ip.dA));
    // The call's return slot resolves to the callee-side producer.
    EXPECT_EQ(sdg.mayDefs(ip.callStmt, 0),
              (std::vector<ir::StmtId>{ip.uAdd}));
    // out(r) reads the call's destination register.
    EXPECT_EQ(sdg.mayDefs(ip.useOut, 0),
              (std::vector<ir::StmtId>{ip.callStmt}));
}

TEST(StaticDepGraphTest, CdParentsIncludeCallSites)
{
    InterprocModule ip = buildInterproc();
    ModuleAnalysis ma(ip.m);
    StaticDepGraph sdg(ma);

    // Callee is branch-free: its only legal dynamic CD def is the
    // call site (first entry into a function is attributed to it).
    EXPECT_EQ(sdg.cdParents(ip.uAdd),
              (std::vector<ir::StmtId>{ip.callStmt}));
    EXPECT_TRUE(sdg.mayControl(ip.uAdd, ip.callStmt));
    EXPECT_FALSE(sdg.mayControl(ip.uAdd, ip.dA));
    // main is never called and branch-free: no CD parents at all.
    EXPECT_TRUE(sdg.cdParents(ip.useOut).empty());
}

TEST(StaticDepGraphTest, BackwardSliceCrossesTheCall)
{
    InterprocModule ip = buildInterproc();
    ModuleAnalysis ma(ip.m);
    StaticDepGraph sdg(ma);

    std::vector<bool> slice = sdg.backwardSlice(ip.useOut);
    EXPECT_TRUE(slice[ip.useOut]);
    EXPECT_TRUE(slice[ip.callStmt]);
    EXPECT_TRUE(slice[ip.uAdd]);
    EXPECT_TRUE(slice[ip.dA]);
    // Dynamic call-return edges point at the producing def, never at
    // the Ret itself; the slice must not inflate past that.
    EXPECT_FALSE(slice[ip.retStmt]);
}

TEST(StaticDepGraphTest, ParamChainsPropagateThroughTwoCalls)
{
    // main -> outer(c) -> inner(q): inner's parameter may come from
    // main's constant, two call hops away.
    ir::ModuleBuilder mb;
    auto& fi = mb.beginFunction("inner", 1);
    ir::RegId t =
        fi.emitBinary(ir::Opcode::Mul, fi.param(0), fi.param(0));
    fi.emitRet(t);
    mb.endFunction();
    auto& fo = mb.beginFunction("outer", 1);
    ir::RegId r = fo.emitCall("inner", {fo.param(0)});
    fo.emitRet(r);
    mb.endFunction();
    auto& fm = mb.beginFunction("main", 0);
    ir::RegId c = fm.emitConst(9);
    ir::RegId v = fm.emitCall("outer", {c});
    fm.emitOut(v);
    fm.emitHalt();
    mb.endFunction();
    ir::Module m = mb.build();

    ir::FuncId inner = m.functionByName("inner");
    ir::FuncId outer = m.functionByName("outer");
    const ir::Function& fmr = m.function(m.functionByName("main"));
    ir::StmtId dC = findStmt(fmr, ir::Opcode::Const);
    ir::StmtId uMul =
        findStmt(m.function(inner), ir::Opcode::Mul);

    ModuleAnalysis ma(m);
    StaticDepGraph sdg(ma);
    EXPECT_EQ(sdg.paramIn(outer, 0), (std::vector<ir::StmtId>{dC}));
    EXPECT_EQ(sdg.paramIn(inner, 0), (std::vector<ir::StmtId>{dC}));
    EXPECT_EQ(sdg.mayDefs(uMul, 0), (std::vector<ir::StmtId>{dC}));
    // A value returned through two frames is attributed one call at
    // a time: outer's return def is its own Call statement (that is
    // what the tracer records as the def of outer's r), and that
    // Call in turn depends on inner's producer.
    ir::StmtId callInner =
        findStmt(m.function(outer), ir::Opcode::Call);
    ir::StmtId callOuter = findStmt(fmr, ir::Opcode::Call);
    EXPECT_EQ(sdg.mayDefs(callOuter, 0),
              (std::vector<ir::StmtId>{callInner}));
    EXPECT_EQ(sdg.mayDefs(callInner, 0),
              (std::vector<ir::StmtId>{uMul}));
    // The static slice still reaches the deep producer transitively.
    std::vector<bool> slice = sdg.backwardSlice(callOuter);
    EXPECT_TRUE(slice[uMul]);
    EXPECT_TRUE(slice[dC]);
}

TEST(StaticDepGraphTest, LoadsMayDependOnEveryStore)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var n = in();
            mem[0] = n;
            mem[1] = n + 1;
            out(mem[0]);
        }
    )");
    ModuleAnalysis ma(m);
    StaticDepGraph sdg(ma);

    const ir::Function& fn = m.function(m.entryFunction());
    ASSERT_EQ(sdg.stores().size(), 2u);
    ir::StmtId load = findStmt(fn, ir::Opcode::Load);
    // Flat may-alias model: the load's memory slot may see any store.
    EXPECT_EQ(sdg.mayDefs(load, 1), sdg.stores());
    std::vector<bool> slice = sdg.backwardSlice(load);
    for (ir::StmtId st : sdg.stores())
        EXPECT_TRUE(slice[st]);
}

TEST(StaticDepGraphTest, BranchTerminatorsAreCdParents)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) {
                if (i % 2 == 0) { s = s + 1; }
            }
            out(s);
        }
    )");
    ModuleAnalysis ma(m);
    StaticDepGraph sdg(ma);
    const ir::Function& fn = m.function(m.entryFunction());

    // The `s = s + 1` add executes under both the loop and the if:
    // its block's static CD parents must all be Br terminators.
    ir::StmtId guarded = findStmt(fn, ir::Opcode::Add, 0);
    const auto& parents = sdg.cdParents(guarded);
    ASSERT_FALSE(parents.empty());
    for (ir::StmtId p : parents)
        EXPECT_EQ(m.instr(p).op, ir::Opcode::Br);
    // All queries return sorted vectors (containment is binary
    // search).
    EXPECT_TRUE(std::is_sorted(parents.begin(), parents.end()));
    for (uint32_t s = 0; s < m.numStmts(); ++s)
        for (uint8_t slot = 0; slot < 2; ++slot) {
            const auto& d = sdg.mayDefs(s, slot);
            EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
        }
}

} // namespace
} // namespace analysis
} // namespace wet
