#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <vector>

#include "analysis/racedetect.h"
#include "core/seqreader.h"
#include "interp/tracesink.h"

// Differential fuzzing of the race detector: random valid thread
// interleavings (structured spawn/join lifecycles, balanced lock
// discipline, globally unique seq counters) are fed to the
// production vector-clock engine and to the naive HB-graph oracle,
// which decides every ordering question by explicit reachability
// over happens-before edges instead of epoch comparisons. The two
// share the access bookkeeping definitions but not the ordering
// mechanism, so any divergence pins a bug in the vector-clock update
// rules. Iteration count is tunable with FUZZ_ITERS.

namespace wet {
namespace analysis {
namespace {

int
fuzzIters()
{
    if (const char* e = std::getenv("FUZZ_ITERS"))
        return std::max(1, std::atoi(e));
    return 300;
}

/** Tier-1-style in-memory reader over one event component. */
class VecReader : public core::SeqReader
{
  public:
    std::vector<int64_t> v;

    uint64_t
    length() const override
    {
        return v.size();
    }

    int64_t
    at(uint64_t i) override
    {
        return v[static_cast<size_t>(i)];
    }
};

/**
 * SyncAccess over an in-memory event list: drives the production
 * vector-clock engine without building an artifact, so the fuzz
 * exercises exactly the HB update rules, not the codec.
 */
class MemorySyncAccess : public SyncAccess
{
  public:
    MemorySyncAccess(const std::vector<RawSyncEvent>& events,
                     uint32_t num_threads)
        : comps_(static_cast<size_t>(num_threads) * 4),
          numThreads_(num_threads)
    {
        for (const RawSyncEvent& e : events) {
            auto* c = &comps_[static_cast<size_t>(e.thread) * 4];
            c[0].v.push_back(static_cast<int64_t>(e.kind));
            c[1].v.push_back(e.obj);
            c[2].v.push_back(static_cast<int64_t>(e.stmt));
            c[3].v.push_back(static_cast<int64_t>(e.seq));
        }
    }

    uint32_t
    numThreads() const override
    {
        return numThreads_;
    }

    core::SeqReader&
    component(uint32_t tid, uint32_t comp) override
    {
        return comps_[static_cast<size_t>(tid) * 4 + comp];
    }

  private:
    std::vector<VecReader> comps_;
    uint32_t numThreads_;
};

/**
 * Simulated scheduler producing a random valid interleaving: every
 * spawned thread is joined by its spawner after it finished, locks
 * are held one at a time and always released, and seq values are the
 * global emission order (1-based, dense). Memory accesses hit a tiny
 * address range so cross-thread collisions — racy and lock-ordered
 * alike — are frequent.
 */
struct InterleavingGen
{
    std::mt19937 rng;
    std::vector<RawSyncEvent> events;
    uint64_t seq = 0;

    struct ThreadState
    {
        bool live = false;
        bool finished = false;
        int64_t held = -1;           //!< lock object held, -1 if none
        int stepsLeft = 0;
        std::vector<uint32_t> unjoined; //!< children not yet joined
    };

    std::vector<ThreadState> threads;
    std::vector<int64_t> lockHolder; //!< per lock: thread or -1
    uint32_t nextThread = 1;

    explicit InterleavingGen(uint32_t seed) : rng(seed) {}

    uint32_t
    pick(uint32_t n)
    {
        return std::uniform_int_distribution<uint32_t>(0, n - 1)(rng);
    }

    void
    emit(uint32_t t, interp::SyncKind kind, int64_t obj)
    {
        events.push_back({t, kind, obj,
                          static_cast<ir::StmtId>(pick(25)), ++seq});
    }

    void
    access(uint32_t t)
    {
        emit(t, pick(2) ? interp::SyncKind::Write
                        : interp::SyncKind::Read,
             static_cast<int64_t>(pick(3)));
    }

    std::vector<RawSyncEvent>
    run(uint32_t plannedThreads, uint32_t numLocks)
    {
        threads.assign(plannedThreads, ThreadState{});
        threads[0].live = true;
        threads[0].stepsLeft = 6 + static_cast<int>(pick(10));
        lockHolder.assign(numLocks, -1);

        auto runnable = [&]() {
            std::vector<uint32_t> r;
            for (uint32_t t = 0; t < threads.size(); ++t)
                if (threads[t].live && !threads[t].finished)
                    r.push_back(t);
            return r;
        };

        for (std::vector<uint32_t> r = runnable(); !r.empty();
             r = runnable()) {
            uint32_t t = r[pick(static_cast<uint32_t>(r.size()))];
            ThreadState& ts = threads[t];

            if (ts.stepsLeft <= 0) {
                // Wind-down: join finished children, drop the lock,
                // then finish. Waiting on a live child turns into a
                // filler access so the loop always progresses.
                auto done = std::find_if(
                    ts.unjoined.begin(), ts.unjoined.end(),
                    [&](uint32_t c) { return threads[c].finished; });
                if (done != ts.unjoined.end()) {
                    emit(t, interp::SyncKind::Join,
                         static_cast<int64_t>(*done));
                    ts.unjoined.erase(done);
                } else if (!ts.unjoined.empty()) {
                    access(t);
                } else if (ts.held >= 0) {
                    emit(t, interp::SyncKind::Release, ts.held);
                    lockHolder[static_cast<size_t>(ts.held) - 100] =
                        -1;
                    ts.held = -1;
                } else {
                    ts.finished = true;
                }
                continue;
            }

            --ts.stepsLeft;
            switch (pick(10)) {
            case 0: { // acquire a free lock, if any
                if (ts.held >= 0) {
                    access(t);
                    break;
                }
                std::vector<uint32_t> freeLocks;
                for (uint32_t l = 0; l < lockHolder.size(); ++l)
                    if (lockHolder[l] < 0)
                        freeLocks.push_back(l);
                if (freeLocks.empty()) {
                    access(t);
                    break;
                }
                uint32_t l = freeLocks[pick(
                    static_cast<uint32_t>(freeLocks.size()))];
                lockHolder[l] = static_cast<int64_t>(t);
                ts.held = 100 + static_cast<int64_t>(l);
                emit(t, interp::SyncKind::Acquire, ts.held);
                break;
            }
            case 1: // release
                if (ts.held >= 0) {
                    emit(t, interp::SyncKind::Release, ts.held);
                    lockHolder[static_cast<size_t>(ts.held) - 100] =
                        -1;
                    ts.held = -1;
                } else {
                    access(t);
                }
                break;
            case 2: // spawn the next planned thread
                if (nextThread < threads.size()) {
                    uint32_t c = nextThread++;
                    emit(t, interp::SyncKind::Spawn,
                         static_cast<int64_t>(c));
                    threads[c].live = true;
                    threads[c].stepsLeft =
                        2 + static_cast<int>(pick(9));
                    ts.unjoined.push_back(c);
                } else {
                    access(t);
                }
                break;
            case 3: { // opportunistic early join
                auto done = std::find_if(
                    ts.unjoined.begin(), ts.unjoined.end(),
                    [&](uint32_t c) { return threads[c].finished; });
                if (done != ts.unjoined.end()) {
                    emit(t, interp::SyncKind::Join,
                         static_cast<int64_t>(*done));
                    ts.unjoined.erase(done);
                } else {
                    access(t);
                }
                break;
            }
            default:
                access(t);
                break;
            }
        }
        return events;
    }
};

std::string
diffContext(const RaceReport& vc, const RaceReport& oracle)
{
    return "vector-clock engine:\n" + vc.renderText() +
           "hb-graph oracle:\n" + oracle.renderText();
}

TEST(RaceDiffTest, VectorClocksMatchHbGraphOracle)
{
    const int iters = fuzzIters();
    for (int it = 0; it < iters; ++it) {
        InterleavingGen gen(7000 + static_cast<uint32_t>(it));
        const uint32_t numThreads = 2 + gen.pick(4); // 2..5
        const uint32_t numLocks = 1 + gen.pick(2);   // 1..2
        std::vector<RawSyncEvent> events =
            gen.run(numThreads, numLocks);
        // Threads past nextThread were never spawned; the engines
        // only see threads that exist in the interleaving.
        const uint32_t spawned = gen.nextThread;

        MemorySyncAccess sa(events, spawned);
        RaceReport vc = detectRaces(sa);
        RaceReport oracle = detectRacesOracle(events, spawned);

        ASSERT_EQ(vc.races, oracle.races)
            << "iter " << it << " (" << events.size()
            << " events, " << spawned << " threads)\n"
            << diffContext(vc, oracle);
        EXPECT_EQ(vc.numEvents, oracle.numEvents) << "iter " << it;
        EXPECT_EQ(vc.numThreads, oracle.numThreads) << "iter " << it;
    }
}

// Hand-built anchor: parent writes before the spawn (ordered), both
// sides write after it (concurrent). Exactly one race must come out
// of both engines, catching sign/direction errors the differential
// test alone cannot distinguish from a shared blind spot.
TEST(RaceDiffTest, SpawnEdgeOrdersOnlyPriorAccesses)
{
    using interp::SyncKind;
    std::vector<RawSyncEvent> ev = {
        {0, SyncKind::Write, 5, 11, 1}, // parent write, pre-spawn
        {0, SyncKind::Spawn, 1, 12, 2},
        {1, SyncKind::Write, 5, 13, 3}, // child write
        {0, SyncKind::Write, 5, 14, 4}, // parent write, post-spawn
        {0, SyncKind::Join, 1, 15, 5},
    };
    MemorySyncAccess sa(ev, 2);
    RaceReport vc = detectRaces(sa);
    RaceReport oracle = detectRacesOracle(ev, 2);

    ASSERT_EQ(vc.races.size(), 1u) << vc.renderText();
    EXPECT_EQ(vc.races[0].addr, 5);
    EXPECT_EQ(vc.races[0].first.thread, 1u);
    EXPECT_EQ(vc.races[0].first.stmt, 13u);
    EXPECT_TRUE(vc.races[0].first.isWrite);
    EXPECT_EQ(vc.races[0].second.thread, 0u);
    EXPECT_EQ(vc.races[0].second.stmt, 14u);
    EXPECT_TRUE(vc.races[0].second.isWrite);
    EXPECT_EQ(vc.races, oracle.races) << diffContext(vc, oracle);
}

// Lock-ordered accesses must be race-free through release/acquire
// edges in both engines.
TEST(RaceDiffTest, LockEdgesOrderCriticalSections)
{
    using interp::SyncKind;
    std::vector<RawSyncEvent> ev = {
        {0, SyncKind::Spawn, 1, 10, 1},
        {0, SyncKind::Acquire, 100, 11, 2},
        {0, SyncKind::Write, 5, 12, 3},
        {0, SyncKind::Release, 100, 13, 4},
        {1, SyncKind::Acquire, 100, 20, 5},
        {1, SyncKind::Write, 5, 21, 6},
        {1, SyncKind::Release, 100, 22, 7},
        {0, SyncKind::Join, 1, 14, 8},
    };
    MemorySyncAccess sa(ev, 2);
    RaceReport vc = detectRaces(sa);
    RaceReport oracle = detectRacesOracle(ev, 2);
    EXPECT_TRUE(vc.races.empty()) << vc.renderText();
    EXPECT_TRUE(oracle.races.empty()) << oracle.renderText();
}

} // namespace
} // namespace analysis
} // namespace wet
