#include "analysis/diag.h"

#include <gtest/gtest.h>

namespace wet {
namespace analysis {
namespace {

TEST(DiagTest, CountersAndAccessors)
{
    DiagEngine d;
    EXPECT_FALSE(d.hasErrors());
    d.error("IR001", "fn 0 block 1", "r3 used before def");
    d.warning("WET006", "pool 2", "pool entry never referenced");
    d.note("IR006", "fn 1", "path table truncated check");
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.errorCount(), 1u);
    EXPECT_EQ(d.warningCount(), 1u);
    EXPECT_EQ(d.noteCount(), 1u);
    ASSERT_EQ(d.diagnostics().size(), 3u);
    EXPECT_EQ(d.diagnostics()[0].rule, "IR001");
    EXPECT_EQ(d.diagnostics()[0].severity, Severity::Error);
    EXPECT_EQ(d.diagnostics()[1].location, "pool 2");
}

TEST(DiagTest, HasRuleAndFiredRules)
{
    DiagEngine d;
    d.error("WET001", "node 3", "a");
    d.error("WET001", "node 4", "b");
    d.error("ART003", "node 4 ts", "c");
    EXPECT_TRUE(d.hasRule("WET001"));
    EXPECT_TRUE(d.hasRule("ART003"));
    EXPECT_FALSE(d.hasRule("WET002"));
    std::vector<std::string> fired = d.firedRules();
    ASSERT_EQ(fired.size(), 2u);
    // Distinct ids, each reported once.
    EXPECT_NE(fired[0], fired[1]);
}

TEST(DiagTest, LimitBoundsStorageNotCounters)
{
    DiagEngine d;
    d.setLimit(4);
    for (int i = 0; i < 100; ++i)
        d.error("WET005", "edge", "overflow test");
    EXPECT_EQ(d.diagnostics().size(), 4u);
    EXPECT_EQ(d.errorCount(), 100u);
    EXPECT_TRUE(d.hasErrors());
}

TEST(DiagTest, RenderTextFormat)
{
    DiagEngine d;
    d.error("IO004", "byte 17", "file ends inside a value");
    std::string text = d.renderText();
    EXPECT_NE(text.find("IO004 error: [byte 17] "
                        "file ends inside a value"),
              std::string::npos);
    EXPECT_NE(text.find("1 error"), std::string::npos);
}

// Golden layout of the JSON rendering: tooling and the wet_cli
// --json golden test depend on this exact shape.
TEST(DiagTest, RenderJsonGolden)
{
    DiagEngine d;
    d.error("IO003", "header", "fingerprint mismatch");
    d.warning("WET006", "pool 0", "unreferenced \"pool\"");
    const char* expect =
        "{\n"
        "  \"diagnostics\": [\n"
        "    {\"rule\": \"IO003\", \"severity\": \"error\", "
        "\"location\": \"header\", "
        "\"message\": \"fingerprint mismatch\"},\n"
        "    {\"rule\": \"WET006\", \"severity\": \"warning\", "
        "\"location\": \"pool 0\", "
        "\"message\": \"unreferenced \\\"pool\\\"\"}\n"
        "  ],\n"
        "  \"errors\": 1,\n"
        "  \"warnings\": 1,\n"
        "  \"notes\": 0\n"
        "}\n";
    EXPECT_EQ(d.renderJson(), expect);
}

TEST(DiagTest, RenderJsonEmpty)
{
    DiagEngine d;
    const char* expect = "{\n"
                         "  \"diagnostics\": [],\n"
                         "  \"errors\": 0,\n"
                         "  \"warnings\": 0,\n"
                         "  \"notes\": 0\n"
                         "}\n";
    EXPECT_EQ(d.renderJson(), expect);
}

TEST(DiagTest, RuleCatalog)
{
    // Every rule id the verifiers can fire has a catalog entry.
    const char* ids[] = {"IR001",  "IR002",  "IR003",  "IR004",
                         "IR005",  "IR006",  "IR007",  "WET001",
                         "WET002", "WET003", "WET004", "WET005",
                         "WET006", "WET007", "WET008", "WET009",
                         "WET010", "ART001", "ART002", "ART003",
                         "ART004", "ART005", "IO001",  "IO002",
                         "IO003",  "IO004",  "IO005",  "IO006"};
    for (const char* id : ids)
        EXPECT_NE(ruleDescription(id), nullptr) << id;
    EXPECT_EQ(ruleDescription("XX999"), nullptr);
    EXPECT_STREQ(severityName(Severity::Error), "error");
    EXPECT_STREQ(severityName(Severity::Warning), "warning");
    EXPECT_STREQ(severityName(Severity::Note), "note");
}

} // namespace
} // namespace analysis
} // namespace wet
