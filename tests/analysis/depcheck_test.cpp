#include "analysis/depcheck.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "analysis/diag.h"
#include "analysis/staticdep.h"
#include "core/compressed.h"
#include "testutil.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace analysis {
namespace {

using test::runPipeline;

// ---------------------------------------------------------------- //
// Positive: every workload WET is inside its static may-dependence
// set, at both serial and parallel analysis thread counts. This is
// the cross-validation the depcheck pass exists for: the tracer, the
// WET builder, and the static framework are three independent
// implementations that must agree.

struct DepCheckCase
{
    size_t workload;
    unsigned threads;
};

class WorkloadDepCheck
    : public ::testing::TestWithParam<DepCheckCase>
{
};

TEST_P(WorkloadDepCheck, DynamicEdgesWithinStaticSets)
{
    const DepCheckCase& c = GetParam();
    const workloads::Workload& w =
        workloads::allWorkloads()[c.workload];
    workloads::BuildConfig cfg;
    cfg.threads = c.threads;
    auto art = workloads::buildWet(w, 1, nullptr, cfg);

    StaticDepGraph sdg(*art->ma);
    DiagEngine diag;
    DepCheckStats stats;
    bool ok = verifyDeps(art->graph, *art->ma, sdg, diag, nullptr,
                         DepCheckOptions{}, &stats);
    EXPECT_TRUE(ok) << diag.renderText();
    EXPECT_EQ(diag.diagnostics().size(), 0u) << diag.renderText();
    // The run must have actually exercised the checks.
    EXPECT_GT(stats.ddEdges, 0u);
    EXPECT_GT(stats.cdEdges, 0u);
    EXPECT_GT(stats.sliceSeeds, 0u);
    EXPECT_GT(stats.sliceItems, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDepCheck,
    ::testing::Values(
        DepCheckCase{0, 1}, DepCheckCase{1, 1}, DepCheckCase{2, 1},
        DepCheckCase{3, 1}, DepCheckCase{4, 1}, DepCheckCase{5, 1},
        DepCheckCase{6, 1}, DepCheckCase{7, 1}, DepCheckCase{8, 1},
        DepCheckCase{0, 8}, DepCheckCase{1, 8}, DepCheckCase{2, 8},
        DepCheckCase{3, 8}, DepCheckCase{4, 8}, DepCheckCase{5, 8},
        DepCheckCase{6, 8}, DepCheckCase{7, 8}, DepCheckCase{8, 8}),
    [](const ::testing::TestParamInfo<DepCheckCase>& info) {
        std::string n =
            workloads::allWorkloads()[info.param.workload].name;
        for (char& ch : n)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_t" + std::to_string(info.param.threads);
    });

TEST(DepCheckTest, CleanOnCompressedLabels)
{
    // WET014 walking the tier-2 pools must agree with tier-1.
    auto p = runPipeline(R"(
        fn gcd(a, b) {
            while (b != 0) { var t = a % b; a = b; b = t; }
            return a;
        }
        fn main() {
            mem[0] = in();
            mem[1] = in();
            out(gcd(mem[0], mem[1]));
        }
    )",
                         {252, 105});
    StaticDepGraph sdg(*p->ma);
    core::WetCompressed comp(p->graph);
    core::WetGraph stripped = p->graph;
    for (auto& pool : stripped.labelPool) {
        pool.useInst.clear();
        pool.defInst.clear();
    }
    DiagEngine diag;
    EXPECT_TRUE(
        verifyDeps(stripped, *p->ma, sdg, diag, &comp));
    EXPECT_EQ(diag.diagnostics().size(), 0u) << diag.renderText();
}

// ---------------------------------------------------------------- //
// Negative: corrupt one edge of a healthy WET and the matching rule
// must fire.

const char* kMutantProgram = R"(
    fn main() {
        var a = in();
        var b = in();
        mem[a] = b;
        var v = mem[a];
        if (v > 2) { out(a); } else { out(b); }
    }
)";

TEST(DepCheckTest, RetargetedDataDefFiresWET011)
{
    auto p = runPipeline(kMutantProgram, {3, 7});
    StaticDepGraph sdg(*p->ma);
    // Move a register DD edge's def onto a statement that cannot
    // define the slot (the use statement itself).
    bool mutated = false;
    for (auto& e : p->graph.edges) {
        if (e.slot == core::kCdSlot)
            continue;
        const ir::Instr& use =
            p->module->instr(p->graph.nodes[e.useNode]
                                 .stmts[e.useStmtPos]);
        if (slotInfo(use, e.slot).kind != SlotKind::Reg)
            continue;
        e.defNode = e.useNode;
        e.defStmtPos = e.useStmtPos;
        mutated = true;
        break;
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyDeps(p->graph, *p->ma, sdg, diag));
    EXPECT_TRUE(diag.hasRule("WET011")) << diag.renderText();
}

TEST(DepCheckTest, NonStoreMemoryDefFiresWET012)
{
    auto p = runPipeline(kMutantProgram, {3, 7});
    StaticDepGraph sdg(*p->ma);
    bool mutated = false;
    for (auto& e : p->graph.edges) {
        if (e.slot != 1)
            continue;
        const ir::Instr& use =
            p->module->instr(p->graph.nodes[e.useNode]
                                 .stmts[e.useStmtPos]);
        if (use.op != ir::Opcode::Load)
            continue;
        // Memory defs must be Stores; the Load itself is not one.
        e.defNode = e.useNode;
        e.defStmtPos = e.useStmtPos;
        mutated = true;
        break;
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyDeps(p->graph, *p->ma, sdg, diag));
    EXPECT_TRUE(diag.hasRule("WET012")) << diag.renderText();
}

TEST(DepCheckTest, RetargetedControlDefFiresWET013)
{
    auto p = runPipeline(kMutantProgram, {3, 7});
    StaticDepGraph sdg(*p->ma);
    bool mutated = false;
    for (auto& e : p->graph.edges) {
        if (e.slot != core::kCdSlot)
            continue;
        // A CD def must be a Br (or call site); point it at the
        // controlled statement instead.
        e.defNode = e.useNode;
        e.defStmtPos = e.useStmtPos;
        mutated = true;
        break;
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyDeps(p->graph, *p->ma, sdg, diag));
    EXPECT_TRUE(diag.hasRule("WET013")) << diag.renderText();
}

TEST(DepCheckTest, SliceEscapeFiresWET014)
{
    // out(a) must not reach b's input; rewire its DD edge onto b's
    // producer so the dynamic slice walks outside the static slice.
    auto p = runPipeline(R"(
        fn main() {
            var a = in();
            var b = in();
            out(a);
            out(b);
        }
    )",
                         {5, 6});
    StaticDepGraph sdg(*p->ma);
    const ir::Function& fn =
        p->module->function(p->module->entryFunction());
    ir::StmtId outA = ir::kNoStmt, inB = ir::kNoStmt;
    int ins = 0;
    for (const auto& blk : fn.blocks)
        for (const auto& in : blk.instrs) {
            if (in.op == ir::Opcode::In && ++ins == 2)
                inB = in.stmt;
            if (in.op == ir::Opcode::Out && outA == ir::kNoStmt)
                outA = in.stmt;
        }
    ASSERT_NE(inB, ir::kNoStmt);
    ASSERT_NE(outA, ir::kNoStmt);
    bool mutated = false;
    for (auto& e : p->graph.edges) {
        if (e.slot == core::kCdSlot)
            continue;
        if (p->graph.nodes[e.useNode].stmts[e.useStmtPos] != outA)
            continue;
        // The straight-line program traces as one node, so b's
        // input is a position of the same def node.
        const core::WetNode& dn = p->graph.nodes[e.defNode];
        for (uint32_t pos = 0; pos < dn.stmts.size(); ++pos) {
            if (dn.stmts[pos] == inB) {
                e.defStmtPos = pos;
                mutated = true;
                break;
            }
        }
        break;
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyDeps(p->graph, *p->ma, sdg, diag));
    // The rewired edge both violates the may-def set and drags the
    // dynamic slice outside the static one.
    EXPECT_TRUE(diag.hasRule("WET011")) << diag.renderText();
    EXPECT_TRUE(diag.hasRule("WET014")) << diag.renderText();
}

} // namespace
} // namespace analysis
} // namespace wet
