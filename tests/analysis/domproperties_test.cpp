#include <gtest/gtest.h>

#include <set>

#include "analysis/dominators.h"
#include "lang/codegen.h"
#include "workloads/workloads.h"

namespace wet {
namespace analysis {
namespace {

/**
 * Brute-force dominance: a dominates b iff removing a from the CFG
 * makes b unreachable from the entry.
 */
bool
bruteDominates(const ir::Function& fn, ir::BlockId a, ir::BlockId b)
{
    if (a == b)
        return true;
    if (a == 0)
        return true;
    std::set<ir::BlockId> seen{0};
    std::vector<ir::BlockId> work{0};
    while (!work.empty()) {
        ir::BlockId x = work.back();
        work.pop_back();
        if (x == b)
            return false;
        for (ir::BlockId s : fn.blocks[x].succs) {
            if (s == a || seen.count(s))
                continue;
            seen.insert(s);
            work.push_back(s);
        }
    }
    return true; // b unreachable without a
}

/** Check the dominator tree of every function against brute force. */
void
checkModule(const ir::Module& m)
{
    for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
        const ir::Function& fn = m.function(f);
        if (fn.numBlocks() > 40)
            continue; // keep the O(n^3) brute force affordable
        DomTree dom = DomTree::dominators(fn);
        // Reachability from entry.
        std::set<ir::BlockId> reach{0};
        std::vector<ir::BlockId> work{0};
        while (!work.empty()) {
            ir::BlockId x = work.back();
            work.pop_back();
            for (ir::BlockId s : fn.blocks[x].succs) {
                if (!reach.count(s)) {
                    reach.insert(s);
                    work.push_back(s);
                }
            }
        }
        for (ir::BlockId a = 0; a < fn.numBlocks(); ++a) {
            for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
                if (!reach.count(a) || !reach.count(b))
                    continue;
                EXPECT_EQ(dom.dominates(a, b),
                          bruteDominates(fn, a, b))
                    << "fn " << fn.name << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(DomPropertyTest, MatchesBruteForceOnStructuredCode)
{
    checkModule(lang::compileString(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) {
                if (i % 2 == 0) {
                    s = s + 1;
                } else if (i % 3 == 0) {
                    s = s + 2;
                } else {
                    while (s > 10) { s = s - 3; }
                }
            }
            out(s);
        }
    )"));
}

TEST(DomPropertyTest, MatchesBruteForceOnEarlyReturns)
{
    checkModule(lang::compileString(R"(
        fn f(x) {
            if (x < 0) { return 0 - 1; }
            if (x == 0) { return 0; }
            while (x > 10) {
                x = x / 2;
                if (x == 5) { return 5; }
            }
            return x;
        }
        fn main() { out(f(100)); }
    )"));
}

TEST(DomPropertyTest, MatchesBruteForceOnWorkloadFunctions)
{
    // Real workload CFGs: nested loops, breaks, short-circuit
    // operators.
    const auto& w = workloads::workloadByName("164.gzip");
    checkModule(workloads::compileWorkload(w));
}

TEST(DomPropertyTest, IdomIsTheClosestStrictDominator)
{
    ir::Module m = workloads::compileWorkload(
        workloads::workloadByName("256.bzip2"));
    for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
        const ir::Function& fn = m.function(f);
        DomTree dom = DomTree::dominators(fn);
        for (ir::BlockId b = 1; b < fn.numBlocks(); ++b) {
            if (dom.depth(b) == UINT32_MAX)
                continue;
            ir::BlockId id = dom.idom(b);
            EXPECT_TRUE(dom.dominates(id, b));
            EXPECT_NE(id, b);
            // Every other strict dominator of b dominates idom(b).
            for (ir::BlockId a = 0; a < fn.numBlocks(); ++a) {
                if (a == b || dom.depth(a) == UINT32_MAX)
                    continue;
                if (dom.dominates(a, b)) {
                    EXPECT_TRUE(dom.dominates(a, id))
                        << "a=" << a << " b=" << b;
                }
            }
        }
    }
}

} // namespace
} // namespace analysis
} // namespace wet
