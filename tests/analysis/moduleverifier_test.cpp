#include "analysis/moduleverifier.h"

#include <gtest/gtest.h>

#include "lang/codegen.h"

namespace wet {
namespace analysis {
namespace {

ir::Module
sampleModule()
{
    return lang::compileString(R"(
        fn inc(x) { return x + 1; }
        fn main() {
            var s = 0;
            for (var i = 0; i < 5; i = i + 1) {
                if (i % 2 == 0) { s = s + inc(i); }
            }
            out(s);
        }
    )");
}

TEST(ModuleVerifierTest, CleanModulePasses)
{
    ir::Module m = sampleModule();
    DiagEngine diag;
    EXPECT_TRUE(verifyModule(m, diag));
    EXPECT_EQ(diag.diagnostics().size(), 0u) << diag.renderText();
}

TEST(ModuleVerifierTest, UnfinalizedModuleRejected)
{
    ir::Module m;
    DiagEngine diag;
    EXPECT_FALSE(verifyModule(m, diag));
    EXPECT_TRUE(diag.hasRule("IR002"));
}

TEST(ModuleVerifierTest, BrokenTerminatorShapeFiresIR002)
{
    ir::Module m = sampleModule();
    // A Jmp block suddenly claiming two successors is a terminator
    // shape violation (and would also break reciprocity, which the
    // verifier suppresses once IR002 fired).
    ir::Function& fn = m.function(m.entryFunction());
    for (auto& blk : fn.blocks) {
        if (blk.terminator().op == ir::Opcode::Jmp) {
            blk.succs.push_back(blk.succs[0]);
            break;
        }
    }
    DiagEngine diag;
    EXPECT_FALSE(verifyModule(m, diag));
    EXPECT_TRUE(diag.hasRule("IR002")) << diag.renderText();
}

TEST(ModuleVerifierTest, DroppedPredecessorFiresIR003)
{
    ir::Module m = sampleModule();
    ir::Function& fn = m.function(m.entryFunction());
    bool mutated = false;
    for (auto& blk : fn.blocks) {
        if (!blk.preds.empty()) {
            blk.preds.pop_back();
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyModule(m, diag));
    EXPECT_TRUE(diag.hasRule("IR003")) << diag.renderText();
}

TEST(ModuleVerifierTest, UseOfNeverAssignedRegisterFiresIR001)
{
    ir::Module m = sampleModule();
    // Grow the register file by one and point some use at the new
    // register: it is never assigned on any path.
    ir::Function& fn = m.function(m.entryFunction());
    ir::RegId ghost = fn.numRegs;
    fn.numRegs += 1;
    bool mutated = false;
    for (auto& blk : fn.blocks) {
        for (auto& ins : blk.instrs) {
            if (ir::numUses(ins.op) >= 1) {
                ins.src0 = ghost;
                mutated = true;
                break;
            }
        }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);
    DiagEngine diag;
    EXPECT_FALSE(verifyModule(m, diag));
    EXPECT_TRUE(diag.hasRule("IR001")) << diag.renderText();
}

TEST(ModuleVerifierTest, AllSampleWorkloadShapesPass)
{
    // The verifier must accept every CFG shape the front end emits,
    // including multi-function programs with nested control flow.
    const char* sources[] = {
        "fn main() { out(1); }",
        R"(fn main() {
               var i = 0;
               while (i < 3) { i = i + 1; }
               out(i);
           })",
        R"(fn f(a, b) { if (a < b) { return b; } return a; }
           fn main() { out(f(2, f(1, 3))); })",
    };
    for (const char* src : sources) {
        ir::Module m = lang::compileString(src);
        DiagEngine diag;
        EXPECT_TRUE(verifyModule(m, diag))
            << src << "\n" << diag.renderText();
    }
}

} // namespace
} // namespace analysis
} // namespace wet
