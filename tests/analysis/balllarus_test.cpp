#include "analysis/balllarus.h"

#include <gtest/gtest.h>

#include <set>

#include "lang/codegen.h"

namespace wet {
namespace analysis {
namespace {

struct Built
{
    ir::Module mod;
    std::unique_ptr<CfgInfo> cfg;
    std::unique_ptr<BallLarus> bl;

    explicit Built(const char* src, uint64_t max_paths = 1 << 24)
        : mod(lang::compileString(src))
    {
        const ir::Function& fn = mod.function(mod.entryFunction());
        cfg = std::make_unique<CfgInfo>(fn);
        bl = std::make_unique<BallLarus>(*cfg, max_paths);
    }
};

TEST(BallLarusTest, StraightLineHasOnePath)
{
    Built b("fn main() { out(1); out(2); }");
    EXPECT_FALSE(b.bl->blockMode());
    EXPECT_EQ(b.bl->numPaths(), 1u);
    auto seq = b.bl->decode(0);
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0], 0u);
}

TEST(BallLarusTest, DiamondHasTwoPaths)
{
    Built b(R"(
        fn main() {
            if (in() > 0) { out(1); } else { out(2); }
            out(3);
        }
    )");
    EXPECT_EQ(b.bl->numPaths(), 2u);
    // The two path ids decode to distinct block sequences covering
    // the then- and else-sides.
    auto s0 = b.bl->decode(0);
    auto s1 = b.bl->decode(1);
    EXPECT_NE(s0, s1);
    EXPECT_EQ(s0.front(), 0u);
    EXPECT_EQ(s1.front(), 0u);
}

TEST(BallLarusTest, NestedDiamondsMultiplyPaths)
{
    Built b(R"(
        fn main() {
            var a = in(); var r = 0;
            if (a > 0) { r = 1; } else { r = 2; }
            if (a > 5) { r = r + 10; } else { r = r + 20; }
            if (a > 9) { r = r * 2; } else { r = r * 3; }
            out(r);
        }
    )");
    EXPECT_EQ(b.bl->numPaths(), 8u);
    std::set<std::vector<ir::BlockId>> seqs;
    for (uint64_t id = 0; id < 8; ++id)
        seqs.insert(b.bl->decode(id));
    EXPECT_EQ(seqs.size(), 8u); // ids decode to unique sequences
}

TEST(BallLarusTest, LoopSplitsPathsAtBackEdge)
{
    Built b(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 3; i = i + 1) { s = s + i; }
            out(s);
        }
    )");
    EXPECT_FALSE(b.bl->blockMode());
    EXPECT_GE(b.bl->numPaths(), 3u);
    // Loop headers can start paths.
    ASSERT_EQ(b.cfg->loopHeaders().size(), 1u);
    EXPECT_TRUE(b.bl->canStartPath(b.cfg->loopHeaders()[0]));
    // Every path id decodes without error and is acyclic.
    for (uint64_t id = 0; id < b.bl->numPaths(); ++id) {
        auto seq = b.bl->decode(id);
        std::set<ir::BlockId> uniq(seq.begin(), seq.end());
        EXPECT_EQ(uniq.size(), seq.size()) << "path " << id;
    }
}

TEST(BallLarusTest, DecodeIdsAreDense)
{
    Built b(R"(
        fn main() {
            var x = in();
            var r = 0;
            while (x > 0) {
                if (x % 2 == 0) { r = r + 1; }
                else { r = r + 2; }
                x = x - 1;
            }
            out(r);
        }
    )");
    std::set<std::vector<ir::BlockId>> seqs;
    for (uint64_t id = 0; id < b.bl->numPaths(); ++id)
        seqs.insert(b.bl->decode(id));
    EXPECT_EQ(seqs.size(), b.bl->numPaths());
}

TEST(BallLarusTest, FallsBackToBlockModeOnExplosion)
{
    // 40 sequential diamonds = 2^40 paths, over any sane cap.
    std::string src = "fn main() { var a = in(); var r = 0;\n";
    for (int i = 0; i < 40; ++i) {
        src += "if (a > " + std::to_string(i) +
               ") { r = r + 1; } else { r = r + 2; }\n";
    }
    src += "out(r); }";
    Built b(src.c_str(), 1 << 16);
    EXPECT_TRUE(b.bl->blockMode());
    const ir::Function& fn = b.mod.function(b.mod.entryFunction());
    EXPECT_EQ(b.bl->numPaths(), fn.numBlocks());
    auto seq = b.bl->decode(3);
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0], 3u);
}

TEST(BallLarusTest, RuntimeProtocolReconstructsPathIds)
{
    // Simulate the runtime protocol over a known block walk and
    // check that finishing values decode back to the walked blocks.
    Built b(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 2; i = i + 1) { s = s + i; }
            out(s);
        }
    )");
    const ir::Function& fn = b.mod.function(b.mod.entryFunction());
    // Execute symbolically: walk the CFG as the interpreter would
    // for this program (condition: i < 2 twice true, then false).
    // We drive the walk with the actual successor choices.
    std::vector<std::vector<ir::BlockId>> paths;
    std::vector<ir::BlockId> curPath;
    uint64_t r = 0;
    ir::BlockId cur = 0;
    curPath.push_back(0);
    int iter = 0;
    auto finish = [&](uint64_t id) {
        paths.push_back(b.bl->decode(id));
        EXPECT_EQ(paths.back(), curPath);
        curPath.clear();
    };
    for (int guard = 0; guard < 100; ++guard) {
        const auto& blk = fn.blocks[cur];
        const auto& term = blk.terminator();
        if (term.op == ir::Opcode::Ret ||
            term.op == ir::Opcode::Halt)
        {
            finish(r + b.bl->exitVal(cur));
            break;
        }
        size_t idx = 0;
        if (term.op == ir::Opcode::Br) {
            // The loop predicate: taken (succ 0) while iter < 2.
            idx = (iter < 2) ? 0 : 1;
            if (idx == 0)
                ++iter;
        }
        ir::BlockId next = blk.succs[idx];
        if (b.cfg->isBackEdge(cur, idx)) {
            finish(r + b.bl->exitVal(cur));
            r = b.bl->entryVal(next);
        } else {
            r += b.bl->edgeVal(cur, idx);
        }
        cur = next;
        curPath.push_back(cur);
    }
    EXPECT_GE(paths.size(), 3u);
}

} // namespace
} // namespace analysis
} // namespace wet
