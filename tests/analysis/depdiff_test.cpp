#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <set>
#include <vector>

#include "analysis/controldep.h"
#include "analysis/dominators.h"
#include "analysis/reachingdefs.h"
#include "ir/builder.h"

// Differential fuzzing of the static dependence building blocks:
// random CFGs are checked against naive oracles that share no code
// with the production passes (removal-reachability instead of the
// Cooper-Harvey-Kennedy solver, per-definition flooding instead of
// bitset dataflow). Iteration count is tunable with FUZZ_ITERS.

namespace wet {
namespace analysis {
namespace {

int
fuzzIters()
{
    if (const char* e = std::getenv("FUZZ_ITERS"))
        return std::max(1, std::atoi(e));
    return 200;
}

/** Random single-function module; every block gets a terminator. */
ir::Module
randomModule(std::mt19937& rng)
{
    auto pick = [&](uint32_t n) {
        return std::uniform_int_distribution<uint32_t>(0, n - 1)(rng);
    };
    const uint32_t numBlocks = 2 + pick(9); // 2..10
    const uint32_t numNamed = 2 + pick(3);  // 2..4

    ir::ModuleBuilder mb;
    auto& f = mb.beginFunction("main", 0);
    std::vector<ir::RegId> named;
    for (uint32_t i = 0; i < numNamed; ++i)
        named.push_back(f.newReg());
    std::vector<ir::BlockId> blocks{f.currentBlock()};
    for (uint32_t b = 1; b < numBlocks; ++b)
        blocks.push_back(f.newBlock());

    for (uint32_t b = 0; b < numBlocks; ++b) {
        f.switchTo(blocks[b]);
        if (b == 0) // give every named register an initial def
            for (ir::RegId r : named)
                f.emitConstInto(r, pick(100));
        const uint32_t ops = pick(3); // 0..2
        for (uint32_t i = 0; i < ops; ++i) {
            switch (pick(3)) {
            case 0:
                f.emitConstInto(named[pick(numNamed)], pick(100));
                break;
            case 1:
                f.emitMovInto(named[pick(numNamed)],
                              named[pick(numNamed)]);
                break;
            default: {
                ir::RegId t = f.emitBinary(
                    pick(2) ? ir::Opcode::Add : ir::Opcode::Xor,
                    named[pick(numNamed)], named[pick(numNamed)]);
                f.emitMovInto(named[pick(numNamed)], t);
                break;
            }
            }
        }
        const uint32_t kind = pick(10);
        if (kind < 5)
            f.emitBr(named[pick(numNamed)],
                     blocks[pick(numBlocks)],
                     blocks[pick(numBlocks)]);
        else if (kind < 8)
            f.emitJmp(blocks[pick(numBlocks)]);
        else
            f.emitRet(named[pick(numNamed)]);
    }
    mb.endFunction();
    return mb.build();
}

// ---------------------------------------------------------------- //
// Naive control dependence

/** Successor lists over the exit-augmented CFG (vexit included). */
std::vector<std::vector<ir::BlockId>>
augmentedSuccs(const ir::Function& fn)
{
    const uint32_t n = fn.numBlocks();
    const ir::BlockId vexit = n;
    std::vector<std::vector<ir::BlockId>> succs(n + 1);
    for (ir::BlockId b = 0; b < n; ++b) {
        succs[b] = fn.blocks[b].succs;
        ir::Opcode t = fn.blocks[b].terminator().op;
        if (t == ir::Opcode::Ret || t == ir::Opcode::Halt)
            succs[b].push_back(vexit);
    }
    // Blocks with no path to the exit (infinite loops) are attached
    // directly, mirroring DomTree::postDominators.
    std::vector<bool> reaches(n + 1, false);
    reaches[vexit] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b = 0; b < n; ++b) {
            if (reaches[b])
                continue;
            for (ir::BlockId s : succs[b])
                if (reaches[s]) {
                    reaches[b] = true;
                    changed = true;
                    break;
                }
        }
    }
    for (ir::BlockId b = 0; b < n; ++b)
        if (!reaches[b])
            succs[b].push_back(vexit);
    return succs;
}

/**
 * Brute-force post-dominance: x post-dominates a iff removing x cuts
 * every augmented path from a to the virtual exit.
 */
bool
brutePostDom(const std::vector<std::vector<ir::BlockId>>& succs,
             ir::BlockId x, ir::BlockId a)
{
    if (x == a)
        return true;
    const ir::BlockId vexit =
        static_cast<ir::BlockId>(succs.size() - 1);
    std::set<ir::BlockId> seen{a};
    std::vector<ir::BlockId> work{a};
    while (!work.empty()) {
        ir::BlockId v = work.back();
        work.pop_back();
        if (v == vexit)
            return false;
        for (ir::BlockId s : succs[v]) {
            if (s == x || seen.count(s))
                continue;
            seen.insert(s);
            work.push_back(s);
        }
    }
    return true;
}

/**
 * Naive CD by definition: X is control dependent on edge (A, o) with
 * successor s iff s does not post-dominate A, X post-dominates s,
 * and X does not strictly post-dominate A.
 */
std::vector<std::vector<CdParent>>
naiveControlDep(const ir::Function& fn)
{
    const uint32_t n = fn.numBlocks();
    auto succs = augmentedSuccs(fn);
    std::vector<std::vector<bool>> pdom(n, std::vector<bool>(n));
    for (ir::BlockId x = 0; x < n; ++x)
        for (ir::BlockId a = 0; a < n; ++a)
            pdom[x][a] = brutePostDom(succs, x, a);

    std::vector<std::vector<CdParent>> parents(n);
    for (ir::BlockId a = 0; a < n; ++a) {
        const auto& out = fn.blocks[a].succs;
        for (size_t o = 0; o < out.size(); ++o) {
            ir::BlockId s = out[o];
            if (pdom[s][a])
                continue;
            for (ir::BlockId x = 0; x < n; ++x) {
                if (!pdom[x][s])
                    continue;
                if (x != a && pdom[x][a])
                    continue;
                CdParent p{a, static_cast<uint8_t>(o)};
                auto& vec = parents[x];
                if (std::find(vec.begin(), vec.end(), p) ==
                    vec.end())
                    vec.push_back(p);
            }
        }
    }
    return parents;
}

std::vector<CdParent>
sorted(std::vector<CdParent> v)
{
    std::sort(v.begin(), v.end(),
              [](const CdParent& a, const CdParent& b) {
                  return a.pred != b.pred ? a.pred < b.pred
                                          : a.outcome < b.outcome;
              });
    return v;
}

// ---------------------------------------------------------------- //
// Naive reaching definitions: flood each definition forward.

struct NaiveReach
{
    /** reachEntry[b]: local def stmts of r live at entry of b. */
    std::vector<std::vector<ir::StmtId>> reachEntry;
    /** entryReach[b]: the entry pseudo-def of r is live at entry. */
    std::vector<bool> entryReach;
};

bool
defines(const ir::Instr& in, ir::RegId r)
{
    return ir::hasDef(in.op) && in.dest == r;
}

NaiveReach
naiveReach(const ir::Function& fn, ir::RegId r)
{
    const uint32_t n = fn.numBlocks();
    NaiveReach nr;
    nr.reachEntry.resize(n);
    nr.entryReach.assign(n, false);

    auto floodFrom = [&](ir::BlockId start,
                         auto&& markEntry) {
        std::vector<bool> seen(n, false);
        std::vector<ir::BlockId> work{start};
        seen[start] = true;
        while (!work.empty()) {
            ir::BlockId b = work.back();
            work.pop_back();
            markEntry(b);
            bool killed = false;
            for (const auto& in : fn.blocks[b].instrs)
                if (defines(in, r)) {
                    killed = true;
                    break;
                }
            if (killed)
                continue;
            for (ir::BlockId s : fn.blocks[b].succs)
                if (!seen[s]) {
                    seen[s] = true;
                    work.push_back(s);
                }
        }
    };

    // The entry pseudo-definition floods from block 0's entry.
    nr.entryReach[0] = true;
    {
        bool killed = false;
        for (const auto& in : fn.blocks[0].instrs)
            if (defines(in, r)) {
                killed = true;
                break;
            }
        if (!killed)
            for (ir::BlockId s : fn.blocks[0].succs)
                floodFrom(s,
                          [&](ir::BlockId b) {
                              nr.entryReach[b] = true;
                          });
    }
    // Each real definition floods from the end of its block if it is
    // downward exposed.
    for (ir::BlockId b = 0; b < n; ++b) {
        const auto& instrs = fn.blocks[b].instrs;
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            if (!defines(instrs[i], r))
                continue;
            bool shadowed = false;
            for (uint32_t j = i + 1; j < instrs.size(); ++j)
                if (defines(instrs[j], r)) {
                    shadowed = true;
                    break;
                }
            if (shadowed)
                continue;
            ir::StmtId d = instrs[i].stmt;
            for (ir::BlockId s : fn.blocks[b].succs)
                floodFrom(s, [&](ir::BlockId x) {
                    auto& v = nr.reachEntry[x];
                    if (std::find(v.begin(), v.end(), d) == v.end())
                        v.push_back(d);
                });
        }
    }
    for (auto& v : nr.reachEntry)
        std::sort(v.begin(), v.end());
    return nr;
}

/** Oracle answer for defsAt(use, r). */
ReachingDefs::RegDefs
naiveDefsAt(const ir::Function& fn, const NaiveReach& nr,
            ir::BlockId b, uint32_t index, ir::RegId r)
{
    const auto& instrs = fn.blocks[b].instrs;
    for (uint32_t j = index; j-- > 0;)
        if (defines(instrs[j], r))
            return ReachingDefs::RegDefs{{instrs[j].stmt}, false};
    return ReachingDefs::RegDefs{nr.reachEntry[b],
                                 nr.entryReach[b]};
}

// ---------------------------------------------------------------- //

TEST(DepDiffTest, ControlDepMatchesRemovalReachabilityOracle)
{
    const int iters = fuzzIters();
    for (int it = 0; it < iters; ++it) {
        std::mt19937 rng(1000 + it);
        ir::Module m = randomModule(rng);
        const ir::Function& fn = m.function(0);
        DomTree pd = DomTree::postDominators(fn);
        ControlDep cd(fn, pd);
        auto naive = naiveControlDep(fn);
        for (ir::BlockId b = 0; b < fn.numBlocks(); ++b)
            EXPECT_EQ(sorted(cd.parents(b)), sorted(naive[b]))
                << "iter " << it << " block " << b;
        if (::testing::Test::HasFailure())
            break;
    }
}

TEST(DepDiffTest, ReachingDefsMatchFloodingOracle)
{
    const int iters = fuzzIters();
    for (int it = 0; it < iters; ++it) {
        std::mt19937 rng(9000 + it);
        ir::Module m = randomModule(rng);
        const ir::Function& fn = m.function(0);
        ReachingDefs rd(m, fn);
        for (ir::RegId r = 0; r < fn.numRegs; ++r) {
            NaiveReach nr = naiveReach(fn, r);
            for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
                const auto& instrs = fn.blocks[b].instrs;
                for (uint32_t i = 0; i < instrs.size(); ++i) {
                    auto want = naiveDefsAt(fn, nr, b, i, r);
                    auto got = rd.defsAt(instrs[i].stmt, r);
                    EXPECT_EQ(got.stmts, want.stmts)
                        << "iter " << it << " b" << b << " i" << i
                        << " r" << r;
                    EXPECT_EQ(got.fromEntry, want.fromEntry)
                        << "iter " << it << " b" << b << " i" << i
                        << " r" << r;
                }
            }
        }
        if (::testing::Test::HasFailure())
            break;
    }
}

} // namespace
} // namespace analysis
} // namespace wet
