#include "analysis/artifactverifier.h"

#include <gtest/gtest.h>

#include <vector>

#include "codec/encoder.h"

namespace wet {
namespace analysis {
namespace {

std::vector<int64_t>
rampWithNoise(size_t n)
{
    std::vector<int64_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(static_cast<int64_t>(i * 3 + (i % 7 == 0)));
    return v;
}

TEST(ArtifactVerifierTest, CleanStreamsPassAllCodecs)
{
    std::vector<int64_t> vals = rampWithNoise(200);
    for (const codec::CodecConfig& cfg : codec::candidateConfigs()) {
        codec::CompressedStream s = codec::encodeStream(vals, cfg);
        DiagEngine diag;
        EXPECT_TRUE(verifyStream(s, "test stream", diag, &vals))
            << methodName(cfg.method, cfg.context) << "\n"
            << diag.renderText();
    }
}

TEST(ArtifactVerifierTest, TruncatedMissBufferFiresART003)
{
    std::vector<int64_t> vals = rampWithNoise(200);
    codec::CodecConfig cfg{codec::Method::Dfcm, 2, 8};
    codec::CompressedStream s = codec::encodeStream(vals, cfg);
    ASSERT_FALSE(s.misses.empty());
    std::vector<uint8_t> bytes = s.misses.bytes();
    bytes.pop_back();
    s.misses = support::VarintBuffer::fromBytes(std::move(bytes));
    DiagEngine diag;
    EXPECT_FALSE(verifyStream(s, "test stream", diag, &vals));
    EXPECT_TRUE(diag.hasRule("ART003")) << diag.renderText();
}

TEST(ArtifactVerifierTest, BitFlippedMissVarintFiresART002)
{
    std::vector<int64_t> vals = rampWithNoise(200);
    codec::CodecConfig cfg{codec::Method::Fcm, 2, 8};
    codec::CompressedStream s = codec::encodeStream(vals, cfg);
    ASSERT_FALSE(s.misses.empty());
    // Flipping a low bit keeps the varint boundaries (the
    // continuation bit is untouched) but changes a stored victim
    // value, so the decode no longer matches the tier-1 labels.
    std::vector<uint8_t> bytes = s.misses.bytes();
    bytes[bytes.size() / 2] ^= 0x01;
    s.misses = support::VarintBuffer::fromBytes(std::move(bytes));
    DiagEngine diag;
    EXPECT_FALSE(verifyStream(s, "test stream", diag, &vals));
    EXPECT_TRUE(diag.hasRule("ART002") || diag.hasRule("ART001"))
        << diag.renderText();
}

TEST(ArtifactVerifierTest, CorruptCheckpointFiresART004)
{
    std::vector<int64_t> vals = rampWithNoise(400);
    codec::CodecConfig cfg{codec::Method::Fcm, 2, 8};
    codec::CompressedStream s = codec::encodeStream(vals, cfg, 64);
    ASSERT_FALSE(s.checkpoints.empty());
    s.checkpoints[0].window[0] ^= 0x7f;
    DiagEngine diag;
    EXPECT_FALSE(verifyStream(s, "test stream", diag, &vals));
    EXPECT_TRUE(diag.hasRule("ART004")) << diag.renderText();
}

TEST(ArtifactVerifierTest, RawStreamWithTrailingBytesFiresART003)
{
    std::vector<int64_t> vals = {1, 2, 3};
    codec::CompressedStream s =
        codec::encodeStream(vals, {codec::Method::Raw, 0, 0});
    ASSERT_EQ(s.config.method, codec::Method::Raw);
    std::vector<uint8_t> bytes = s.misses.bytes();
    bytes.push_back(0x00); // one extra varint beyond `length`
    s.misses = support::VarintBuffer::fromBytes(std::move(bytes));
    DiagEngine diag;
    EXPECT_FALSE(verifyStreamStructure(s, "test stream", diag));
    EXPECT_TRUE(diag.hasRule("ART003")) << diag.renderText();
}

TEST(ArtifactVerifierTest, BadModelParametersFireART003)
{
    std::vector<int64_t> vals = rampWithNoise(100);
    codec::CompressedStream s = codec::encodeStream(
        vals, {codec::Method::Fcm, 2, 8});
    s.config.tableBits = 60; // far outside the model's legal range
    DiagEngine diag;
    EXPECT_FALSE(verifyStreamStructure(s, "test stream", diag));
    EXPECT_TRUE(diag.hasRule("ART003")) << diag.renderText();
}

} // namespace
} // namespace analysis
} // namespace wet
