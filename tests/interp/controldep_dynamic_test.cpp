#include <gtest/gtest.h>

#include "analysis/controldep.h"
#include "lang/codegen.h"
#include "support/error.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace wet {
namespace interp {
namespace {

/**
 * Property: every dynamic control-dependence parent reported by the
 * interpreter's region stack is one of the block's *static* CD
 * parents (or the call site for region-free blocks), and the
 * reported predicate instance is the most recent execution of that
 * predicate.
 */
void
checkDynamicCd(const std::string& source,
               std::vector<int64_t> inputs = {})
{
    auto p = test::runPipeline(source, std::move(inputs), 1 << 16);
    const ir::Module& mod = *p->module;

    // Rebuild static CD per function.
    struct FnCd
    {
        std::unique_ptr<analysis::DomTree> pd;
        std::unique_ptr<analysis::ControlDep> cd;
    };
    std::vector<FnCd> cds(mod.numFunctions());
    for (ir::FuncId f = 0; f < mod.numFunctions(); ++f) {
        cds[f].pd = std::make_unique<analysis::DomTree>(
            analysis::DomTree::postDominators(mod.function(f)));
        cds[f].cd = std::make_unique<analysis::ControlDep>(
            mod.function(f), *cds[f].pd);
    }

    uint64_t checked = 0;
    for (const auto& br : p->record.blocks) {
        if (!br.control.valid())
            continue;
        const ir::Instr& ctrl = mod.instr(br.control.stmt);
        if (ctrl.op == ir::Opcode::Call)
            continue; // interprocedural: call site controls entry
        ASSERT_EQ(ctrl.op, ir::Opcode::Br);
        // The controlling predicate's block must be a static CD
        // parent of this block.
        const ir::StmtRef& ref = mod.stmtRef(br.control.stmt);
        ASSERT_EQ(ref.func, br.func);
        bool isStaticParent = false;
        for (const auto& parent :
             cds[br.func].cd->parents(br.block))
        {
            if (parent.pred == ref.block)
                isStaticParent = true;
        }
        EXPECT_TRUE(isStaticParent)
            << "block " << br.block << " of fn " << br.func
            << " reported dynamic parent block " << ref.block;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(DynamicCdTest, StructuredLoopsAndConditionals)
{
    checkDynamicCd(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 8; i = i + 1) {
                if (i % 2 == 0) {
                    if (i % 4 == 0) { s = s + 10; }
                    else { s = s + 1; }
                } else {
                    while (s > 5) { s = s - 3; }
                }
            }
            out(s);
        }
    )");
}

TEST(DynamicCdTest, EarlyReturnsAndBreaks)
{
    checkDynamicCd(R"(
        fn f(x) {
            for (var i = 0; i < x; i = i + 1) {
                if (i * i > x) { return i; }
                if (i == 7) { break; }
            }
            return 0 - 1;
        }
        fn main() {
            out(f(3));
            out(f(30));
            out(f(100));
        }
    )");
}

TEST(DynamicCdTest, ShortCircuitOperators)
{
    checkDynamicCd(R"(
        fn main() {
            var c = 0;
            for (var i = 0; i < 12; i = i + 1) {
                if (i > 2 && i % 2 == 0 || i == 1) { c = c + 1; }
            }
            out(c);
        }
    )");
}

TEST(DynamicCdTest, WorkloadGo)
{
    const auto& w = workloads::workloadByName("099.go");
    auto mod = std::make_unique<ir::Module>(
        workloads::compileWorkload(w));
    analysis::ModuleAnalysis ma(*mod);
    auto input = workloads::makeWorkloadInput(w, 1);
    test::RecordingSink rec;
    Interpreter interp(ma, *input, &rec);
    interp.run();

    uint64_t checked = 0;
    for (const auto& br : rec.blocks) {
        if (!br.control.valid())
            continue;
        const ir::Instr& ctrl = mod->instr(br.control.stmt);
        if (ctrl.op == ir::Opcode::Call)
            continue;
        const ir::StmtRef& ref = mod->stmtRef(br.control.stmt);
        bool isStaticParent = false;
        for (const auto& parent :
             ma.fn(br.func).cd.parents(br.block))
        {
            if (parent.pred == ref.block)
                isStaticParent = true;
        }
        ASSERT_TRUE(isStaticParent)
            << "block " << br.block << " parent block " << ref.block;
        ++checked;
    }
    EXPECT_GT(checked, 1000u);
}

} // namespace
} // namespace interp
} // namespace wet
