#include "interp/interpreter.h"

#include <gtest/gtest.h>

#include "lang/codegen.h"
#include "support/error.h"
#include "testutil.h"

namespace wet {
namespace interp {
namespace {

using test::runPipeline;
using test::runSource;

TEST(InterpTest, CountsStatistics)
{
    const char* src = R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) {
                mem[i] = i;
                s = s + mem[i];
            }
            out(s);
        }
    )";
    auto r = runSource(src);
    EXPECT_EQ(r.outputs[0], 45);
    EXPECT_EQ(r.loads, 10u);
    EXPECT_EQ(r.stores, 10u);
    EXPECT_EQ(r.branches, 11u); // 10 taken + 1 exit check
    EXPECT_GT(r.stmtsExecuted, 50u);
    EXPECT_GT(r.blocksExecuted, 20u);
}

TEST(InterpTest, StatementLimitEnforced)
{
    const char* src = "fn main() { while (1) { mem[0] = 1; } }";
    ir::Module mod = lang::compileString(src, 64);
    analysis::ModuleAnalysis ma(mod);
    VectorInput input({});
    Interpreter interp(ma, input, nullptr);
    RunConfig cfg;
    cfg.maxStmts = 1000;
    EXPECT_THROW(interp.run(cfg), WetError);
}

TEST(InterpTest, MemoryBoundsChecked)
{
    EXPECT_THROW(runSource("fn main() { mem[999999] = 1; }", {}, 64),
                 WetError);
    EXPECT_THROW(runSource("fn main() { out(mem[0 - 1]); }", {}, 64),
                 WetError);
}

TEST(InterpTest, RegisterDependencesPointToProducers)
{
    // r = a + b: the event's deps must reference the instances that
    // produced a and b.
    auto p = runPipeline(R"(
        fn main() {
            var a = 5;
            var b = 7;
            out(a + b);
        }
    )");
    const auto& stmts = p->record.stmts;
    // Find the Add event.
    const StmtEvent* add = nullptr;
    for (const auto& ev : stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::Add)
            add = &ev;
    }
    ASSERT_NE(add, nullptr);
    ASSERT_EQ(add->numDeps, 2);
    EXPECT_EQ(add->depValues[0], 5);
    EXPECT_EQ(add->depValues[1], 7);
    // Both producers are Mov statements (variable stores).
    EXPECT_EQ(p->module->instr(add->deps[0].stmt).op,
              ir::Opcode::Mov);
    EXPECT_EQ(p->module->instr(add->deps[1].stmt).op,
              ir::Opcode::Mov);
}

TEST(InterpTest, MemoryDependenceLinksLoadToStore)
{
    auto p = runPipeline(R"(
        fn main() {
            mem[10] = 42;
            out(mem[10]);
        }
    )");
    const StmtEvent* load = nullptr;
    const StmtEvent* store = nullptr;
    for (const auto& ev : p->record.stmts) {
        if (ev.isLoad)
            load = &ev;
        if (ev.isStore)
            store = &ev;
    }
    ASSERT_NE(load, nullptr);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(load->addr, 10u);
    ASSERT_EQ(load->numDeps, 2);
    EXPECT_EQ(load->deps[1].stmt, store->stmt);
    EXPECT_EQ(load->deps[1].instance, store->instance);
    EXPECT_EQ(load->value, 42);
}

TEST(InterpTest, LoadFromUntouchedMemoryHasNoMemDep)
{
    auto p = runPipeline("fn main() { out(mem[50]); }");
    const StmtEvent* load = nullptr;
    for (const auto& ev : p->record.stmts)
        if (ev.isLoad)
            load = &ev;
    ASSERT_NE(load, nullptr);
    EXPECT_EQ(load->numDeps, 1); // only the address register dep
    EXPECT_EQ(load->value, 0);
}

TEST(InterpTest, CallArgumentsPassProducersThrough)
{
    auto p = runPipeline(R"(
        fn id(x) { return x; }
        fn main() { out(id(33)); }
    )");
    // The Ret's dep chain should reach back to the caller's Mov/Const
    // producing 33 via the parameter pass-through.
    const StmtEvent* ret = nullptr;
    for (const auto& ev : p->record.stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::Ret &&
            ev.numDeps == 1)
        {
            ret = &ev;
        }
    }
    ASSERT_NE(ret, nullptr);
    EXPECT_EQ(ret->depValues[0], 33);
}

TEST(InterpTest, DynamicControlDependenceInsideLoop)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 3; i = i + 1) {
                s = s + i;
            }
            out(s);
        }
    )");
    // Every loop-body block instance must be control dependent on a
    // Br instance, and consecutive iterations on consecutive Br
    // instances.
    std::vector<uint32_t> bodyCtrlInstances;
    for (const auto& br : p->record.blocks) {
        if (!br.control.valid())
            continue;
        if (p->module->instr(br.control.stmt).op == ir::Opcode::Br)
            bodyCtrlInstances.push_back(br.control.instance);
    }
    ASSERT_GE(bodyCtrlInstances.size(), 3u);
    // Instances of the loop predicate increase monotonically.
    for (size_t i = 1; i < bodyCtrlInstances.size(); ++i)
        EXPECT_LE(bodyCtrlInstances[i - 1], bodyCtrlInstances[i]);
}

TEST(InterpTest, CallsiteControlsCalleeEntry)
{
    auto p = runPipeline(R"(
        fn leaf() { return 1; }
        fn main() { out(leaf()); }
    )");
    // The callee's entry block is control dependent on the Call
    // instruction instance.
    bool found = false;
    for (const auto& br : p->record.blocks) {
        if (br.func == p->module->functionByName("leaf") &&
            br.control.valid())
        {
            EXPECT_EQ(p->module->instr(br.control.stmt).op,
                      ir::Opcode::Call);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(InterpTest, HaltInsideCalleeUnwinds)
{
    auto r = runSource(R"(
        fn die() { out(1); halt; }
        fn main() { die(); out(2); }
    )");
    ASSERT_EQ(r.outputs.size(), 1u);
    EXPECT_EQ(r.outputs[0], 1);
}

TEST(InterpTest, DeterministicAcrossRuns)
{
    const char* src = R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 50; i = i + 1) {
                s = s * 31 + in();
                mem[i % 16] = s;
            }
            out(s);
        }
    )";
    std::vector<int64_t> inputs;
    for (int i = 0; i < 50; ++i)
        inputs.push_back(i * 7 % 13);
    auto a = runSource(src, inputs);
    auto b = runSource(src, inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.stmtsExecuted, b.stmtsExecuted);
}

} // namespace
} // namespace interp
} // namespace wet
