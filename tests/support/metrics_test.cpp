/**
 * @file
 * Thread-safety tests of support::Metrics (src/support/metrics.cpp).
 *
 * The serve layer shares one server-wide registry among the accept
 * loop and every connection handler, and merges each finished
 * connection's per-session registry into it. The hammer tests pin
 * exact totals — a lost update under contention is a hard failure,
 * not noise — and the TSan CI job runs them for ordering bugs the
 * totals cannot see.
 */

#include "support/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace wet {
namespace support {
namespace {

constexpr unsigned kThreads = 8;
constexpr uint64_t kOpsPerThread = 20000;

TEST(MetricsTest, ConcurrentAddsLoseNoUpdates)
{
    Metrics m;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            for (uint64_t i = 0; i < kOpsPerThread; ++i) {
                m.add("shared.hits", 1);
                m.add("per_thread." + std::to_string(t), 2);
                m.recordLatency("shared.latency", 100 + t);
            }
        });
    }
    for (auto& th : threads)
        th.join();

    EXPECT_EQ(m.counters().at("shared.hits"),
              kThreads * kOpsPerThread);
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(m.counters().at("per_thread." + std::to_string(t)),
                  2 * kOpsPerThread);
    const Metrics::Latency& lat =
        m.latencies().at("shared.latency");
    EXPECT_EQ(lat.count, kThreads * kOpsPerThread);
    EXPECT_EQ(lat.minNs, 100u);
    EXPECT_EQ(lat.maxNs, 100u + kThreads - 1);
}

TEST(MetricsTest, ConcurrentSetsLandOnAWrittenValue)
{
    Metrics m;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            for (uint64_t i = 0; i < kOpsPerThread; ++i)
                m.set("gauge", (t + 1) * 1000);
        });
    }
    for (auto& th : threads)
        th.join();
    // A gauge race may land on any thread's value, but never on a
    // torn or phantom one.
    uint64_t v = m.counters().at("gauge");
    EXPECT_EQ(v % 1000, 0u);
    EXPECT_GE(v, 1000u);
    EXPECT_LE(v, kThreads * 1000);
}

TEST(MetricsTest, ConcurrentMergesAggregateExactly)
{
    // Model the server shutdown path: every connection folds its
    // quiescent per-session registry into the shared one, from its
    // own handler thread, possibly all at once.
    Metrics server;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&server, t] {
            Metrics session;
            for (uint64_t i = 0; i < 1000; ++i) {
                session.add("lines", 1);
                session.recordLatency("latency.cf",
                                      10 * (t + 1));
            }
            server.merge(session);
        });
    }
    for (auto& th : threads)
        th.join();

    EXPECT_EQ(server.counters().at("lines"), kThreads * 1000);
    const Metrics::Latency& lat =
        server.latencies().at("latency.cf");
    EXPECT_EQ(lat.count, kThreads * 1000);
    EXPECT_EQ(lat.minNs, 10u);
    EXPECT_EQ(lat.maxNs, 10u * kThreads);
    EXPECT_EQ(lat.totalNs,
              uint64_t{1000} * 10 * kThreads * (kThreads + 1) / 2);
}

TEST(MetricsTest, RenderWhileMutatingIsSafe)
{
    Metrics m;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            m.add("churn." + std::to_string(i % 17), 1);
            m.recordLatency("churn.lat", i % 97);
            ++i;
        }
    });
    for (int i = 0; i < 200; ++i) {
        std::string text = m.renderText();
        std::string json = m.renderJson();
        EXPECT_NE(json.find("counters"), std::string::npos);
        (void)text;
    }
    stop.store(true);
    writer.join();
}

} // namespace
} // namespace support
} // namespace wet
