#include "support/table.h"

#include <gtest/gtest.h>

#include "support/sizes.h"

namespace wet {
namespace support {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns)
{
    TablePrinter t({"Benchmark", "Stmts", "Ratio"});
    t.addRow({"099.go", "685", "18.04"});
    t.addRow({"126.gcc", "364", "58.84"});
    std::string s = t.toString("Table 1");
    EXPECT_NE(s.find("Table 1"), std::string::npos);
    EXPECT_NE(s.find("099.go"), std::string::npos);
    EXPECT_NE(s.find("58.84"), std::string::npos);
    // Numeric columns are right-aligned: "685" under "Stmts".
    EXPECT_NE(s.find("Stmts"), std::string::npos);
}

TEST(SizesTest, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(SizesTest, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KB");
    EXPECT_EQ(formatBytes(uint64_t{5} * 1024 * 1024), "5.00 MB");
}

TEST(SizesTest, FormatCount)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(SizesTest, ToMB)
{
    EXPECT_DOUBLE_EQ(toMB(1024 * 1024), 1.0);
}

} // namespace
} // namespace support
} // namespace wet
