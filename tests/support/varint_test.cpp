#include "support/varint.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace wet {
namespace support {
namespace {

TEST(VarintTest, RoundTripsSmallValues)
{
    VarintBuffer buf;
    for (uint64_t v = 0; v < 300; ++v)
        buf.pushUnsigned(v);
    size_t pos = 0;
    for (uint64_t v = 0; v < 300; ++v)
        EXPECT_EQ(buf.readUnsignedAt(pos), v);
    EXPECT_EQ(pos, buf.sizeBytes());
}

TEST(VarintTest, SingleByteForSmall)
{
    VarintBuffer buf;
    buf.pushUnsigned(127);
    EXPECT_EQ(buf.sizeBytes(), 1u);
    buf.pushUnsigned(128);
    EXPECT_EQ(buf.sizeBytes(), 3u);
}

TEST(VarintTest, BackwardReadMatchesForward)
{
    Rng rng(7);
    VarintBuffer buf;
    std::vector<uint64_t> vals;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.next() >> (rng.below(64));
        vals.push_back(v);
        buf.pushUnsigned(v);
    }
    size_t pos = buf.sizeBytes();
    for (int i = 999; i >= 0; --i)
        EXPECT_EQ(buf.readUnsignedBefore(pos), vals[i]);
    EXPECT_EQ(pos, 0u);
}

TEST(VarintTest, PopUnsignedIsLifo)
{
    VarintBuffer buf;
    buf.pushUnsigned(1);
    buf.pushUnsigned(1u << 20);
    buf.pushUnsigned(42);
    EXPECT_EQ(buf.popUnsigned(), 42u);
    EXPECT_EQ(buf.popUnsigned(), 1u << 20);
    EXPECT_EQ(buf.popUnsigned(), 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(VarintTest, SignedZigZagRoundTrip)
{
    VarintBuffer buf;
    std::vector<int64_t> vals = {0,  -1, 1,  -2, 63, -64,
                                 64, INT64_MAX, INT64_MIN};
    for (int64_t v : vals)
        buf.pushSigned(v);
    size_t pos = 0;
    for (int64_t v : vals)
        EXPECT_EQ(buf.readSignedAt(pos), v);
    for (auto it = vals.rbegin(); it != vals.rend(); ++it)
        EXPECT_EQ(buf.popSigned(), *it);
}

TEST(VarintTest, ZigZagEncoding)
{
    EXPECT_EQ(VarintBuffer::zigzagEncode(0), 0u);
    EXPECT_EQ(VarintBuffer::zigzagEncode(-1), 1u);
    EXPECT_EQ(VarintBuffer::zigzagEncode(1), 2u);
    EXPECT_EQ(VarintBuffer::zigzagEncode(-2), 3u);
    for (int64_t v : {int64_t{-1000}, int64_t{0}, int64_t{12345},
                      INT64_MIN, INT64_MAX})
    {
        EXPECT_EQ(VarintBuffer::zigzagDecode(
                      VarintBuffer::zigzagEncode(v)),
                  v);
    }
}

TEST(VarintTest, MixedPushPopInterleaving)
{
    Rng rng(99);
    VarintBuffer buf;
    std::vector<int64_t> shadow;
    for (int step = 0; step < 5000; ++step) {
        if (shadow.empty() || rng.chance(3, 5)) {
            int64_t v = static_cast<int64_t>(rng.next());
            shadow.push_back(v);
            buf.pushSigned(v);
        } else {
            ASSERT_EQ(buf.popSigned(), shadow.back());
            shadow.pop_back();
        }
    }
    while (!shadow.empty()) {
        ASSERT_EQ(buf.popSigned(), shadow.back());
        shadow.pop_back();
    }
    EXPECT_TRUE(buf.empty());
}

} // namespace
} // namespace support
} // namespace wet
