#include "support/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/error.h"

namespace wet {
namespace support {
namespace {

/**
 * Unit tests for the failpoint framework itself: spec parsing, the
 * trigger modes, the closed registry, and the macro semantics. Every
 * test starts and ends disarmed so no trigger can leak into another
 * suite sharing the process.
 */
class FailPointTest : public ::testing::Test
{
  protected:
    void SetUp() override { FailPoints::instance().disarmAll(); }
    void TearDown() override { FailPoints::instance().disarmAll(); }
};

TEST_F(FailPointTest, RegistryIsSortedAndClosed)
{
    std::vector<std::string> sites = FailPoints::registry();
    ASSERT_FALSE(sites.empty());
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()),
              sites.end());
    // Anchor the sites the cmake sweeps special-case; renaming one
    // must be a conscious decision that updates the sweeps too.
    for (const char* s :
         {"codec.cursor.step", "wetio.open.mmap", "wetio.save.rename",
          "wetio.save.dirsync", "support.governor.deadline"})
        EXPECT_TRUE(std::binary_search(sites.begin(), sites.end(),
                                       std::string(s)))
            << s;
}

TEST_F(FailPointTest, MalformedSpecsAreRejected)
{
    FailPoints& fp = FailPoints::instance();
    EXPECT_THROW(fp.arm("no.such.site=once"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step"), WetError);
    EXPECT_THROW(fp.arm("=once"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=bogus"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=nth:0"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=nth:x"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=crash-nth:"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=prob:50"), WetError);
    EXPECT_THROW(fp.arm("codec.cursor.step=prob:101:1"), WetError);
    // Nothing may be left armed by a rejected spec.
    EXPECT_FALSE(FailPoints::anyArmed());
}

TEST_F(FailPointTest, OnceFiresThenSelfDisarms)
{
    FailPoints& fp = FailPoints::instance();
    ASSERT_FALSE(FailPoints::anyArmed());
    fp.arm("core.session.query=once");
    EXPECT_TRUE(FailPoints::anyArmed());
    EXPECT_THROW(WET_FAILPOINT("core.session.query"), WetError);
    // The trigger consumed itself: the fast gate is closed again and
    // further hits are free no-ops that are not even counted.
    EXPECT_FALSE(FailPoints::anyArmed());
    WET_FAILPOINT("core.session.query");
    EXPECT_EQ(fp.trips("core.session.query"), 1u);
    EXPECT_EQ(fp.hits("core.session.query"), 1u);
}

TEST_F(FailPointTest, NthFiresOnExactlyOneHit)
{
    FailPoints& fp = FailPoints::instance();
    fp.arm("core.cache.evict=nth:3");
    EXPECT_FALSE(WET_FAILPOINT_HIT("core.cache.evict"));
    EXPECT_FALSE(WET_FAILPOINT_HIT("core.cache.evict"));
    EXPECT_TRUE(WET_FAILPOINT_HIT("core.cache.evict"));
    EXPECT_FALSE(WET_FAILPOINT_HIT("core.cache.evict"));
    EXPECT_EQ(fp.hits("core.cache.evict"), 4u);
    EXPECT_EQ(fp.trips("core.cache.evict"), 1u);
    // An armed site never leaks onto its neighbours.
    EXPECT_FALSE(WET_FAILPOINT_HIT("core.cache.insert"));
}

TEST_F(FailPointTest, ProbPatternIsDeterministicPerSeed)
{
    FailPoints& fp = FailPoints::instance();
    auto pattern = [&fp] {
        std::vector<bool> v;
        for (int i = 0; i < 64; ++i)
            v.push_back(fp.fired("codec.cursor.step"));
        return v;
    };
    fp.arm("codec.cursor.step=prob:50:9");
    std::vector<bool> a = pattern();
    fp.disarmAll();
    fp.arm("codec.cursor.step=prob:50:9");
    EXPECT_EQ(pattern(), a);
    // At 50% over 64 draws both outcomes must appear.
    EXPECT_NE(std::find(a.begin(), a.end(), true), a.end());
    EXPECT_NE(std::find(a.begin(), a.end(), false), a.end());

    fp.disarmAll();
    fp.arm("codec.cursor.step=prob:0:9");
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(fp.fired("codec.cursor.step"));
    fp.disarmAll();
    fp.arm("codec.cursor.step=prob:100:9");
    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(fp.fired("codec.cursor.step"));
}

TEST_F(FailPointTest, OffDisarmsOneSiteAndDisarmAllResets)
{
    FailPoints& fp = FailPoints::instance();
    fp.arm("codec.cursor.step=nth:5,core.cache.insert=once");
    EXPECT_TRUE(FailPoints::anyArmed());
    fp.arm("codec.cursor.step=off");
    EXPECT_TRUE(FailPoints::anyArmed()); // insert is still armed
    EXPECT_FALSE(WET_FAILPOINT_HIT("codec.cursor.step"));
    fp.arm("core.cache.insert=off");
    EXPECT_FALSE(FailPoints::anyArmed());
    fp.arm("core.cache.insert=once");
    fp.disarmAll();
    EXPECT_FALSE(FailPoints::anyArmed());
    EXPECT_EQ(fp.hits("codec.cursor.step"), 0u);
    EXPECT_EQ(fp.trips("core.cache.insert"), 0u);
}

TEST_F(FailPointTest, CheckThrowsWithTheSiteName)
{
    FailPoints::instance().arm("wetio.load.stream=once");
    try {
        WET_FAILPOINT("wetio.load.stream");
        FAIL() << "armed failpoint did not throw";
    } catch (const WetError& e) {
        EXPECT_NE(std::string(e.what()).find(
                      "injected fault at wetio.load.stream"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace support
} // namespace wet
