#include "support/bitstack.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace wet {
namespace support {
namespace {

TEST(BitStackTest, PushPopSingleBits)
{
    BitStack bs;
    bs.push(true);
    bs.push(false);
    bs.push(true);
    EXPECT_EQ(bs.size(), 3u);
    EXPECT_TRUE(bs.pop());
    EXPECT_FALSE(bs.pop());
    EXPECT_TRUE(bs.pop());
    EXPECT_TRUE(bs.empty());
}

TEST(BitStackTest, RandomAccessGet)
{
    Rng rng(3);
    BitStack bs;
    std::vector<bool> shadow;
    for (int i = 0; i < 1000; ++i) {
        bool b = rng.chance(1, 2);
        bs.push(b);
        shadow.push_back(b);
    }
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(bs.get(i), shadow[i]) << "bit " << i;
}

TEST(BitStackTest, CrossesWordBoundaries)
{
    BitStack bs;
    for (int i = 0; i < 200; ++i)
        bs.push(i % 3 == 0);
    for (int i = 199; i >= 0; --i)
        EXPECT_EQ(bs.pop(), i % 3 == 0);
}

TEST(BitStackTest, PushBitsRoundTrip)
{
    BitStack bs;
    bs.pushBits(0b101, 3);
    bs.pushBits(0xff, 8);
    bs.pushBits(0, 4);
    EXPECT_EQ(bs.size(), 15u);
    EXPECT_EQ(bs.popBits(4), 0u);
    EXPECT_EQ(bs.popBits(8), 0xffu);
    EXPECT_EQ(bs.popBits(3), 0b101u);
}

TEST(BitStackTest, GetBitsMatchesPushBits)
{
    Rng rng(11);
    BitStack bs;
    std::vector<std::pair<uint64_t, unsigned>> fields;
    size_t bitpos = 0;
    for (int i = 0; i < 500; ++i) {
        unsigned w = 1 + static_cast<unsigned>(rng.below(16));
        uint64_t v = rng.next() & ((uint64_t{1} << w) - 1);
        bs.pushBits(v, w);
        fields.emplace_back(v, w);
        bitpos += w;
    }
    EXPECT_EQ(bs.size(), bitpos);
    size_t at = 0;
    for (auto& [v, w] : fields) {
        EXPECT_EQ(bs.getBits(at, w), v);
        at += w;
    }
}

TEST(BitStackTest, SizeBytesRoundsUp)
{
    BitStack bs;
    EXPECT_EQ(bs.sizeBytes(), 0u);
    bs.push(true);
    EXPECT_EQ(bs.sizeBytes(), 1u);
    for (int i = 0; i < 8; ++i)
        bs.push(false);
    EXPECT_EQ(bs.sizeBytes(), 2u);
}

} // namespace
} // namespace support
} // namespace wet
