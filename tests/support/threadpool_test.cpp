#include "support/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace wet {
namespace support {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    std::thread::id runner;
    pool.submit([&] { runner = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ZeroThreadsDegradesToSerial)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    int ran = 0;
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, AllTasksRunExactlyOnce)
{
    ThreadPool pool(4, 8); // small queue: exercises backpressure
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits)
        h = 0;
    for (size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolTest, ExceptionRethrownAtWaitAndPoolStaysUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw WetError("boom"); });
    EXPECT_THROW(pool.wait(), WetError);
    // The error is cleared and the pool keeps working.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SerialPoolExceptionAlsoSurfacesAtWait)
{
    ThreadPool pool(1);
    EXPECT_NO_THROW(pool.submit([] { throw WetError("boom"); }));
    EXPECT_THROW(pool.wait(), WetError);
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPoolTest, SubmitAfterShutdownRejected)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 1); // shutdown drains, never drops
    EXPECT_THROW(pool.submit([] {}), WetError);
    ThreadPool serial(1);
    serial.shutdown();
    EXPECT_THROW(serial.submit([] {}), WetError);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent)
{
    ThreadPool pool(3);
    pool.shutdown();
    EXPECT_NO_THROW(pool.shutdown());
}

TEST(ParallelForTest, CoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(5000);
    for (auto& h : hits)
        h = 0;
    parallelFor(&pool, hits.size(),
                [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, NullPoolRunsSerialInOrder)
{
    std::vector<size_t> order;
    parallelFor(nullptr, 100,
                [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 100u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ExceptionPropagatesAndStopsEarly)
{
    ThreadPool pool(4);
    std::atomic<size_t> ran{0};
    EXPECT_THROW(
        parallelFor(&pool, 100000,
                    [&](size_t i) {
                        if (i == 17)
                            throw WetError("index 17 failed");
                        ++ran;
                    }),
        WetError);
    // Early-out: nowhere near the full range once the failure hit.
    EXPECT_LT(ran.load(), 100000u);
    // Pool remains usable for the next fan-out.
    std::atomic<size_t> ran2{0};
    parallelFor(&pool, 64, [&](size_t) { ++ran2; });
    EXPECT_EQ(ran2.load(), 64u);
}

/**
 * Property test: random task counts, durations, and failure
 * patterns, across thread and queue-capacity mixes. Every surviving
 * task runs exactly once, every failed round throws, and the pool is
 * always reusable for the next round. Seeded for reproducibility.
 */
TEST(ThreadPoolPropertyTest, RandomizedRounds)
{
    Rng rng(0xC0FFEE);
    for (int round = 0; round < 25; ++round) {
        const unsigned threads =
            static_cast<unsigned>(rng.range(1, 8));
        const size_t cap = static_cast<size_t>(rng.range(1, 32));
        ThreadPool pool(threads, cap);
        const size_t tasks = static_cast<size_t>(rng.range(0, 200));
        const bool withFailures = rng.chance(1, 3);
        std::vector<std::atomic<int>> hits(tasks > 0 ? tasks : 1);
        for (auto& h : hits)
            h = 0;
        size_t failures = 0;
        for (size_t i = 0; i < tasks; ++i) {
            const bool fail = withFailures && rng.chance(1, 10);
            failures += fail;
            const uint64_t spinNs = rng.below(20000);
            pool.submit([&hits, i, fail, spinNs] {
                if (spinNs > 10000)
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(spinNs));
                if (fail)
                    throw WetError("planned failure");
                ++hits[i];
            });
        }
        if (failures > 0)
            EXPECT_THROW(pool.wait(), WetError) << "round " << round;
        else
            EXPECT_NO_THROW(pool.wait()) << "round " << round;
        size_t ran = 0;
        for (size_t i = 0; i < tasks; ++i)
            ran += static_cast<size_t>(hits[i].load());
        EXPECT_EQ(ran, tasks - failures) << "round " << round;
    }
}

TEST(ThreadPoolPropertyTest, RandomizedParallelForMatchesSerial)
{
    Rng rng(0xBEEF);
    for (int round = 0; round < 20; ++round) {
        const unsigned threads =
            static_cast<unsigned>(rng.range(1, 8));
        const size_t n = static_cast<size_t>(rng.range(0, 3000));
        const uint64_t seed = rng.next();
        auto value = [seed](size_t i) {
            Rng r(seed + i);
            return static_cast<int64_t>(r.next());
        };
        std::vector<int64_t> expect(n);
        for (size_t i = 0; i < n; ++i)
            expect[i] = value(i);
        std::vector<int64_t> got(n, 0);
        ThreadPool pool(threads);
        parallelFor(&pool, n,
                    [&](size_t i) { got[i] = value(i); });
        EXPECT_EQ(got, expect) << "round " << round;
    }
}

} // namespace
} // namespace support
} // namespace wet
