#include <gtest/gtest.h>

#include "codec/cursor.h"
#include "codec/encoder.h"
#include "support/bitstack.h"
#include "support/varint.h"

// GTEST_FLAG_SET only exists from googletest 1.12; fall back to the
// classic flag accessor so the suite builds against older installs.
#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value)                                         \
    (void)(::testing::GTEST_FLAG(name) = value)
#endif

namespace wet {
namespace {

// Internal invariant violations panic (abort) rather than limp on
// with corrupt state — gem5's panic() discipline. Death tests pin
// the contract.

TEST(RobustnessDeathTest, BitStackPopFromEmptyPanics)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    support::BitStack bs;
    EXPECT_DEATH(bs.pop(), "pop from empty BitStack");
}

TEST(RobustnessDeathTest, BitStackGetOutOfRangePanics)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    support::BitStack bs;
    bs.push(true);
    EXPECT_DEATH(bs.get(1), "out of range");
}

TEST(RobustnessDeathTest, VarintBackwardReadAtZeroPanics)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    support::VarintBuffer buf;
    size_t pos = 0;
    EXPECT_DEATH(buf.readUnsignedBefore(pos), "backward read");
}

TEST(RobustnessDeathTest, CursorPastEndPanics)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    std::vector<int64_t> v(100, 7);
    codec::CompressedStream s =
        codec::encodeStream(v, codec::CodecConfig{});
    codec::StreamCursor cur(s);
    EXPECT_DEATH(cur.at(100), "past length");
}

TEST(RobustnessDeathTest, ForwardOnlyCursorCannotStepBack)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    // A forward-only cursor with NO checkpoints re-inits from the
    // front, which is legal; stepping before the sweep start on a
    // bidirectional cursor is caught by the route planner, so the
    // only illegal state left is internal. Verify the legal paths
    // here instead of death:
    std::vector<int64_t> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(i % 9);
    codec::CompressedStream s = codec::encodeStream(
        v, codec::CodecConfig{codec::Method::Fcm, 1, 0});
    codec::StreamCursor cur(s, codec::StreamCursor::Mode::Forward);
    EXPECT_EQ(cur.at(400), v[400]);
    EXPECT_EQ(cur.at(10), v[10]); // re-init from front, no death
}

} // namespace
} // namespace wet
