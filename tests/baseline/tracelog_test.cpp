#include "baseline/tracelog.h"

#include <gtest/gtest.h>

#include "analysis/moduleanalysis.h"
#include "interp/interpreter.h"
#include "lang/codegen.h"
#include "testutil.h"

namespace wet {
namespace baseline {
namespace {

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 15; i = i + 1) {
            mem[i % 4] = i * i;
            s = s + mem[(i + 1) % 4];
        }
        out(s);
    }
)";

struct Run
{
    std::unique_ptr<ir::Module> mod;
    TraceLog log;
    interp::RunResult result;
};

std::unique_ptr<Run>
runWithLog(const char* src)
{
    auto r = std::make_unique<Run>();
    r->mod = std::make_unique<ir::Module>(
        lang::compileString(src, 1 << 12));
    analysis::ModuleAnalysis ma(*r->mod);
    interp::VectorInput input({});
    interp::Interpreter interp(ma, input, &r->log);
    r->result = interp.run();
    return r;
}

TEST(TraceLogTest, RecordsEveryStatement)
{
    auto r = runWithLog(kProgram);
    EXPECT_EQ(r->log.events().size(), r->result.stmtsExecuted);
    EXPECT_GT(r->log.sizeBytes(),
              r->result.stmtsExecuted * sizeof(TraceLog::Event) - 1);
}

TEST(TraceLogTest, ValueQueryScansCorrectly)
{
    auto r = runWithLog(kProgram);
    // Find the load statement and check its value sequence.
    ir::StmtId load = ir::kNoStmt;
    for (const auto& e : r->log.events())
        if (e.flags & TraceLog::kIsLoad)
            load = e.stmt;
    ASSERT_NE(load, ir::kNoStmt);
    std::vector<int64_t> vals;
    uint64_t n = r->log.extractValues(load, [&](int64_t v) {
        vals.push_back(v);
    });
    EXPECT_EQ(n, 15u);
    EXPECT_EQ(vals.size(), 15u);
}

TEST(TraceLogTest, AddressQueryMatchesEvents)
{
    auto r = runWithLog(kProgram);
    ir::StmtId store = ir::kNoStmt;
    for (const auto& e : r->log.events())
        if (e.flags & TraceLog::kIsStore)
            store = e.stmt;
    ASSERT_NE(store, ir::kNoStmt);
    std::vector<uint64_t> addrs;
    r->log.extractAddresses(store, [&](uint64_t a) {
        addrs.push_back(a);
    });
    ASSERT_EQ(addrs.size(), 15u);
    for (size_t i = 0; i < 15; ++i)
        EXPECT_EQ(addrs[i], i % 4);
}

TEST(TraceLogTest, ControlFlowCoversBlocks)
{
    auto r = runWithLog(kProgram);
    uint64_t blocks = r->log.extractControlFlow(
        [](ir::FuncId, ir::BlockId) {});
    EXPECT_GT(blocks, 15u);
}

TEST(TraceLogTest, BackwardSliceFollowsDependences)
{
    auto r = runWithLog(kProgram);
    r->log.buildIndex();
    // Slice from the out()'s operand.
    const TraceLog::Event* outEv = nullptr;
    for (const auto& e : r->log.events())
        if (r->mod->instr(e.stmt).op == ir::Opcode::Out)
            outEv = &e;
    ASSERT_NE(outEv, nullptr);
    auto slice = r->log.backwardSlice(outEv->deps[0].stmt,
                                      outEv->deps[0].instance);
    EXPECT_GT(slice.size(), 10u);
    // The seed is in the slice.
    bool hasSeed = false;
    for (auto& [s, i] : slice)
        hasSeed |= (s == outEv->deps[0].stmt &&
                    i == outEv->deps[0].instance);
    EXPECT_TRUE(hasSeed);
    // Capped slices truncate.
    auto small = r->log.backwardSlice(outEv->deps[0].stmt,
                                      outEv->deps[0].instance, 3);
    EXPECT_EQ(small.size(), 3u);
}

TEST(TraceLogTest, SliceOfMissingInstanceIsJustTheSeed)
{
    auto r = runWithLog(kProgram);
    r->log.buildIndex();
    auto slice = r->log.backwardSlice(0, 999999);
    EXPECT_EQ(slice.size(), 1u);
}

} // namespace
} // namespace baseline
} // namespace wet
