#include "arch/archprofile.h"

#include <gtest/gtest.h>

#include "arch/branchpredictor.h"
#include "arch/cache.h"
#include "lang/codegen.h"
#include "support/rng.h"
#include "testutil.h"

namespace wet {
namespace arch {
namespace {

TEST(GshareTest, LearnsAlwaysTakenBranch)
{
    GsharePredictor pred(10);
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        if (!pred.predictAndUpdate(0x42, true))
            ++wrong;
    EXPECT_LT(wrong, 40); // history warm-up touches ~index-bits slots
    EXPECT_EQ(pred.lookups(), 1000u);
}

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor pred(12);
    int wrongTail = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i % 2 == 0);
        bool ok = pred.predictAndUpdate(0x7, taken);
        if (i >= 2000 && !ok)
            ++wrongTail;
    }
    // With global history the alternation becomes predictable.
    EXPECT_LT(wrongTail, 100);
}

TEST(GshareTest, RandomBranchesMispredictOften)
{
    GsharePredictor pred(12);
    support::Rng rng(5);
    int wrong = 0;
    for (int i = 0; i < 4000; ++i)
        if (!pred.predictAndUpdate(0x9, rng.chance(1, 2)))
            ++wrong;
    EXPECT_GT(wrong, 1000);
}

TEST(CacheTest, RepeatedAccessHits)
{
    Cache c;
    EXPECT_FALSE(c.access(100));
    EXPECT_TRUE(c.access(100));
    EXPECT_TRUE(c.access(101)); // same line (4-word lines)
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.accesses(), 3u);
}

TEST(CacheTest, LruEvictsOldest)
{
    CacheConfig cfg;
    cfg.lineWords = 1;
    cfg.numSets = 1;
    cfg.associativity = 2;
    Cache c(cfg);
    EXPECT_FALSE(c.access(1));
    EXPECT_FALSE(c.access(2));
    EXPECT_TRUE(c.access(1));  // 2 is now LRU
    EXPECT_FALSE(c.access(3)); // evicts 2
    EXPECT_FALSE(c.access(2));
    EXPECT_TRUE(c.access(3));
}

TEST(CacheTest, StreamingThroughBigArrayMisses)
{
    Cache c; // 128 KB
    uint64_t start = 0;
    // First sweep over 1M words: cold misses on every line.
    uint64_t missesBefore = c.misses();
    for (uint64_t a = start; a < start + (1 << 20); a += 4)
        c.access(a);
    EXPECT_EQ(c.misses() - missesBefore, uint64_t{1} << 18);
}

TEST(ArchProfileTest, CollectsPerStatementBitHistories)
{
    const char* src = R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                mem[i * 64] = i;       // streaming stores
                s = s + mem[i * 64];   // immediately re-loaded: hits
            }
            out(s);
        }
    )";
    ir::Module mod = lang::compileString(src, 1 << 20);
    analysis::ModuleAnalysis ma(mod);
    interp::VectorInput input({});
    ArchProfileSink sink;
    interp::Interpreter interp(ma, input, &sink);
    auto r = interp.run();
    EXPECT_EQ(sink.branches(), r.branches);
    EXPECT_EQ(sink.cacheAccesses(), r.loads + r.stores);
    // One bit per instance.
    uint64_t branchBits = 0;
    for (const auto& [stmt, bits] : sink.branchHistory()) {
        (void)stmt;
        branchBits += bits.size();
    }
    EXPECT_EQ(branchBits, r.branches);
    uint64_t loadBits = 0;
    for (const auto& [stmt, bits] : sink.loadHistory()) {
        (void)stmt;
        loadBits += bits.size();
    }
    EXPECT_EQ(loadBits, r.loads);
    // The load after each store touches a just-fetched line.
    EXPECT_LT(sink.cacheMisses(), sink.cacheAccesses());
    EXPECT_GT(sink.branchHistoryBytes() + sink.loadHistoryBytes() +
                  sink.storeHistoryBytes(),
              0u);
}

} // namespace
} // namespace arch
} // namespace wet
