#include "core/streamcache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/streamkey.h"

namespace wet {
namespace core {
namespace {

/** Probe reader that reports its key and flags its destruction. */
class ProbeReader : public SeqReader
{
  public:
    ProbeReader(uint64_t id, bool* destroyed)
        : id_(id), destroyed_(destroyed)
    {
    }
    ~ProbeReader() override
    {
        if (destroyed_ != nullptr)
            *destroyed_ = true;
    }
    uint64_t length() const override { return 1; }
    int64_t at(uint64_t) override
    {
        return static_cast<int64_t>(id_);
    }

  private:
    uint64_t id_;
    bool* destroyed_;
};

StreamCache::Factory
probe(uint64_t id, bool* destroyed = nullptr)
{
    return [id, destroyed]() {
        return std::make_unique<ProbeReader>(id, destroyed);
    };
}

TEST(StreamCacheTest, HitsAndMissesAreCounted)
{
    StreamCache cache; // unbounded
    SeqReader& a = cache.get(1, probe(1));
    SeqReader& b = cache.get(1, probe(99));
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.at(0), 1); // factory not re-invoked on the hit
    cache.get(2, probe(2));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(StreamCacheTest, LruEvictsLeastRecentlyUsed)
{
    StreamCache cache(2);
    cache.get(1, probe(1));
    cache.get(2, probe(2));
    cache.get(1, probe(1)); // 1 becomes most recent
    cache.get(3, probe(3)); // evicts 2
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    uint64_t missesBefore = cache.stats().misses;
    EXPECT_EQ(cache.get(1, probe(1)).at(0), 1); // still warm
    EXPECT_EQ(cache.stats().misses, missesBefore);
    cache.get(2, probe(2)); // cold again
    EXPECT_EQ(cache.stats().misses, missesBefore + 1);
}

TEST(StreamCacheTest, EvictedReaderSurvivesUntilPurge)
{
    StreamCache cache(1);
    bool destroyed = false;
    SeqReader& a = cache.get(1, probe(1, &destroyed));
    cache.get(2, probe(2)); // evicts key 1
    EXPECT_EQ(cache.stats().evictions, 1u);
    // A query may still hold the reference it got before the
    // eviction; the reader must stay alive and correct.
    EXPECT_FALSE(destroyed);
    EXPECT_EQ(a.at(0), 1);
    cache.purge();
    EXPECT_TRUE(destroyed);
}

TEST(StreamCacheTest, CapacityZeroNeverEvicts)
{
    StreamCache cache(0);
    for (uint64_t k = 0; k < 100; ++k)
        cache.get(k, probe(k));
    EXPECT_EQ(cache.size(), 100u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(StreamCacheTest, TouchedTracksDistinctKeysPerQuery)
{
    StreamCache cache;
    cache.get(1, probe(1));
    cache.get(2, probe(2));
    cache.get(1, probe(1));
    EXPECT_EQ(cache.touchedCount(), 2u);
    cache.resetTouched();
    EXPECT_EQ(cache.touchedCount(), 0u);
    cache.get(2, probe(2)); // warm hit still counts as touched
    EXPECT_EQ(cache.touchedCount(), 1u);
}

TEST(StreamCacheTest, ClearDropsEntriesAndKeepsStats)
{
    StreamCache cache(1);
    bool destroyed = false;
    cache.get(1, probe(1, &destroyed));
    cache.get(2, probe(2)); // key 1 to graveyard
    cache.clear();
    EXPECT_TRUE(destroyed); // graveyard freed too
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 2u); // stats survive clear
}

TEST(StreamCacheTest, ForEachVisitsOnlyLiveEntries)
{
    StreamCache cache(2);
    cache.get(1, probe(1));
    cache.get(2, probe(2));
    cache.get(3, probe(3)); // evicts 1
    std::vector<uint64_t> keys;
    cache.forEach([&](uint64_t key, SeqReader&) {
        keys.push_back(key);
    });
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(keys, (std::vector<uint64_t>{2, 3}));
}

TEST(StreamKeyTest, KindRoundTripsAndKeysAreDistinct)
{
    uint64_t a = streamKey(StreamKind::AccessTs, 7);
    uint64_t b = streamKey(StreamKind::CursorTs, 7);
    uint64_t c = streamKey(StreamKind::DecodeTs, 7);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_EQ(streamKeyKind(a), StreamKind::AccessTs);
    EXPECT_EQ(streamKeyKind(b), StreamKind::CursorTs);
    EXPECT_EQ(streamKeyKind(c), StreamKind::DecodeTs);
    uint64_t d = streamKey(StreamKind::AccessUvals, 5, 9, 2);
    uint64_t e = streamKey(StreamKind::AccessUvals, 5, 2, 9);
    EXPECT_NE(d, e);
    EXPECT_EQ(streamKeyKind(d), StreamKind::AccessUvals);
}

} // namespace
} // namespace core
} // namespace wet
