#include <gtest/gtest.h>

#include "core/access.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

TEST(PartialPathTest, HaltMidBlockTruncatesTheStatementList)
{
    // Halt fires inside a called function; every frame above it is
    // cut off mid-block and must become a partial node containing
    // exactly the statements that executed.
    auto p = runPipeline(R"(
        fn inner(x) {
            mem[0] = x;
            halt;
        }
        fn outer(x) {
            var before = x * 2;
            var r = inner(before);
            return r + 1;  // never executes
        }
        fn main() {
            var a = 5;
            out(outer(a)); // out never executes
        }
    )");
    const WetGraph& g = p->graph;
    // Statements observed == statements stored across nodes.
    uint64_t stored = 0;
    for (const auto& node : g.nodes)
        stored += node.stmts.size() * node.instances();
    EXPECT_EQ(stored, p->record.stmts.size());
    // outer's and main's nodes are partial; inner's halt block ended
    // normally at its Halt terminator.
    int partials = 0;
    for (const auto& node : g.nodes)
        if (node.partial)
            ++partials;
    EXPECT_EQ(partials, 2);
    // Unreturned calls drop their pending dependences gracefully.
    EXPECT_GT(p->graph.droppedDeps, 0u);
}

TEST(PartialPathTest, CfTraceStillCoversEverything)
{
    auto p = runPipeline(R"(
        fn maybe_die(x) {
            if (x > 6) { halt; }
            return x;
        }
        fn main() {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                s = s + maybe_die(i);
            }
            out(s);
        }
    )");
    const WetGraph& g = p->graph;
    WetAccess acc(g, *p->module);
    ControlFlowQuery q(acc);
    uint64_t visited = 0;
    q.extractForward([&](NodeId, Timestamp) { ++visited; });
    EXPECT_EQ(visited, g.lastTimestamp);
    // And tier-2 agrees.
    WetCompressed comp(g);
    WetAccess acc2(comp, *p->module);
    ControlFlowQuery q2(acc2);
    uint64_t visited2 = 0;
    q2.extractBackward([&](NodeId, Timestamp) { ++visited2; });
    EXPECT_EQ(visited2, g.lastTimestamp);
}

TEST(PartialPathTest, PartialNodesHaveConsistentBlockStructure)
{
    auto p = runPipeline(R"(
        fn boom() { mem[1] = 9; halt; }
        fn main() {
            var x = 1;
            if (in() > 0) {
                x = x + 1;
                boom();
                x = x + 100; // unreachable
            }
            out(x);
        }
    )",
                         {5});
    for (const auto& node : p->graph.nodes) {
        // blockFirstStmt is monotone and in range.
        for (size_t b = 0; b < node.blockFirstStmt.size(); ++b) {
            EXPECT_LT(node.blockFirstStmt[b], node.stmts.size() + 1);
            if (b > 0) {
                EXPECT_GT(node.blockFirstStmt[b],
                          node.blockFirstStmt[b - 1]);
            }
        }
        EXPECT_EQ(node.blocks.size(), node.blockFirstStmt.size());
        // Group maps stay within bounds.
        for (uint32_t g : node.stmtGroup) {
            if (g != kNoIndex) {
                EXPECT_LT(g, node.groups.size());
            }
        }
    }
}

TEST(PartialPathTest, NormalProgramsHaveNoPartials)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 50; i = i + 1) { s = s + i; }
            out(s);
        }
    )");
    for (const auto& node : p->graph.nodes)
        EXPECT_FALSE(node.partial);
    EXPECT_EQ(p->graph.droppedDeps, 0u);
}

} // namespace
} // namespace core
} // namespace wet
