#include <gtest/gtest.h>

#include "core/access.h"
#include "core/valuequery.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

/**
 * A wetlang rendition of the paper's Figure 1 scenario: a loop whose
 * body conditionally computes a value (the paper's node 8), driven by
 * values read from input. The test checks the WET facts the figure
 * calls out: the statement executes once per iteration that takes
 * its branch, its node labels carry <ts, val> pairs in order, and it
 * has control- and data-dependence edges to its predicate and
 * operand producers.
 */
const char* kFigure1 = R"(
    fn main() {
        var n = in();       // 5 iterations, like node 8's 5 instances
        var z = 0;
        for (var i = 0; i < n; i = i + 1) {
            var t = in();
            if (t % 2 == 0) {
                z = t * 2;  // "node 8": value computed conditionally
            } else {
                z = t + 1;
            }
            out(z);
        }
    }
)";

TEST(Figure1Test, Node8StyleLabelsAndEdges)
{
    // Inputs: n = 5, then t = 2, 3, 4, 5, 6 — three even (branch
    // taken) and two odd.
    auto p = runPipeline(kFigure1, {5, 2, 3, 4, 5, 6});
    WetAccess acc(p->graph, *p->module);

    // Find the Mul statement implementing z = t * 2.
    ir::StmtId mulStmt = ir::kNoStmt;
    for (const auto& ev : p->record.stmts)
        if (p->module->instr(ev.stmt).op == ir::Opcode::Mul)
            mulStmt = ev.stmt;
    ASSERT_NE(mulStmt, ir::kNoStmt);

    // Like the figure's node 8, the statement has one <ts, val> pair
    // per execution, in increasing timestamp order, with the correct
    // values.
    ValueTraceQuery q(acc);
    std::vector<std::pair<Timestamp, int64_t>> labels;
    q.extract(mulStmt, [&](Timestamp t, int64_t v) {
        labels.emplace_back(t, v);
    });
    ASSERT_EQ(labels.size(), 3u); // t = 2, 4, 6
    EXPECT_EQ(labels[0].second, 4);
    EXPECT_EQ(labels[1].second, 8);
    EXPECT_EQ(labels[2].second, 12);
    EXPECT_LT(labels[0].first, labels[1].first);
    EXPECT_LT(labels[1].first, labels[2].first);

    // The statement's node(s) carry CD edges to the if-predicate and
    // DD edges feeding the operand (the figure's labeled edges).
    const WetGraph& g = p->graph;
    bool hasCd = false;
    bool hasDd = false;
    for (const auto& [n, pos] : g.stmtIndex.at(mulStmt)) {
        for (uint8_t slot : {uint8_t{0}, uint8_t{1}}) {
            if (!g.incoming(n, pos, slot).empty())
                hasDd = true;
        }
        // CD edges attach at the block's first statement.
        const WetNode& node = g.nodes[n];
        uint32_t first = 0;
        for (uint32_t b = 0; b < node.blockFirstStmt.size(); ++b)
            if (node.blockFirstStmt[b] <= pos)
                first = node.blockFirstStmt[b];
        if (!g.incoming(n, first, kCdSlot).empty())
            hasCd = true;
        // Every edge into the mul is either local (inferred) or
        // labeled from the pool.
        for (uint32_t e : g.incoming(n, pos, 0)) {
            const WetEdge& ed = g.edges[e];
            EXPECT_TRUE(ed.local || ed.labelPool != kNoIndex);
        }
    }
    EXPECT_TRUE(hasDd);
    EXPECT_TRUE(hasCd);
}

TEST(Figure1Test, TimestampsSequenceTheWholeExecution)
{
    auto p = runPipeline(kFigure1, {5, 2, 3, 4, 5, 6});
    const WetGraph& g = p->graph;
    // As in the figure, following <t>, <t+1> pairs walks the whole
    // execution: total instances equal the last timestamp.
    uint64_t instances = 0;
    for (const auto& node : g.nodes)
        instances += node.instances();
    EXPECT_EQ(instances, g.lastTimestamp);
    EXPECT_GE(g.lastTimestamp, 5u); // at least one per iteration
}

} // namespace
} // namespace core
} // namespace wet
