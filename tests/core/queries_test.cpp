#include "core/cfquery.h"

#include <gtest/gtest.h>

#include <map>

#include "core/addrquery.h"
#include "core/valuequery.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

const char* kCallFree = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 25; i = i + 1) {
            var t = in();
            if (t % 3 == 0) { mem[i % 5] = t; }
            else { s = s + mem[(i + 2) % 5]; }
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs25()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 25; ++i)
        v.push_back((i * 7 + 3) % 23);
    return v;
}

/** Flatten a CF extraction into the block-id sequence it denotes. */
std::vector<std::pair<ir::FuncId, ir::BlockId>>
flattenTrace(WetAccess& acc, bool forward)
{
    std::vector<std::pair<ir::FuncId, ir::BlockId>> blocks;
    ControlFlowQuery q(acc);
    auto visit = [&](NodeId n, Timestamp) {
        const WetNode& node = acc.graph().nodes[n];
        for (ir::BlockId b : node.blocks)
            blocks.emplace_back(node.func, b);
    };
    if (forward) {
        q.extractForward(visit);
    } else {
        q.extractBackward(visit);
    }
    return blocks;
}

TEST(ControlFlowQueryTest, ForwardMatchesExecutionForCallFree)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetAccess acc(p->graph, *p->module);
    auto trace = flattenTrace(acc, true);
    // For a call-free program the completion order equals execution
    // order, so the regenerated trace is exactly the recorded one.
    ASSERT_EQ(trace.size(), p->record.blocks.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].first, p->record.blocks[i].func);
        EXPECT_EQ(trace[i].second, p->record.blocks[i].block)
            << "at " << i;
    }
}

TEST(ControlFlowQueryTest, Tier2MatchesTier1BothDirections)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    WetAccess t2(comp, *p->module);
    EXPECT_EQ(flattenTrace(t1, true), flattenTrace(t2, true));
    EXPECT_EQ(flattenTrace(t1, false), flattenTrace(t2, false));
}

TEST(ControlFlowQueryTest, BackwardIsReverseAtPathGranularity)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetAccess acc(p->graph, *p->module);
    std::vector<std::pair<NodeId, Timestamp>> fwd;
    std::vector<std::pair<NodeId, Timestamp>> bwd;
    ControlFlowQuery q(acc);
    q.extractForward([&](NodeId n, Timestamp t) {
        fwd.emplace_back(n, t);
    });
    q.extractBackward([&](NodeId n, Timestamp t) {
        bwd.emplace_back(n, t);
    });
    std::reverse(bwd.begin(), bwd.end());
    EXPECT_EQ(fwd, bwd);
}

TEST(ControlFlowQueryTest, RangeExtractionFromMidTrace)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetAccess acc(p->graph, *p->module);
    ControlFlowQuery q(acc);
    std::vector<std::pair<NodeId, Timestamp>> all;
    q.extractForward([&](NodeId n, Timestamp t) {
        all.emplace_back(n, t);
    });
    ASSERT_GT(all.size(), 10u);
    // Start in the middle and take five instances.
    Timestamp from = all[all.size() / 2].second;
    std::vector<std::pair<NodeId, Timestamp>> window;
    q.extractRange(from, 5, [&](NodeId n, Timestamp t) {
        window.emplace_back(n, t);
    });
    ASSERT_EQ(window.size(), 5u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(window[i], all[all.size() / 2 + i]);
}

TEST(ControlFlowQueryTest, WorksAcrossCalls)
{
    auto p = runPipeline(R"(
        fn twice(x) { return x * 2; }
        fn main() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) { s = s + twice(i); }
            out(s);
        }
    )");
    WetAccess acc(p->graph, *p->module);
    auto trace = flattenTrace(acc, true);
    // Completion-ordered traversal still covers the exact multiset
    // of executed blocks.
    std::map<std::pair<ir::FuncId, ir::BlockId>, int64_t> expected;
    for (const auto& br : p->record.blocks)
        expected[{br.func, br.block}]++;
    std::map<std::pair<ir::FuncId, ir::BlockId>, int64_t> actual;
    for (auto& fb : trace)
        actual[fb]++;
    EXPECT_EQ(actual, expected);
}

TEST(ValueTraceQueryTest, LoadValueTraceMatchesRecording)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetAccess acc(p->graph, *p->module);
    ValueTraceQuery q(acc);
    for (ir::StmtId s : q.stmtsWithOpcode(ir::Opcode::Load)) {
        std::vector<int64_t> got;
        q.extract(s, [&](Timestamp, int64_t v) {
            got.push_back(v);
        });
        std::vector<int64_t> want;
        for (const auto& ev : p->record.stmts)
            if (ev.stmt == s)
                want.push_back(ev.value);
        EXPECT_EQ(got, want) << "load stmt " << s;
    }
}

TEST(ValueTraceQueryTest, Tier2MatchesTier1)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    WetAccess t2(comp, *p->module);
    ValueTraceQuery q1(t1);
    ValueTraceQuery q2(t2);
    for (ir::StmtId s : q1.stmtsWithOpcode(ir::Opcode::Load)) {
        std::vector<std::pair<Timestamp, int64_t>> a;
        std::vector<std::pair<Timestamp, int64_t>> b;
        q1.extract(s, [&](Timestamp t, int64_t v) {
            a.emplace_back(t, v);
        });
        q2.extract(s, [&](Timestamp t, int64_t v) {
            b.emplace_back(t, v);
        });
        EXPECT_EQ(a, b);
    }
}

TEST(AddressTraceQueryTest, LoadAndStoreAddressesMatchRecording)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetAccess acc(p->graph, *p->module);
    AddressTraceQuery q(acc);
    ValueTraceQuery vq(acc);
    for (ir::Opcode op : {ir::Opcode::Load, ir::Opcode::Store}) {
        for (ir::StmtId s : vq.stmtsWithOpcode(op)) {
            std::vector<uint64_t> got;
            q.extract(s, [&](Timestamp, uint64_t a) {
                got.push_back(a);
            });
            std::vector<uint64_t> want;
            for (const auto& ev : p->record.stmts)
                if (ev.stmt == s)
                    want.push_back(ev.addr);
            EXPECT_EQ(got, want)
                << ir::opcodeName(op) << " stmt " << s;
        }
    }
}

TEST(AddressTraceQueryTest, Tier2MatchesRecordingToo)
{
    auto p = runPipeline(kCallFree, inputs25());
    WetCompressed comp(p->graph);
    WetAccess acc(comp, *p->module);
    AddressTraceQuery q(acc);
    ValueTraceQuery vq(acc);
    for (ir::StmtId s : vq.stmtsWithOpcode(ir::Opcode::Load)) {
        std::vector<uint64_t> got;
        q.extract(s, [&](Timestamp, uint64_t a) {
            got.push_back(a);
        });
        std::vector<uint64_t> want;
        for (const auto& ev : p->record.stmts)
            if (ev.stmt == s)
                want.push_back(ev.addr);
        EXPECT_EQ(got, want) << "load stmt " << s;
    }
}

} // namespace
} // namespace core
} // namespace wet
