#include "core/builder.h"

#include <gtest/gtest.h>

#include <map>

#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

TEST(WetBuilderTest, TimestampsAreDenseAndOrdered)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 20; i = i + 1) { s = s + i; }
            out(s);
        }
    )");
    const WetGraph& g = p->graph;
    // Timestamps 1..lastTimestamp each appear on exactly one node.
    std::map<Timestamp, int> seen;
    for (const auto& node : g.nodes) {
        Timestamp prev = 0;
        for (Timestamp t : node.ts) {
            EXPECT_GT(t, prev); // strictly increasing per node
            prev = t;
            seen[t]++;
        }
    }
    EXPECT_EQ(seen.size(), g.lastTimestamp);
    for (const auto& [t, c] : seen) {
        EXPECT_GE(t, 1u);
        EXPECT_LE(t, g.lastTimestamp);
        EXPECT_EQ(c, 1) << "timestamp " << t;
    }
}

TEST(WetBuilderTest, StatementInstanceTotalsMatchRun)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 13; i = i + 1) {
                mem[i] = i * i;
                s = s + mem[i];
            }
            out(s);
        }
    )");
    EXPECT_EQ(p->graph.stmtInstancesTotal, p->result.stmtsExecuted);
    EXPECT_EQ(p->graph.stmtInstancesTotal, p->record.stmts.size());
}

TEST(WetBuilderTest, NodesCoverEveryExecutedBlock)
{
    auto p = runPipeline(R"(
        fn helper(x) { return x * 2; }
        fn main() {
            var s = 0;
            for (var i = 0; i < 8; i = i + 1) { s = s + helper(i); }
            out(s);
        }
    )");
    const WetGraph& g = p->graph;
    // The multiset of blocks covered by node instances equals the
    // recorded block trace's multiset.
    std::map<std::pair<ir::FuncId, ir::BlockId>, int64_t> expected;
    for (const auto& br : p->record.blocks)
        expected[{br.func, br.block}]++;
    std::map<std::pair<ir::FuncId, ir::BlockId>, int64_t> actual;
    for (const auto& node : g.nodes)
        for (ir::BlockId b : node.blocks)
            actual[{node.func, b}] +=
                static_cast<int64_t>(node.instances());
    EXPECT_EQ(actual, expected);
}

TEST(WetBuilderTest, ValueLabelsReconstructExactly)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) {
                var t = in();
                s = s + t * t;
            }
            out(s);
        }
    )",
                         {3, 1, 4, 1, 5, 9, 2, 6, 5, 3});
    const WetGraph& g = p->graph;
    // Reconstruct Values[i] = UVals[Pattern[i]] for every group
    // member and compare against the recorded per-statement values.
    std::map<ir::StmtId, std::vector<int64_t>> rebuilt;
    for (const auto& node : g.nodes) {
        for (const auto& grp : node.groups) {
            for (size_t mi = 0; mi < grp.members.size(); ++mi) {
                ir::StmtId s = node.stmts[grp.members[mi]];
                auto& vec = rebuilt[s];
                for (uint32_t pidx : grp.pattern)
                    vec.push_back(grp.uvals[mi][pidx]);
            }
        }
    }
    std::map<ir::StmtId, std::vector<int64_t>> reference;
    for (const auto& ev : p->record.stmts) {
        if (!ev.hasValue)
            continue;
        if (p->module->instr(ev.stmt).op == ir::Opcode::Const)
            continue;
        reference[ev.stmt].push_back(ev.value);
    }
    ASSERT_EQ(rebuilt.size(), reference.size());
    for (auto& [stmt, vals] : reference) {
        auto it = rebuilt.find(stmt);
        ASSERT_NE(it, rebuilt.end()) << "stmt " << stmt;
        // This call-free program executes paths in order, so the
        // sequences match exactly.
        EXPECT_EQ(it->second, vals) << "stmt " << stmt;
    }
}

TEST(WetBuilderTest, LocalEdgesAreInferred)
{
    // A tight arithmetic chain inside one loop body: its intra-path
    // register dependences must become label-free local edges.
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 50; i = i + 1) {
                var a = i * 3;
                var b = a + 7;
                s = s + b;
            }
            out(s);
        }
    )");
    const WetGraph& g = p->graph;
    uint64_t local = 0;
    uint64_t labeled = 0;
    for (const auto& e : g.edges) {
        if (e.local) {
            ++local;
            EXPECT_EQ(e.defNode, e.useNode);
            EXPECT_EQ(e.labelPool, kNoIndex);
        } else {
            EXPECT_NE(e.labelPool, kNoIndex);
            ++labeled;
        }
    }
    EXPECT_GT(local, 0u);
    EXPECT_GT(labeled, 0u); // loop-carried deps stay labeled
}

TEST(WetBuilderTest, PooledLabelsAreShared)
{
    // Many independent chains crossing the same path boundary give
    // identical label sequences, which must be stored once.
    auto p = runPipeline(R"(
        fn main() {
            var a = 0;
            var b = 0;
            var c = 0;
            for (var i = 0; i < 30; i = i + 1) {
                a = a + 1;
                b = b + 2;
                c = c + 3;
            }
            out(a + b + c);
        }
    )");
    const WetGraph& g = p->graph;
    uint64_t nonLocal = 0;
    for (const auto& e : g.edges)
        if (!e.local)
            ++nonLocal;
    EXPECT_LT(g.labelPool.size(), nonLocal)
        << "identical label sequences should share pool entries";
}

TEST(WetBuilderTest, DepInstancesMatchRecordedEvents)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 12; i = i + 1) {
                mem[i % 4] = s;
                s = s + mem[(i + 1) % 4];
            }
            out(s);
        }
    )");
    uint64_t expected = 0;
    for (const auto& ev : p->record.stmts)
        expected += ev.numDeps;
    EXPECT_EQ(p->graph.depInstancesTotal, expected);
    // Label instances stored on edges (local edges count implicitly).
    uint64_t labels = 0;
    for (const auto& e : p->graph.edges) {
        if (e.local)
            labels += p->graph.nodes[e.useNode].instances();
        else
            labels += 0; // shared pools counted separately below
    }
    (void)labels;
    EXPECT_EQ(p->graph.droppedDeps, 0u);
}

TEST(WetBuilderTest, ControlDependenceEdgesExist)
{
    auto p = runPipeline(R"(
        fn main() {
            for (var i = 0; i < 6; i = i + 1) {
                if (i % 2 == 0) { mem[0] = mem[0] + 1; }
            }
            out(mem[0]);
        }
    )");
    uint64_t cdEdges = 0;
    for (const auto& e : p->graph.edges)
        if (e.slot == kCdSlot)
            ++cdEdges;
    EXPECT_GT(cdEdges, 0u);
    uint64_t expectedCd = 0;
    for (const auto& br : p->record.blocks)
        if (br.control.valid())
            ++expectedCd;
    EXPECT_EQ(p->graph.cdInstancesTotal, expectedCd);
}

TEST(WetBuilderTest, HaltInCalleeProducesPartialNodes)
{
    auto p = runPipeline(R"(
        fn die(x) { if (x > 3) { halt; } return x; }
        fn main() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) { s = s + die(i); }
            out(s);
        }
    )");
    bool sawPartial = false;
    for (const auto& node : p->graph.nodes)
        sawPartial = sawPartial || node.partial;
    EXPECT_TRUE(sawPartial);
    // The graph is still well-formed: every timestamp accounted for.
    uint64_t instances = 0;
    for (const auto& node : p->graph.nodes)
        instances += node.instances();
    EXPECT_EQ(instances, p->graph.lastTimestamp);
}

TEST(WetBuilderTest, RecursionBuildsConsistentGraph)
{
    auto p = runPipeline(R"(
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { out(fib(10)); }
    )");
    EXPECT_EQ(p->result.outputs[0], 55);
    EXPECT_EQ(p->graph.stmtInstancesTotal, p->record.stmts.size());
    EXPECT_EQ(p->graph.droppedDeps, 0u);
    uint64_t instances = 0;
    for (const auto& node : p->graph.nodes)
        instances += node.instances();
    EXPECT_EQ(instances, p->graph.lastTimestamp);
}

TEST(WetBuilderTest, SizesShrinkAcrossTiers)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 200; i = i + 1) {
                s = s + i * 3;
                mem[i % 8] = s;
            }
            out(s);
        }
    )");
    TierSizes orig = p->graph.origSizes();
    TierSizes t1 = p->graph.tier1Sizes();
    EXPECT_GT(orig.total(), 0u);
    EXPECT_LT(t1.nodeTs, orig.nodeTs);
    EXPECT_LT(t1.edgeTs, orig.edgeTs);
    EXPECT_LE(t1.total(), orig.total());
}

} // namespace
} // namespace core
} // namespace wet
