#include "core/valuegroup.h"

#include <gtest/gtest.h>

#include "lang/codegen.h"

namespace wet {
namespace core {
namespace {

/** Collect the straight-line statement list of a whole function. */
std::vector<ir::StmtId>
flatten(const ir::Module& m)
{
    std::vector<ir::StmtId> stmts;
    const ir::Function& fn = m.function(m.entryFunction());
    for (const auto& blk : fn.blocks)
        for (const auto& in : blk.instrs)
            stmts.push_back(in.stmt);
    return stmts;
}

TEST(ValueGroupTest, PureChainsShareOneGroup)
{
    // y = f(x), z = g(x, y): both depend only on the input x, so the
    // paper's example yields a single group.
    ir::Module m = lang::compileString(R"(
        fn main() {
            var x = in();
            var y = x * 3;
            var z = x + y;
            out(z);
        }
    )");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    // Count groups holding more than one member: exactly one big
    // group containing the In statement and the arithmetic chain.
    size_t multi = 0;
    for (const auto& g : plan.groups)
        if (g.members.size() > 1)
            ++multi;
    EXPECT_EQ(multi, 1u);
}

TEST(ValueGroupTest, IndependentInputsSplitGroups)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var a = in();
            var b = in();
            var x = a * 2;
            var y = b * 3;
            out(x);
            out(y);
        }
    )");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    // x's chain and y's chain depend on different, incomparable
    // inputs, so they land in different groups.
    uint32_t gx = kNoIndex;
    uint32_t gy = kNoIndex;
    for (uint32_t i = 0; i < stmts.size(); ++i) {
        const ir::Instr& in = m.instr(stmts[i]);
        if (in.op == ir::Opcode::Mul) {
            if (gx == kNoIndex)
                gx = plan.stmtGroup[i];
            else
                gy = plan.stmtGroup[i];
        }
    }
    ASSERT_NE(gx, kNoIndex);
    ASSERT_NE(gy, kNoIndex);
    EXPECT_NE(gx, gy);
}

TEST(ValueGroupTest, SubsetGroupsMerge)
{
    // t depends on {a}; u depends on {a, b}. {a} is a proper subset,
    // so t's group merges into u's.
    ir::Module m = lang::compileString(R"(
        fn main() {
            var a = in();
            var b = in();
            var t = a + 1;
            var u = t + b;
            out(u);
        }
    )");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    uint32_t gAdd1 = kNoIndex;
    uint32_t gAdd2 = kNoIndex;
    for (uint32_t i = 0; i < stmts.size(); ++i) {
        if (m.instr(stmts[i]).op == ir::Opcode::Add) {
            if (gAdd1 == kNoIndex)
                gAdd1 = plan.stmtGroup[i];
            else
                gAdd2 = plan.stmtGroup[i];
        }
    }
    EXPECT_EQ(gAdd1, gAdd2);
}

TEST(ValueGroupTest, ConstStatementsCarryNoGroup)
{
    ir::Module m = lang::compileString("fn main() { out(5); }");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    for (uint32_t i = 0; i < stmts.size(); ++i) {
        if (m.instr(stmts[i]).op == ir::Opcode::Const) {
            EXPECT_EQ(plan.stmtGroup[i], kNoIndex);
        }
    }
}

TEST(ValueGroupTest, NonDefStatementsHaveNoGroup)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var a = in();
            mem[3] = a;
            out(a);
        }
    )");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    for (uint32_t i = 0; i < stmts.size(); ++i) {
        ir::Opcode op = m.instr(stmts[i]).op;
        if (!ir::hasDef(op)) {
            EXPECT_EQ(plan.stmtGroup[i], kNoIndex)
                << ir::opcodeName(op);
        }
    }
}

TEST(ValueGroupTest, InputStatementsAttachToOneGroup)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var a = in();
            out(a * 2);
        }
    )");
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    uint32_t inGroup = kNoIndex;
    for (uint32_t i = 0; i < stmts.size(); ++i) {
        if (m.instr(stmts[i]).op == ir::Opcode::In)
            inGroup = plan.stmtGroup[i];
    }
    ASSERT_NE(inGroup, kNoIndex);
    // The In statement appears in exactly one group.
    size_t appearances = 0;
    for (const auto& g : plan.groups) {
        for (uint32_t mbr : g.members) {
            if (m.instr(stmts[mbr]).op == ir::Opcode::In)
                ++appearances;
        }
    }
    EXPECT_EQ(appearances, 1u);
}

TEST(ValueGroupTest, MembersAndMapsAreConsistent)
{
    ir::Module m = lang::compileString(R"(
        fn main() {
            var a = in();
            var b = mem[a];
            var c = a + b;
            var d = c * c;
            mem[d] = c;
            out(d);
        }
    )", 1 << 16);
    auto stmts = flatten(m);
    GroupingPlan plan = planGroups(m, stmts);
    for (uint32_t gi = 0; gi < plan.groups.size(); ++gi) {
        const auto& g = plan.groups[gi];
        EXPECT_EQ(g.uvals.size(), g.members.size());
        for (uint32_t mi = 0; mi < g.members.size(); ++mi) {
            uint32_t pos = g.members[mi];
            EXPECT_EQ(plan.stmtGroup[pos], gi);
            EXPECT_EQ(plan.stmtMember[pos], mi);
            EXPECT_TRUE(ir::hasDef(m.instr(stmts[pos]).op));
        }
    }
    EXPECT_EQ(plan.groupKeys.size(), plan.groups.size());
}

} // namespace
} // namespace core
} // namespace wet
