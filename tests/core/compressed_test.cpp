#include "core/compressed.h"

#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 150; i = i + 1) {
            var t = in();
            mem[t % 32] = s;
            s = s + mem[(t + 5) % 32] + i;
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs150()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 150; ++i)
        v.push_back((i * 37 + 11) % 101);
    return v;
}

TEST(WetCompressedTest, EveryStreamRoundTrips)
{
    auto p = runPipeline(kProgram, inputs150());
    WetCompressed comp(p->graph);
    const WetGraph& g = p->graph;
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        const WetNode& node = g.nodes[n];
        const CompressedNode& cn = comp.node(n);
        std::vector<int64_t> ts(node.ts.begin(), node.ts.end());
        EXPECT_EQ(codec::decodeAll(cn.ts), ts) << "node " << n;
        for (size_t gi = 0; gi < node.groups.size(); ++gi) {
            std::vector<int64_t> pat(
                node.groups[gi].pattern.begin(),
                node.groups[gi].pattern.end());
            EXPECT_EQ(codec::decodeAll(cn.patterns[gi]), pat);
            for (size_t mi = 0;
                 mi < node.groups[gi].uvals.size(); ++mi)
            {
                EXPECT_EQ(codec::decodeAll(cn.uvals[gi][mi]),
                          node.groups[gi].uvals[mi]);
            }
        }
    }
    for (uint32_t i = 0; i < g.labelPool.size(); ++i) {
        std::vector<int64_t> use(g.labelPool[i].useInst.begin(),
                                 g.labelPool[i].useInst.end());
        std::vector<int64_t> def(g.labelPool[i].defInst.begin(),
                                 g.labelPool[i].defInst.end());
        EXPECT_EQ(codec::decodeAll(comp.pool(i).useInst), use);
        EXPECT_EQ(codec::decodeAll(comp.pool(i).defInst), def);
    }
}

TEST(WetCompressedTest, SizesAreAdditiveAndPositive)
{
    auto p = runPipeline(kProgram, inputs150());
    WetCompressed comp(p->graph);
    TierSizes s = comp.sizes();
    EXPECT_GT(s.nodeTs, 0u);
    EXPECT_GT(s.nodeVals, 0u);
    EXPECT_GT(s.edgeTs, 0u);
    uint64_t manual = 0;
    for (NodeId n = 0; n < p->graph.nodes.size(); ++n) {
        manual += comp.node(n).ts.sizeBytes();
        for (const auto& pat : comp.node(n).patterns)
            manual += pat.sizeBytes();
        for (const auto& gs : comp.node(n).uvals)
            for (const auto& uv : gs)
                manual += uv.sizeBytes();
    }
    for (uint32_t i = 0; i < p->graph.labelPool.size(); ++i)
        manual += comp.pool(i).useInst.sizeBytes() +
                  comp.pool(i).defInst.sizeBytes();
    EXPECT_EQ(manual, s.total());
}

TEST(WetCompressedTest, MethodWinsAreRecorded)
{
    auto p = runPipeline(kProgram, inputs150());
    WetCompressed comp(p->graph);
    uint64_t total = 0;
    for (const auto& [name, count] : comp.methodWins()) {
        (void)name;
        total += count;
    }
    EXPECT_GT(total, 0u);
    // Stream count: one ts per node + one per group + one per
    // member + two per pool entry.
    uint64_t expected = 0;
    for (const auto& node : p->graph.nodes) {
        expected += 1 + node.groups.size();
        for (const auto& grp : node.groups)
            expected += grp.uvals.size();
    }
    expected += 2 * p->graph.labelPool.size();
    EXPECT_EQ(total, expected);
}

TEST(WetCompressedTest, CheckpointsCanBeDisabled)
{
    auto p = runPipeline(kProgram, inputs150());
    codec::SelectorOptions opt;
    opt.checkpointInterval = UINT64_MAX; // disable
    WetCompressed noCkpt(p->graph, opt);
    for (NodeId n = 0; n < p->graph.nodes.size(); ++n)
        EXPECT_TRUE(noCkpt.node(n).ts.checkpoints.empty());
    // Default enables them for long enough streams; this run's
    // streams are short, so just check the size relation holds.
    WetCompressed withCkpt(p->graph);
    EXPECT_LE(noCkpt.sizes().total(), withCkpt.sizes().total());
}

} // namespace
} // namespace core
} // namespace wet
