#include "core/access.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 40; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { s = s + t; } else { s = s - t; }
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs40()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 40; ++i)
        v.push_back((i * 13) % 17);
    return v;
}

TEST(WetAccessTest, Tier1AndTier2AgreeEverywhere)
{
    auto p = runPipeline(kProgram, inputs40());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    WetAccess t2(comp, *p->module);

    const WetGraph& g = p->graph;
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        const WetNode& node = g.nodes[n];
        for (uint32_t i = 0; i < node.instances(); ++i)
            ASSERT_EQ(t1.timestamp(n, i), t2.timestamp(n, i));
        for (uint32_t gi = 0; gi < node.groups.size(); ++gi) {
            const auto& grp = node.groups[gi];
            for (uint32_t i = 0; i < grp.pattern.size(); ++i)
                ASSERT_EQ(t1.pattern(n, gi).at(i),
                          t2.pattern(n, gi).at(i));
            for (uint32_t mi = 0; mi < grp.members.size(); ++mi)
                for (uint32_t u = 0; u < grp.uvals[mi].size(); ++u)
                    ASSERT_EQ(t1.uvals(n, gi, mi).at(u),
                              t2.uvals(n, gi, mi).at(u));
        }
    }
    for (uint32_t pi = 0; pi < g.labelPool.size(); ++pi) {
        const auto& el = g.labelPool[pi];
        for (uint64_t i = 0; i < el.useInst.size(); ++i) {
            ASSERT_EQ(t1.poolUse(pi).at(i), t2.poolUse(pi).at(i));
            ASSERT_EQ(t1.poolDef(pi).at(i), t2.poolDef(pi).at(i));
        }
    }
}

TEST(WetAccessTest, ValueLookupMatchesRecordedTrace)
{
    auto p = runPipeline(kProgram, inputs40());
    WetAccess acc(p->graph, *p->module);
    const WetGraph& g = p->graph;
    // Rebuild per-statement value sequences through value() and
    // compare with the recorded trace (call-free program: execution
    // order equals timestamp order).
    std::map<ir::StmtId, std::vector<int64_t>> rebuilt;
    struct Site
    {
        NodeId n;
        uint32_t pos;
        uint64_t idx = 0;
    };
    for (const auto& [stmt, sites] : g.stmtIndex) {
        const ir::Instr& in = p->module->instr(stmt);
        if (!ir::hasDef(in.op) || in.op == ir::Opcode::Const)
            continue;
        std::vector<Site> cursors;
        for (auto& [n, pos] : sites)
            cursors.push_back(Site{n, pos});
        auto& vec = rebuilt[stmt];
        for (;;) {
            Site* best = nullptr;
            Timestamp bestTs = 0;
            for (auto& s : cursors) {
                if (s.idx >= g.nodes[s.n].instances())
                    continue;
                Timestamp t = acc.timestamp(s.n, s.idx);
                if (!best || t < bestTs) {
                    best = &s;
                    bestTs = t;
                }
            }
            if (!best)
                break;
            vec.push_back(acc.value(best->n, best->pos,
                                    static_cast<uint32_t>(
                                        best->idx)));
            ++best->idx;
        }
    }
    std::map<ir::StmtId, std::vector<int64_t>> reference;
    for (const auto& ev : p->record.stmts) {
        if (!ev.hasValue ||
            p->module->instr(ev.stmt).op == ir::Opcode::Const)
        {
            continue;
        }
        reference[ev.stmt].push_back(ev.value);
    }
    EXPECT_EQ(rebuilt, reference);
}

TEST(WetAccessTest, ConstValuesComeFromTheProgram)
{
    auto p = runPipeline("fn main() { out(1234); }");
    WetAccess acc(p->graph, *p->module);
    const WetGraph& g = p->graph;
    bool checked = false;
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        const WetNode& node = g.nodes[n];
        for (uint32_t i = 0; i < node.stmts.size(); ++i) {
            if (p->module->instr(node.stmts[i]).op ==
                ir::Opcode::Const &&
                p->module->instr(node.stmts[i]).imm == 1234)
            {
                EXPECT_EQ(acc.value(n, i, 0), 1234);
                checked = true;
            }
        }
    }
    EXPECT_TRUE(checked);
}

} // namespace
} // namespace core
} // namespace wet
