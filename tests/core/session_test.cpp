#include "core/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/depcheck.h"
#include "analysis/moduleanalysis.h"
#include "analysis/staticdep.h"
#include "core/addrquery.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "core/cursorslicer.h"
#include "core/slicer.h"
#include "core/valuequery.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace core {
namespace {

constexpr uint64_t kScale = 1;
constexpr uint64_t kMaxSliceItems = 2000;
constexpr uint64_t kAnalysisBudget = uint64_t{1} << 24;

/** Deterministic query targets for one workload. */
struct Targets
{
    std::vector<ir::StmtId> defStmts; //!< for values + slices
    std::vector<ir::StmtId> memStmts; //!< for address traces
};

Targets
pickTargets(const WetGraph& g, const ir::Module& mod)
{
    Targets t;
    std::vector<ir::StmtId> defs;
    std::vector<ir::StmtId> mems;
    for (const auto& [stmt, sites] : g.stmtIndex) {
        (void)sites;
        const ir::Instr& in = mod.instr(stmt);
        if (ir::hasDef(in.op) && in.op != ir::Opcode::Const)
            defs.push_back(stmt);
        if (in.op == ir::Opcode::Load ||
            in.op == ir::Opcode::Store)
            mems.push_back(stmt);
    }
    std::sort(defs.begin(), defs.end());
    std::sort(mems.begin(), mems.end());
    // A spread of three def statements and two memory statements.
    for (size_t i = 0; i < 3 && !defs.empty(); ++i)
        t.defStmts.push_back(defs[i * (defs.size() - 1) / 2]);
    for (size_t i = 0; i < 2 && !mems.empty(); ++i)
        t.memStmts.push_back(mems[i * (mems.size() - 1)]);
    return t;
}

/** Everything the interleaved batch answers, comparable wholesale. */
struct Answers
{
    std::vector<std::pair<NodeId, Timestamp>> cf;
    std::vector<std::pair<Timestamp, int64_t>> values;
    std::vector<std::pair<Timestamp, uint64_t>> addrs;
    std::vector<std::tuple<NodeId, uint32_t, uint32_t>> slices;
    uint64_t depEdges = 0;
    bool depClean = false;

    bool
    operator==(const Answers& o) const
    {
        return cf == o.cf && values == o.values &&
               addrs == o.addrs && slices == o.slices &&
               depEdges == o.depEdges && depClean == o.depClean;
    }
};

void
runCf(WetAccess& acc, Answers& out)
{
    ControlFlowQuery q(acc);
    q.extractRange(1, 48, [&](NodeId n, Timestamp t) {
        out.cf.emplace_back(n, t);
    });
}

void
runValues(WetAccess& acc, ir::StmtId stmt, Answers& out)
{
    ValueTraceQuery q(acc);
    uint64_t shown = 0;
    q.extract(stmt, [&](Timestamp t, int64_t v) {
        if (shown++ < 64)
            out.values.emplace_back(t, v);
    });
}

void
runAddr(WetAccess& acc, ir::StmtId stmt, Answers& out)
{
    AddressTraceQuery q(acc);
    uint64_t shown = 0;
    q.extract(stmt, [&](Timestamp t, uint64_t a) {
        if (shown++ < 64)
            out.addrs.emplace_back(t, a);
    });
}

void
runSlice(SliceAccess& acc, ir::StmtId stmt, Answers& out)
{
    WetSlicer slicer(acc);
    SliceItem seed = slicer.locate(stmt, 1);
    if (!seed.valid())
        seed = slicer.locate(stmt, 0);
    SliceResult res = slicer.backward(seed, kMaxSliceItems);
    for (const SliceItem& it : res.items)
        out.slices.emplace_back(it.node, it.pos, it.inst);
}

void
runDepcheck(const WetGraph& g, const analysis::ModuleAnalysis& ma,
            const analysis::StaticDepGraph& sdg,
            const WetCompressed& c, Answers& out)
{
    analysis::DiagEngine diag;
    analysis::DepCheckStats stats;
    analysis::verifyDeps(g, ma, sdg, diag, &c, {}, &stats);
    out.depClean = !diag.hasErrors();
    out.depEdges = stats.ddEdges + stats.cdEdges;
}

/**
 * The reference: every query served by freshly constructed state,
 * the way a cold process answers it.
 */
Answers
runFresh(const ir::Module& mod, const WetCompressed& c,
         const Targets& t)
{
    Answers out;
    for (int round = 0; round < 2; ++round) {
        {
            WetAccess acc(c, mod);
            runCf(acc, out);
        }
        for (ir::StmtId s : t.defStmts) {
            WetAccess acc(c, mod);
            runValues(acc, s, out);
        }
        for (ir::StmtId s : t.memStmts) {
            WetAccess acc(c, mod);
            runAddr(acc, s, out);
        }
        for (ir::StmtId s : t.defStmts) {
            CursorSliceAccess ca(c);
            runSlice(ca, s, out);
            DecodeSliceAccess da(c);
            runSlice(da, s, out);
        }
    }
    analysis::ModuleAnalysis ma(mod, kAnalysisBudget, 1);
    analysis::StaticDepGraph sdg(ma);
    runDepcheck(c.graph(), ma, sdg, c, out);
    return out;
}

/** The same interleaved batch served by one warm session. */
Answers
runWarm(QuerySession& s, const Targets& t)
{
    Answers out;
    for (int round = 0; round < 2; ++round) {
        {
            QuerySession::Scope scope(s, "cf");
            runCf(s.access(), out);
        }
        for (ir::StmtId st : t.defStmts) {
            QuerySession::Scope scope(s, "values");
            runValues(s.access(), st, out);
        }
        for (ir::StmtId st : t.memStmts) {
            QuerySession::Scope scope(s, "addr");
            runAddr(s.access(), st, out);
        }
        for (ir::StmtId st : t.defStmts) {
            QuerySession::Scope scope(s, "slice");
            runSlice(s.cursorSlice(), st, out);
            runSlice(s.decodeSlice(), st, out);
        }
    }
    {
        QuerySession::Scope scope(s, "depcheck");
        runDepcheck(s.graph(), s.moduleAnalysis(), s.depGraph(),
                    s.compressed(), out);
    }
    return out;
}

class QuerySessionStress : public ::testing::TestWithParam<size_t>
{
};

TEST_P(QuerySessionStress, WarmSessionMatchesFreshState)
{
    const workloads::Workload& w =
        workloads::allWorkloads()[GetParam()];
    auto art = workloads::buildWet(w, kScale);
    WetCompressed comp(art->graph);
    Targets t = pickTargets(art->graph, *art->module);
    ASSERT_FALSE(t.defStmts.empty()) << w.name;

    Answers fresh = runFresh(*art->module, comp, t);

    QuerySession session(*art->module, comp);
    Answers warm = runWarm(session, t);
    EXPECT_TRUE(fresh == warm) << w.name;
    EXPECT_TRUE(fresh.depClean) << w.name;

    // The interleaved batch must have exercised the shared cache and
    // the metrics registry.
    const support::Metrics& m = session.metrics();
    const auto& counters = m.counters();
    EXPECT_GT(counters.at("queries"), 0u);
    EXPECT_GT(counters.at("cache.misses"), 0u);
    EXPECT_GT(counters.at("cache.hits"), 0u);
    EXPECT_GT(counters.at("streams.touched"), 0u);
    // An unbounded cache never evicts, so no reader is ever rebuilt
    // mid-query. A warm cursor parked mid-stream by an earlier query
    // may re-initialize once when extraction drains it from the
    // front — at most one restart per touched stream, nothing that
    // scales with instance counts (the quadratic regime produced
    // restarts proportional to the trace length).
    EXPECT_EQ(counters.at("cache.rescans"), 0u);
    EXPECT_LE(counters.at("extract.restarts"),
              counters.at("streams.touched"));
    EXPECT_FALSE(session.statsText().empty());
    EXPECT_EQ(session.statsJson().front(), '{');
}

TEST_P(QuerySessionStress, CapacityOneSessionStaysCorrect)
{
    const workloads::Workload& w =
        workloads::allWorkloads()[GetParam()];
    auto art = workloads::buildWet(w, kScale);
    WetCompressed comp(art->graph);
    Targets t = pickTargets(art->graph, *art->module);
    ASSERT_FALSE(t.defStmts.empty()) << w.name;

    Answers fresh = runFresh(*art->module, comp, t);

    // Thrash: every lookup beyond the first evicts something, and
    // mid-query evictions exercise the deferred-destruction path.
    SessionOptions opt;
    opt.cacheCapacity = 1;
    QuerySession session(*art->module, comp, nullptr, opt);
    Answers warm = runWarm(session, t);
    EXPECT_TRUE(fresh == warm) << w.name;
    EXPECT_GT(session.cache().stats().evictions, 0u) << w.name;
    EXPECT_LE(session.cache().size(), 1u) << w.name;

    // The site-major extraction contract (DESIGN.md §14): even with
    // every lookup evicting, a values/addr query drains each stream
    // in one forward pass, so no cursor ever restarts its sweep. This
    // is what keeps the query linear — before the fix this counter
    // grew with the square of the instance count.
    EXPECT_EQ(session.metrics().counters().at("extract.restarts"), 0u)
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, QuerySessionStress,
    ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
        std::string n = workloads::allWorkloads()[info.param].name;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace core
} // namespace wet
