#include "core/addrquery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/compressed.h"
#include "core/session.h"
#include "core/streamcache.h"
#include "core/valuequery.h"
#include "lang/codegen.h"
#include "testutil.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

constexpr uint64_t kScale = 1;

/** Cache bounds the differential sweeps: pathological (1), minimal
 *  (2), a typical working set (8), and unbounded (0). */
const size_t kCapacities[] = {1, 2, 8, 0};

using ValueTrace = std::vector<std::pair<Timestamp, int64_t>>;
using AddrTrace = std::vector<std::pair<Timestamp, uint64_t>>;

ValueTrace
collectValues(WetAccess& acc, ir::StmtId stmt, bool tournament)
{
    ValueTrace out;
    ValueTraceQuery q(acc);
    auto visit = [&](Timestamp t, int64_t v) {
        out.emplace_back(t, v);
    };
    if (tournament)
        q.extractTournament(stmt, visit);
    else
        q.extract(stmt, visit);
    return out;
}

AddrTrace
collectAddrs(WetAccess& acc, ir::StmtId stmt, bool tournament)
{
    AddrTrace out;
    AddressTraceQuery q(acc);
    auto visit = [&](Timestamp t, uint64_t a) {
        out.emplace_back(t, a);
    };
    if (tournament)
        q.extractTournament(stmt, visit);
    else
        q.extract(stmt, visit);
    return out;
}

/**
 * Deterministic targets: a spread of def statements (favoring the one
 * replicated across the most path nodes, which stresses the merge)
 * and of load/store statements.
 */
struct Targets
{
    std::vector<ir::StmtId> defStmts;
    std::vector<ir::StmtId> memStmts;
};

Targets
pickTargets(const WetGraph& g, const ir::Module& mod)
{
    Targets t;
    std::vector<ir::StmtId> defs;
    std::vector<ir::StmtId> mems;
    ir::StmtId widest = 0;
    size_t widestSites = 0;
    for (const auto& [stmt, sites] : g.stmtIndex) {
        const ir::Instr& in = mod.instr(stmt);
        if (ir::hasDef(in.op) && in.op != ir::Opcode::Const) {
            defs.push_back(stmt);
            if (sites.size() > widestSites) {
                widestSites = sites.size();
                widest = stmt;
            }
        }
        if (in.op == ir::Opcode::Load || in.op == ir::Opcode::Store)
            mems.push_back(stmt);
    }
    std::sort(defs.begin(), defs.end());
    std::sort(mems.begin(), mems.end());
    for (size_t i = 0; i < 3 && !defs.empty(); ++i)
        t.defStmts.push_back(defs[i * (defs.size() - 1) / 2]);
    if (widestSites > 0)
        t.defStmts.push_back(widest);
    for (size_t i = 0; i < 2 && !mems.empty(); ++i)
        t.memStmts.push_back(mems[i * (mems.size() - 1)]);
    return t;
}

class ExtractDifferential : public ::testing::TestWithParam<size_t>
{
};

/**
 * The tentpole contract: extract() must be byte-identical to the
 * historical cursor tournament on every workload at every cache
 * bound. The tournament reference runs once, unbounded (where it is
 * linear); the site-major path must reproduce it even at capacity 1,
 * where the tournament used to go quadratic.
 */
TEST_P(ExtractDifferential, SiteMajorMatchesTournamentAtAnyCapacity)
{
    const workloads::Workload& w =
        workloads::allWorkloads()[GetParam()];
    auto art = workloads::buildWet(w, kScale);
    WetCompressed comp(art->graph);
    Targets t = pickTargets(art->graph, *art->module);
    ASSERT_FALSE(t.defStmts.empty()) << w.name;

    for (ir::StmtId stmt : t.defStmts) {
        StreamCache refCache(0);
        WetAccess refAcc(comp, *art->module, &refCache);
        ValueTrace ref = collectValues(refAcc, stmt, true);
        for (size_t cap : kCapacities) {
            StreamCache cache(cap);
            WetAccess acc(comp, *art->module, &cache);
            EXPECT_EQ(collectValues(acc, stmt, false), ref)
                << w.name << " stmt " << stmt << " capacity " << cap;
        }
    }
    for (ir::StmtId stmt : t.memStmts) {
        StreamCache refCache(0);
        WetAccess refAcc(comp, *art->module, &refCache);
        AddrTrace ref = collectAddrs(refAcc, stmt, true);
        for (size_t cap : kCapacities) {
            StreamCache cache(cap);
            WetAccess acc(comp, *art->module, &cache);
            EXPECT_EQ(collectAddrs(acc, stmt, false), ref)
                << w.name << " stmt " << stmt << " capacity " << cap;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ExtractDifferential,
    ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
        std::string n = workloads::allWorkloads()[info.param].name;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

const char* kLoopProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 200; i = i + 1) {
            var t = in();
            if (t % 3 == 0) { mem[i % 7] = t + s; }
            else { s = s + mem[(i + 3) % 7]; }
        }
        out(s);
    }
)";

std::vector<int64_t>
loopInputs()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 200; ++i)
        v.push_back((i * 11 + 5) % 37);
    return v;
}

/** The def statement with the most executed instances (deterministic:
 *  smallest id wins ties) — the one whose extraction thrashes a tiny
 *  cache hardest. */
ir::StmtId
hottestDefStmt(const WetGraph& g, const ir::Module& mod)
{
    ir::StmtId best = 0;
    uint64_t bestInstances = 0;
    bool found = false;
    for (const auto& [stmt, sites] : g.stmtIndex) {
        const ir::Instr& in = mod.instr(stmt);
        if (!ir::hasDef(in.op) || in.op == ir::Opcode::Const)
            continue;
        uint64_t instances = 0;
        for (const auto& [n, pos] : sites) {
            (void)pos;
            instances += g.nodes[n].instances();
        }
        if (!found || instances > bestInstances ||
            (instances == bestInstances && stmt < best))
        {
            best = stmt;
            bestInstances = instances;
            found = true;
        }
    }
    EXPECT_TRUE(found);
    return best;
}

/**
 * The counters must actually detect the pathology: driving the old
 * tournament through a capacity-1 session produces mid-query reader
 * rebuilds (cache.rescans) and cursor re-scans (restarts), while the
 * site-major path on the same session shape produces exactly zero of
 * either. This is the regression tripwire — if extract() ever falls
 * back to per-step lookups, extract.restarts goes nonzero and the
 * session assertions fire.
 */
TEST(ExtractRestarts, TournamentThrashesSiteMajorDoesNot)
{
    auto p = runPipeline(kLoopProgram, loopInputs());
    WetCompressed comp(p->graph);
    ir::StmtId stmt = hottestDefStmt(p->graph, *p->module);

    SessionOptions opt;
    opt.cacheCapacity = 1;

    {
        QuerySession s(*p->module, comp, nullptr, opt);
        ValueTrace out;
        {
            QuerySession::Scope scope(s, "values");
            ValueTraceQuery q(s.access());
            q.extractTournament(stmt, [&](Timestamp t, int64_t v) {
                out.emplace_back(t, v);
            });
        }
        EXPECT_FALSE(out.empty());
        const auto& c = s.metrics().counters();
        EXPECT_GT(c.at("cache.rescans"), 0u);
        EXPECT_GT(c.at("extract.restarts"), 0u);
    }
    {
        QuerySession s(*p->module, comp, nullptr, opt);
        ValueTrace out;
        {
            QuerySession::Scope scope(s, "values");
            ValueTraceQuery q(s.access());
            q.extract(stmt, [&](Timestamp t, int64_t v) {
                out.emplace_back(t, v);
            });
        }
        EXPECT_FALSE(out.empty());
        const auto& c = s.metrics().counters();
        EXPECT_EQ(c.at("cache.rescans"), 0u);
        EXPECT_EQ(c.at("extract.restarts"), 0u);
    }
}

/** A statement that never executed has no sites: zero visits, and
 *  both implementations agree. */
TEST(ExtractEdgeCases, NeverExecutedStatementYieldsEmptyTrace)
{
    // x stays below 100, so the dead branch's def never runs.
    auto p = runPipeline(R"(
        fn main() {
            var x = in();
            var y = 0;
            if (x > 100) { y = x * 2; }
            out(y);
        }
    )",
                         {7});
    WetCompressed comp(p->graph);

    ir::StmtId dead = 0;
    bool found = false;
    for (ir::StmtId s = 0; s < p->module->numStmts(); ++s) {
        const ir::Instr& in = p->module->instr(s);
        if (in.op == ir::Opcode::Mul &&
            p->graph.stmtIndex.find(s) == p->graph.stmtIndex.end())
        {
            dead = s;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    WetAccess acc(comp, *p->module);
    EXPECT_TRUE(collectValues(acc, dead, false).empty());
    EXPECT_TRUE(collectValues(acc, dead, true).empty());
}

/** Single-site extraction (no merge at all) at capacity 1. */
TEST(ExtractEdgeCases, SingleSiteMatchesAtCapacityOne)
{
    auto p = runPipeline(R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 40; i = i + 1) { s = s + i; }
            out(s);
        }
    )");
    WetCompressed comp(p->graph);
    ir::StmtId stmt = hottestDefStmt(p->graph, *p->module);

    StreamCache refCache(0);
    WetAccess refAcc(comp, *p->module, &refCache);
    ValueTrace ref = collectValues(refAcc, stmt, true);
    ASSERT_FALSE(ref.empty());

    StreamCache cache(1);
    WetAccess acc(comp, *p->module, &cache);
    EXPECT_EQ(collectValues(acc, stmt, false), ref);
}

/**
 * Duplicate timestamps across sites cannot arise from the builder
 * (one global tick per path instance), but the merge contract must
 * pin the tie-break anyway: the site listed first in stmtIndex wins,
 * exactly as the tournament's strict less-than did. Hand-build a
 * two-node graph whose timestamp sequences collide.
 */
TEST(ExtractEdgeCases, DuplicateTimestampsTieBreakBySiteOrder)
{
    ir::Module mod = lang::compileString(R"(
        fn main() {
            var x = in();
            out(x);
        }
    )");
    ir::StmtId inStmt = 0;
    bool found = false;
    for (ir::StmtId s = 0; s < mod.numStmts(); ++s) {
        if (mod.instr(s).op == ir::Opcode::In) {
            inStmt = s;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    WetGraph g;
    auto makeNode = [&](std::vector<Timestamp> ts,
                        std::vector<uint32_t> pattern,
                        std::vector<int64_t> uvals) {
        WetNode n;
        n.stmts = {inStmt};
        n.ts = std::move(ts);
        n.numInstances = n.ts.size();
        ValueGroup vg;
        vg.members = {0};
        vg.pattern = std::move(pattern);
        vg.uvals.push_back(std::move(uvals));
        n.groups.push_back(std::move(vg));
        n.stmtGroup = {0};
        n.stmtMember = {0};
        g.nodes.push_back(std::move(n));
    };
    // Site 0 and site 1 collide at t=5 and t=9; values disambiguate
    // which site each visit came from.
    makeNode({1, 5, 9}, {0, 1, 2}, {10, 11, 12});
    makeNode({5, 7, 9}, {0, 1, 2}, {20, 21, 22});
    g.stmtIndex[inStmt] = {{0, 0}, {1, 0}};
    g.lastTimestamp = 9;

    WetCompressed comp(g);
    const ValueTrace expected = {
        {1, 10}, {5, 11}, {5, 20}, {7, 21}, {9, 12}, {9, 22}};
    for (size_t cap : kCapacities) {
        StreamCache cache(cap);
        WetAccess acc(comp, mod, &cache);
        EXPECT_EQ(collectValues(acc, inStmt, false), expected)
            << "capacity " << cap;
        EXPECT_EQ(collectValues(acc, inStmt, true), expected)
            << "capacity " << cap;
    }
}

} // namespace
} // namespace core
} // namespace wet
