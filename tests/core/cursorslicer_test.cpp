#include "core/cursorslicer.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/compressed.h"
#include "core/slicer.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

// Calls + loops so slices cross nodes and walk pooled edge labels.
const char* kProgram = R"(
    fn gcd(a, b) {
        while (b != 0) { var t = a % b; a = b; b = t; }
        return a;
    }
    fn main() {
        var acc = 1;
        for (var i = 0; i < 6; i = i + 1) {
            var v = in();
            mem[i] = v;
            acc = gcd(acc * v, v + i);
        }
        out(acc);
        out(mem[3]);
    }
)";

std::vector<int64_t>
inputs()
{
    return {252, 105, 36, 48, 60, 84};
}

std::vector<std::tuple<NodeId, uint32_t, uint32_t>>
key(const SliceResult& r)
{
    std::vector<std::tuple<NodeId, uint32_t, uint32_t>> v;
    for (const SliceItem& it : r.items)
        v.emplace_back(it.node, it.pos, it.inst);
    return v;
}

/** Every executed statement, for exhaustive seed coverage. */
std::vector<ir::StmtId>
executedStmts(const WetGraph& g)
{
    std::vector<ir::StmtId> v;
    for (const auto& [stmt, sites] : g.stmtIndex) {
        (void)sites;
        v.push_back(stmt);
    }
    return v;
}

TEST(CursorSlicerTest, EnginesMatchTierOneOnEverySeed)
{
    auto p = runPipeline(kProgram, inputs());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    CursorSliceAccess cur(comp);
    DecodeSliceAccess dec(comp);
    WetSlicer s1(t1), sc(cur), sd(dec);

    for (ir::StmtId stmt : executedStmts(p->graph)) {
        SliceItem seed1 = s1.locate(stmt, 0);
        SliceItem seedC = sc.locate(stmt, 0);
        SliceItem seedD = sd.locate(stmt, 0);
        ASSERT_TRUE(seed1.valid());
        EXPECT_EQ(key(SliceResult{{seed1}, 0, false}),
                  key(SliceResult{{seedC}, 0, false}));
        SliceResult r1 = s1.backward(seed1);
        SliceResult rc = sc.backward(seedC);
        SliceResult rd = sd.backward(seedD);
        EXPECT_EQ(key(r1), key(rc)) << "stmt " << stmt;
        EXPECT_EQ(key(r1), key(rd)) << "stmt " << stmt;
        EXPECT_EQ(r1.edgesTraversed, rc.edgesTraversed);
        EXPECT_EQ(r1.edgesTraversed, rd.edgesTraversed);
    }
}

TEST(CursorSlicerTest, ForwardSlicesMatchToo)
{
    auto p = runPipeline(kProgram, inputs());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    CursorSliceAccess cur(comp);
    WetSlicer s1(t1), sc(cur);

    // Forward from the first instance of each input read.
    for (ir::StmtId stmt : executedStmts(p->graph)) {
        if (p->module->instr(stmt).op != ir::Opcode::In)
            continue;
        SliceResult r1 = s1.forward(s1.locate(stmt, 0));
        SliceResult rc = sc.forward(sc.locate(stmt, 0));
        EXPECT_EQ(key(r1), key(rc)) << "stmt " << stmt;
    }
}

TEST(CursorSlicerTest, LateInstanceLocateAgrees)
{
    auto p = runPipeline(kProgram, inputs());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    CursorSliceAccess cur(comp);
    WetSlicer s1(t1), sc(cur);

    for (ir::StmtId stmt : executedStmts(p->graph)) {
        for (uint64_t k = 0;; k += 3) {
            SliceItem a = s1.locate(stmt, k);
            SliceItem b = sc.locate(stmt, k);
            EXPECT_EQ(a.valid(), b.valid());
            if (!a.valid())
                break;
            EXPECT_EQ(a.node, b.node);
            EXPECT_EQ(a.pos, b.pos);
            EXPECT_EQ(a.inst, b.inst);
        }
    }
}

TEST(CursorSlicerTest, StatsAccountTouchedBytes)
{
    auto p = runPipeline(kProgram, inputs());
    WetCompressed comp(p->graph);
    const uint64_t total = artifactStreamBytes(comp);
    ASSERT_GT(total, 0u);

    CursorSliceAccess cur(comp);
    DecodeSliceAccess dec(comp);
    // Nothing opened yet: nothing touched.
    EXPECT_EQ(cur.stats().bytesTouched, 0u);
    EXPECT_EQ(cur.stats().bytesTotal, total);
    EXPECT_EQ(dec.stats().streamsOpened, 0u);

    WetSlicer sc(cur), sd(dec);
    ir::StmtId seedStmt = executedStmts(p->graph).front();
    sc.backward(sc.locate(seedStmt, 0));
    sd.backward(sd.locate(seedStmt, 0));

    SliceIoStats cs = cur.stats();
    SliceIoStats ds = dec.stats();
    EXPECT_GT(cs.streamsOpened, 0u);
    EXPECT_EQ(cs.streamsOpened, ds.streamsOpened);
    EXPECT_GT(cs.valuesDecoded, 0u);
    EXPECT_LE(cs.bytesTouched, cs.bytesTotal);
    EXPECT_LE(ds.bytesTouched, ds.bytesTotal);
    EXPECT_GE(cs.fractionTouched(), 0.0);
    EXPECT_LE(cs.fractionTouched(), 1.0);
    // The decode engine pays for every byte of every opened stream;
    // the cursor engine can never be charged more than that per
    // stream, and both report against the same artifact-wide total.
    EXPECT_EQ(cs.bytesTotal, ds.bytesTotal);
    EXPECT_LE(cs.bytesTouched, ds.bytesTouched);
}

} // namespace
} // namespace core
} // namespace wet
