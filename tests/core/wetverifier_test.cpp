#include "analysis/wetverifier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/compressed.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

const char* kProgram = R"(
    fn scale(x) { return x * 3 + 1; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 24; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { mem[i % 4] = scale(t); }
            s = s + mem[i % 4];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs24()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 24; ++i)
        v.push_back((i * 7 + 3) % 13);
    return v;
}

class WetVerifierTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        p_ = test::runPipeline(kProgram, inputs24());
        g_ = p_->graph; // mutable copy per test
    }

    /** Runs the verifier on the (possibly mutated) copy. */
    bool
    verify()
    {
        return analysis::verifyWet(g_, *p_->ma, diag_);
    }

    std::unique_ptr<test::Pipeline> p_;
    WetGraph g_;
    analysis::DiagEngine diag_;
};

TEST_F(WetVerifierTest, CleanGraphPasses)
{
    EXPECT_TRUE(verify()) << diag_.renderText();
    EXPECT_EQ(diag_.errorCount(), 0u);
}

TEST_F(WetVerifierTest, CleanGraphPassesWithArtifact)
{
    WetCompressed wc(g_);
    analysis::DiagEngine diag;
    EXPECT_TRUE(analysis::verifyWet(g_, *p_->ma, diag, &wc))
        << diag.renderText();
}

TEST_F(WetVerifierTest, SwappedTimestampsFireWET001)
{
    for (auto& node : g_.nodes) {
        if (node.ts.size() >= 2) {
            std::swap(node.ts[0], node.ts[1]);
            break;
        }
    }
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET001")) << diag_.renderText();
}

TEST_F(WetVerifierTest, DroppedTimestampFiresWET002)
{
    bool mutated = false;
    for (auto& node : g_.nodes) {
        if (node.ts.size() >= 2) {
            node.ts.pop_back();
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET002")) << diag_.renderText();
}

TEST_F(WetVerifierTest, BrokenGlobalAccountingFiresWET003)
{
    g_.lastTimestamp += 1;
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET003")) << diag_.renderText();
}

TEST_F(WetVerifierTest, ReversedLocalEdgeFiresWET004)
{
    bool mutated = false;
    for (auto& e : g_.edges) {
        if (e.local && e.slot != kCdSlot) {
            e.defStmtPos = e.useStmtPos; // def no longer precedes
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated) << "program produced no tier-1 local edge";
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET004")) << diag_.renderText();
}

TEST_F(WetVerifierTest, DanglingPoolReferenceFiresWET005)
{
    bool mutated = false;
    for (auto& e : g_.edges) {
        if (!e.local && e.labelPool != kNoIndex) {
            e.labelPool = kNoIndex;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated) << "program produced no pooled edge";
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET005")) << diag_.renderText();
}

TEST_F(WetVerifierTest, UnbalancedPoolEntryFiresWET006)
{
    bool mutated = false;
    for (auto& pool : g_.labelPool) {
        if (!pool.defInst.empty()) {
            // Grow rather than shrink: a popped single-entry pool
            // would become empty and fall outside verification.
            pool.defInst.push_back(pool.defInst.back());
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET006")) << diag_.renderText();
}

TEST_F(WetVerifierTest, MisattachedCdEdgeFiresWET007)
{
    // Re-point a CD edge at a statement position that does not open
    // a block of the use node.
    bool mutated = false;
    for (auto& e : g_.edges) {
        if (e.slot != kCdSlot || mutated)
            continue;
        const WetNode& use = g_.nodes[e.useNode];
        for (uint32_t pos = 0; pos < use.stmts.size(); ++pos) {
            bool starts = std::find(use.blockFirstStmt.begin(),
                                    use.blockFirstStmt.end(), pos) !=
                          use.blockFirstStmt.end();
            if (!starts) {
                e.useStmtPos = pos;
                mutated = true;
                break;
            }
        }
    }
    ASSERT_TRUE(mutated) << "no CD edge into a multi-stmt node";
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET007")) << diag_.renderText();
}

TEST_F(WetVerifierTest, OversizedPatternFiresWET008)
{
    bool mutated = false;
    for (auto& node : g_.nodes) {
        for (auto& grp : node.groups) {
            if (!grp.pattern.empty()) {
                grp.pattern.push_back(0);
                mutated = true;
                break;
            }
        }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET008")) << diag_.renderText();
}

TEST_F(WetVerifierTest, WrongPathBlocksFireWET009)
{
    bool mutated = false;
    for (auto& node : g_.nodes) {
        if (!node.partial && !node.blocks.empty()) {
            node.blocks[0] += 1;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET009")) << diag_.renderText();
}

TEST_F(WetVerifierTest, DroppedCfSuccessorFiresWET010)
{
    bool mutated = false;
    for (auto& node : g_.nodes) {
        if (!node.cfSucc.empty()) {
            node.cfSucc.pop_back();
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify());
    EXPECT_TRUE(diag_.hasRule("WET010")) << diag_.renderText();
}

} // namespace
} // namespace core
} // namespace wet
