#include <gtest/gtest.h>

#include "core/access.h"
#include "core/addrquery.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "core/slicer.h"
#include "core/valuequery.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 60; i = i + 1) {
            var t = in();
            if (t % 3 == 0) { mem[i % 8] = t * 2; }
            s = s + mem[(i + 1) % 8];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs60()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 60; ++i)
        v.push_back((i * 29 + 7) % 53);
    return v;
}

TEST(DropTier1Test, Tier2QueriesSurviveDroppingRawLabels)
{
    auto p = runPipeline(kProgram, inputs60());
    WetCompressed comp(p->graph);

    // Reference answers from the intact representation.
    WetAccess ref(comp, *p->module);
    std::vector<std::pair<NodeId, Timestamp>> cfRef;
    ControlFlowQuery(ref).extractForward(
        [&](NodeId n, Timestamp t) { cfRef.emplace_back(n, t); });
    ValueTraceQuery vref(ref);
    ir::StmtId load = vref.stmtsWithOpcode(ir::Opcode::Load).front();
    std::vector<int64_t> valsRef;
    vref.extract(load, [&](Timestamp, int64_t v) {
        valsRef.push_back(v);
    });
    WetSlicer sref(ref);
    auto sliceRef = sref.backward(sref.locate(load, 5));

    // Drop tier-1 and repeat everything through tier-2 access.
    p->graph.dropTier1Labels();
    for (const auto& node : p->graph.nodes) {
        EXPECT_TRUE(node.ts.empty());
        EXPECT_GT(node.instances(), 0u);
    }

    WetAccess acc(comp, *p->module);
    std::vector<std::pair<NodeId, Timestamp>> cf;
    ControlFlowQuery(acc).extractForward(
        [&](NodeId n, Timestamp t) { cf.emplace_back(n, t); });
    EXPECT_EQ(cf, cfRef);

    ValueTraceQuery vq(acc);
    std::vector<int64_t> vals;
    vq.extract(load, [&](Timestamp, int64_t v) {
        vals.push_back(v);
    });
    EXPECT_EQ(vals, valsRef);

    AddressTraceQuery aq(acc);
    uint64_t addrCount =
        aq.extract(load, [](Timestamp, uint64_t) {});
    EXPECT_EQ(addrCount, vals.size());

    WetSlicer slicer(acc);
    auto slice = slicer.backward(slicer.locate(load, 5));
    EXPECT_EQ(slice.items.size(), sliceRef.items.size());
}

TEST(DropTier1Test, BackwardRangeFromMidTrace)
{
    auto p = runPipeline(kProgram, inputs60());
    WetAccess acc(p->graph, *p->module);
    ControlFlowQuery q(acc);
    std::vector<std::pair<NodeId, Timestamp>> all;
    q.extractForward([&](NodeId n, Timestamp t) {
        all.emplace_back(n, t);
    });
    ASSERT_GT(all.size(), 12u);
    Timestamp mid = all[all.size() / 2].second;
    std::vector<std::pair<NodeId, Timestamp>> window;
    uint64_t blocks = q.extractRangeBackward(
        mid, 6, [&](NodeId n, Timestamp t) {
            window.emplace_back(n, t);
        });
    EXPECT_GT(blocks, 0u);
    ASSERT_EQ(window.size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(window[i], all[all.size() / 2 - i]);
    // Whole-trace backward equals reversed forward (regression for
    // the shared implementation).
    std::vector<std::pair<NodeId, Timestamp>> back;
    q.extractBackward([&](NodeId n, Timestamp t) {
        back.emplace_back(n, t);
    });
    std::reverse(back.begin(), back.end());
    EXPECT_EQ(back, all);
}

} // namespace
} // namespace core
} // namespace wet
