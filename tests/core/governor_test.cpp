#include "core/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sessionverifier.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "support/failpoint.h"
#include "testutil.h"

namespace wet {
namespace core {
namespace {

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 40; i = i + 1) {
            mem[i % 8] = i * 3;
            s = s + mem[i % 8];
        }
        out(s);
    }
)";

/** One control-flow query under a session scope, answers collected. */
std::vector<std::pair<NodeId, Timestamp>>
runCf(QuerySession& s)
{
    std::vector<std::pair<NodeId, Timestamp>> out;
    QuerySession::Scope scope(s, "cf");
    ControlFlowQuery q(s.access());
    q.extractRange(1, 40, [&out](NodeId n, Timestamp t) {
        out.emplace_back(n, t);
    });
    return out;
}

/** A backing whose resident gauge is always over any sane budget. */
struct HugeBacking : ArtifactBacking
{
    size_t sizeBytes() const override { return size_t{1} << 30; }
    size_t residentBytes() const override { return size_t{1} << 30; }
    std::string backendName() const override { return "fake"; }
};

/**
 * Resource-governor and fault-recovery behavior of QuerySession: a
 * tripped limit surfaces as GovernorLimit plus a trip metric, and a
 * query that fails mid-decode quarantines its readers so the next
 * query answers byte-identically to an undisturbed session.
 */
class GovernorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        support::FailPoints::instance().disarmAll();
        p_ = test::runPipeline(kProgram);
        comp_ = std::make_unique<WetCompressed>(p_->graph);
    }

    void
    TearDown() override
    {
        support::FailPoints::instance().disarmAll();
    }

    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<WetCompressed> comp_;
};

TEST_F(GovernorTest, DecodeStepBudgetTripsWithMetric)
{
    SessionOptions opt;
    opt.limits.maxDecodeSteps = 1;
    QuerySession s(*p_->module, *comp_, nullptr, opt);
    try {
        runCf(s);
        FAIL() << "one decode step cannot satisfy a cf query";
    } catch (const GovernorLimit& e) {
        EXPECT_EQ(e.which(), "decode-steps");
    }
    const auto& c = s.metrics().counters();
    EXPECT_EQ(c.at("governor.decode-steps.trips"), 1u);
    // A governed truncation counts as a failed query at the session
    // boundary: its readers may hold partial state.
    EXPECT_EQ(c.at("queries.failed"), 1u);
}

TEST_F(GovernorTest, GenerousLimitsDoNotPerturbAnswers)
{
    QuerySession plain(*p_->module, *comp_);
    auto want = runCf(plain);
    ASSERT_FALSE(want.empty());

    SessionOptions opt;
    opt.limits.maxDecodeSteps = uint64_t{1} << 40;
    opt.limits.timeoutMs = 3600 * 1000;
    QuerySession gov(*p_->module, *comp_, nullptr, opt);
    EXPECT_EQ(runCf(gov), want);
    EXPECT_EQ(runCf(gov), want); // warm repeat under the same window
    const auto& c = gov.metrics().counters();
    EXPECT_EQ(c.count("governor.decode-steps.trips"), 0u);
    EXPECT_EQ(c.count("governor.timeout.trips"), 0u);
    EXPECT_EQ(c.count("queries.failed"), 0u);
}

TEST_F(GovernorTest, ResidentByteGaugeTrips)
{
    SessionOptions opt;
    opt.limits.maxResidentBytes = 4096;
    QuerySession s(*p_->module, *comp_, std::make_shared<HugeBacking>(),
                   opt);
    try {
        runCf(s);
        FAIL() << "a 1 GiB resident gauge must trip a 4 KiB budget";
    } catch (const GovernorLimit& e) {
        EXPECT_EQ(e.which(), "resident-bytes");
    }
    EXPECT_EQ(s.metrics().counters().at("governor.resident-bytes.trips"),
              1u);
}

TEST_F(GovernorTest, DeadlineFailpointTripsTimeoutDeterministically)
{
    SessionOptions opt;
    opt.limits.timeoutMs = 3600 * 1000; // only the failpoint can trip
    QuerySession s(*p_->module, *comp_, nullptr, opt);
    support::FailPoints::instance().arm(
        "support.governor.deadline=once");
    try {
        runCf(s);
        FAIL() << "injected deadline did not trip";
    } catch (const GovernorLimit& e) {
        EXPECT_EQ(e.which(), "timeout");
    }
    EXPECT_EQ(s.metrics().counters().at("governor.timeout.trips"), 1u);
    // With the trigger consumed the same session serves normally.
    QuerySession fresh(*p_->module, *comp_);
    EXPECT_EQ(runCf(s), runCf(fresh));
}

TEST_F(GovernorTest, FailedQueryQuarantinesAndServingRecovers)
{
    QuerySession ref(*p_->module, *comp_);
    auto want = runCf(ref);
    ASSERT_FALSE(want.empty());
    // The query below relies on a second cold miss existing.
    ASSERT_GE(ref.cache().stats().misses, 2u);

    // Fault the second stream insert of a cold cf query: the first
    // reader is already warm and touched, so the unwind must retire
    // it — it may hold partial state from the aborted query.
    QuerySession s(*p_->module, *comp_);
    support::FailPoints::instance().arm("core.cache.insert=nth:2");
    EXPECT_THROW(runCf(s), WetError);
    support::FailPoints::instance().disarmAll();

    // The failed query's readers were retired, the boundary purge ran,
    // and the cache invariants hold.
    EXPECT_GT(s.cache().stats().quarantined, 0u);
    EXPECT_EQ(s.cache().graveyardSize(), 0u);
    analysis::DiagEngine diag;
    EXPECT_TRUE(
        analysis::verifySessionCache(s.cache(), "governor_test", diag))
        << diag.renderText();

    // Subsequent serving is byte-identical to the pre-fault answers.
    EXPECT_EQ(runCf(s), want);
    EXPECT_EQ(runCf(s), want);
    EXPECT_GE(s.metrics().counters().at("queries.failed"), 1u);
}

/** Minimal reader for driving the cache verifier directly. */
class StubReader : public SeqReader
{
  public:
    uint64_t length() const override { return 1; }
    int64_t at(uint64_t) override { return 0; }
};

TEST_F(GovernorTest, SessionVerifierFlagsLeftoverGraveyard)
{
    StreamCache cache(4);
    auto make = [] { return std::make_unique<StubReader>(); };
    cache.get(1, make);
    cache.get(2, make);
    analysis::DiagEngine clean;
    EXPECT_TRUE(analysis::verifySessionCache(cache, "t", clean))
        << clean.renderText();

    // A quarantine without the boundary purge is exactly the state
    // SES002 exists to catch.
    cache.quarantineTouched();
    ASSERT_GT(cache.graveyardSize(), 0u);
    analysis::DiagEngine diag;
    EXPECT_FALSE(analysis::verifySessionCache(cache, "t", diag));
    EXPECT_TRUE(diag.hasRule("SES002")) << diag.renderText();
    cache.purge();
    analysis::DiagEngine after;
    EXPECT_TRUE(analysis::verifySessionCache(cache, "t", after))
        << after.renderText();
}

} // namespace
} // namespace core
} // namespace wet
