#include "core/slicer.h"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "testutil.h"

namespace wet {
namespace core {
namespace {

using test::runPipeline;

/**
 * Reference slicer over the raw recorded trace: BFS over the
 * per-event dependences and block control records, in
 * (stmt, localIdx) space.
 */
std::map<ir::StmtId, int64_t>
referenceBackwardSlice(const test::Pipeline& p, ir::StmtId seed_stmt,
                       uint32_t seed_local)
{
    // Index events by (stmt, local instance).
    std::map<std::pair<ir::StmtId, uint32_t>, size_t> byInstance;
    for (size_t i = 0; i < p.record.stmts.size(); ++i) {
        const auto& ev = p.record.stmts[i];
        byInstance[{ev.stmt, ev.instance}] = i;
    }
    std::map<ir::StmtId, int64_t> counts;
    std::set<std::pair<ir::StmtId, uint32_t>> seen;
    std::queue<std::pair<ir::StmtId, uint32_t>> work;
    work.push({seed_stmt, seed_local});
    while (!work.empty()) {
        auto item = work.front();
        work.pop();
        if (!seen.insert(item).second)
            continue;
        counts[item.first]++;
        auto it = byInstance.find(item);
        if (it == byInstance.end())
            continue;
        const auto& ev = p.record.stmts[it->second];
        for (uint8_t k = 0; k < ev.numDeps; ++k)
            work.push({ev.deps[k].stmt, ev.deps[k].instance});
        const auto& ctrl = p.record.stmtControls[it->second];
        if (ctrl.valid())
            work.push({ctrl.stmt, ctrl.instance});
    }
    return counts;
}

/** WET slice as per-statement counts. */
std::map<ir::StmtId, int64_t>
sliceCounts(const WetGraph& g, const SliceResult& res)
{
    std::map<ir::StmtId, int64_t> counts;
    for (const SliceItem& it : res.items)
        counts[g.nodes[it.node].stmts[it.pos]]++;
    return counts;
}

const char* kSliceProgram = R"(
    fn main() {
        var s = 0;
        var junk = 0;
        for (var i = 0; i < 12; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { s = s + t; }
            junk = junk + 1;
        }
        out(s);
        out(junk);
    }
)";

std::vector<int64_t>
inputs12()
{
    return {4, 7, 2, 9, 6, 1, 8, 3, 0, 5, 10, 11};
}

TEST(WetSlicerTest, BackwardSliceMatchesReferenceOnRawTrace)
{
    auto p = runPipeline(kSliceProgram, inputs12());
    WetAccess acc(p->graph, *p->module);
    WetSlicer slicer(acc);

    // Seed: the final value of s flowing into the first out() — the
    // producing statement is the last Mov into s. Find the out event
    // and its dependence.
    const interp::StmtEvent* outEv = nullptr;
    for (const auto& ev : p->record.stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::Out) {
            outEv = &ev;
            break;
        }
    }
    ASSERT_NE(outEv, nullptr);
    ASSERT_EQ(outEv->numDeps, 1);
    ir::StmtId seedStmt = outEv->deps[0].stmt;
    uint32_t seedLocal = outEv->deps[0].instance;

    // The WET-side seed: the same instance located via the merge
    // (call-free program: local index == timestamp rank).
    SliceItem seed = slicer.locate(seedStmt, seedLocal);
    ASSERT_TRUE(seed.valid());

    SliceResult res = slicer.backward(seed);
    EXPECT_FALSE(res.truncated);
    auto got = sliceCounts(p->graph, res);
    auto want = referenceBackwardSlice(*p, seedStmt, seedLocal);
    EXPECT_EQ(got, want);
}

TEST(WetSlicerTest, Tier2SliceEqualsTier1Slice)
{
    auto p = runPipeline(kSliceProgram, inputs12());
    WetCompressed comp(p->graph);
    WetAccess t1(p->graph, *p->module);
    WetAccess t2(comp, *p->module);
    WetSlicer s1(t1);
    WetSlicer s2(t2);
    const interp::StmtEvent* outEv = nullptr;
    for (const auto& ev : p->record.stmts)
        if (p->module->instr(ev.stmt).op == ir::Opcode::Out)
            outEv = &ev; // last out()
    ASSERT_NE(outEv, nullptr);
    SliceItem seed1 =
        s1.locate(outEv->deps[0].stmt, outEv->deps[0].instance);
    SliceItem seed2 =
        s2.locate(outEv->deps[0].stmt, outEv->deps[0].instance);
    auto r1 = s1.backward(seed1);
    auto r2 = s2.backward(seed2);
    EXPECT_EQ(sliceCounts(p->graph, r1), sliceCounts(p->graph, r2));
}

TEST(WetSlicerTest, IndependentComputationStaysOutOfSlice)
{
    auto p = runPipeline(kSliceProgram, inputs12());
    WetAccess acc(p->graph, *p->module);
    WetSlicer slicer(acc);
    // Slice from s's final producer: the junk counter's additions
    // must not appear (they only share control dependence with s via
    // the loop predicate, which IS in the slice, but junk's adds are
    // not).
    const interp::StmtEvent* outEv = nullptr;
    for (const auto& ev : p->record.stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::Out) {
            outEv = &ev;
            break;
        }
    }
    ASSERT_NE(outEv, nullptr);
    SliceItem seed =
        slicer.locate(outEv->deps[0].stmt, outEv->deps[0].instance);
    SliceResult res = slicer.backward(seed);
    auto counts = sliceCounts(p->graph, res);
    // The second out()'s dependence (junk's final Mov) is absent.
    const interp::StmtEvent* outJunk = nullptr;
    for (const auto& ev : p->record.stmts)
        if (p->module->instr(ev.stmt).op == ir::Opcode::Out)
            outJunk = &ev;
    ASSERT_NE(outJunk, nullptr);
    EXPECT_EQ(counts.count(outJunk->deps[0].stmt), 0u);
}

TEST(WetSlicerTest, ForwardSliceReachesUses)
{
    auto p = runPipeline(R"(
        fn main() {
            var a = in();
            var b = a * 2;
            var c = b + 1;
            var d = in();
            out(c);
            out(d);
        }
    )",
                         {5, 9});
    WetAccess acc(p->graph, *p->module);
    WetSlicer slicer(acc);
    // Forward slice from the first In: must reach b, c and the first
    // out, but not d.
    ir::StmtId firstIn = ir::kNoStmt;
    ir::StmtId secondIn = ir::kNoStmt;
    for (const auto& ev : p->record.stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::In) {
            if (firstIn == ir::kNoStmt)
                firstIn = ev.stmt;
            else
                secondIn = ev.stmt;
        }
    }
    SliceItem seed = slicer.locate(firstIn, 0);
    ASSERT_TRUE(seed.valid());
    SliceResult res = slicer.forward(seed);
    auto counts = sliceCounts(p->graph, res);
    // Mul and Add (b and c chains) are reached.
    bool sawMul = false;
    bool sawOut = false;
    for (auto& [stmt, cnt] : counts) {
        (void)cnt;
        if (p->module->instr(stmt).op == ir::Opcode::Mul)
            sawMul = true;
        if (p->module->instr(stmt).op == ir::Opcode::Out)
            sawOut = true;
    }
    EXPECT_TRUE(sawMul);
    EXPECT_TRUE(sawOut);
    EXPECT_EQ(counts.count(secondIn), 0u);
}

TEST(WetSlicerTest, MaxItemsTruncates)
{
    auto p = runPipeline(kSliceProgram, inputs12());
    WetAccess acc(p->graph, *p->module);
    WetSlicer slicer(acc);
    const interp::StmtEvent* outEv = nullptr;
    for (const auto& ev : p->record.stmts) {
        if (p->module->instr(ev.stmt).op == ir::Opcode::Out) {
            outEv = &ev;
            break;
        }
    }
    SliceItem seed =
        slicer.locate(outEv->deps[0].stmt, outEv->deps[0].instance);
    SliceResult res = slicer.backward(seed, 3);
    EXPECT_TRUE(res.truncated);
    EXPECT_EQ(res.items.size(), 3u);
}

} // namespace
} // namespace core
} // namespace wet
