#include "wetio/wetio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "analysis/artifactverifier.h"
#include "analysis/racedetect.h"
#include "analysis/wetverifier.h"
#include "core/compressed.h"
#include "lang/codegen.h"
#include "testutil.h"

namespace wet {
namespace wetio {
namespace {

const char* kProgram = R"(
    fn half(x) { return x / 2; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 20; i = i + 1) {
            var t = in();
            if (t % 3 == 0) { mem[i % 4] = half(t); }
            s = s + mem[i % 4];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs20()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 20; ++i)
        v.push_back((i * 5 + 1) % 17);
    return v;
}

/**
 * Negative tests: every corruption of a WETX file must surface as a
 * diagnostic from tryLoad / the verifiers, never as a crash. The
 * fixture saves one pristine artifact and hands each test a byte
 * vector to damage.
 */
class CorruptWetxTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs each test as its own process,
        // and parallel siblings must not clobber each other's file.
        path_ = ::testing::TempDir() + "corrupt_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".wetx";
        p_ = test::runPipeline(kProgram, inputs20());
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
        save(path_, *p_->module, p_->graph, *compressed_);
        std::ifstream in(path_, std::ios::binary);
        bytes_.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
        ASSERT_GT(bytes_.size(), 16u);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Writes the (damaged) bytes and loads them. */
    LoadedWet
    loadBytes(analysis::DiagEngine& diag)
    {
        std::ofstream out(path_, std::ios::binary |
                                     std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes_.data()),
                  static_cast<std::streamsize>(bytes_.size()));
        out.close();
        return tryLoad(path_, *p_->module, diag);
    }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
    std::vector<uint8_t> bytes_;
};

TEST_F(CorruptWetxTest, PristineFileLoadsClean)
{
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_EQ(diag.errorCount(), 0u);
    EXPECT_TRUE(analysis::verifyWet(*w.graph, *p_->ma, diag,
                                    w.compressed.get()))
        << diag.renderText();
    EXPECT_TRUE(analysis::verifyArtifact(*w.compressed, diag))
        << diag.renderText();
}

TEST_F(CorruptWetxTest, BadMagicFiresIO001)
{
    bytes_[0] ^= 0x01;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO001")) << diag.renderText();
}

TEST_F(CorruptWetxTest, UnsupportedVersionFiresIO002)
{
    // Layout: a 5-byte magic varint, then the version varint. The
    // current version is 3 (adds the SYNC section), a single byte.
    ASSERT_EQ(bytes_[5], 0x03);
    bytes_[5] = 0x63;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO002")) << diag.renderText();
}

TEST_F(CorruptWetxTest, BitFlippedFingerprintFiresIO003)
{
    // Flip a value bit (not the continuation bit) of the module
    // fingerprint varint that follows magic and version.
    bytes_[6] ^= 0x01;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO003")) << diag.renderText();
}

TEST_F(CorruptWetxTest, WrongProgramFiresIO003)
{
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
    out.close();
    ir::Module other = lang::compileString("fn main() { out(7); }");
    analysis::DiagEngine diag;
    LoadedWet w = tryLoad(path_, other, diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO003")) << diag.renderText();
}

TEST_F(CorruptWetxTest, TruncatedHeaderFiresIO004)
{
    bytes_.resize(7); // ends inside the fingerprint
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO004")) << diag.renderText();
}

TEST_F(CorruptWetxTest, TruncatedStreamRegionIsDiagnosed)
{
    // Cut the file inside the compressed stream region: depending on
    // where the cut lands, the reader reports a read past the end
    // (IO004), an element count larger than the remaining bytes
    // (IO005), or a payload blob extending past the end (IO007);
    // either way the load fails cleanly.
    bytes_.resize(bytes_.size() * 3 / 4);
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasErrors());
    EXPECT_TRUE(diag.hasRule("IO004") || diag.hasRule("IO005") ||
                diag.hasRule("IO007"))
        << diag.renderText();
}

TEST_F(CorruptWetxTest, BlobPastEndOfFileFiresIO007)
{
    // Stream payloads are length-prefixed raw blobs so the loader
    // can alias them straight out of the mapped file — which makes
    // "blob extends past the end of the file" its own failure mode
    // (IO007), distinct from a truncated varint (IO004). Sweep cuts
    // off the tail: every cut must fail with a diagnostic, and at
    // least one must land inside a payload blob and fire IO007.
    const std::vector<uint8_t> pristine = bytes_;
    bool sawIO007 = false;
    for (size_t cut = 1; cut <= 64 && cut < pristine.size(); ++cut) {
        bytes_ = pristine;
        bytes_.resize(pristine.size() - cut);
        analysis::DiagEngine diag;
        LoadedWet w = loadBytes(diag);
        EXPECT_FALSE(w.graph && w.compressed)
            << "cut " << cut << " loaded";
        EXPECT_TRUE(diag.hasErrors()) << "cut " << cut << " silent";
        if (diag.hasRule("IO007"))
            sawIO007 = true;
    }
    EXPECT_TRUE(sawIO007)
        << "no tail cut ever landed inside a payload blob";
}

TEST_F(CorruptWetxTest, InsertedBytesInStreamRegionAreDiagnosed)
{
    // Splice a max-continuation varint into the stream region: the
    // parse must fail with a diagnostic (typically an inflated count
    // or blob length tripping IO005/IO007), never crash or accept.
    size_t pos = bytes_.size() * 7 / 8;
    std::vector<uint8_t> huge = {0xff, 0xff, 0xff, 0xff, 0x0f};
    bytes_.insert(bytes_.begin() +
                      static_cast<std::ptrdiff_t>(pos),
                  huge.begin(), huge.end());
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasErrors()) << "silent acceptance";
}

TEST_F(CorruptWetxTest, TrailingBytesFireIO006)
{
    bytes_.push_back(0x00);
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasRule("IO006")) << diag.renderText();
}

TEST_F(CorruptWetxTest, NonMonotoneTimestampsFireWET001)
{
    // Corrupt the timestamps before tier-2 compression: the file
    // itself is structurally sound, so the load succeeds and the
    // graph verifier has to catch the broken label semantics.
    core::WetGraph bad = p_->graph;
    bool mutated = false;
    for (auto& node : bad.nodes) {
        if (node.ts.size() >= 2) {
            std::swap(node.ts[0], node.ts[1]);
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    core::WetCompressed wc(bad);
    save(path_, *p_->module, bad, wc);
    analysis::DiagEngine diag;
    LoadedWet w = tryLoad(path_, *p_->module, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifyWet(*w.graph, *p_->ma, diag,
                                     w.compressed.get()));
    EXPECT_TRUE(diag.hasRule("WET001")) << diag.renderText();
}

TEST_F(CorruptWetxTest, BitFlipSweepNeverCrashes)
{
    // Light fuzzing: flip one bit at a spread of positions. Not
    // every flip is detectable (a flipped unique *value* is just a
    // different trace), but none may crash, and a failed load must
    // come with at least one error diagnostic. FUZZ_ITERS scales the
    // sweep density (CI default covers ~37 positions; a deep local
    // run with FUZZ_ITERS=2000 touches nearly every byte).
    size_t positions = 37;
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            positions = v;
    }
    const std::vector<uint8_t> pristine = bytes_;
    for (size_t pos = 0; pos < pristine.size();
         pos += pristine.size() / positions + 1)
    {
        bytes_ = pristine;
        bytes_[pos] ^= 0x10;
        analysis::DiagEngine diag;
        LoadedWet w = loadBytes(diag);
        if (!w.graph || !w.compressed) {
            EXPECT_TRUE(diag.hasErrors())
                << "silent load failure at byte " << pos;
        } else {
            analysis::verifyWet(*w.graph, *p_->ma, diag,
                                w.compressed.get());
            analysis::verifyArtifact(*w.compressed, diag);
        }
    }
}

// ---------------------------------------------------------------- //
// Threaded-artifact corruption: the SYNC section gets the same
// treatment as the rest of the file — bit flips must never crash and
// semantic damage must fire the SYNC verifier rules.

const char* kThreadedProgram = R"(
    fn worker(base) {
        var s = 0;
        for (var i = 0; i < 4; i = i + 1) {
            lock(3);
            mem[0] = mem[0] + base;
            unlock(3);
            mem[1 + base] = mem[1 + base] + i;
            s = s + mem[1 + base];
        }
        return s;
    }
    fn main() {
        var t1 = spawn worker(1);
        var t2 = spawn worker(2);
        out(join(t1) + join(t2));
        out(mem[0]);
    }
)";

class CorruptSyncWetxTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test, as in CorruptWetxTest above.
        path_ = ::testing::TempDir() + "corrupt_sync_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".wetx";
        p_ = test::runPipeline(kThreadedProgram);
        ASSERT_FALSE(p_->graph.syncThreads.empty());
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
        save(path_, *p_->module, p_->graph, *compressed_);
        std::ifstream in(path_, std::ios::binary);
        bytes_.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
        ASSERT_GT(bytes_.size(), 16u);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    LoadedWet
    loadBytes(analysis::DiagEngine& diag)
    {
        std::ofstream out(path_, std::ios::binary |
                                     std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes_.data()),
                  static_cast<std::streamsize>(bytes_.size()));
        out.close();
        return tryLoad(path_, *p_->module, diag);
    }

    /** Recompress a mutated graph, save it, and load it back. The
     *  file is structurally sound, so the load must succeed and the
     *  SYNC verifier has to catch the semantic damage. */
    LoadedWet
    reloadMutated(const core::WetGraph& bad,
                  analysis::DiagEngine& diag)
    {
        core::WetCompressed wc(bad);
        save(path_, *p_->module, bad, wc);
        return tryLoad(path_, *p_->module, diag);
    }

    /** First (thread, index) whose kind equals @p kind. */
    std::pair<size_t, size_t>
    findKind(core::WetGraph& g, int64_t kind)
    {
        for (size_t t = 0; t < g.syncThreads.size(); ++t)
            for (size_t i = 0; i < g.syncThreads[t].kind.size(); ++i)
                if (g.syncThreads[t].kind[i] == kind)
                    return {t, i};
        ADD_FAILURE() << "no sync event of kind " << kind;
        return {0, 0};
    }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
    std::vector<uint8_t> bytes_;
};

TEST_F(CorruptSyncWetxTest, PristineThreadedArtifactScansClean)
{
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_TRUE(analysis::verifySync(*w.compressed,
                                     p_->module.get(), diag))
        << diag.renderText();
    analysis::CursorSyncAccess cur(*w.compressed);
    analysis::DecodeSyncAccess dec(*w.compressed);
    analysis::RaceReport a = analysis::detectRaces(cur);
    analysis::RaceReport b = analysis::detectRaces(dec);
    EXPECT_EQ(a.renderText(), b.renderText());
}

TEST_F(CorruptSyncWetxTest, SyncBitFlipSweepNeverCrashes)
{
    // Same contract as the single-threaded sweep, with the race scan
    // added on top: any flip that still loads must let verifySync and
    // both detector engines run to completion — diagnosed findings
    // are fine, crashes and engine divergence are not. The SYNC
    // streams sit at the tail of the file, so the sweep walks the
    // last half densely instead of spreading over the whole artifact.
    size_t positions = 37;
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            positions = v;
    }
    const std::vector<uint8_t> pristine = bytes_;
    const size_t start = pristine.size() / 2;
    const size_t span = pristine.size() - start;
    for (size_t pos = start; pos < pristine.size();
         pos += span / positions + 1)
    {
        bytes_ = pristine;
        bytes_[pos] ^= 0x10;
        analysis::DiagEngine diag;
        LoadedWet w = loadBytes(diag);
        if (!w.graph || !w.compressed) {
            EXPECT_TRUE(diag.hasErrors())
                << "silent load failure at byte " << pos;
            continue;
        }
        analysis::verifySync(*w.compressed, p_->module.get(), diag);
        analysis::CursorSyncAccess cur(*w.compressed);
        analysis::DecodeSyncAccess dec(*w.compressed);
        analysis::RaceReport a = analysis::detectRaces(cur);
        analysis::RaceReport b = analysis::detectRaces(dec);
        EXPECT_EQ(a.renderText(), b.renderText())
            << "engine divergence at byte " << pos;
    }
}

TEST_F(CorruptSyncWetxTest, UnknownSyncKindFiresSYNC001)
{
    core::WetGraph bad = p_->graph;
    auto [t, i] = findKind(bad, 0); // a Spawn event
    bad.syncThreads[t].kind[i] = 99;
    analysis::DiagEngine diag;
    LoadedWet w = reloadMutated(bad, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifySync(*w.compressed,
                                      p_->module.get(), diag));
    EXPECT_TRUE(diag.hasRule("SYNC001")) << diag.renderText();
}

TEST_F(CorruptSyncWetxTest, ForeignReleaseFiresSYNC002)
{
    core::WetGraph bad = p_->graph;
    auto [t, i] = findKind(bad, 3); // a Release event
    bad.syncThreads[t].obj[i] = 9999; // lock never acquired
    analysis::DiagEngine diag;
    LoadedWet w = reloadMutated(bad, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifySync(*w.compressed,
                                      p_->module.get(), diag));
    EXPECT_TRUE(diag.hasRule("SYNC002")) << diag.renderText();
}

TEST_F(CorruptSyncWetxTest, JoinOfNeverSpawnedThreadFiresSYNC003)
{
    core::WetGraph bad = p_->graph;
    auto [t, i] = findKind(bad, 1); // a Join event
    bad.syncThreads[t].obj[i] = 57;
    analysis::DiagEngine diag;
    LoadedWet w = reloadMutated(bad, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifySync(*w.compressed,
                                      p_->module.get(), diag));
    EXPECT_TRUE(diag.hasRule("SYNC003")) << diag.renderText();
}

TEST_F(CorruptSyncWetxTest, NonIncreasingSeqFiresSYNC004)
{
    core::WetGraph bad = p_->graph;
    bool mutated = false;
    for (auto& st : bad.syncThreads)
        if (st.seq.size() >= 2) {
            st.seq[1] = st.seq[0];
            mutated = true;
            break;
        }
    ASSERT_TRUE(mutated);
    analysis::DiagEngine diag;
    LoadedWet w = reloadMutated(bad, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifySync(*w.compressed,
                                      p_->module.get(), diag));
    EXPECT_TRUE(diag.hasRule("SYNC004")) << diag.renderText();
}

/** The wet_cli binary built next to this test, or "" if absent. */
std::string
cliPath()
{
#if defined(__linux__)
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string exe(buf);
    size_t slash = exe.rfind('/');
    if (slash == std::string::npos)
        return "";
    std::string cli = exe.substr(0, slash) + "/../tools/wet_cli";
    return ::access(cli.c_str(), X_OK) == 0 ? cli : "";
#else
    return "";
#endif
}

#if defined(__linux__)
TEST_F(CorruptWetxTest, CliBatchBitFlipSweepStaysGoverned)
{
    // End-to-end robustness: drive every bit-flipped artifact through
    // `wet_cli query` batch serving. Whatever the flip does — clean
    // load, diagnosed reject, or a mid-query decode fault — the CLI
    // must exit inside its documented 0..6 contract, never on a
    // signal or an abort.
    std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "wet_cli not built next to the test binary";

    const std::string prog =
        ::testing::TempDir() + "corrupt_cli_prog.wet";
    const std::string batch =
        ::testing::TempDir() + "corrupt_cli_batch.txt";
    {
        std::ofstream p(prog);
        p << kProgram;
    }
    {
        std::ofstream b(batch);
        b << "cf --from 1 --count 3\ndepcheck\nraces\n";
    }
    auto runCli = [&] {
        std::string cmd = "'" + cli + "' query '" + prog + "' '" +
                          path_ + "' --input '" + batch +
                          "' >/dev/null 2>&1";
        return std::system(cmd.c_str());
    };
    auto writeBytes = [&] {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes_.data()),
                  static_cast<std::streamsize>(bytes_.size()));
    };

    // Harness sanity: the pristine artifact must serve cleanly, or
    // every flip below would pass vacuously on a setup error.
    const std::vector<uint8_t> pristine = bytes_;
    writeBytes();
    int st = runCli();
    ASSERT_NE(st, -1);
    ASSERT_TRUE(WIFEXITED(st));
    ASSERT_EQ(WEXITSTATUS(st), 0) << "pristine artifact did not serve";

    size_t positions = 13; // each position is one process spawn
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            positions = std::min<size_t>(v, pristine.size());
    }
    for (size_t pos = 0; pos < pristine.size();
         pos += pristine.size() / positions + 1)
    {
        bytes_ = pristine;
        bytes_[pos] ^= 0x04;
        writeBytes();
        st = runCli();
        ASSERT_NE(st, -1);
        ASSERT_TRUE(WIFEXITED(st))
            << "CLI died on a signal for a flip at byte " << pos;
        EXPECT_LE(WEXITSTATUS(st), 6)
            << "exit escaped the 0..6 contract at byte " << pos;
    }
    std::remove(prog.c_str());
    std::remove(batch.c_str());
}
#endif // __linux__

} // namespace
} // namespace wetio
} // namespace wet
