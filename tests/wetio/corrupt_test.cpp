#include "wetio/wetio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "analysis/artifactverifier.h"
#include "analysis/wetverifier.h"
#include "core/compressed.h"
#include "lang/codegen.h"
#include "testutil.h"

namespace wet {
namespace wetio {
namespace {

const char* kProgram = R"(
    fn half(x) { return x / 2; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 20; i = i + 1) {
            var t = in();
            if (t % 3 == 0) { mem[i % 4] = half(t); }
            s = s + mem[i % 4];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs20()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 20; ++i)
        v.push_back((i * 5 + 1) % 17);
    return v;
}

/**
 * Negative tests: every corruption of a WETX file must surface as a
 * diagnostic from tryLoad / the verifiers, never as a crash. The
 * fixture saves one pristine artifact and hands each test a byte
 * vector to damage.
 */
class CorruptWetxTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "corrupt_test.wetx";
        p_ = test::runPipeline(kProgram, inputs20());
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
        save(path_, *p_->module, p_->graph, *compressed_);
        std::ifstream in(path_, std::ios::binary);
        bytes_.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
        ASSERT_GT(bytes_.size(), 16u);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Writes the (damaged) bytes and loads them. */
    LoadedWet
    loadBytes(analysis::DiagEngine& diag)
    {
        std::ofstream out(path_, std::ios::binary |
                                     std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes_.data()),
                  static_cast<std::streamsize>(bytes_.size()));
        out.close();
        return tryLoad(path_, *p_->module, diag);
    }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
    std::vector<uint8_t> bytes_;
};

TEST_F(CorruptWetxTest, PristineFileLoadsClean)
{
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_EQ(diag.errorCount(), 0u);
    EXPECT_TRUE(analysis::verifyWet(*w.graph, *p_->ma, diag,
                                    w.compressed.get()))
        << diag.renderText();
    EXPECT_TRUE(analysis::verifyArtifact(*w.compressed, diag))
        << diag.renderText();
}

TEST_F(CorruptWetxTest, BadMagicFiresIO001)
{
    bytes_[0] ^= 0x01;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO001")) << diag.renderText();
}

TEST_F(CorruptWetxTest, UnsupportedVersionFiresIO002)
{
    // Layout: a 5-byte magic varint, then the version varint. The
    // current version is 2 (raw zero-copy stream payloads), a
    // single byte.
    ASSERT_EQ(bytes_[5], 0x02);
    bytes_[5] = 0x63;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO002")) << diag.renderText();
}

TEST_F(CorruptWetxTest, BitFlippedFingerprintFiresIO003)
{
    // Flip a value bit (not the continuation bit) of the module
    // fingerprint varint that follows magic and version.
    bytes_[6] ^= 0x01;
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO003")) << diag.renderText();
}

TEST_F(CorruptWetxTest, WrongProgramFiresIO003)
{
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
    out.close();
    ir::Module other = lang::compileString("fn main() { out(7); }");
    analysis::DiagEngine diag;
    LoadedWet w = tryLoad(path_, other, diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO003")) << diag.renderText();
}

TEST_F(CorruptWetxTest, TruncatedHeaderFiresIO004)
{
    bytes_.resize(7); // ends inside the fingerprint
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph);
    EXPECT_TRUE(diag.hasRule("IO004")) << diag.renderText();
}

TEST_F(CorruptWetxTest, TruncatedStreamRegionIsDiagnosed)
{
    // Cut the file inside the compressed stream region: depending on
    // where the cut lands, the reader reports a read past the end
    // (IO004), an element count larger than the remaining bytes
    // (IO005), or a payload blob extending past the end (IO007);
    // either way the load fails cleanly.
    bytes_.resize(bytes_.size() * 3 / 4);
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasErrors());
    EXPECT_TRUE(diag.hasRule("IO004") || diag.hasRule("IO005") ||
                diag.hasRule("IO007"))
        << diag.renderText();
}

TEST_F(CorruptWetxTest, BlobPastEndOfFileFiresIO007)
{
    // Stream payloads are length-prefixed raw blobs so the loader
    // can alias them straight out of the mapped file — which makes
    // "blob extends past the end of the file" its own failure mode
    // (IO007), distinct from a truncated varint (IO004). Sweep cuts
    // off the tail: every cut must fail with a diagnostic, and at
    // least one must land inside a payload blob and fire IO007.
    const std::vector<uint8_t> pristine = bytes_;
    bool sawIO007 = false;
    for (size_t cut = 1; cut <= 64 && cut < pristine.size(); ++cut) {
        bytes_ = pristine;
        bytes_.resize(pristine.size() - cut);
        analysis::DiagEngine diag;
        LoadedWet w = loadBytes(diag);
        EXPECT_FALSE(w.graph && w.compressed)
            << "cut " << cut << " loaded";
        EXPECT_TRUE(diag.hasErrors()) << "cut " << cut << " silent";
        if (diag.hasRule("IO007"))
            sawIO007 = true;
    }
    EXPECT_TRUE(sawIO007)
        << "no tail cut ever landed inside a payload blob";
}

TEST_F(CorruptWetxTest, InsertedBytesInStreamRegionAreDiagnosed)
{
    // Splice a max-continuation varint into the stream region: the
    // parse must fail with a diagnostic (typically an inflated count
    // or blob length tripping IO005/IO007), never crash or accept.
    size_t pos = bytes_.size() * 7 / 8;
    std::vector<uint8_t> huge = {0xff, 0xff, 0xff, 0xff, 0x0f};
    bytes_.insert(bytes_.begin() +
                      static_cast<std::ptrdiff_t>(pos),
                  huge.begin(), huge.end());
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasErrors()) << "silent acceptance";
}

TEST_F(CorruptWetxTest, TrailingBytesFireIO006)
{
    bytes_.push_back(0x00);
    analysis::DiagEngine diag;
    LoadedWet w = loadBytes(diag);
    EXPECT_FALSE(w.graph && w.compressed);
    EXPECT_TRUE(diag.hasRule("IO006")) << diag.renderText();
}

TEST_F(CorruptWetxTest, NonMonotoneTimestampsFireWET001)
{
    // Corrupt the timestamps before tier-2 compression: the file
    // itself is structurally sound, so the load succeeds and the
    // graph verifier has to catch the broken label semantics.
    core::WetGraph bad = p_->graph;
    bool mutated = false;
    for (auto& node : bad.nodes) {
        if (node.ts.size() >= 2) {
            std::swap(node.ts[0], node.ts[1]);
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    core::WetCompressed wc(bad);
    save(path_, *p_->module, bad, wc);
    analysis::DiagEngine diag;
    LoadedWet w = tryLoad(path_, *p_->module, diag);
    ASSERT_TRUE(w.graph && w.compressed) << diag.renderText();
    EXPECT_FALSE(analysis::verifyWet(*w.graph, *p_->ma, diag,
                                     w.compressed.get()));
    EXPECT_TRUE(diag.hasRule("WET001")) << diag.renderText();
}

TEST_F(CorruptWetxTest, BitFlipSweepNeverCrashes)
{
    // Light fuzzing: flip one bit at a spread of positions. Not
    // every flip is detectable (a flipped unique *value* is just a
    // different trace), but none may crash, and a failed load must
    // come with at least one error diagnostic. FUZZ_ITERS scales the
    // sweep density (CI default covers ~37 positions; a deep local
    // run with FUZZ_ITERS=2000 touches nearly every byte).
    size_t positions = 37;
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            positions = v;
    }
    const std::vector<uint8_t> pristine = bytes_;
    for (size_t pos = 0; pos < pristine.size();
         pos += pristine.size() / positions + 1)
    {
        bytes_ = pristine;
        bytes_[pos] ^= 0x10;
        analysis::DiagEngine diag;
        LoadedWet w = loadBytes(diag);
        if (!w.graph || !w.compressed) {
            EXPECT_TRUE(diag.hasErrors())
                << "silent load failure at byte " << pos;
        } else {
            analysis::verifyWet(*w.graph, *p_->ma, diag,
                                w.compressed.get());
            analysis::verifyArtifact(*w.compressed, diag);
        }
    }
}

/** The wet_cli binary built next to this test, or "" if absent. */
std::string
cliPath()
{
#if defined(__linux__)
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string exe(buf);
    size_t slash = exe.rfind('/');
    if (slash == std::string::npos)
        return "";
    std::string cli = exe.substr(0, slash) + "/../tools/wet_cli";
    return ::access(cli.c_str(), X_OK) == 0 ? cli : "";
#else
    return "";
#endif
}

#if defined(__linux__)
TEST_F(CorruptWetxTest, CliBatchBitFlipSweepStaysGoverned)
{
    // End-to-end robustness: drive every bit-flipped artifact through
    // `wet_cli query` batch serving. Whatever the flip does — clean
    // load, diagnosed reject, or a mid-query decode fault — the CLI
    // must exit inside its documented 0..5 contract, never on a
    // signal or an abort.
    std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "wet_cli not built next to the test binary";

    const std::string prog =
        ::testing::TempDir() + "corrupt_cli_prog.wet";
    const std::string batch =
        ::testing::TempDir() + "corrupt_cli_batch.txt";
    {
        std::ofstream p(prog);
        p << kProgram;
    }
    {
        std::ofstream b(batch);
        b << "cf --from 1 --count 3\ndepcheck\n";
    }
    auto runCli = [&] {
        std::string cmd = "'" + cli + "' query '" + prog + "' '" +
                          path_ + "' --input '" + batch +
                          "' >/dev/null 2>&1";
        return std::system(cmd.c_str());
    };
    auto writeBytes = [&] {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes_.data()),
                  static_cast<std::streamsize>(bytes_.size()));
    };

    // Harness sanity: the pristine artifact must serve cleanly, or
    // every flip below would pass vacuously on a setup error.
    const std::vector<uint8_t> pristine = bytes_;
    writeBytes();
    int st = runCli();
    ASSERT_NE(st, -1);
    ASSERT_TRUE(WIFEXITED(st));
    ASSERT_EQ(WEXITSTATUS(st), 0) << "pristine artifact did not serve";

    size_t positions = 13; // each position is one process spawn
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            positions = std::min<size_t>(v, pristine.size());
    }
    for (size_t pos = 0; pos < pristine.size();
         pos += pristine.size() / positions + 1)
    {
        bytes_ = pristine;
        bytes_[pos] ^= 0x04;
        writeBytes();
        st = runCli();
        ASSERT_NE(st, -1);
        ASSERT_TRUE(WIFEXITED(st))
            << "CLI died on a signal for a flip at byte " << pos;
        EXPECT_LE(WEXITSTATUS(st), 5)
            << "exit escaped the 0..5 contract at byte " << pos;
    }
    std::remove(prog.c_str());
    std::remove(batch.c_str());
}
#endif // __linux__

} // namespace
} // namespace wetio
} // namespace wet
