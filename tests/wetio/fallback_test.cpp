#include "wetio/wetio.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "core/access.h"
#include "core/cfquery.h"
#include "core/compressed.h"
#include "support/failpoint.h"
#include "testutil.h"

namespace wet {
namespace wetio {
namespace {

const char* kProgram = R"(
    fn main() {
        var s = 0;
        for (var i = 0; i < 30; i = i + 1) {
            mem[i % 4] = i * 7;
            s = s + mem[i % 4];
        }
        out(s);
    }
)";

/** Control-flow answers served straight off a loaded artifact. */
std::vector<std::pair<core::NodeId, core::Timestamp>>
cfAnswers(const LoadedWet& w, const ir::Module& mod)
{
    std::vector<std::pair<core::NodeId, core::Timestamp>> out;
    core::WetAccess acc(*w.compressed, mod);
    core::ControlFlowQuery q(acc);
    q.extractRange(1, 30, [&out](core::NodeId n, core::Timestamp t) {
        out.emplace_back(n, t);
    });
    return out;
}

/**
 * Satellite of the fault-injection PR: a forced mmap failure must
 * degrade to the buffered backend with no diagnostic, identical
 * bytes, identical query answers, and identical reject behavior for
 * corrupt input — the backend choice may never be observable in the
 * results.
 */
class FallbackTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        support::FailPoints::instance().disarmAll();
        // Unique per test: ctest runs each test as its own process,
        // and parallel siblings must not clobber each other's file.
        path_ = ::testing::TempDir() + "fallback_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".wetx";
        p_ = test::runPipeline(kProgram);
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
        save(path_, *p_->module, p_->graph, *compressed_);
    }

    void
    TearDown() override
    {
        support::FailPoints::instance().disarmAll();
        std::remove(path_.c_str());
    }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
};

TEST_F(FallbackTest, MmapFaultFallsBackToIdenticalBufferedBytes)
{
    analysis::DiagEngine diag;
    auto mapped =
        ArtifactView::open(path_, diag, ArtifactView::Backend::Mmap);
    ASSERT_TRUE(mapped) << diag.renderText();
    ASSERT_EQ(mapped->backendName(), "mmap");

    support::FailPoints::instance().arm("wetio.open.mmap=once");
    auto fallback =
        ArtifactView::open(path_, diag, ArtifactView::Backend::Mmap);
    ASSERT_TRUE(fallback) << diag.renderText();
    EXPECT_EQ(diag.errorCount(), 0u); // a degrade, not an error
    EXPECT_EQ(fallback->backendName(), "buffered");
    ASSERT_EQ(fallback->size(), mapped->size());
    EXPECT_EQ(std::memcmp(fallback->data(), mapped->data(),
                          fallback->size()),
              0);
    // Buffered means fully resident on load, by definition.
    EXPECT_EQ(fallback->residentBytes(), fallback->sizeBytes());
}

TEST_F(FallbackTest, LoadThroughFallbackServesIdenticalAnswers)
{
    analysis::DiagEngine diag;
    LoadedWet viaMmap = tryLoad(path_, *p_->module, diag);
    ASSERT_TRUE(viaMmap.graph && viaMmap.compressed)
        << diag.renderText();
    ASSERT_EQ(viaMmap.backing->backendName(), "mmap");

    support::FailPoints::instance().arm("wetio.open.mmap=once");
    LoadedWet viaFallback = tryLoad(path_, *p_->module, diag);
    ASSERT_TRUE(viaFallback.graph && viaFallback.compressed)
        << diag.renderText();
    EXPECT_EQ(viaFallback.backing->backendName(), "buffered");
    EXPECT_EQ(diag.errorCount(), 0u);

    auto a = cfAnswers(viaMmap, *p_->module);
    auto b = cfAnswers(viaFallback, *p_->module);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST_F(FallbackTest, CorruptFileRejectedIdenticallyUnderFallback)
{
    // Damage the magic; both paths must refuse with the same rule.
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_FALSE(bytes.empty());
    bytes[0] ^= 0x01;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();

    analysis::DiagEngine viaBuffered;
    LoadedWet a = tryLoad(path_, *p_->module, viaBuffered,
                          ArtifactView::Backend::Buffered);
    EXPECT_FALSE(a.graph);
    EXPECT_TRUE(viaBuffered.hasRule("IO001"))
        << viaBuffered.renderText();

    support::FailPoints::instance().arm("wetio.open.mmap=once");
    analysis::DiagEngine viaFallback;
    LoadedWet b = tryLoad(path_, *p_->module, viaFallback);
    EXPECT_FALSE(b.graph);
    EXPECT_TRUE(viaFallback.hasRule("IO001"))
        << viaFallback.renderText();
}

TEST_F(FallbackTest, OpenAndReadFaultsReportIO001)
{
    support::FailPoints::instance().arm("wetio.open=once");
    analysis::DiagEngine openDiag;
    EXPECT_FALSE(ArtifactView::open(path_, openDiag));
    EXPECT_TRUE(openDiag.hasRule("IO001")) << openDiag.renderText();

    support::FailPoints::instance().arm("wetio.open.read=once");
    analysis::DiagEngine readDiag;
    EXPECT_FALSE(ArtifactView::open(path_, readDiag,
                                    ArtifactView::Backend::Buffered));
    EXPECT_TRUE(readDiag.hasRule("IO001")) << readDiag.renderText();
}

} // namespace
} // namespace wetio
} // namespace wet
