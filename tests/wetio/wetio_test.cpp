#include "wetio/wetio.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/diag.h"
#include "core/access.h"
#include "core/cfquery.h"
#include "core/slicer.h"
#include "core/valuequery.h"
#include "testutil.h"

namespace wet {
namespace wetio {
namespace {

const char* kProgram = R"(
    fn weigh(x) { return x * x + 3; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 30; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { mem[i % 8] = weigh(t); }
            s = s + mem[i % 8];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs30()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 30; ++i)
        v.push_back((i * 11 + 2) % 19);
    return v;
}

class WetIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs each test as its own process,
        // and parallel siblings must not clobber each other's file.
        path_ = ::testing::TempDir() + "wetio_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".wetx";
        p_ = test::runPipeline(kProgram, inputs30());
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
};

TEST_F(WetIoTest, RoundTripPreservesStructure)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    LoadedWet loaded = load(path_, *p_->module);
    const core::WetGraph& a = p_->graph;
    const core::WetGraph& b = *loaded.graph;
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t n = 0; n < a.nodes.size(); ++n) {
        EXPECT_EQ(a.nodes[n].func, b.nodes[n].func);
        EXPECT_EQ(a.nodes[n].pathId, b.nodes[n].pathId);
        EXPECT_EQ(a.nodes[n].blocks, b.nodes[n].blocks);
        EXPECT_EQ(a.nodes[n].stmts, b.nodes[n].stmts);
        EXPECT_EQ(a.nodes[n].instances(), b.nodes[n].instances());
        EXPECT_EQ(a.nodes[n].stmtGroup, b.nodes[n].stmtGroup);
        EXPECT_EQ(a.nodes[n].cfSucc, b.nodes[n].cfSucc);
    }
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t e = 0; e < a.edges.size(); ++e) {
        EXPECT_EQ(a.edges[e].defNode, b.edges[e].defNode);
        EXPECT_EQ(a.edges[e].useNode, b.edges[e].useNode);
        EXPECT_EQ(a.edges[e].slot, b.edges[e].slot);
        EXPECT_EQ(a.edges[e].local, b.edges[e].local);
        EXPECT_EQ(a.edges[e].labelPool, b.edges[e].labelPool);
    }
    EXPECT_EQ(a.lastTimestamp, b.lastTimestamp);
    EXPECT_EQ(a.stmtInstancesTotal, b.stmtInstancesTotal);
}

TEST_F(WetIoTest, LoadedWetAnswersQueriesIdentically)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    LoadedWet loaded = load(path_, *p_->module);

    core::WetAccess before(*compressed_, *p_->module);
    core::WetAccess after(*loaded.compressed, *p_->module);

    // Control flow traces agree.
    std::vector<std::pair<core::NodeId, core::Timestamp>> f1;
    std::vector<std::pair<core::NodeId, core::Timestamp>> f2;
    core::ControlFlowQuery q1(before);
    core::ControlFlowQuery q2(after);
    q1.extractForward([&](core::NodeId n, core::Timestamp t) {
        f1.emplace_back(n, t);
    });
    q2.extractForward([&](core::NodeId n, core::Timestamp t) {
        f2.emplace_back(n, t);
    });
    EXPECT_EQ(f1, f2);

    // Load value traces agree.
    core::ValueTraceQuery v1(before);
    core::ValueTraceQuery v2(after);
    for (ir::StmtId s : v1.stmtsWithOpcode(ir::Opcode::Load)) {
        std::vector<int64_t> a;
        std::vector<int64_t> b;
        v1.extract(s, [&](core::Timestamp, int64_t v) {
            a.push_back(v);
        });
        v2.extract(s, [&](core::Timestamp, int64_t v) {
            b.push_back(v);
        });
        EXPECT_EQ(a, b) << "stmt " << s;
    }

    // Slices agree.
    core::WetSlicer s1(before);
    core::WetSlicer s2(after);
    ir::StmtId anyLoad =
        v1.stmtsWithOpcode(ir::Opcode::Load).front();
    auto r1 = s1.backward(s1.locate(anyLoad, 3));
    auto r2 = s2.backward(s2.locate(anyLoad, 3));
    EXPECT_EQ(r1.items.size(), r2.items.size());
}

TEST_F(WetIoTest, RejectsWrongProgram)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    auto other = test::runPipeline("fn main() { out(1); }");
    EXPECT_THROW(load(path_, *other->module), WetError);
}

TEST_F(WetIoTest, RejectsGarbageFiles)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "this is not a wetx file at all";
    }
    EXPECT_THROW(load(path_, *p_->module), WetError);
}

TEST_F(WetIoTest, RejectsTruncatedFiles)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    // Truncate the file to half its size.
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_THROW(load(path_, *p_->module), WetError);
}

/**
 * Both load backends must accept and reject the same files and
 * produce byte-identical decoded data — they feed one span parser,
 * and this test pins that equivalence end to end over the full
 * control-flow and load-value traces.
 */
TEST_F(WetIoTest, MmapBufferedBackendsDecodeIdentically)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    analysis::DiagEngine dm;
    analysis::DiagEngine db;
    LoadedWet m = tryLoad(path_, *p_->module, dm,
                          ArtifactView::Backend::Mmap);
    LoadedWet b = tryLoad(path_, *p_->module, db,
                          ArtifactView::Backend::Buffered);
    ASSERT_TRUE(m.graph && m.compressed) << dm.renderText();
    ASSERT_TRUE(b.graph && b.compressed) << db.renderText();
    ASSERT_TRUE(m.backing && b.backing);
    EXPECT_EQ(b.backing->backendName(), "buffered");

    core::WetAccess am(*m.compressed, *p_->module);
    core::WetAccess ab(*b.compressed, *p_->module);
    std::vector<std::pair<core::NodeId, core::Timestamp>> fm;
    std::vector<std::pair<core::NodeId, core::Timestamp>> fb;
    core::ControlFlowQuery qm(am);
    core::ControlFlowQuery qb(ab);
    qm.extractForward([&](core::NodeId n, core::Timestamp t) {
        fm.emplace_back(n, t);
    });
    qb.extractForward([&](core::NodeId n, core::Timestamp t) {
        fb.emplace_back(n, t);
    });
    EXPECT_EQ(fm, fb);

    core::ValueTraceQuery vm(am);
    core::ValueTraceQuery vb(ab);
    for (ir::StmtId s : vm.stmtsWithOpcode(ir::Opcode::Load)) {
        std::vector<int64_t> xs;
        std::vector<int64_t> ys;
        vm.extract(s, [&](core::Timestamp, int64_t v) {
            xs.push_back(v);
        });
        vb.extract(s, [&](core::Timestamp, int64_t v) {
            ys.push_back(v);
        });
        EXPECT_EQ(xs, ys) << "stmt " << s;
    }
}

/**
 * Both backends must reject a damaged file with the same rule: the
 * accept/reject decision may not depend on how the bytes got into
 * memory.
 */
TEST_F(WetIoTest, MmapBufferedBackendsRejectIdentically)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(
                                    bytes.size() - 1));
    }
    analysis::DiagEngine dm;
    analysis::DiagEngine db;
    LoadedWet m = tryLoad(path_, *p_->module, dm,
                          ArtifactView::Backend::Mmap);
    LoadedWet b = tryLoad(path_, *p_->module, db,
                          ArtifactView::Backend::Buffered);
    EXPECT_FALSE(m.graph && m.compressed);
    EXPECT_FALSE(b.graph && b.compressed);
    ASSERT_FALSE(dm.diagnostics().empty());
    ASSERT_FALSE(db.diagnostics().empty());
    EXPECT_EQ(dm.diagnostics().front().rule,
              db.diagnostics().front().rule);
    EXPECT_EQ(dm.diagnostics().front().message,
              db.diagnostics().front().message);
}

/** The mmap backing reports sane size and residency figures. */
TEST_F(WetIoTest, BackingReportsSizeAndResidency)
{
    save(path_, *p_->module, p_->graph, *compressed_);
    LoadedWet w = load(path_, *p_->module);
    ASSERT_TRUE(w.backing);
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    auto fileSize = static_cast<size_t>(in.tellg());
    EXPECT_EQ(w.backing->sizeBytes(), fileSize);
    EXPECT_LE(w.backing->residentBytes(), w.backing->sizeBytes());
    // The load itself parsed every byte, so on both backends the
    // whole file is resident right after loading.
    EXPECT_GT(w.backing->residentBytes(), 0u);
}

TEST_F(WetIoTest, FingerprintIsStable)
{
    uint64_t f1 = moduleFingerprint(*p_->module);
    auto again = test::runPipeline(kProgram, inputs30());
    EXPECT_EQ(f1, moduleFingerprint(*again->module));
    auto other = test::runPipeline("fn main() { out(2); }");
    EXPECT_NE(f1, moduleFingerprint(*other->module));
}

} // namespace
} // namespace wetio
} // namespace wet
