/**
 * @file
 * Tests of the segmented-artifact I/O layer (src/wetio/manifest.cpp,
 * DESIGN.md §15): manifest round-trip and torn-tail recovery, the
 * legacy single-file path loading as one implicit segment, the
 * per-segment corruption sweep (exactly the damaged segment is
 * quarantined, with the right rule), injected load faults, and
 * crash/resume replay producing a byte-identical final artifact set.
 */

#include "wetio/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "core/builder.h"
#include "interp/interpreter.h"
#include "lang/codegen.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "testutil.h"
#include "wetio/wetio.h"

namespace wet {
namespace wetio {
namespace {

const char* kProgram = R"(
    fn weigh(x) { return x * x + 3; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 60; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { mem[i % 8] = weigh(t); }
            s = s + mem[i % 8];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs60()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 60; ++i)
        v.push_back((i * 11 + 2) % 19);
    return v;
}

constexpr uint64_t kParamSig = 0x5e65a11du;

std::string
readBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::string
segPath(const std::string& manifest, uint32_t idx)
{
    char suffix[16];
    std::snprintf(suffix, sizeof suffix, ".seg%06u", idx);
    return manifest + suffix;
}

class SegmentIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        support::FailPoints::instance().disarmAll();
        // Unique per test: ctest runs each test as its own process,
        // and parallel siblings must not clobber each other's files.
        base_ = ::testing::TempDir() + "segment_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        path_ = base_ + ".wetx";
        p_ = test::runPipeline(kProgram, inputs60());
    }

    void
    TearDown() override
    {
        support::FailPoints::instance().disarmAll();
        std::remove(path_.c_str());
        for (uint32_t i = 0; i < 64; ++i)
            std::remove(segPath(path_, i).c_str());
    }

    /**
     * Build a segmented artifact at @p path by replaying the fixture
     * program through a windowed builder into a SegmentWriter.
     * Returns the committed segment count. @p resumeFrom resumes an
     * interrupted build from a parsed manifest prefix.
     */
    size_t
    buildSegmented(const std::string& path, uint64_t segStmts,
                   const Manifest* resumeFrom = nullptr,
                   uint64_t* skipped = nullptr)
    {
        SegmentWriter writer(path, *p_->module, {}, 1, kParamSig,
                             resumeFrom);
        core::SegmentPolicy policy;
        policy.segmentStatements = segStmts;
        policy.onSegment = [&](core::WetGraph&& g) {
            writer.onSegment(std::move(g));
        };
        core::WetBuilder builder(*p_->ma, {}, policy);
        interp::VectorInput input(inputs60());
        interp::Interpreter interp(*p_->ma, input, &builder);
        interp.run();
        builder.finishSegments();
        writer.finish();
        if (skipped != nullptr)
            *skipped = writer.skipped();
        return writer.segments().size();
    }

    std::string base_;
    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
};

TEST_F(SegmentIoTest, ManifestRoundTripMatchesCommittedSegments)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 3u);
    EXPECT_TRUE(isManifest(path_));

    analysis::DiagEngine diag;
    Manifest m;
    ASSERT_TRUE(parseManifest(path_, diag, m));
    EXPECT_TRUE(m.complete);
    EXPECT_EQ(m.fingerprint, moduleFingerprint(*p_->module));
    EXPECT_EQ(m.paramSig, kParamSig);
    ASSERT_EQ(m.segments.size(), n);
    EXPECT_EQ(diag.errorCount(), 0u);

    // Every entry checks out against the sibling file it describes.
    uint64_t stmts = 0;
    for (size_t k = 0; k < m.segments.size(); ++k) {
        const SegmentMeta& s = m.segments[k];
        EXPECT_EQ(s.index, k);
        std::string bytes =
            readBytes(segPath(path_, s.index));
        EXPECT_EQ(bytes.size(), s.bytes);
        EXPECT_EQ(fnv1a64(reinterpret_cast<const uint8_t*>(
                              bytes.data()),
                          bytes.size()),
                  s.fileCrc);
        if (k > 0) {
            EXPECT_EQ(s.tsBegin, m.segments[k - 1].tsEnd);
        }
        stmts += s.stmts;
    }
    EXPECT_EQ(m.segments.front().tsBegin, 0u);
    EXPECT_EQ(m.segments.back().tsEnd, p_->graph.lastTimestamp);
    EXPECT_EQ(stmts, p_->graph.stmtInstancesTotal);
}

TEST_F(SegmentIoTest, LegacyArtifactLoadsAsOneImplicitSegment)
{
    core::WetCompressed c(p_->graph);
    save(path_, *p_->module, p_->graph, c);
    EXPECT_FALSE(isManifest(path_));

    analysis::DiagEngine diag;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag);
    EXPECT_FALSE(art.segmented);
    ASSERT_EQ(art.segments.size(), 1u);
    EXPECT_EQ(art.healthy(), 1u);
    ASSERT_NE(art.segments[0].wet.graph, nullptr);
    EXPECT_EQ(art.segments[0].meta.tsBegin, 0u);
    EXPECT_EQ(art.segments[0].meta.tsEnd, p_->graph.lastTimestamp);
    EXPECT_EQ(art.segments[0].wet.graph->lastTimestamp,
              p_->graph.lastTimestamp);
    EXPECT_EQ(diag.errorCount(), 0u);
}

TEST_F(SegmentIoTest, SegmentedLoadYieldsContiguousHealthyWindows)
{
    size_t n = buildSegmented(path_, 50);
    analysis::DiagEngine diag;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag);
    EXPECT_TRUE(art.segmented);
    EXPECT_TRUE(art.manifest.complete);
    ASSERT_EQ(art.segments.size(), n);
    EXPECT_EQ(art.healthy(), n);
    EXPECT_EQ(diag.errorCount(), 0u);
    for (size_t k = 0; k < n; ++k) {
        const LoadedSegment& s = art.segments[k];
        ASSERT_NE(s.wet.graph, nullptr) << "segment " << k;
        EXPECT_TRUE(s.wet.graph->windowed);
        EXPECT_EQ(s.wet.graph->tsBegin, s.meta.tsBegin);
        EXPECT_EQ(s.wet.graph->lastTimestamp, s.meta.tsEnd);
    }
}

TEST_F(SegmentIoTest, TornManifestTailRecoversCommittedPrefix)
{
    size_t n = buildSegmented(path_, 50);
    // Cut into the `end` record: what a crash between the last
    // segment fsync and the trailer write leaves behind.
    std::string bytes = readBytes(path_);
    writeBytes(path_, bytes.substr(0, bytes.size() - 10));

    analysis::DiagEngine diag;
    Manifest m;
    ASSERT_TRUE(parseManifest(path_, diag, m));
    EXPECT_FALSE(m.complete);
    EXPECT_EQ(m.segments.size(), n);
    EXPECT_TRUE(diag.hasRule("IO008"));
    EXPECT_EQ(diag.errorCount(), 0u);

    analysis::DiagEngine diag2;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag2);
    EXPECT_TRUE(art.segmented);
    EXPECT_EQ(art.healthy(), n);
}

TEST_F(SegmentIoTest, CorruptManifestEntryDropsOnlyTheTail)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 3u);
    // Damage the checksum of the middle `seg` line; recovery must
    // keep the entries before it and drop everything after.
    std::string bytes = readBytes(path_);
    size_t pos = 0;
    for (size_t line = 0; line < 1 + n / 2; ++line)
        pos = bytes.find('\n', pos) + 1;
    bytes[bytes.find('\n', pos) - 1] ^= 0x01;
    writeBytes(path_, bytes);

    analysis::DiagEngine diag;
    Manifest m;
    ASSERT_TRUE(parseManifest(path_, diag, m));
    EXPECT_FALSE(m.complete);
    EXPECT_EQ(m.segments.size(), n / 2);
    EXPECT_TRUE(diag.hasRule("IO008"));
}

TEST_F(SegmentIoTest, CorruptManifestHeaderLoadsNothing)
{
    buildSegmented(path_, 50);
    std::string bytes = readBytes(path_);
    bytes[1] ^= 0x20;
    writeBytes(path_, bytes);

    analysis::DiagEngine diag;
    Manifest m;
    EXPECT_FALSE(parseManifest(path_, diag, m));
    EXPECT_TRUE(diag.hasRule("IO008"));
    EXPECT_GT(diag.errorCount(), 0u);
}

TEST_F(SegmentIoTest, BitFlipQuarantinesExactlyThatSegment)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 3u);
    std::vector<std::string> pristine;
    for (size_t k = 0; k < n; ++k)
        pristine.push_back(
            readBytes(segPath(path_, static_cast<uint32_t>(k))));

    for (size_t k = 0; k < n; ++k) {
        std::string bad = pristine[k];
        bad[bad.size() / 2] ^= 0x40;
        writeBytes(segPath(path_, static_cast<uint32_t>(k)), bad);

        analysis::DiagEngine diag;
        SegmentedArtifact art =
            tryLoadArtifact(path_, *p_->module, diag);
        EXPECT_EQ(art.healthy(), n - 1) << "segment " << k;
        for (size_t j = 0; j < n; ++j)
            EXPECT_EQ(art.segments[j].quarantined, j == k)
                << "segment " << j << " after flipping " << k;
        // A checksum disagreement with the manifest is IO009.
        EXPECT_TRUE(diag.hasRule("IO009")) << "segment " << k;
        EXPECT_EQ(diag.errorCount(), 1u) << "segment " << k;

        writeBytes(segPath(path_, static_cast<uint32_t>(k)),
                   pristine[k]);
    }
}

TEST_F(SegmentIoTest, TruncationQuarantinesExactlyThatSegment)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 3u);
    size_t k = n / 2;
    std::string bytes =
        readBytes(segPath(path_, static_cast<uint32_t>(k)));
    writeBytes(segPath(path_, static_cast<uint32_t>(k)),
               bytes.substr(0, bytes.size() / 2));

    analysis::DiagEngine diag;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag);
    EXPECT_EQ(art.healthy(), n - 1);
    for (size_t j = 0; j < n; ++j)
        EXPECT_EQ(art.segments[j].quarantined, j == k);
    EXPECT_TRUE(diag.hasRule("IO009"));
}

TEST_F(SegmentIoTest, MissingSegmentFileQuarantinesIt)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 2u);
    std::remove(segPath(path_, 0).c_str());

    analysis::DiagEngine diag;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag);
    EXPECT_EQ(art.healthy(), n - 1);
    EXPECT_TRUE(art.segments[0].quarantined);
    EXPECT_TRUE(diag.hasRule("ART006"));
}

TEST_F(SegmentIoTest, InjectedLoadFaultQuarantinesOneSegment)
{
    size_t n = buildSegmented(path_, 50);
    ASSERT_GE(n, 2u);
    support::FailPoints::instance().arm("wetio.seg.load=nth:2");

    analysis::DiagEngine diag;
    SegmentedArtifact art =
        tryLoadArtifact(path_, *p_->module, diag);
    EXPECT_EQ(art.healthy(), n - 1);
    EXPECT_TRUE(art.segments[1].quarantined);
    EXPECT_TRUE(diag.hasRule("ART006"));
}

TEST_F(SegmentIoTest, WrongModuleFailsTheWholeManifest)
{
    buildSegmented(path_, 50);
    ir::Module other = lang::compileString(
        "fn main() { out(in() + 1); }", 1 << 16);

    // The fingerprint gate sits in the manifest header: no segment
    // is even opened against the wrong program.
    analysis::DiagEngine diag;
    SegmentedArtifact art = tryLoadArtifact(path_, other, diag);
    EXPECT_TRUE(art.segmented);
    EXPECT_EQ(art.segments.size(), 0u);
    EXPECT_EQ(art.healthy(), 0u);
    EXPECT_TRUE(diag.hasRule("IO003"));
}

TEST_F(SegmentIoTest, ResumeReplayProducesByteIdenticalArtifacts)
{
    // Reference: one uninterrupted build. Segment entries name their
    // files by basename, so the reference must share path_'s basename
    // (in a sibling directory) for the manifests to be comparable.
    std::string refDir = base_ + "_ref";
    std::filesystem::create_directories(refDir);
    std::string ref =
        refDir + "/" +
        std::filesystem::path(path_).filename().string();
    size_t n = buildSegmented(ref, 50);
    ASSERT_GE(n, 4u);

    // Interrupted build: the injected fault throws out of the third
    // segment publish, so exactly two segments are committed.
    support::FailPoints::instance().arm("wetio.seg.save=nth:3");
    EXPECT_THROW(buildSegmented(path_, 50), WetError);
    support::FailPoints::instance().disarmAll();

    analysis::DiagEngine diag;
    Manifest prefix;
    ASSERT_TRUE(parseManifest(path_, diag, prefix));
    EXPECT_FALSE(prefix.complete);
    ASSERT_EQ(prefix.segments.size(), 2u);

    // Resume: committed windows verify-and-skip, the rest rebuild.
    uint64_t skipped = 0;
    EXPECT_EQ(buildSegmented(path_, 50, &prefix, &skipped), n);
    EXPECT_EQ(skipped, 2u);

    EXPECT_EQ(readBytes(path_), readBytes(ref));
    for (size_t k = 0; k < n; ++k) {
        uint32_t idx = static_cast<uint32_t>(k);
        EXPECT_EQ(readBytes(segPath(path_, idx)),
                  readBytes(segPath(ref, idx)))
            << "segment " << k;
    }

    std::filesystem::remove_all(refDir);
}

TEST_F(SegmentIoTest, ResumeRejectsDivergentReplay)
{
    buildSegmented(path_, 50);
    analysis::DiagEngine diag;
    Manifest prefix;
    ASSERT_TRUE(parseManifest(path_, diag, prefix));
    // A different cut cadence replays different windows; the writer
    // must refuse to splice them onto the committed prefix.
    EXPECT_THROW(buildSegmented(path_, 25, &prefix), WetError);
}

} // namespace
} // namespace wetio
} // namespace wet
