#ifndef WET_TESTS_TESTUTIL_H
#define WET_TESTS_TESTUTIL_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/moduleanalysis.h"
#include "arch/archprofile.h"
#include "core/builder.h"
#include "core/wetgraph.h"
#include "interp/interpreter.h"
#include "ir/module.h"
#include "support/error.h"

namespace wet {
namespace test {

/**
 * A recording TraceSink that keeps the full event stream: the
 * reference against which WET reconstruction is checked.
 */
class RecordingSink : public interp::TraceSink
{
  public:
    struct BlockRec
    {
        ir::FuncId func;
        ir::BlockId block;
        interp::DepRef control;
    };

    void
    onEnterFunction(ir::FuncId f, const interp::DepRef& cs) override
    {
        (void)f;
        (void)cs;
        controlStack.push_back(interp::DepRef{});
    }

    void
    onLeaveFunction(ir::FuncId f) override
    {
        (void)f;
        controlStack.pop_back();
    }

    void
    onBlockEnter(ir::FuncId f, ir::BlockId b,
                 const interp::DepRef& control) override
    {
        blocks.push_back(BlockRec{f, b, control});
        controlStack.back() = control;
    }

    void
    onStmt(const interp::StmtEvent& ev) override
    {
        stmts.push_back(ev);
        stmtControls.push_back(controlStack.back());
    }

    std::vector<BlockRec> blocks;
    std::vector<interp::StmtEvent> stmts;
    /** Per stmts[i]: the dynamic control dependence of its block. */
    std::vector<interp::DepRef> stmtControls;
    std::vector<interp::DepRef> controlStack;
};

/** Everything produced by running a wetlang source end to end. */
struct Pipeline
{
    std::unique_ptr<ir::Module> module;
    std::unique_ptr<analysis::ModuleAnalysis> ma;
    interp::RunResult result;
    core::WetGraph graph;
    RecordingSink record;
};

/**
 * Compile @p source, run it with the given inputs, and build its WET
 * while also recording the raw trace.
 *
 * @p threads is forwarded to the module analysis; it defaults to 1
 * so ordinary unit tests stay strictly single-threaded and any
 * scheduling nondeterminism can only surface in the suites designed
 * to catch it (parallel_determinism_test, threadpool_test).
 */
std::unique_ptr<Pipeline> runPipeline(const std::string& source,
                                      std::vector<int64_t> inputs = {},
                                      uint64_t mem_words = 1 << 16,
                                      unsigned threads = 1);

/** Compile and run only; returns the run result. */
interp::RunResult runSource(const std::string& source,
                            std::vector<int64_t> inputs = {},
                            uint64_t mem_words = 1 << 16);

} // namespace test
} // namespace wet

#endif // WET_TESTS_TESTUTIL_H
