/**
 * @file
 * Lifecycle tests of core::SharedArtifact — the immutable state N
 * concurrent QuerySessions share (src/core/sharedartifact.h).
 *
 * The three properties a multi-session server leans on:
 *
 *  1. exactly-once lazy init: however many sessions race into
 *     moduleAnalysis()/depGraph(), each analysis constructor runs
 *     exactly once and every caller sees the same object;
 *  2. create/destroy thrash: sessions can be constructed, driven,
 *     and destroyed concurrently over one artifact without
 *     corrupting each other's answers;
 *  3. capacity-1 caches: a session whose stream-reader cache holds
 *     a single entry (maximum eviction pressure) still answers
 *     byte-identically to an unbounded one.
 *
 * The TSan CI job runs this suite; FUZZ_ITERS scales the thrash.
 */

#include "core/sharedartifact.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sessionverifier.h"
#include "core/compressed.h"
#include "core/session.h"
#include "serve/queryrunner.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace core {
namespace {

constexpr uint64_t kScale = 1;
constexpr unsigned kThreads = 8;

uint64_t
fuzzIters()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads start
    if (const char* env = std::getenv("FUZZ_ITERS"))
        return std::strtoull(env, nullptr, 10);
    return 1;
}

struct Artifact
{
    std::unique_ptr<workloads::RunArtifacts> run;
    std::unique_ptr<WetCompressed> compressed;
    std::shared_ptr<SharedArtifact> shared;
};

Artifact
buildArtifact(const std::string& name)
{
    const workloads::Workload& w = workloads::workloadByName(name);
    Artifact a;
    a.run = workloads::buildWet(w, kScale);
    a.compressed = std::make_unique<WetCompressed>(a.run->graph);
    a.shared = std::make_shared<SharedArtifact>(
        *a.run->module, *a.compressed, nullptr, 1, w.name);
    return a;
}

TEST(SharedArtifactTest, LazyAnalysesBuildExactlyOnceUnderRace)
{
    for (uint64_t iter = 0; iter < fuzzIters(); ++iter) {
        Artifact art = buildArtifact("099.go");
        ASSERT_FALSE(art.shared->hasModuleAnalysis());
        ASSERT_FALSE(art.shared->hasDepGraph());
        ASSERT_EQ(art.shared->analysisBuilds(), 0u);

        // All threads pile onto the cold artifact at once; the
        // atomic spin-gate maximizes the simultaneous-first-call
        // window the once-flag must win.
        std::atomic<unsigned> ready{0};
        std::vector<const analysis::ModuleAnalysis*> ma(kThreads);
        std::vector<const analysis::StaticDepGraph*> sdg(kThreads);
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                ready.fetch_add(1);
                while (ready.load() < kThreads) {
                }
                ma[t] = &art.shared->moduleAnalysis();
                sdg[t] = &art.shared->depGraph();
            });
        }
        for (auto& th : threads)
            th.join();

        EXPECT_EQ(art.shared->analysisBuilds(), 1u);
        EXPECT_EQ(art.shared->depGraphBuilds(), 1u);
        EXPECT_TRUE(art.shared->hasModuleAnalysis());
        EXPECT_TRUE(art.shared->hasDepGraph());
        for (unsigned t = 1; t < kThreads; ++t) {
            EXPECT_EQ(ma[t], ma[0]);
            EXPECT_EQ(sdg[t], sdg[0]);
        }
    }
}

TEST(SharedArtifactTest, ConcurrentSessionCreateDestroyThrash)
{
    Artifact art = buildArtifact("130.li");
    // Reference answers from one serial session.
    QuerySession ref(art.shared);
    serve::LineResult want = serve::serveLine(
        ref, art.shared->name(), "cf --from 1 --count 8", 1);
    ASSERT_EQ(want.code, 0);

    const uint64_t iters = 8 * fuzzIters();
    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < iters; ++i) {
                // A session is born, serves one query, and dies —
                // the churn a short-lived connection causes.
                SessionOptions opt;
                opt.cacheCapacity = 1 + (i % 3);
                QuerySession s(art.shared, opt);
                serve::LineResult got = serve::serveLine(
                    s, art.shared->name(), "cf --from 1 --count 8",
                    1);
                if (got.code != want.code || got.out != want.out)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0u);
    // The shared analyses were still built at most once each.
    EXPECT_LE(art.shared->analysisBuilds(), 1u);
    EXPECT_LE(art.shared->depGraphBuilds(), 1u);
}

TEST(SharedArtifactTest, CapacityOneCacheMatchesUnboundedAnswers)
{
    Artifact art = buildArtifact("197.parser");

    // Query lines that bounce between streams, so a one-entry cache
    // evicts on nearly every touch.
    std::vector<std::string> batch = {
        "cf --from 1 --count 6",
        "races",
        "cf --from 3 --count 4",
        "depcheck",
        "races --engine decode",
    };

    QuerySession unbounded(art.shared);
    std::vector<serve::LineResult> want;
    want.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        want.push_back(serve::serveLine(
            unbounded, art.shared->name(), batch[i], i + 1));

    SessionOptions opt;
    opt.cacheCapacity = 1;
    const uint64_t rounds = 2 * fuzzIters();
    std::vector<std::thread> threads;
    std::atomic<uint64_t> mismatches{0};
    threads.reserve(4);
    for (unsigned t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            QuerySession s(art.shared, opt);
            for (uint64_t r = 0; r < rounds; ++r) {
                for (size_t i = 0; i < batch.size(); ++i) {
                    serve::LineResult got = serve::serveLine(
                        s, art.shared->name(), batch[i], i + 1);
                    if (got.code != want[i].code ||
                        got.out != want[i].out)
                        mismatches.fetch_add(1);
                }
                // Cache invariants hold at every query boundary
                // even at maximum eviction pressure.
                analysis::DiagEngine diag;
                if (!analysis::verifySessionCache(s.cache(),
                                                  "thrash", diag))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0u);
}

} // namespace
} // namespace core
} // namespace wet
