/**
 * @file
 * Differential tests of serving queries over a segmented artifact
 * (DESIGN.md §15): the per-segment query planner must answer
 * byte-identically to the historical whole-trace path for the verbs
 * whose results are window-invariant, degrade a quarantined
 * segment's time range to notes while answering healthy ranges
 * byte-identically, keep mid-query quarantine sticky and consistent
 * with load-time quarantine, and survive a concurrent serving stress
 * with one segment quarantined.
 */

#include "serve/queryrunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diag.h"
#include "core/builder.h"
#include "core/session.h"
#include "core/sharedartifact.h"
#include "interp/interpreter.h"
#include "ir/module.h"
#include "support/failpoint.h"
#include "testutil.h"
#include "wetio/manifest.h"

namespace wet {
namespace serve {
namespace {

const char* kName = "segment_query_test.wetx";

const char* kProgram = R"(
    fn weigh(x) { return x * x + 3; }
    fn main() {
        var s = 0;
        for (var i = 0; i < 60; i = i + 1) {
            var t = in();
            if (t % 2 == 0) { mem[i % 8] = weigh(t); }
            s = s + mem[i % 8];
        }
        out(s);
    }
)";

std::vector<int64_t>
inputs60()
{
    std::vector<int64_t> v;
    for (int i = 0; i < 60; ++i)
        v.push_back((i * 11 + 2) % 19);
    return v;
}

size_t
countOccurrences(const std::string& hay, const std::string& needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

class SegmentQueryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        support::FailPoints::instance().disarmAll();
        path_ = ::testing::TempDir() + "segment_query_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".wetx";
        p_ = test::runPipeline(kProgram, inputs60());
        compressed_ =
            std::make_unique<core::WetCompressed>(p_->graph);
        plain_ = std::make_shared<core::SharedArtifact>(
            *p_->module, *compressed_, nullptr, 1, kName);

        wetio::SegmentWriter writer(path_, *p_->module, {}, 1,
                                    /*paramSig=*/1, nullptr);
        core::SegmentPolicy policy;
        policy.segmentStatements = 50;
        policy.onSegment = [&](core::WetGraph&& g) {
            writer.onSegment(std::move(g));
        };
        core::WetBuilder builder(*p_->ma, {}, policy);
        interp::VectorInput input(inputs60());
        interp::Interpreter interp(*p_->ma, input, &builder);
        interp.run();
        builder.finishSegments();
        writer.finish();
        numSegments_ = writer.segments().size();
        ASSERT_GE(numSegments_, 3u);
    }

    void
    TearDown() override
    {
        support::FailPoints::instance().disarmAll();
        std::remove(path_.c_str());
        for (uint32_t i = 0; i < 64; ++i) {
            char suffix[16];
            std::snprintf(suffix, sizeof suffix, ".seg%06u", i);
            std::remove((path_ + suffix).c_str());
        }
    }

    /**
     * Wrap the on-disk segmented artifact for serving, optionally
     * marking segment @p quarantineIdx quarantined at load (the
     * state a corrupt segment file leaves behind).
     */
    std::shared_ptr<core::SharedArtifact>
    makeSegmented(size_t quarantineIdx = SIZE_MAX)
    {
        auto art = std::make_shared<wetio::SegmentedArtifact>();
        analysis::DiagEngine diag;
        *art = wetio::tryLoadArtifact(path_, *p_->module, diag);
        EXPECT_EQ(art->healthy(), numSegments_);
        std::vector<core::ArtifactSegment> segs;
        for (size_t k = 0; k < art->segments.size(); ++k) {
            const wetio::LoadedSegment& s = art->segments[k];
            core::ArtifactSegment a;
            if (k == quarantineIdx || s.quarantined) {
                a.quarantined = true;
                a.tsBegin = s.meta.tsBegin;
                a.tsEnd = s.meta.tsEnd;
            } else {
                a.compressed = s.wet.compressed.get();
                a.tsBegin = s.wet.graph->tsBegin;
                a.tsEnd = s.wet.graph->lastTimestamp;
            }
            segs.push_back(a);
        }
        return std::make_shared<core::SharedArtifact>(
            *p_->module, std::move(segs), art, 1, kName);
    }

    /** Window of segment @p k as (tsBegin, tsEnd]. */
    std::pair<uint64_t, uint64_t>
    window(const std::shared_ptr<core::SharedArtifact>& shared,
           size_t k)
    {
        const core::ArtifactSegment& s = shared->segments()[k];
        return {s.tsBegin, s.tsEnd};
    }

    /** Statements the trace executed, for values/addr/slice lines. */
    std::vector<std::string>
    buildBatch()
    {
        std::vector<ir::StmtId> defs;
        std::vector<ir::StmtId> mems;
        for (const auto& [stmt, sites] : p_->graph.stmtIndex) {
            (void)sites;
            const ir::Instr& in = p_->module->instr(stmt);
            if (ir::hasDef(in.op) && in.op != ir::Opcode::Const)
                defs.push_back(stmt);
            if (in.op == ir::Opcode::Load ||
                in.op == ir::Opcode::Store)
                mems.push_back(stmt);
        }
        std::sort(defs.begin(), defs.end());
        std::sort(mems.begin(), mems.end());
        EXPECT_FALSE(defs.empty());
        EXPECT_FALSE(mems.empty());

        std::vector<std::string> lines;
        lines.push_back("cf --from 1 --count 10");
        lines.push_back("cf --from 40 --count 25");
        lines.push_back("cf --from 1 --count 100000");
        lines.push_back("values --stmt " +
                        std::to_string(defs.front()) +
                        " --limit 5");
        lines.push_back("values --stmt " +
                        std::to_string(defs.back()) +
                        " --limit 200");
        lines.push_back("addr --stmt " +
                        std::to_string(mems.front()) +
                        " --limit 200");
        lines.push_back("addr --stmt " +
                        std::to_string(mems.back()) + " --limit 4");
        lines.push_back("races");
        lines.push_back("depcheck");
        lines.push_back("slice --stmt " +
                        std::to_string(defs.front()) + " --max 500");
        lines.push_back("values"); // usage error: missing --stmt
        return lines;
    }

    std::vector<LineResult>
    answers(const std::shared_ptr<core::SharedArtifact>& shared,
            const std::vector<std::string>& lines)
    {
        core::QuerySession s(shared);
        std::vector<LineResult> out;
        for (size_t i = 0; i < lines.size(); ++i)
            out.push_back(serveLine(s, kName, lines[i], i + 1));
        return out;
    }

    std::string path_;
    std::unique_ptr<test::Pipeline> p_;
    std::unique_ptr<core::WetCompressed> compressed_;
    std::shared_ptr<core::SharedArtifact> plain_;
    size_t numSegments_ = 0;
};

TEST_F(SegmentQueryTest, WindowInvariantVerbsMatchByteForByte)
{
    std::vector<std::string> lines = buildBatch();
    std::vector<LineResult> want = answers(plain_, lines);
    std::vector<LineResult> got = answers(makeSegmented(), lines);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < lines.size(); ++i) {
        SCOPED_TRACE(lines[i]);
        EXPECT_EQ(want[i].code, got[i].code);
        if (lines[i].rfind("cf", 0) == 0 ||
            lines[i].rfind("values", 0) == 0 ||
            lines[i].rfind("addr", 0) == 0) {
            // Control flow and extraction answers are partitioned by
            // time, never by structure: byte-identical out AND err.
            EXPECT_EQ(want[i].out, got[i].out);
            EXPECT_EQ(want[i].err, got[i].err);
        }
        if (lines[i].rfind("races", 0) == 0) {
            // The race report itself is window-invariant for this
            // single-threaded trace; only the stderr I/O stats may
            // legitimately differ (per-segment streams summed).
            EXPECT_EQ(want[i].out, got[i].out);
        }
    }
    // Cross-cut dependences are dropped by contract, so depcheck and
    // slice answers may differ in their work counts — but they must
    // be deterministic: a second fresh segmented session agrees.
    std::vector<LineResult> again = answers(makeSegmented(), lines);
    for (size_t i = 0; i < lines.size(); ++i) {
        SCOPED_TRACE(lines[i]);
        EXPECT_EQ(got[i].out, again[i].out);
        EXPECT_EQ(got[i].err, again[i].err);
        EXPECT_EQ(got[i].code, again[i].code);
    }
}

TEST_F(SegmentQueryTest, QuarantineDegradesOnlyItsTimeRange)
{
    size_t qk = numSegments_ / 2;
    std::shared_ptr<core::SharedArtifact> degraded =
        makeSegmented(qk);
    auto [qBegin, qEnd] = window(degraded, qk);
    auto [fBegin, fEnd] = window(degraded, 0);
    auto [lBegin, lEnd] = window(degraded, numSegments_ - 1);
    (void)fBegin;

    core::QuerySession healthySess(plain_);
    core::QuerySession degradedSess(degraded);

    // A window entirely inside a healthy segment: byte-identical to
    // the unsegmented answer, no degradation note.
    std::string inFirst =
        "cf --from 1 --count " + std::to_string(fEnd > 5 ? 5 : fEnd);
    std::string inLast = "cf --from " + std::to_string(lBegin + 1) +
                         " --count " +
                         std::to_string(lEnd - lBegin > 5
                                            ? 5
                                            : lEnd - lBegin);
    for (const std::string& line : {inFirst, inLast}) {
        SCOPED_TRACE(line);
        LineResult want = serveLine(healthySess, kName, line, 1);
        LineResult got = serveLine(degradedSess, kName, line, 1);
        EXPECT_EQ(want.out, got.out);
        EXPECT_EQ(want.err, got.err);
        EXPECT_EQ(got.err.find("quarantined"), std::string::npos);
        EXPECT_EQ(want.code, got.code);
    }

    // A window overlapping the quarantined segment: still exit 0,
    // rows from the healthy overlap, one note naming the hole.
    std::string overlap = "cf --from " + std::to_string(qBegin) +
                          " --count " +
                          std::to_string(qEnd - qBegin + 2);
    LineResult o = serveLine(degradedSess, kName, overlap, 1);
    EXPECT_EQ(o.code, kExitOk);
    EXPECT_EQ(countOccurrences(o.err, "quarantined"), 1u);
    EXPECT_NE(o.err.find("note: segment " + std::to_string(qk)),
              std::string::npos);

    // Whole-trace extraction: degraded but successful, one note.
    std::vector<std::string> lines = buildBatch();
    for (const std::string& line : lines) {
        if (line.rfind("values --stmt", 0) != 0 &&
            line.rfind("addr", 0) != 0 &&
            line.rfind("races", 0) != 0 &&
            line.rfind("depcheck", 0) != 0)
            continue;
        SCOPED_TRACE(line);
        LineResult r = serveLine(degradedSess, kName, line, 1);
        EXPECT_EQ(r.code, kExitOk);
        EXPECT_EQ(countOccurrences(r.err, "quarantined"), 1u);
    }
}

TEST_F(SegmentQueryTest, MidQueryFaultQuarantinesStickily)
{
    std::vector<std::string> lines = buildBatch();
    std::string values;
    for (const std::string& line : lines)
        if (line.rfind("values --stmt", 0) == 0)
            values = line;
    ASSERT_FALSE(values.empty());

    // Fault the third touched segment mid-query: the line must still
    // answer (degraded), and the quarantine must stick for the rest
    // of the session without any failpoint armed.
    core::QuerySession s(makeSegmented());
    support::FailPoints::instance().arm("core.session.segment=nth:3");
    LineResult first = serveLine(s, kName, values, 1);
    support::FailPoints::instance().disarmAll();
    EXPECT_EQ(first.code, kExitOk);
    EXPECT_EQ(countOccurrences(first.err, "quarantined"), 1u);
    EXPECT_NE(first.err.find("note: segment 2"), std::string::npos);

    LineResult second = serveLine(s, kName, values, 2);
    EXPECT_EQ(second.out, first.out);
    EXPECT_EQ(second.err, first.err);
    EXPECT_EQ(second.code, kExitOk);

    // ...and the degraded answer equals what a session whose segment
    // was quarantined at load (corrupt file) would have given.
    core::QuerySession atLoad(makeSegmented(2));
    LineResult want = serveLine(atLoad, kName, values, 2);
    EXPECT_EQ(second.out, want.out);
    EXPECT_EQ(second.err, want.err);
}

TEST_F(SegmentQueryTest, LegacyArtifactStillFailsTheLineOnFault)
{
    std::vector<std::string> lines = buildBatch();
    std::string values;
    for (const std::string& line : lines)
        if (line.rfind("values --stmt", 0) == 0)
            values = line;

    // A single-segment (legacy) artifact has no healthy range left
    // to degrade to: the fault must surface as a per-line error, not
    // a silently empty answer.
    core::QuerySession s(plain_);
    LineResult want = serveLine(s, kName, values, 1);
    support::FailPoints::instance().arm("core.session.segment=once");
    LineResult failed = serveLine(s, kName, values, 2);
    support::FailPoints::instance().disarmAll();
    EXPECT_NE(failed.code, kExitOk);
    EXPECT_NE(failed.err.find("error: line:2:"), std::string::npos);

    // The failure quarantined only cache readers, not the artifact:
    // the next identical line answers byte-identically again.
    LineResult after = serveLine(s, kName, values, 3);
    EXPECT_EQ(after.out, want.out);
    EXPECT_EQ(after.code, want.code);
}

TEST_F(SegmentQueryTest,
       ConcurrentSessionsOverQuarantinedArtifactStayByteExact)
{
    size_t qk = numSegments_ / 2;
    std::shared_ptr<core::SharedArtifact> degraded =
        makeSegmented(qk);
    std::vector<std::string> lines = buildBatch();
    std::vector<LineResult> want = answers(degraded, lines);

    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&]() {
            for (int round = 0; round < kRounds; ++round) {
                core::QuerySession s(degraded);
                for (size_t i = 0; i < lines.size(); ++i) {
                    LineResult got =
                        serveLine(s, kName, lines[i], i + 1);
                    if (got.out != want[i].out ||
                        got.err != want[i].err ||
                        got.code != want[i].code)
                        mismatches.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0u);
}

} // namespace
} // namespace serve
} // namespace wet
