/**
 * @file
 * Differential and adversarial tests of the `wet_cli serve` socket
 * server (src/serve/server.cpp).
 *
 * The load-bearing property is byte-identity: every response frame a
 * concurrent server connection produces must equal, byte for byte,
 * what a fresh serial QuerySession answers for the same line at the
 * same position — across all twelve workloads, with the twelve
 * batches shuffled differently per client thread, while N clients
 * hammer one shared artifact. On top of that ride the protocol
 * negative tests (invalid verbs, truncated and oversized lines,
 * mid-query disconnects) and fault injection on live connections:
 * none of them may poison another session or take the server down.
 *
 * FUZZ_ITERS scales the differential shuffle rounds (default 1);
 * the TSan CI job runs this suite to catch data races in the
 * shared-artifact path.
 */

#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sessionverifier.h"
#include "core/compressed.h"
#include "core/session.h"
#include "core/sharedartifact.h"
#include "serve/client.h"
#include "serve/queryrunner.h"
#include "support/failpoint.h"
#include "workloads/runner.h"
#include "workloads/workloads.h"

namespace wet {
namespace serve {
namespace {

constexpr uint64_t kScale = 1;

uint64_t
fuzzIters()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads start
    if (const char* env = std::getenv("FUZZ_ITERS"))
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/** One workload traced, compressed, and wrapped for serving. */
struct Artifact
{
    std::unique_ptr<workloads::RunArtifacts> run;
    std::unique_ptr<core::WetCompressed> compressed;
    std::shared_ptr<core::SharedArtifact> shared;
};

Artifact
buildArtifact(const workloads::Workload& w)
{
    Artifact a;
    a.run = workloads::buildWet(w, kScale);
    a.compressed =
        std::make_unique<core::WetCompressed>(a.run->graph);
    a.shared = std::make_shared<core::SharedArtifact>(
        *a.run->module, *a.compressed, nullptr, 1, w.name);
    return a;
}

/**
 * A representative batch for one artifact: control flow, value and
 * address traces on statements the trace actually executed, slices
 * through both engines, the race scan, depcheck, and two deliberately
 * bad lines (parse errors must flow through the protocol too).
 */
uint64_t
stmtInstances(const Artifact& a, ir::StmtId stmt)
{
    uint64_t n = 0;
    for (const auto& [node, pos] : a.run->graph.stmtIndex.at(stmt)) {
        (void)pos;
        n += a.run->graph.nodes[node].instances();
    }
    return n;
}

std::vector<std::string>
buildBatch(const Artifact& a)
{
    // The values/addr verbs decode the statement's whole stream to
    // report the instance total. Extraction gathers site-major, so
    // multi-site statements are fair game at any cache bound; keep
    // only the instance ceiling so each replayed line stays cheap.
    constexpr uint64_t kMaxStreamInstances = 20000;
    std::vector<ir::StmtId> defs;
    std::vector<ir::StmtId> mems;
    for (const auto& [stmt, sites] : a.run->graph.stmtIndex) {
        (void)sites;
        if (stmtInstances(a, stmt) > kMaxStreamInstances)
            continue;
        const ir::Instr& in = a.run->module->instr(stmt);
        if (ir::hasDef(in.op) && in.op != ir::Opcode::Const)
            defs.push_back(stmt);
        if (in.op == ir::Opcode::Load || in.op == ir::Opcode::Store)
            mems.push_back(stmt);
    }
    std::sort(defs.begin(), defs.end());
    std::sort(mems.begin(), mems.end());
    const std::vector<ir::StmtId>& vdefs = defs;

    std::vector<std::string> lines;
    lines.push_back("cf --from 1 --count 10");
    lines.push_back("cf --from 7 --count 3");
    if (!vdefs.empty()) {
        lines.push_back("values --stmt " +
                        std::to_string(vdefs.front()) + " --limit 5");
        lines.push_back("values --stmt " +
                        std::to_string(vdefs.back()) + " --limit 3");
    }
    if (!defs.empty()) {
        lines.push_back("slice --stmt " +
                        std::to_string(defs.front()) +
                        " --max 500");
        lines.push_back("slice --stmt " +
                        std::to_string(defs.back()) +
                        " --engine decode --max 500");
    }
    if (!mems.empty()) {
        lines.push_back("addr --stmt " +
                        std::to_string(mems.front()) +
                        " --limit 4");
        lines.push_back("addr --stmt " +
                        std::to_string(mems.back()) + " --limit 4");
    }
    lines.push_back("races");
    lines.push_back("races --engine decode");
    lines.push_back("depcheck");
    lines.push_back("values"); // usage error: missing --stmt
    lines.push_back("bogus --verb");
    return lines;
}

/** Serial reference: serve @p lines on a fresh session in order,
 *  using the same 1-based numbering the server will assign. The
 *  session options must match the server's — a slice's stderr I/O
 *  stats depend on what the bounded cursor cache kept warm, so the
 *  reference must replay under the same cache bound. */
std::vector<LineResult>
serialAnswers(const Artifact& a, const std::vector<std::string>& lines,
              const core::SessionOptions& opt = {})
{
    core::QuerySession s(a.shared, opt);
    std::vector<LineResult> out;
    out.reserve(lines.size());
    for (size_t i = 0; i < lines.size(); ++i)
        out.push_back(
            serveLine(s, a.shared->name(), lines[i], i + 1));
    return out;
}

class ServeWorkloadTest
    : public ::testing::TestWithParam<std::string>
{
};

/**
 * N concurrent clients, each replaying its own shuffle of the
 * workload's batch, must each receive byte-exact serial answers —
 * while every connection's session shares one artifact and the
 * per-connection caches run bounded. Capacity 2 is far below any
 * values/addr working set (ts + pattern + uvals streams), which is
 * exactly the point: site-major extraction keeps every line linear
 * and byte-exact while the cache evicts on nearly every lookup.
 */
TEST_P(ServeWorkloadTest, ConcurrentClientsMatchSerialByteForByte)
{
    const workloads::Workload& w =
        workloads::workloadByName(GetParam());
    Artifact art = buildArtifact(w);
    std::vector<std::string> batch = buildBatch(art);

    ServerOptions so;
    so.workers = 4;
    so.session.cacheCapacity = 2;
    Server server(art.shared, so);
    server.start();
    ASSERT_NE(server.port(), 0);

    const unsigned kClients = 4;
    const uint64_t rounds = fuzzIters();
    for (uint64_t round = 0; round < rounds; ++round) {
        std::vector<std::vector<std::string>> shuffles(kClients);
        std::vector<std::vector<LineResult>> expect(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
            shuffles[c] = batch;
            std::mt19937 rng(1000 * (round + 1) + c);
            std::shuffle(shuffles[c].begin(), shuffles[c].end(),
                         rng);
            expect[c] = serialAnswers(art, shuffles[c], so.session);
        }
        std::vector<std::string> failures(kClients);
        std::vector<std::thread> threads;
        threads.reserve(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
            threads.emplace_back([&, c] {
                Client cl;
                cl.connectTcp(server.port());
                for (size_t i = 0; i < shuffles[c].size(); ++i) {
                    Client::Response r = cl.query(shuffles[c][i]);
                    const LineResult& e = expect[c][i];
                    if (r.code != e.code || r.out != e.out ||
                        r.err != e.err) {
                        failures[c] = "client " + std::to_string(c) +
                                      " line " + std::to_string(i) +
                                      " '" + shuffles[c][i] +
                                      "' diverged from serial";
                        return;
                    }
                }
            });
        }
        for (auto& t : threads)
            t.join();
        for (unsigned c = 0; c < kClients; ++c)
            EXPECT_EQ(failures[c], "") << "round " << round;
    }
    server.stop();
    EXPECT_GE(server.connectionsServed(), kClients * rounds);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const workloads::Workload& w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ServeWorkloadTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

/** Fixture with one small served artifact for the protocol tests. */
class ServeProtocolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        art_ = buildArtifact(workloads::allWorkloads().front());
    }

    Artifact art_;
};

TEST_F(ServeProtocolTest, InvalidVerbAnswersUsageErrorAndKeepsServing)
{
    Server server(art_.shared, ServerOptions{});
    server.start();
    Client cl;
    cl.connectTcp(server.port());

    Client::Response bad = cl.query("bogus --verb");
    EXPECT_EQ(bad.code, kExitUsage);
    EXPECT_EQ(bad.out, "");
    EXPECT_EQ(bad.err,
              "error: line:1: unknown batch query 'bogus'\n");

    // The same connection keeps answering correctly afterwards.
    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "cf --from 1 --count 3", 2);
    Client::Response ok = cl.query("cf --from 1 --count 3");
    EXPECT_EQ(ok.code, e.code);
    EXPECT_EQ(ok.out, e.out);
    server.stop();
}

TEST_F(ServeProtocolTest, BlankAndCommentLinesConsumeNumbering)
{
    Server server(art_.shared, ServerOptions{});
    server.start();
    Client cl;
    cl.connectTcp(server.port());

    // Two frameless lines, then a bad one: its record must say
    // line:3, exactly like a batch file.
    cl.sendRaw("# a comment\n\nbogus x\n");
    Client::Response r;
    ASSERT_TRUE(cl.readResponse(r));
    EXPECT_EQ(r.code, kExitUsage);
    EXPECT_EQ(r.err, "error: line:3: unknown batch query 'bogus'\n");
    server.stop();
}

TEST_F(ServeProtocolTest, FinalUnterminatedLineIsServed)
{
    Server server(art_.shared, ServerOptions{});
    server.start();
    Client cl;
    cl.connectTcp(server.port());

    // No trailing newline: EOF finishes the line, the way
    // std::getline serves a batch file's last line.
    cl.sendRaw("cf --from 1 --count 2");
    cl.shutdownWrite();
    Client::Response r;
    ASSERT_TRUE(cl.readResponse(r));

    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "cf --from 1 --count 2", 1);
    EXPECT_EQ(r.code, e.code);
    EXPECT_EQ(r.out, e.out);
    EXPECT_EQ(r.err, e.err);
    EXPECT_FALSE(cl.readResponse(r)); // clean EOF after the answer
    server.stop();
}

TEST_F(ServeProtocolTest, OversizedLineIsRejectedWithoutPoisoning)
{
    ServerOptions so;
    so.maxLineBytes = 64;
    Server server(art_.shared, so);
    server.start();
    Client cl;
    cl.connectTcp(server.port());

    // Stream an unterminated line past the bound, then wait for the
    // rejection frame before sending anything else (the trip fires
    // on buffered bytes alone, no newline needed).
    cl.sendRaw(std::string(4096, 'x'));
    Client::Response r;
    ASSERT_TRUE(cl.readResponse(r));
    EXPECT_EQ(r.code, kExitUsage);
    EXPECT_NE(r.err.find("request line exceeds"), std::string::npos);
    EXPECT_NE(r.err.find("line:1"), std::string::npos);

    // Finish the oversized line and follow with good and bad lines:
    // the tail is discarded, numbering stays batch-exact.
    cl.sendRaw("xxx\ncf --from 1 --count 2\nbogus y\n");
    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "cf --from 1 --count 2", 2);
    ASSERT_TRUE(cl.readResponse(r));
    EXPECT_EQ(r.code, e.code);
    EXPECT_EQ(r.out, e.out);
    ASSERT_TRUE(cl.readResponse(r));
    EXPECT_EQ(r.err, "error: line:3: unknown batch query 'bogus'\n");
    server.stop();
}

TEST_F(ServeProtocolTest, MidQueryDisconnectLeavesOtherSessionsClean)
{
    ServerOptions so;
    so.workers = 2;
    Server server(art_.shared, so);
    server.start();

    // Connection A fires a query and hard-closes without reading the
    // answer; connection B, served concurrently, must still answer
    // byte-exactly, and a fresh connection C must get served after
    // the torn one is reaped.
    Client a;
    a.connectTcp(server.port());
    a.sendRaw("races\n");
    a.close();

    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "depcheck", 1);
    Client b;
    b.connectTcp(server.port());
    Client::Response rb = b.query("depcheck");
    EXPECT_EQ(rb.code, e.code);
    EXPECT_EQ(rb.out, e.out);
    b.close();

    Client c;
    c.connectTcp(server.port());
    Client::Response rc = c.query("depcheck");
    EXPECT_EQ(rc.out, e.out);
    c.close();
    server.stop();
    EXPECT_EQ(server.connectionsServed(), 3u);
}

TEST_F(ServeProtocolTest, MaxConnsDrainsAndStops)
{
    ServerOptions so;
    so.maxConns = 2;
    Server server(art_.shared, so);
    server.start();

    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "cf --from 1 --count 1", 1);
    for (int i = 0; i < 2; ++i) {
        Client cl;
        cl.connectTcp(server.port());
        Client::Response r = cl.query("cf --from 1 --count 1");
        EXPECT_EQ(r.out, e.out);
        cl.shutdownWrite();
    }
    server.waitDone();
    server.stop();
    EXPECT_EQ(server.connectionsServed(), 2u);
}

TEST_F(ServeProtocolTest, UnixSocketServesIdentically)
{
    ServerOptions so;
    so.unixPath = ::testing::TempDir() + "wet_serve_test.sock";
    Server server(art_.shared, so);
    server.start();

    core::QuerySession serial(art_.shared);
    LineResult e = serveLine(serial, art_.shared->name(),
                             "races", 1);
    Client cl;
    cl.connectUnix(so.unixPath);
    Client::Response r = cl.query("races");
    EXPECT_EQ(r.code, e.code);
    EXPECT_EQ(r.out, e.out);
    EXPECT_EQ(r.err, e.err);
    server.stop();
}

/**
 * Fault injection on live connections: an armed failpoint turns one
 * line into an error frame (category 1, the batch contract for an
 * injected WetError), the connection's session quarantines what the
 * failed query touched, and both this connection and its concurrent
 * peers keep answering byte-exactly afterwards.
 */
TEST_F(ServeProtocolTest, FailpointOnLiveConnectionIsQuarantined)
{
    ServerOptions so;
    so.workers = 2;
    so.session.cacheCapacity = 2;
    Server server(art_.shared, so);
    server.start();

    core::QuerySession serial(art_.shared);
    std::string batchLine = "cf --from 1 --count 5";
    LineResult e1 = serveLine(serial, art_.shared->name(),
                              batchLine, 1);
    LineResult e2 = serveLine(serial, art_.shared->name(),
                              batchLine, 2);

    Client victim;
    victim.connectTcp(server.port());
    Client bystander;
    bystander.connectTcp(server.port());

    support::FailPoints::instance().arm("core.session.query=once");
    Client::Response rv = victim.query(batchLine);
    support::FailPoints::instance().disarmAll();
    EXPECT_EQ(rv.code, kExitInternal);
    EXPECT_NE(rv.err.find("error: line:1:"), std::string::npos);
    EXPECT_NE(
        rv.err.find("injected fault at core.session.query"),
        std::string::npos);

    // The poisoned line quarantined its readers; the next line on
    // the same connection serves from fresh state (line 2 now).
    Client::Response rv2 = victim.query(batchLine);
    EXPECT_EQ(rv2.code, e2.code);
    EXPECT_EQ(rv2.out, e2.out);

    // The bystander's session was never touched.
    Client::Response rb = bystander.query(batchLine);
    EXPECT_EQ(rb.code, e1.code);
    EXPECT_EQ(rb.out, e1.out);
    server.stop();
}

/**
 * The quarantine invariants themselves (SES001: warm set within
 * capacity, SES002: graveyard purged, SES003: LRU/map agreement) hold
 * at every query boundary while faults fire mid-query — checked at
 * the serveLine layer where the session's cache is reachable.
 */
TEST_F(ServeProtocolTest, SessionCacheInvariantsHoldAcrossFaults)
{
    core::SessionOptions opt;
    opt.cacheCapacity = 2;
    core::QuerySession s(art_.shared, opt);
    core::QuerySession fresh(art_.shared);

    std::vector<std::string> probes = {
        "cf --from 1 --count 5",
        "races",
        "depcheck",
    };
    uint64_t lineNo = 0;
    for (const char* site :
         {"core.session.query", "codec.cursor.step",
          "core.access.value", "core.cache.insert"}) {
        for (const std::string& probe : probes) {
            support::FailPoints::instance().arm(
                std::string(site) + "=once");
            LineResult r =
                serveLine(s, art_.shared->name(), probe, ++lineNo);
            support::FailPoints::instance().disarmAll();
            (void)r; // may or may not have tripped (site-dependent)

            analysis::DiagEngine diag;
            EXPECT_TRUE(analysis::verifySessionCache(
                s.cache(), std::string(site) + "/" + probe, diag))
                << diag.renderText();

            // Post-fault, the session answers like a fresh one.
            LineResult got = serveLine(s, art_.shared->name(),
                                       probe, ++lineNo);
            LineResult want = serveLine(
                fresh, art_.shared->name(), probe, lineNo);
            EXPECT_EQ(got.code, want.code) << site << " " << probe;
            EXPECT_EQ(got.out, want.out) << site << " " << probe;
        }
    }
}

} // namespace
} // namespace serve
} // namespace wet
