#ifndef WET_INTERP_INPUT_H
#define WET_INTERP_INPUT_H

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace wet {
namespace interp {

/** Source of values for the IR's `in()` instruction. */
class InputSource
{
  public:
    virtual ~InputSource() = default;

    /** Produce the next input value. */
    virtual int64_t next() = 0;
};

/** Fixed input vector; repeats its last value when exhausted. */
class VectorInput : public InputSource
{
  public:
    explicit VectorInput(std::vector<int64_t> values)
        : values_(std::move(values))
    {
    }

    int64_t
    next() override
    {
        if (values_.empty())
            return 0;
        if (pos_ < values_.size())
            return values_[pos_++];
        return values_.back();
    }

  private:
    std::vector<int64_t> values_;
    size_t pos_ = 0;
};

/** Deterministic pseudo-random inputs in [lo, hi]. */
class RandomInput : public InputSource
{
  public:
    RandomInput(uint64_t seed, int64_t lo, int64_t hi)
        : rng_(seed), lo_(lo), hi_(hi)
    {
    }

    int64_t next() override { return rng_.range(lo_, hi_); }

  private:
    support::Rng rng_;
    int64_t lo_;
    int64_t hi_;
};

} // namespace interp
} // namespace wet

#endif // WET_INTERP_INPUT_H
