#ifndef WET_INTERP_TRACESINK_H
#define WET_INTERP_TRACESINK_H

#include <cstdint>
#include <vector>

#include "ir/instr.h"

namespace wet {
namespace interp {

/**
 * Reference to one execution instance of a statement: the statement id
 * plus its 0-based local instance index (the paper's "local
 * timestamp" — the k-th execution of that statement).
 */
struct DepRef
{
    ir::StmtId stmt = ir::kNoStmt;
    uint32_t instance = 0;

    bool valid() const { return stmt != ir::kNoStmt; }
    bool
    operator==(const DepRef& o) const
    {
        return stmt == o.stmt && instance == o.instance;
    }
};

/** Everything the tracer reports about one executed instruction. */
struct StmtEvent
{
    ir::StmtId stmt = ir::kNoStmt;
    uint32_t instance = 0;   //!< local instance index of this stmt
    int64_t value = 0;       //!< def-port result (hasValue)
    uint64_t addr = 0;       //!< effective address (isLoad/isStore)
    DepRef deps[2];          //!< register / memory data dependences
    int64_t depValues[2] = {0, 0}; //!< value carried by each dep
    uint8_t numDeps = 0;
    bool hasValue = false;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    bool branchTaken = false;
};

/**
 * Consumer interface for the tracing interpreter. Event order:
 *
 *   onEnterFunction f
 *     onBlockEnter b0   (control = caller's call-site instance or the
 *                        dynamically controlling predicate instance)
 *       onStmt ...      (one per executed instruction)
 *     onEdge (b0 -> b1 via successor index)
 *     onBlockEnter b1
 *     ...
 *   onLeaveFunction f
 *
 * A Call instruction's own onStmt event is emitted after the callee
 * returns (its value is the returned value); all other instructions
 * report in execution order.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void
    onEnterFunction(ir::FuncId f, const DepRef& callsite)
    {
        (void)f;
        (void)callsite;
    }

    virtual void onLeaveFunction(ir::FuncId f) { (void)f; }

    /** Control-flow edge taken inside function @p f. */
    virtual void
    onEdge(ir::FuncId f, ir::BlockId from, uint8_t succ_idx)
    {
        (void)f;
        (void)from;
        (void)succ_idx;
    }

    /**
     * Basic block entered. @p control is the dynamic control
     * dependence of this block instance: the controlling predicate's
     * instance, the call-site instance for region-free blocks, or
     * invalid for the program's entry region.
     */
    virtual void
    onBlockEnter(ir::FuncId f, ir::BlockId b, const DepRef& control)
    {
        (void)f;
        (void)b;
        (void)control;
    }

    virtual void onStmt(const StmtEvent& ev) { (void)ev; }

    /** Program finished (Halt, or Ret from the entry frame). */
    virtual void onEnd() {}
};

/** Fan-out sink: forwards every event to each registered sink. */
class TeeSink : public TraceSink
{
  public:
    void addSink(TraceSink* s) { sinks_.push_back(s); }

    void
    onEnterFunction(ir::FuncId f, const DepRef& cs) override
    {
        for (auto* s : sinks_)
            s->onEnterFunction(f, cs);
    }

    void
    onLeaveFunction(ir::FuncId f) override
    {
        for (auto* s : sinks_)
            s->onLeaveFunction(f);
    }

    void
    onEdge(ir::FuncId f, ir::BlockId from, uint8_t idx) override
    {
        for (auto* s : sinks_)
            s->onEdge(f, from, idx);
    }

    void
    onBlockEnter(ir::FuncId f, ir::BlockId b,
                 const DepRef& control) override
    {
        for (auto* s : sinks_)
            s->onBlockEnter(f, b, control);
    }

    void
    onStmt(const StmtEvent& ev) override
    {
        for (auto* s : sinks_)
            s->onStmt(ev);
    }

    void
    onEnd() override
    {
        for (auto* s : sinks_)
            s->onEnd();
    }

  private:
    std::vector<TraceSink*> sinks_;
};

} // namespace interp
} // namespace wet

#endif // WET_INTERP_TRACESINK_H
