#ifndef WET_INTERP_TRACESINK_H
#define WET_INTERP_TRACESINK_H

#include <cstdint>
#include <vector>

#include "ir/instr.h"

namespace wet {
namespace interp {

/**
 * Reference to one execution instance of a statement: the statement id
 * plus its 0-based local instance index (the paper's "local
 * timestamp" — the k-th execution of that statement).
 */
struct DepRef
{
    ir::StmtId stmt = ir::kNoStmt;
    uint32_t instance = 0;

    bool valid() const { return stmt != ir::kNoStmt; }
    bool
    operator==(const DepRef& o) const
    {
        return stmt == o.stmt && instance == o.instance;
    }
};

/**
 * Kind of a synchronization / shared-memory event in the per-thread
 * SYNC stream. Numeric values are the on-disk encoding (WETX v3) and
 * must not be reordered.
 */
enum class SyncKind : uint8_t {
    Spawn = 0,   //!< obj = spawned thread id
    Join = 1,    //!< obj = joined thread id
    Acquire = 2, //!< obj = lock number
    Release = 3, //!< obj = lock number
    Read = 4,    //!< obj = memory address (Load)
    Write = 5,   //!< obj = memory address (Store)
};

/**
 * One synchronization / shared-memory access event. `seq` is a global
 * strictly increasing counter over all threads, so the interleaved
 * order of a run can be reconstructed from the per-thread streams by
 * a k-way merge on seq. Emitted only for modules that contain a
 * `spawn` (single-threaded traces carry no SYNC stream).
 */
struct SyncEvent
{
    SyncKind kind = SyncKind::Read;
    int64_t obj = 0;       //!< thread id, lock number, or address
    ir::StmtId stmt = ir::kNoStmt;
    uint64_t seq = 0;      //!< global interleaving position (1-based)
};

/** Everything the tracer reports about one executed instruction. */
struct StmtEvent
{
    ir::StmtId stmt = ir::kNoStmt;
    uint32_t instance = 0;   //!< local instance index of this stmt
    int64_t value = 0;       //!< def-port result (hasValue)
    uint64_t addr = 0;       //!< effective address (isLoad/isStore)
    DepRef deps[2];          //!< register / memory data dependences
    int64_t depValues[2] = {0, 0}; //!< value carried by each dep
    uint8_t numDeps = 0;
    bool hasValue = false;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    bool branchTaken = false;
};

/**
 * Consumer interface for the tracing interpreter. Event order:
 *
 *   onEnterFunction f
 *     onBlockEnter b0   (control = caller's call-site instance or the
 *                        dynamically controlling predicate instance)
 *       onStmt ...      (one per executed instruction)
 *     onEdge (b0 -> b1 via successor index)
 *     onBlockEnter b1
 *     ...
 *   onLeaveFunction f
 *
 * A Call instruction's own onStmt event is emitted after the callee
 * returns (its value is the returned value); all other instructions
 * report in execution order.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void
    onEnterFunction(ir::FuncId f, const DepRef& callsite)
    {
        (void)f;
        (void)callsite;
    }

    virtual void onLeaveFunction(ir::FuncId f) { (void)f; }

    /** Control-flow edge taken inside function @p f. */
    virtual void
    onEdge(ir::FuncId f, ir::BlockId from, uint8_t succ_idx)
    {
        (void)f;
        (void)from;
        (void)succ_idx;
    }

    /**
     * Basic block entered. @p control is the dynamic control
     * dependence of this block instance: the controlling predicate's
     * instance, the call-site instance for region-free blocks, or
     * invalid for the program's entry region.
     */
    virtual void
    onBlockEnter(ir::FuncId f, ir::BlockId b, const DepRef& control)
    {
        (void)f;
        (void)b;
        (void)control;
    }

    virtual void onStmt(const StmtEvent& ev) { (void)ev; }

    /**
     * A `spawn` created thread @p tid (parent @p parent, spawn-site
     * instance @p spawn_site). The child's onEnterFunction arrives
     * later, at its first scheduling slot. Threaded runs only.
     */
    virtual void
    onThreadStart(uint32_t tid, uint32_t parent,
                  const DepRef& spawn_site)
    {
        (void)tid;
        (void)parent;
        (void)spawn_site;
    }

    /**
     * The scheduler switched simulated threads: subsequent events
     * belong to thread @p tid. Never emitted for single-threaded
     * modules (everything belongs to thread 0).
     */
    virtual void onThreadSwitch(uint32_t tid) { (void)tid; }

    /** Sync/access event of the current thread. Threaded runs only. */
    virtual void onSync(const SyncEvent& ev) { (void)ev; }

    /** Program finished (Halt, or Ret from the entry frame). */
    virtual void onEnd() {}
};

/** Fan-out sink: forwards every event to each registered sink. */
class TeeSink : public TraceSink
{
  public:
    void addSink(TraceSink* s) { sinks_.push_back(s); }

    void
    onEnterFunction(ir::FuncId f, const DepRef& cs) override
    {
        for (auto* s : sinks_)
            s->onEnterFunction(f, cs);
    }

    void
    onLeaveFunction(ir::FuncId f) override
    {
        for (auto* s : sinks_)
            s->onLeaveFunction(f);
    }

    void
    onEdge(ir::FuncId f, ir::BlockId from, uint8_t idx) override
    {
        for (auto* s : sinks_)
            s->onEdge(f, from, idx);
    }

    void
    onBlockEnter(ir::FuncId f, ir::BlockId b,
                 const DepRef& control) override
    {
        for (auto* s : sinks_)
            s->onBlockEnter(f, b, control);
    }

    void
    onStmt(const StmtEvent& ev) override
    {
        for (auto* s : sinks_)
            s->onStmt(ev);
    }

    void
    onThreadStart(uint32_t tid, uint32_t parent,
                  const DepRef& spawn_site) override
    {
        for (auto* s : sinks_)
            s->onThreadStart(tid, parent, spawn_site);
    }

    void
    onThreadSwitch(uint32_t tid) override
    {
        for (auto* s : sinks_)
            s->onThreadSwitch(tid);
    }

    void
    onSync(const SyncEvent& ev) override
    {
        for (auto* s : sinks_)
            s->onSync(ev);
    }

    void
    onEnd() override
    {
        for (auto* s : sinks_)
            s->onEnd();
    }

  private:
    std::vector<TraceSink*> sinks_;
};

} // namespace interp
} // namespace wet

#endif // WET_INTERP_TRACESINK_H
