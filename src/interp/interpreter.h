#ifndef WET_INTERP_INTERPRETER_H
#define WET_INTERP_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "analysis/moduleanalysis.h"
#include "interp/input.h"
#include "interp/tracesink.h"
#include "ir/module.h"

namespace wet {
namespace interp {

/** Run limits and options for one interpretation. */
struct RunConfig
{
    /** Abort (WetError) after this many executed statements. */
    uint64_t maxStmts = uint64_t{1} << 33;
    /** Abort when the call stack exceeds this depth. */
    uint32_t maxCallDepth = 1 << 16;
    /** Collect values passed to `out` into RunResult::outputs. */
    bool collectOutputs = true;
};

/** Summary of one program run. */
struct RunResult
{
    uint64_t stmtsExecuted = 0;
    uint64_t blocksExecuted = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t calls = 0;
    std::vector<int64_t> outputs;
};

/**
 * The tracing interpreter: executes a module and streams a whole
 * execution trace (control flow, values, addresses, and data/control
 * dependences) to a TraceSink.
 *
 * This is the repo's stand-in for the paper's Trimaran simulator — the
 * profile is observed from "hardware" directly, so there is no
 * instrumentation intrusion. Dynamic control dependence is maintained
 * with a per-frame region stack over the post-dominator tree; register
 * and memory flow is tracked with last-writer tables to produce exact
 * dynamic data dependences.
 */
class Interpreter
{
  public:
    /**
     * @param ma analyses of the module to run (holds the module ref)
     * @param input source for `in()` values
     * @param sink trace consumer (may be a TeeSink or nullptr)
     */
    Interpreter(const analysis::ModuleAnalysis& ma, InputSource& input,
                TraceSink* sink);

    /** Execute from `main`; returns run statistics. */
    RunResult run(const RunConfig& cfg = RunConfig());

    /** Per-statement execution counts (valid after run()). */
    const std::vector<uint32_t>& execCounts() const { return execCount_; }

  private:
    struct CdEntry
    {
        ir::BlockId ipdom;
        DepRef predicate;
    };

    struct Frame
    {
        ir::FuncId func;
        ir::BlockId block = 0;
        uint32_t ip = 0;
        std::vector<int64_t> regs;
        std::vector<DepRef> regDef;
        std::vector<CdEntry> cdStack;
        DepRef callsite;        //!< instance of the calling Call stmt
        DepRef control;         //!< current block's dynamic CD parent
        ir::StmtId pendingCall = ir::kNoStmt;
        uint32_t pendingCallInstance = 0;
        ir::RegId pendingCallDest = ir::kNoReg;
    };

    void enterBlock(Frame& fr, ir::BlockId b);
    uint64_t effectiveAddress(const Frame& fr, const ir::Instr& in) const;

    const analysis::ModuleAnalysis& ma_;
    const ir::Module& mod_;
    InputSource& input_;
    TraceSink* sink_;
    std::vector<int64_t> memory_;
    std::vector<DepRef> memWriter_;
    std::vector<uint32_t> execCount_;
};

} // namespace interp
} // namespace wet

#endif // WET_INTERP_INTERPRETER_H
