#ifndef WET_INTERP_INTERPRETER_H
#define WET_INTERP_INTERPRETER_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/moduleanalysis.h"
#include "interp/input.h"
#include "interp/tracesink.h"
#include "ir/module.h"

namespace wet {
namespace interp {

/** Run limits and options for one interpretation. */
struct RunConfig
{
    /** Abort (WetError) after this many executed statements. */
    uint64_t maxStmts = uint64_t{1} << 33;
    /** Abort when the call stack exceeds this depth. */
    uint32_t maxCallDepth = 1 << 16;
    /** Collect values passed to `out` into RunResult::outputs. */
    bool collectOutputs = true;
    /**
     * Statements one simulated thread runs before the round-robin
     * scheduler rotates to the next runnable thread. Only matters for
     * modules containing `spawn`; single-threaded programs execute
     * exactly as if there were no scheduler.
     */
    uint32_t threadQuantum = 3;
};

/** Summary of one program run. */
struct RunResult
{
    uint64_t stmtsExecuted = 0;
    uint64_t blocksExecuted = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t calls = 0;
    uint64_t spawns = 0;
    uint64_t syncEvents = 0;
    uint32_t threads = 1;
    std::vector<int64_t> outputs;
};

/**
 * The tracing interpreter: executes a module and streams a whole
 * execution trace (control flow, values, addresses, and data/control
 * dependences) to a TraceSink.
 *
 * This is the repo's stand-in for the paper's Trimaran simulator — the
 * profile is observed from "hardware" directly, so there is no
 * instrumentation intrusion. Dynamic control dependence is maintained
 * with a per-frame region stack over the post-dominator tree; register
 * and memory flow is tracked with last-writer tables to produce exact
 * dynamic data dependences.
 *
 * Concurrency is simulated deterministically on one OS thread: `spawn`
 * creates a simulated thread, and a fixed-quantum round-robin scheduler
 * interleaves runnable threads between statements. `join` and `lock`
 * block (the thread re-attempts the instruction when rescheduled, so a
 * blocked attempt claims no statement instance); all threads share the
 * flat memory, input stream, and statement instance counters. Runs of
 * modules containing `spawn` additionally emit per-thread SYNC events
 * (see TraceSink::onSync). Deadlock, re-locking a held lock, unlocking
 * an unheld lock, joining a thread twice, and ending the program with
 * unjoined threads are fatal errors.
 */
class Interpreter
{
  public:
    /**
     * @param ma analyses of the module to run (holds the module ref)
     * @param input source for `in()` values
     * @param sink trace consumer (may be a TeeSink or nullptr)
     */
    Interpreter(const analysis::ModuleAnalysis& ma, InputSource& input,
                TraceSink* sink);

    /** Execute from `main`; returns run statistics. */
    RunResult run(const RunConfig& cfg = RunConfig());

    /** Per-statement execution counts (valid after run()). */
    const std::vector<uint32_t>& execCounts() const { return execCount_; }

  private:
    struct CdEntry
    {
        ir::BlockId ipdom;
        DepRef predicate;
    };

    struct Frame
    {
        ir::FuncId func;
        ir::BlockId block = 0;
        uint32_t ip = 0;
        std::vector<int64_t> regs;
        std::vector<DepRef> regDef;
        std::vector<CdEntry> cdStack;
        DepRef callsite;        //!< instance of the calling Call stmt
        DepRef control;         //!< current block's dynamic CD parent
        ir::StmtId pendingCall = ir::kNoStmt;
        uint32_t pendingCallInstance = 0;
        ir::RegId pendingCallDest = ir::kNoReg;
    };

    enum class ThreadStatus : uint8_t
    {
        Ready,
        BlockedJoin, //!< waiting for thread waitObj to finish
        BlockedLock, //!< waiting for lock waitObj to be released
        Done,
    };

    /** One simulated thread (thread 0 is main). */
    struct Thread
    {
        uint32_t id = 0;
        std::vector<Frame> frames;
        ThreadStatus status = ThreadStatus::Ready;
        bool entered = false; //!< onEnterFunction emitted
        ir::FuncId entryFunc = 0;
        int64_t waitObj = 0;
        int64_t retVal = 0;  //!< entry function's return (Done)
        DepRef retDef;       //!< writer of that return value
        bool joined = false;
    };

    void enterBlock(Frame& fr, ir::BlockId b);
    uint64_t effectiveAddress(const Frame& fr, const ir::Instr& in) const;

    bool runnable(const Thread& th) const;
    /** Next runnable thread after @p cur (round-robin, may be cur). */
    uint32_t pickNext(uint32_t cur) const;
    void ensureEntered(Thread& th, RunResult& res);
    void emitSync(SyncKind k, int64_t obj, ir::StmtId s,
                  RunResult& res);
    /**
     * Execute one statement of @p th. Returns false if the thread
     * blocked instead of executing (no instance claimed).
     */
    bool step(Thread& th, RunResult& res, const RunConfig& cfg);

    const analysis::ModuleAnalysis& ma_;
    const ir::Module& mod_;
    InputSource& input_;
    TraceSink* sink_;
    std::vector<int64_t> memory_;
    std::vector<DepRef> memWriter_;
    std::vector<uint32_t> execCount_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::unordered_map<int64_t, uint32_t> lockHolder_;
    bool hasThreads_ = false; //!< module contains a Spawn opcode
    bool programEnded_ = false;
    uint64_t syncSeq_ = 0;
};

} // namespace interp
} // namespace wet

#endif // WET_INTERP_INTERPRETER_H
