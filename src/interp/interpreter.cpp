#include "interpreter.h"

#include "support/error.h"

namespace wet {
namespace interp {

namespace {

/** Shared no-op sink so the hot loop never tests for null. */
TraceSink nullSink;

} // namespace

Interpreter::Interpreter(const analysis::ModuleAnalysis& ma,
                         InputSource& input, TraceSink* sink)
    : ma_(ma), mod_(ma.module()), input_(input),
      sink_(sink ? sink : &nullSink)
{
    // Sync/thread events are emitted only for modules that can start
    // threads, so single-threaded traces are bit-identical to what
    // they were before concurrency existed.
    for (ir::StmtId s = 0; s < mod_.numStmts(); ++s) {
        if (mod_.instr(s).op == ir::Opcode::Spawn) {
            hasThreads_ = true;
            break;
        }
    }
}

void
Interpreter::enterBlock(Frame& fr, ir::BlockId b)
{
    // Close control-dependence regions that end at this block.
    while (!fr.cdStack.empty() && fr.cdStack.back().ipdom == b)
        fr.cdStack.pop_back();
    fr.control = fr.cdStack.empty() ? fr.callsite
                                    : fr.cdStack.back().predicate;
    fr.block = b;
    fr.ip = 0;
    sink_->onBlockEnter(fr.func, b, fr.control);
}

uint64_t
Interpreter::effectiveAddress(const Frame& fr,
                              const ir::Instr& in) const
{
    return static_cast<uint64_t>(fr.regs[in.src0] + in.imm);
}

bool
Interpreter::runnable(const Thread& th) const
{
    switch (th.status) {
    case ThreadStatus::Ready:
        return true;
    case ThreadStatus::BlockedJoin:
        return threads_[static_cast<size_t>(th.waitObj)]->status ==
               ThreadStatus::Done;
    case ThreadStatus::BlockedLock:
        return lockHolder_.count(th.waitObj) == 0;
    case ThreadStatus::Done:
        return false;
    }
    return false;
}

uint32_t
Interpreter::pickNext(uint32_t cur) const
{
    const uint32_t n = static_cast<uint32_t>(threads_.size());
    for (uint32_t i = 1; i <= n; ++i) {
        uint32_t cand = (cur + i) % n;
        if (runnable(*threads_[cand]))
            return cand;
    }
    return UINT32_MAX;
}

void
Interpreter::ensureEntered(Thread& th, RunResult& res)
{
    if (th.entered)
        return;
    th.entered = true;
    sink_->onEnterFunction(th.entryFunc, th.frames[0].callsite);
    enterBlock(th.frames[0], 0);
    ++res.blocksExecuted;
}

void
Interpreter::emitSync(SyncKind k, int64_t obj, ir::StmtId s,
                      RunResult& res)
{
    if (!hasThreads_)
        return;
    SyncEvent e;
    e.kind = k;
    e.obj = obj;
    e.stmt = s;
    e.seq = ++syncSeq_;
    ++res.syncEvents;
    sink_->onSync(e);
}

bool
Interpreter::step(Thread& th, RunResult& res, const RunConfig& cfg)
{
    std::vector<Frame>& frames = th.frames;
    {
        // Blockable instructions must not claim a statement instance
        // until they can actually execute: a blocked attempt leaves no
        // trace and is re-tried when the thread is rescheduled.
        Frame& fr = frames.back();
        const ir::Instr& probe =
            mod_.function(fr.func).blocks[fr.block].instrs[fr.ip];
        if (probe.op == ir::Opcode::Join) {
            int64_t tid = fr.regs[probe.src0];
            if (tid <= 0 ||
                static_cast<uint64_t>(tid) >= threads_.size())
                WET_FATAL("join of unknown thread id " << tid);
            Thread& child = *threads_[static_cast<size_t>(tid)];
            if (child.joined)
                WET_FATAL("thread " << tid << " joined twice");
            if (child.status != ThreadStatus::Done) {
                th.status = ThreadStatus::BlockedJoin;
                th.waitObj = tid;
                return false;
            }
        } else if (probe.op == ir::Opcode::Lock) {
            int64_t l = fr.regs[probe.src0];
            auto it = lockHolder_.find(l);
            if (it != lockHolder_.end()) {
                if (it->second == th.id)
                    WET_FATAL("thread " << th.id
                              << " re-locks held lock " << l);
                th.status = ThreadStatus::BlockedLock;
                th.waitObj = l;
                return false;
            }
        }
    }

    Frame& fr = frames.back();
    const ir::Function& fn = mod_.function(fr.func);
    const ir::BasicBlock& blk = fn.blocks[fr.block];
    const ir::Instr& in = blk.instrs[fr.ip];

    if (++res.stmtsExecuted > cfg.maxStmts)
        WET_FATAL("run exceeded the configured statement limit of "
                  << cfg.maxStmts);

    const ir::StmtId sid = in.stmt;
    const uint32_t inst = execCount_[sid]++;

    StmtEvent ev;
    ev.stmt = sid;
    ev.instance = inst;

    auto regDep = [&](ir::RegId r) { return fr.regDef[r]; };
    auto setDef = [&](ir::RegId r, int64_t v) {
        fr.regs[r] = v;
        fr.regDef[r] = DepRef{sid, inst};
    };

    switch (in.op) {
      case ir::Opcode::Const: {
        setDef(in.dest, in.imm);
        ev.value = in.imm;
        ev.hasValue = true;
        sink_->onStmt(ev);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Neg:
      case ir::Opcode::Not:
      case ir::Opcode::Mov: {
        int64_t v = ir::evalUnary(in.op, fr.regs[in.src0]);
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        setDef(in.dest, v);
        ev.value = v;
        ev.hasValue = true;
        sink_->onStmt(ev);
        ++fr.ip;
        break;
      }
      case ir::Opcode::In: {
        int64_t v = input_.next();
        setDef(in.dest, v);
        ev.value = v;
        ev.hasValue = true;
        sink_->onStmt(ev);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Load: {
        uint64_t addr = effectiveAddress(fr, in);
        if (addr >= memory_.size())
            WET_FATAL("load out of bounds: address " << addr
                      << " (mem is " << memory_.size()
                      << " words) at stmt " << sid);
        int64_t v = memory_[addr];
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        if (memWriter_[addr].valid()) {
            ev.depValues[ev.numDeps] = v;
            ev.deps[ev.numDeps++] = memWriter_[addr];
        }
        setDef(in.dest, v);
        ev.value = v;
        ev.hasValue = true;
        ev.isLoad = true;
        ev.addr = addr;
        ++res.loads;
        sink_->onStmt(ev);
        emitSync(SyncKind::Read, static_cast<int64_t>(addr), sid,
                 res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Store: {
        uint64_t addr = effectiveAddress(fr, in);
        if (addr >= memory_.size())
            WET_FATAL("store out of bounds: address " << addr
                      << " (mem is " << memory_.size()
                      << " words) at stmt " << sid);
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        ev.depValues[ev.numDeps] = fr.regs[in.src1];
        ev.deps[ev.numDeps++] = regDep(in.src1);
        memory_[addr] = fr.regs[in.src1];
        memWriter_[addr] = DepRef{sid, inst};
        ev.isStore = true;
        ev.addr = addr;
        ++res.stores;
        sink_->onStmt(ev);
        emitSync(SyncKind::Write, static_cast<int64_t>(addr), sid,
                 res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Out: {
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        if (cfg.collectOutputs)
            res.outputs.push_back(fr.regs[in.src0]);
        sink_->onStmt(ev);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Call: {
        if (frames.size() >= cfg.maxCallDepth)
            WET_FATAL("call depth exceeded "
                      << cfg.maxCallDepth);
        ir::FuncId callee = static_cast<ir::FuncId>(in.imm);
        // The Call's own event is emitted when the callee
        // returns; remember what we need in the caller frame.
        fr.pendingCall = sid;
        fr.pendingCallInstance = inst;
        fr.pendingCallDest = in.dest;
        ++fr.ip; // resume past the call after return
        ++res.calls;
        DepRef cs{sid, inst};
        // Gather argument values/writers before the frame vector
        // reallocates.
        std::vector<int64_t> argVals(in.args.size());
        std::vector<DepRef> argDefs(in.args.size());
        for (size_t a = 0; a < in.args.size(); ++a) {
            argVals[a] = fr.regs[in.args[a]];
            argDefs[a] = fr.regDef[in.args[a]];
        }
        const ir::Function& cfn = mod_.function(callee);
        Frame nf;
        nf.func = callee;
        nf.regs.assign(cfn.numRegs, 0);
        nf.regDef.assign(cfn.numRegs, DepRef{});
        nf.callsite = cs;
        frames.push_back(std::move(nf));
        Frame& cf = frames.back();
        for (size_t a = 0; a < argVals.size(); ++a) {
            cf.regs[a] = argVals[a];
            cf.regDef[a] = argDefs[a];
        }
        sink_->onEnterFunction(callee, cs);
        enterBlock(cf, 0);
        ++res.blocksExecuted;
        break;
      }
      case ir::Opcode::Spawn: {
        ir::FuncId callee = static_cast<ir::FuncId>(in.imm);
        uint32_t childId = static_cast<uint32_t>(threads_.size());
        DepRef cs{sid, inst};
        const ir::Function& cfn = mod_.function(callee);
        auto child = std::make_unique<Thread>();
        child->id = childId;
        child->entryFunc = callee;
        Frame cf;
        cf.func = callee;
        cf.regs.assign(cfn.numRegs, 0);
        cf.regDef.assign(cfn.numRegs, DepRef{});
        cf.callsite = cs;
        for (size_t a = 0; a < in.args.size(); ++a) {
            cf.regs[a] = fr.regs[in.args[a]];
            cf.regDef[a] = fr.regDef[in.args[a]];
        }
        child->frames.push_back(std::move(cf));
        threads_.push_back(std::move(child));
        ++res.spawns;
        res.threads = static_cast<uint32_t>(threads_.size());
        // The spawn's value (the thread id) is an input-like value:
        // not a function of in-path operands, like In/Load/Call.
        setDef(in.dest, static_cast<int64_t>(childId));
        ev.value = static_cast<int64_t>(childId);
        ev.hasValue = true;
        sink_->onThreadStart(childId, th.id, cs);
        sink_->onStmt(ev);
        emitSync(SyncKind::Spawn, static_cast<int64_t>(childId), sid,
                 res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Join: {
        // step()'s preamble guarantees the child exists and is Done.
        Thread& child =
            *threads_[static_cast<size_t>(fr.regs[in.src0])];
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        if (child.retDef.valid()) {
            // Cross-thread DD edge: the joined thread's return value
            // flows into the join, mirroring Call's return edge.
            ev.depValues[ev.numDeps] = child.retVal;
            ev.deps[ev.numDeps++] = child.retDef;
        }
        setDef(in.dest, child.retVal);
        ev.value = child.retVal;
        ev.hasValue = true;
        child.joined = true;
        sink_->onStmt(ev);
        emitSync(SyncKind::Join, static_cast<int64_t>(child.id), sid,
                 res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Lock: {
        int64_t l = fr.regs[in.src0];
        ev.depValues[ev.numDeps] = l;
        ev.deps[ev.numDeps++] = regDep(in.src0);
        lockHolder_[l] = th.id;
        sink_->onStmt(ev);
        emitSync(SyncKind::Acquire, l, sid, res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Unlock: {
        int64_t l = fr.regs[in.src0];
        auto it = lockHolder_.find(l);
        if (it == lockHolder_.end() || it->second != th.id)
            WET_FATAL("thread " << th.id << " unlocks lock " << l
                      << " it does not hold");
        lockHolder_.erase(it);
        ev.depValues[ev.numDeps] = l;
        ev.deps[ev.numDeps++] = regDep(in.src0);
        sink_->onStmt(ev);
        emitSync(SyncKind::Release, l, sid, res);
        ++fr.ip;
        break;
      }
      case ir::Opcode::Br: {
        bool taken = fr.regs[in.src0] != 0;
        uint8_t idx = taken ? 0 : 1;
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        ev.isBranch = true;
        ev.branchTaken = taken;
        sink_->onStmt(ev);
        ++res.branches;
        sink_->onEdge(fr.func, fr.block, idx);
        // Open this predicate's control-dependence region,
        // replacing a same-region top entry to keep the stack
        // bounded across loop iterations.
        const auto& fa = ma_.fn(fr.func);
        ir::BlockId ipd = fa.postdom.idom(fr.block);
        CdEntry entry{ipd, DepRef{sid, inst}};
        if (!fr.cdStack.empty() &&
            fr.cdStack.back().ipdom == ipd)
        {
            fr.cdStack.back() = entry;
        } else {
            fr.cdStack.push_back(entry);
        }
        enterBlock(fr, blk.succs[idx]);
        ++res.blocksExecuted;
        break;
      }
      case ir::Opcode::Jmp: {
        sink_->onStmt(ev);
        sink_->onEdge(fr.func, fr.block, 0);
        enterBlock(fr, blk.succs[0]);
        ++res.blocksExecuted;
        break;
      }
      case ir::Opcode::Ret: {
        int64_t retVal = 0;
        DepRef retDef;
        if (in.src0 != ir::kNoReg) {
            retVal = fr.regs[in.src0];
            retDef = regDep(in.src0);
            ev.depValues[ev.numDeps] = retVal;
            ev.deps[ev.numDeps++] = retDef;
        }
        sink_->onStmt(ev);
        ir::FuncId leaving = fr.func;
        frames.pop_back();
        sink_->onLeaveFunction(leaving);
        if (frames.empty()) {
            if (th.id == 0) {
                for (const auto& t : threads_) {
                    if (t->id != 0 &&
                        t->status != ThreadStatus::Done)
                        WET_FATAL("main returned with unjoined "
                                  "running thread " << t->id);
                }
                programEnded_ = true;
            } else {
                th.status = ThreadStatus::Done;
                th.retVal = retVal;
                th.retDef = retDef;
            }
            break;
        }
        Frame& caller = frames.back();
        WET_ASSERT(caller.pendingCall != ir::kNoStmt,
                   "return without a pending call");
        StmtEvent cev;
        cev.stmt = caller.pendingCall;
        cev.instance = caller.pendingCallInstance;
        cev.value = retVal;
        cev.hasValue = true;
        if (retDef.valid()) {
            cev.depValues[cev.numDeps] = retVal;
            cev.deps[cev.numDeps++] = retDef;
        }
        caller.regs[caller.pendingCallDest] = retVal;
        caller.regDef[caller.pendingCallDest] =
            DepRef{caller.pendingCall,
                   caller.pendingCallInstance};
        caller.pendingCall = ir::kNoStmt;
        sink_->onStmt(cev);
        break;
      }
      case ir::Opcode::Halt: {
        sink_->onStmt(ev);
        while (!frames.empty()) {
            sink_->onLeaveFunction(frames.back().func);
            frames.pop_back();
        }
        for (const auto& t : threads_) {
            if (t->id != th.id && t->status != ThreadStatus::Done)
                WET_FATAL("halt with unjoined running thread "
                          << t->id);
        }
        th.status = ThreadStatus::Done;
        programEnded_ = true;
        break;
      }
      default: {
        // Binary ALU and comparisons.
        WET_ASSERT(ir::isBinaryAlu(in.op),
                   "unhandled opcode "
                       << ir::opcodeName(in.op));
        int64_t v = ir::evalBinary(in.op, fr.regs[in.src0],
                                   fr.regs[in.src1]);
        ev.depValues[ev.numDeps] = fr.regs[in.src0];
        ev.deps[ev.numDeps++] = regDep(in.src0);
        ev.depValues[ev.numDeps] = fr.regs[in.src1];
        ev.deps[ev.numDeps++] = regDep(in.src1);
        setDef(in.dest, v);
        ev.value = v;
        ev.hasValue = true;
        sink_->onStmt(ev);
        ++fr.ip;
        break;
      }
    }
    return true;
}

RunResult
Interpreter::run(const RunConfig& cfg)
{
    memory_.assign(mod_.memWords(), 0);
    memWriter_.assign(mod_.memWords(), DepRef{});
    execCount_.assign(mod_.numStmts(), 0);
    threads_.clear();
    lockHolder_.clear();
    programEnded_ = false;
    syncSeq_ = 0;

    RunResult res;

    {
        auto main = std::make_unique<Thread>();
        main->id = 0;
        main->entryFunc = mod_.entryFunction();
        const ir::Function& fn = mod_.function(main->entryFunc);
        Frame fr;
        fr.func = main->entryFunc;
        fr.regs.assign(fn.numRegs, 0);
        fr.regDef.assign(fn.numRegs, DepRef{});
        threads_.push_back(std::move(main));

        // Re-create the frame inside the stored thread (the local was
        // only used to keep initialization in one place).
        threads_[0]->frames.push_back(std::move(fr));
    }
    ensureEntered(*threads_[0], res);

    uint32_t cur = 0;
    uint64_t used = 0; // statements run in the current quantum
    const uint32_t quantum = cfg.threadQuantum == 0
                                 ? 1
                                 : cfg.threadQuantum;
    while (!programEnded_) {
        Thread& th = *threads_[cur];
        if (th.status == ThreadStatus::Done || !runnable(th) ||
            used >= quantum)
        {
            uint32_t next = pickNext(cur);
            if (next == UINT32_MAX)
                WET_FATAL("deadlock: all simulated threads are "
                          "blocked");
            used = 0;
            if (next != cur) {
                cur = next;
                if (hasThreads_)
                    sink_->onThreadSwitch(cur);
            }
            Thread& nt = *threads_[cur];
            nt.status = ThreadStatus::Ready; // resume from block
            ensureEntered(nt, res);
            continue;
        }
        if (step(th, res, cfg))
            ++used;
    }
    res.threads = static_cast<uint32_t>(threads_.size());
    sink_->onEnd();
    return res;
}

} // namespace interp
} // namespace wet
