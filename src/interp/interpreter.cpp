#include "interpreter.h"

#include "support/error.h"

namespace wet {
namespace interp {

namespace {

/** Shared no-op sink so the hot loop never tests for null. */
TraceSink nullSink;

} // namespace

Interpreter::Interpreter(const analysis::ModuleAnalysis& ma,
                         InputSource& input, TraceSink* sink)
    : ma_(ma), mod_(ma.module()), input_(input),
      sink_(sink ? sink : &nullSink)
{
}

void
Interpreter::enterBlock(Frame& fr, ir::BlockId b)
{
    // Close control-dependence regions that end at this block.
    while (!fr.cdStack.empty() && fr.cdStack.back().ipdom == b)
        fr.cdStack.pop_back();
    fr.control = fr.cdStack.empty() ? fr.callsite
                                    : fr.cdStack.back().predicate;
    fr.block = b;
    fr.ip = 0;
    sink_->onBlockEnter(fr.func, b, fr.control);
}

uint64_t
Interpreter::effectiveAddress(const Frame& fr,
                              const ir::Instr& in) const
{
    return static_cast<uint64_t>(fr.regs[in.src0] + in.imm);
}

RunResult
Interpreter::run(const RunConfig& cfg)
{
    memory_.assign(mod_.memWords(), 0);
    memWriter_.assign(mod_.memWords(), DepRef{});
    execCount_.assign(mod_.numStmts(), 0);

    RunResult res;
    std::vector<Frame> frames;

    auto pushFrame = [&](ir::FuncId f, const DepRef& callsite) {
        const ir::Function& fn = mod_.function(f);
        Frame fr;
        fr.func = f;
        fr.regs.assign(fn.numRegs, 0);
        fr.regDef.assign(fn.numRegs, DepRef{});
        fr.callsite = callsite;
        frames.push_back(std::move(fr));
    };

    pushFrame(mod_.entryFunction(), DepRef{});
    sink_->onEnterFunction(mod_.entryFunction(), DepRef{});
    enterBlock(frames.back(), 0);
    res.blocksExecuted++;

    bool running = true;
    while (running) {
        Frame& fr = frames.back();
        const ir::Function& fn = mod_.function(fr.func);
        const ir::BasicBlock& blk = fn.blocks[fr.block];
        const ir::Instr& in = blk.instrs[fr.ip];

        if (++res.stmtsExecuted > cfg.maxStmts)
            WET_FATAL("run exceeded the configured statement limit of "
                      << cfg.maxStmts);

        const ir::StmtId sid = in.stmt;
        const uint32_t inst = execCount_[sid]++;

        StmtEvent ev;
        ev.stmt = sid;
        ev.instance = inst;

        auto regDep = [&](ir::RegId r) { return fr.regDef[r]; };
        auto setDef = [&](ir::RegId r, int64_t v) {
            fr.regs[r] = v;
            fr.regDef[r] = DepRef{sid, inst};
        };

        switch (in.op) {
          case ir::Opcode::Const: {
            setDef(in.dest, in.imm);
            ev.value = in.imm;
            ev.hasValue = true;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::Neg:
          case ir::Opcode::Not:
          case ir::Opcode::Mov: {
            int64_t v = ir::evalUnary(in.op, fr.regs[in.src0]);
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            setDef(in.dest, v);
            ev.value = v;
            ev.hasValue = true;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::In: {
            int64_t v = input_.next();
            setDef(in.dest, v);
            ev.value = v;
            ev.hasValue = true;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::Load: {
            uint64_t addr = effectiveAddress(fr, in);
            if (addr >= memory_.size())
                WET_FATAL("load out of bounds: address " << addr
                          << " (mem is " << memory_.size()
                          << " words) at stmt " << sid);
            int64_t v = memory_[addr];
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            if (memWriter_[addr].valid()) {
                ev.depValues[ev.numDeps] = v;
                ev.deps[ev.numDeps++] = memWriter_[addr];
            }
            setDef(in.dest, v);
            ev.value = v;
            ev.hasValue = true;
            ev.isLoad = true;
            ev.addr = addr;
            ++res.loads;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::Store: {
            uint64_t addr = effectiveAddress(fr, in);
            if (addr >= memory_.size())
                WET_FATAL("store out of bounds: address " << addr
                          << " (mem is " << memory_.size()
                          << " words) at stmt " << sid);
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            ev.depValues[ev.numDeps] = fr.regs[in.src1];
            ev.deps[ev.numDeps++] = regDep(in.src1);
            memory_[addr] = fr.regs[in.src1];
            memWriter_[addr] = DepRef{sid, inst};
            ev.isStore = true;
            ev.addr = addr;
            ++res.stores;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::Out: {
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            if (cfg.collectOutputs)
                res.outputs.push_back(fr.regs[in.src0]);
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
          case ir::Opcode::Call: {
            if (frames.size() >= cfg.maxCallDepth)
                WET_FATAL("call depth exceeded "
                          << cfg.maxCallDepth);
            ir::FuncId callee = static_cast<ir::FuncId>(in.imm);
            // The Call's own event is emitted when the callee
            // returns; remember what we need in the caller frame.
            fr.pendingCall = sid;
            fr.pendingCallInstance = inst;
            fr.pendingCallDest = in.dest;
            ++fr.ip; // resume past the call after return
            ++res.calls;
            DepRef cs{sid, inst};
            // Gather argument values/writers before the frame vector
            // reallocates.
            std::vector<int64_t> argVals(in.args.size());
            std::vector<DepRef> argDefs(in.args.size());
            for (size_t a = 0; a < in.args.size(); ++a) {
                argVals[a] = fr.regs[in.args[a]];
                argDefs[a] = fr.regDef[in.args[a]];
            }
            pushFrame(callee, cs);
            Frame& cf = frames.back();
            for (size_t a = 0; a < argVals.size(); ++a) {
                cf.regs[a] = argVals[a];
                cf.regDef[a] = argDefs[a];
            }
            sink_->onEnterFunction(callee, cs);
            enterBlock(cf, 0);
            ++res.blocksExecuted;
            break;
          }
          case ir::Opcode::Br: {
            bool taken = fr.regs[in.src0] != 0;
            uint8_t idx = taken ? 0 : 1;
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            ev.isBranch = true;
            ev.branchTaken = taken;
            sink_->onStmt(ev);
            ++res.branches;
            sink_->onEdge(fr.func, fr.block, idx);
            // Open this predicate's control-dependence region,
            // replacing a same-region top entry to keep the stack
            // bounded across loop iterations.
            const auto& fa = ma_.fn(fr.func);
            ir::BlockId ipd = fa.postdom.idom(fr.block);
            CdEntry entry{ipd, DepRef{sid, inst}};
            if (!fr.cdStack.empty() &&
                fr.cdStack.back().ipdom == ipd)
            {
                fr.cdStack.back() = entry;
            } else {
                fr.cdStack.push_back(entry);
            }
            enterBlock(fr, blk.succs[idx]);
            ++res.blocksExecuted;
            break;
          }
          case ir::Opcode::Jmp: {
            sink_->onStmt(ev);
            sink_->onEdge(fr.func, fr.block, 0);
            enterBlock(fr, blk.succs[0]);
            ++res.blocksExecuted;
            break;
          }
          case ir::Opcode::Ret: {
            int64_t retVal = 0;
            DepRef retDef;
            if (in.src0 != ir::kNoReg) {
                retVal = fr.regs[in.src0];
                retDef = regDep(in.src0);
                ev.depValues[ev.numDeps] = retVal;
                ev.deps[ev.numDeps++] = retDef;
            }
            sink_->onStmt(ev);
            ir::FuncId leaving = fr.func;
            frames.pop_back();
            sink_->onLeaveFunction(leaving);
            if (frames.empty()) {
                running = false;
                break;
            }
            Frame& caller = frames.back();
            WET_ASSERT(caller.pendingCall != ir::kNoStmt,
                       "return without a pending call");
            StmtEvent cev;
            cev.stmt = caller.pendingCall;
            cev.instance = caller.pendingCallInstance;
            cev.value = retVal;
            cev.hasValue = true;
            if (retDef.valid()) {
                cev.depValues[cev.numDeps] = retVal;
                cev.deps[cev.numDeps++] = retDef;
            }
            caller.regs[caller.pendingCallDest] = retVal;
            caller.regDef[caller.pendingCallDest] =
                DepRef{caller.pendingCall,
                       caller.pendingCallInstance};
            caller.pendingCall = ir::kNoStmt;
            sink_->onStmt(cev);
            break;
          }
          case ir::Opcode::Halt: {
            sink_->onStmt(ev);
            while (!frames.empty()) {
                sink_->onLeaveFunction(frames.back().func);
                frames.pop_back();
            }
            running = false;
            break;
          }
          default: {
            // Binary ALU and comparisons.
            WET_ASSERT(ir::isBinaryAlu(in.op),
                       "unhandled opcode "
                           << ir::opcodeName(in.op));
            int64_t v = ir::evalBinary(in.op, fr.regs[in.src0],
                                       fr.regs[in.src1]);
            ev.depValues[ev.numDeps] = fr.regs[in.src0];
            ev.deps[ev.numDeps++] = regDep(in.src0);
            ev.depValues[ev.numDeps] = fr.regs[in.src1];
            ev.deps[ev.numDeps++] = regDep(in.src1);
            setDef(in.dest, v);
            ev.value = v;
            ev.hasValue = true;
            sink_->onStmt(ev);
            ++fr.ip;
            break;
          }
        }
    }
    sink_->onEnd();
    return res;
}

} // namespace interp
} // namespace wet
