#ifndef WET_WETIO_WETIO_H
#define WET_WETIO_WETIO_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "core/compressed.h"
#include "core/wetgraph.h"
#include "ir/module.h"
#include "wetio/artifactview.h"

namespace wet {
namespace wetio {

/**
 * A WET loaded back from disk: the static graph structure plus the
 * tier-2 compressed label streams. Tier-1 label vectors are not
 * stored (that is the point of compressing), so queries must run
 * through a tier-2 WetAccess over `compressed`.
 *
 * Stream payloads (flag words and miss bytes) are zero-copy spans
 * into `backing`; declared first so it is destroyed last, after
 * everything borrowing from it.
 */
struct LoadedWet
{
    std::shared_ptr<ArtifactView> backing;
    std::unique_ptr<core::WetGraph> graph;
    std::unique_ptr<core::WetCompressed> compressed;
};

/**
 * Fingerprint of a module, stored in the file and checked on load so
 * that a WET cannot silently be opened against the wrong program.
 */
uint64_t moduleFingerprint(const ir::Module& mod);

/**
 * Serialize the compressed WET to its on-disk byte image (binary
 * "WETX" format: graph structure + tier-2 streams with sparse table
 * snapshots). Whole-run graphs serialize as version 3, byte-identical
 * to what earlier builds wrote; windowed graphs (graph.windowed, the
 * product of a segmented build) serialize as version 4, which adds
 * the window's tsBegin after the module fingerprint. Returning the
 * bytes instead of writing them lets segment writers checksum the
 * exact file image before it is published.
 */
std::vector<uint8_t> serialize(const ir::Module& mod,
                               const core::WetGraph& graph,
                               const core::WetCompressed& compressed);

/**
 * Crash-consistent publish of @p size bytes at @p path: staged as a
 * sibling ".tmp" file, flushed, atomically renamed over the target,
 * directory-fsynced (failpoints wetio.save.open/write/fsync/rename/
 * dirsync). A crash at any point leaves either the complete old file
 * or the complete new file. Throws WetError on I/O failure.
 */
void atomicWrite(const std::string& path, const uint8_t* data,
                 size_t size);

/**
 * Save the compressed WET to @p path: serialize() + atomicWrite().
 * Throws WetError on I/O failure.
 */
void save(const std::string& path, const ir::Module& mod,
          const core::WetGraph& graph,
          const core::WetCompressed& compressed);

/**
 * Load a WET saved with save(). @p mod must be the same program
 * (checked via fingerprint). Throws WetError on mismatch or a
 * malformed file.
 */
LoadedWet load(const std::string& path, const ir::Module& mod);

/**
 * Diagnostic-reporting variant of load(): never throws on a bad
 * file. Every byte read is bounds-checked, headers and graph indexes
 * are validated (rules IO001..IO007), and each compressed stream's
 * structure is verified (ART003/ART004) before it is accepted, so a
 * corrupted file yields diagnostics rather than undefined behavior
 * in later decoding. On failure both pointers of the result are
 * null and @p diag holds at least one error.
 *
 * @p backend selects how the file enters memory (see ArtifactView);
 * both backends parse the identical byte span, so load results can
 * never depend on the choice.
 */
LoadedWet tryLoad(const std::string& path, const ir::Module& mod,
                  analysis::DiagEngine& diag,
                  ArtifactView::Backend backend =
                      ArtifactView::Backend::Mmap);

/**
 * tryLoad() over an already-open view. Segment loaders use this so a
 * file can be checksummed and parsed from one mapping; @p path only
 * labels diagnostics.
 */
LoadedWet tryLoadView(std::shared_ptr<ArtifactView> view,
                      const std::string& path,
                      const ir::Module& mod,
                      analysis::DiagEngine& diag);

} // namespace wetio
} // namespace wet

#endif // WET_WETIO_WETIO_H
