#ifndef WET_WETIO_WETIO_H
#define WET_WETIO_WETIO_H

#include <memory>
#include <string>

#include "core/compressed.h"
#include "core/wetgraph.h"
#include "ir/module.h"

namespace wet {
namespace wetio {

/**
 * A WET loaded back from disk: the static graph structure plus the
 * tier-2 compressed label streams. Tier-1 label vectors are not
 * stored (that is the point of compressing), so queries must run
 * through a tier-2 WetAccess over `compressed`.
 */
struct LoadedWet
{
    std::unique_ptr<core::WetGraph> graph;
    std::unique_ptr<core::WetCompressed> compressed;
};

/**
 * Fingerprint of a module, stored in the file and checked on load so
 * that a WET cannot silently be opened against the wrong program.
 */
uint64_t moduleFingerprint(const ir::Module& mod);

/**
 * Save the compressed WET to @p path (binary "WETX" format: graph
 * structure + tier-2 streams with sparse table snapshots).
 * Throws WetError on I/O failure.
 */
void save(const std::string& path, const ir::Module& mod,
          const core::WetGraph& graph,
          const core::WetCompressed& compressed);

/**
 * Load a WET saved with save(). @p mod must be the same program
 * (checked via fingerprint). Throws WetError on mismatch or a
 * malformed file.
 */
LoadedWet load(const std::string& path, const ir::Module& mod);

} // namespace wetio
} // namespace wet

#endif // WET_WETIO_WETIO_H
