#include "artifactview.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "support/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define WET_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WET_HAVE_MMAP 0
#endif

namespace wet {
namespace wetio {

namespace {

bool
readWholeFile(const std::string& path, std::vector<uint8_t>& out)
{
    if (WET_FAILPOINT_HIT("wetio.open.read"))
        return false; // injected buffered-read failure
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

} // namespace

std::shared_ptr<ArtifactView>
ArtifactView::open(const std::string& path,
                   analysis::DiagEngine& diag, Backend preferred)
{
    // make_shared needs a public ctor; the view is immutable after
    // open() so a bare new behind shared_ptr is fine here.
    std::shared_ptr<ArtifactView> v(new ArtifactView());
    v->path_ = path;

    if (WET_FAILPOINT_HIT("wetio.open")) {
        // Injected whole-open failure: same report and result as a
        // missing file, exercising every caller's null-view path.
        diag.error("IO001", path, "cannot open file");
        return nullptr;
    }

#if WET_HAVE_MMAP
    if (preferred == Backend::Mmap &&
        !WET_FAILPOINT_HIT("wetio.open.mmap")) {
        // An injected mmap failure skips this whole branch, exactly
        // like a filesystem that cannot map: the buffered fallback
        // below must serve identical bytes.
        int fd = ::open(path.c_str(), O_RDONLY); // NOLINT(cppcoreguidelines-pro-type-vararg)
        if (fd < 0) {
            diag.error("IO001", path, "cannot open file");
            return nullptr;
        }
        struct stat st = {};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            diag.error("IO001", path, "cannot stat file");
            return nullptr;
        }
        size_t len = static_cast<size_t>(st.st_size);
        if (len > 0) {
            // mmap of length zero is EINVAL; an empty file simply
            // stays unmapped with a null span, which the parser
            // rejects the same way in either backend.
            void* m =
                ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
            if (m != MAP_FAILED) {
                v->map_ = m;
                v->mapLen_ = len;
                v->data_ = static_cast<const uint8_t*>(m);
                v->size_ = len;
                v->backend_ = Backend::Mmap;
                ::close(fd);
                return v;
            }
            // Mapping failed (e.g. a pipe or an exotic filesystem):
            // fall through to the buffered read below.
        } else {
            v->backend_ = Backend::Mmap;
            ::close(fd);
            return v;
        }
        ::close(fd);
    }
#endif

    if (!readWholeFile(path, v->owned_)) {
        diag.error("IO001", path, "cannot open file");
        return nullptr;
    }
    v->data_ = v->owned_.data();
    v->size_ = v->owned_.size();
    v->backend_ = Backend::Buffered;
    return v;
}

ArtifactView::~ArtifactView()
{
#if WET_HAVE_MMAP
    if (map_ != nullptr)
        ::munmap(map_, mapLen_);
#endif
}

size_t
ArtifactView::residentBytes() const
{
    if (backend_ == Backend::Buffered)
        return size_;
#if WET_HAVE_MMAP
    if (map_ == nullptr)
        return 0;
    size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    size_t npages = (mapLen_ + page - 1) / page;
#if defined(__linux__)
    std::vector<unsigned char> vec(npages);
#else
    std::vector<char> vec(npages);
#endif
    if (::mincore(map_, mapLen_, vec.data()) != 0)
        return 0;
    size_t resident = 0;
    for (size_t i = 0; i < npages; ++i) {
        if ((vec[i] & 1) == 0)
            continue;
        size_t tail = mapLen_ - i * page;
        resident += tail < page ? tail : page;
    }
    return resident;
#else
    return size_;
#endif
}

std::string
ArtifactView::backendName() const
{
    return backend_ == Backend::Mmap ? "mmap" : "buffered";
}

} // namespace wetio
} // namespace wet
