#ifndef WET_WETIO_MANIFEST_H
#define WET_WETIO_MANIFEST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "core/compressed.h"
#include "ir/module.h"
#include "wetio/wetio.h"

namespace wet {
namespace wetio {

/**
 * Segmented artifacts (DESIGN.md §15): a segmented build publishes a
 * text *manifest* at the artifact path plus one version-4 WETX file
 * per time window as siblings. Every manifest line carries its own
 * FNV-1a checksum, segment entries are appended and fsynced as each
 * window commits, and the header and final rewrite go through the
 * same tmp+fsync+rename protocol as artifact files — so a crash at
 * any point leaves a loadable committed prefix and `run --resume`
 * can continue from it.
 *
 * Layout (one record per line, `<crc>` = FNV-1a 64 of the line up to
 * the space before it, lowercase hex):
 *
 *   WETM 4 <fingerprint-hex> <paramsig-hex> <crc>
 *   seg <idx> <basename> <bytes> <fileCrc> <tsBegin> <tsEnd> <stmts> <crc>
 *   ...
 *   end <count> <crc>
 */

/** FNV-1a 64-bit, used for manifest lines and whole segment files. */
uint64_t fnv1a64(const uint8_t* p, size_t n);

/** One committed segment: the window (tsBegin, tsEnd] stored in the
 *  sibling file @p file, checksummed over its exact bytes. */
struct SegmentMeta
{
    uint32_t index = 0;
    std::string file; ///< basename, resolved against the manifest dir
    uint64_t bytes = 0;
    uint64_t fileCrc = 0;
    uint64_t tsBegin = 0;
    uint64_t tsEnd = 0;
    uint64_t stmts = 0; ///< statement instances inside the window
};

struct Manifest
{
    uint64_t fingerprint = 0;
    uint64_t paramSig = 0;
    std::vector<SegmentMeta> segments;
    /** True when the `end` record was present and consistent; false
     *  for an interrupted build (the committed prefix still loads). */
    bool complete = false;
};

/** True when the file at @p path starts with the "WETM " text magic
 *  (false for binary WETX artifacts and unreadable paths). */
bool isManifest(const std::string& path);

/**
 * Parse a manifest, recovering the longest valid prefix: a torn or
 * corrupt non-header line ends parsing with an IO008 note and the
 * entries before it. A missing/corrupt header is an IO008 error and
 * returns false (nothing is loadable).
 */
bool parseManifest(const std::string& path,
                   analysis::DiagEngine& diag, Manifest& out);

/**
 * Append-only manifest writer. create() publishes the header via
 * tmp+fsync+rename; resume() atomically rewrites the file to a
 * previously parsed committed prefix (dropping any torn tail and a
 * stale `end` record) and reopens it for appending. Each append is
 * written and fsynced before it returns, so a committed segment
 * survives any later crash. Failpoints: wetio.manifest.open,
 * wetio.manifest.append.
 */
class ManifestWriter
{
  public:
    ~ManifestWriter();
    ManifestWriter(const ManifestWriter&) = delete;
    ManifestWriter& operator=(const ManifestWriter&) = delete;

    static std::unique_ptr<ManifestWriter>
    create(const std::string& path, uint64_t fingerprint,
           uint64_t paramSig);

    static std::unique_ptr<ManifestWriter>
    resume(const std::string& path, const Manifest& prefix);

    /** Commit one segment entry (write + fsync). */
    void append(const SegmentMeta& meta);

    /** Commit the `end` record and close the manifest. */
    void finish(uint64_t count);

  private:
    ManifestWriter() = default;
    void appendLine(const std::string& body);

    std::string path_;
    int fd_ = -1;
    bool finished_ = false;
};

/**
 * Build-side segment sink: feed it each finalized window (in time
 * order) and it compresses, serializes (version 4), checksums and
 * atomically publishes `<artifact>.seg<NNNNNN>` next to the
 * manifest, then commits the entry. Under resume, windows whose
 * index is already committed are verified against the manifest
 * (identical replay) and skipped without recompressing, so the final
 * artifact set is byte-identical to an uninterrupted build.
 */
class SegmentWriter
{
  public:
    SegmentWriter(std::string manifestPath, const ir::Module& mod,
                  const codec::SelectorOptions& sel, unsigned threads,
                  uint64_t paramSig, const Manifest* resumeFrom);

    /** Sink for WetBuilder's SegmentPolicy::onSegment. */
    void onSegment(core::WetGraph&& g);

    /** Commit the `end` record; no further windows may arrive. */
    void finish();

    const std::vector<SegmentMeta>& segments() const
    {
        return segments_;
    }

    /** Windows skipped because they were already committed. */
    uint64_t skipped() const { return skipped_; }

  private:
    std::string manifestPath_;
    const ir::Module& mod_;
    codec::SelectorOptions sel_;
    unsigned threads_;
    std::vector<SegmentMeta> committed_;
    std::vector<SegmentMeta> segments_;
    std::unique_ptr<ManifestWriter> writer_;
    uint64_t skipped_ = 0;
};

/**
 * One loaded (or quarantined) segment of an artifact. A quarantined
 * segment has null wet pointers and carries the reason; queries must
 * skip its time range and report it as degraded coverage.
 */
struct LoadedSegment
{
    SegmentMeta meta;
    LoadedWet wet;
    bool quarantined = false;
    std::string reason;
};

/**
 * An artifact opened through tryLoadArtifact(): either a legacy
 * single-file WETX (one implicit segment spanning the whole trace,
 * segmented=false) or a manifest plus its per-window segment files.
 */
struct SegmentedArtifact
{
    bool segmented = false;
    Manifest manifest;
    std::vector<LoadedSegment> segments;

    size_t
    healthy() const
    {
        size_t n = 0;
        for (const LoadedSegment& s : segments)
            if (!s.quarantined)
                ++n;
        return n;
    }
};

/**
 * Open @p path as either a legacy WETX artifact or a segment
 * manifest. Per-segment failures do not abort the load: a segment
 * whose file is missing, whose size or FNV-1a checksum disagrees
 * with the manifest (rule IO009), or that fails the structural WETX
 * load checks (rule ART006) is quarantined — one error diagnostic,
 * entry kept with null wet — and the remaining healthy segments are
 * still returned so queries can answer over the unaffected time
 * ranges. A corrupt manifest header (IO008) or a failed legacy load
 * yields no segments. Failpoint: wetio.seg.load (quarantines the
 * segment being opened).
 */
SegmentedArtifact
tryLoadArtifact(const std::string& path, const ir::Module& mod,
                analysis::DiagEngine& diag,
                ArtifactView::Backend backend =
                    ArtifactView::Backend::Mmap);

} // namespace wetio
} // namespace wet

#endif // WET_WETIO_MANIFEST_H
