#ifndef WET_WETIO_ARTIFACTVIEW_H
#define WET_WETIO_ARTIFACTVIEW_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "core/backing.h"

namespace wet {
namespace wetio {

/**
 * Read-only view of a WETX artifact file.
 *
 * The preferred backend memory-maps the file (PROT_READ/MAP_PRIVATE)
 * so that loading never copies stream payloads: the parser hands out
 * spans into the mapping and the kernel faults pages in lazily as
 * queries touch them. When mapping is unavailable (the Buffered
 * backend is requested, the platform call fails, or the file is
 * empty — mmap of zero bytes is invalid) the file is read into an
 * owned buffer instead.
 *
 * Both backends feed the identical (data, size) span to one parser,
 * so accept/reject behavior cannot diverge between them. The view
 * must outlive every stream borrowed from it; LoadedWet keeps a
 * shared_ptr for exactly that reason.
 */
class ArtifactView : public core::ArtifactBacking
{
  public:
    enum class Backend { Mmap, Buffered };

    /**
     * Open @p path with the preferred backend. Returns null after
     * reporting IO001 via @p diag when the file cannot be opened or
     * read.
     */
    static std::shared_ptr<ArtifactView>
    open(const std::string& path, analysis::DiagEngine& diag,
         Backend preferred = Backend::Mmap);

    ~ArtifactView() override;
    ArtifactView(const ArtifactView&) = delete;
    ArtifactView& operator=(const ArtifactView&) = delete;

    const uint8_t* data() const { return data_; }
    size_t size() const { return size_; }
    Backend backend() const { return backend_; }
    const std::string& path() const { return path_; }

    // core::ArtifactBacking
    size_t sizeBytes() const override { return size_; }
    size_t residentBytes() const override;
    std::string backendName() const override;

  private:
    ArtifactView() = default;

    const uint8_t* data_ = nullptr;
    size_t size_ = 0;
    Backend backend_ = Backend::Buffered;
    std::string path_;
    std::vector<uint8_t> owned_;  //!< Buffered backend storage
    void* map_ = nullptr;         //!< mmap base (munmap'd on destroy)
    size_t mapLen_ = 0;
};

} // namespace wetio
} // namespace wet

#endif // WET_WETIO_ARTIFACTVIEW_H
