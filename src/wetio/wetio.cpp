#include "wetio.h"

#include <cstdio>
#include <fstream>

#include "support/error.h"
#include "support/hash.h"
#include "support/varint.h"

namespace wet {
namespace wetio {

namespace {

constexpr uint32_t kMagic = 0x58544557; // "WETX"
constexpr uint32_t kVersion = 1;

/** Varint-based binary writer over a growable byte buffer. */
class Writer
{
  public:
    void u(uint64_t v) { buf_.pushUnsigned(v); }
    void s(int64_t v) { buf_.pushSigned(v); }

    template <typename T>
    void
    vecU(const std::vector<T>& v)
    {
        u(v.size());
        for (const T& x : v)
            u(static_cast<uint64_t>(x));
    }

    template <typename T>
    void
    vecS(const std::vector<T>& v)
    {
        u(v.size());
        for (const T& x : v)
            s(static_cast<int64_t>(x));
    }

    const std::vector<uint8_t>& bytes() const { return buf_.bytes(); }

  private:
    support::VarintBuffer buf_;
};

/** Matching reader. */
class Reader
{
  public:
    explicit Reader(std::vector<uint8_t> bytes)
        : buf_(support::VarintBuffer::fromBytes(std::move(bytes)))
    {
    }

    uint64_t
    u()
    {
        if (pos_ >= buf_.sizeBytes())
            WET_FATAL("truncated WETX file");
        return buf_.readUnsignedAt(pos_);
    }

    int64_t
    s()
    {
        if (pos_ >= buf_.sizeBytes())
            WET_FATAL("truncated WETX file");
        return buf_.readSignedAt(pos_);
    }

    template <typename T>
    std::vector<T>
    vecU()
    {
        uint64_t n = u();
        std::vector<T> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(static_cast<T>(u()));
        return v;
    }

    template <typename T>
    std::vector<T>
    vecS()
    {
        uint64_t n = u();
        std::vector<T> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(static_cast<T>(s()));
        return v;
    }

    bool atEnd() const { return pos_ == buf_.sizeBytes(); }

  private:
    support::VarintBuffer buf_;
    size_t pos_ = 0;
};

void
writeTableState(Writer& w, const codec::CompressedStream& s)
{
    // FCM/DFCM tables are mostly zero: store (index-delta, value)
    // pairs. Last-n deques and windows are dense but tiny.
    if (s.config.method == codec::Method::Fcm ||
        s.config.method == codec::Method::Dfcm)
    {
        uint64_t touched = 0;
        for (int64_t v : s.tableState0)
            if (v != 0)
                ++touched;
        w.u(s.tableState0.size());
        w.u(touched);
        uint64_t last = 0;
        for (uint64_t i = 0; i < s.tableState0.size(); ++i) {
            if (s.tableState0[i] == 0)
                continue;
            w.u(i - last);
            w.s(s.tableState0[i]);
            last = i;
        }
    } else {
        w.u(s.tableState0.size());
        w.u(s.tableState0.size()); // dense marker: touched == size
        for (int64_t v : s.tableState0)
            w.s(v);
    }
}

std::vector<int64_t>
readTableState(Reader& r, const codec::CompressedStream& s)
{
    uint64_t size = r.u();
    uint64_t touched = r.u();
    std::vector<int64_t> state(size, 0);
    if ((s.config.method == codec::Method::Fcm ||
         s.config.method == codec::Method::Dfcm)) {
        uint64_t idx = 0;
        for (uint64_t k = 0; k < touched; ++k) {
            idx += r.u();
            if (idx >= size)
                WET_FATAL("corrupt table state in WETX file");
            state[idx] = r.s();
        }
    } else {
        for (uint64_t i = 0; i < size; ++i)
            state[i] = r.s();
    }
    return state;
}

void
writeStream(Writer& w, const codec::CompressedStream& s)
{
    w.u(static_cast<uint64_t>(s.config.method));
    w.u(s.config.context);
    w.u(s.config.tableBits);
    w.u(s.length);
    w.u(s.windowSize);
    w.vecS(s.window0);
    w.u(s.flags.size());
    w.vecU(s.flags.words());
    w.u(s.misses.sizeBytes());
    for (uint8_t b : s.misses.bytes())
        w.u(b);
    writeTableState(w, s);
    w.u(s.storedState0Bytes);
    w.u(s.checkpoints.size());
    for (const auto& cp : s.checkpoints) {
        w.u(cp.machinePos);
        w.u(cp.flagPos);
        w.u(cp.missPos);
        w.vecS(cp.window);
        // Checkpoint states use the same sparse layout.
        codec::CompressedStream tmp;
        tmp.config = s.config;
        tmp.tableState0 = cp.tableState;
        writeTableState(w, tmp);
        w.u(cp.storedStateBytes);
    }
}

codec::CompressedStream
readStream(Reader& r)
{
    codec::CompressedStream s;
    s.config.method = static_cast<codec::Method>(r.u());
    s.config.context = static_cast<unsigned>(r.u());
    s.config.tableBits = static_cast<unsigned>(r.u());
    s.length = r.u();
    s.windowSize = static_cast<unsigned>(r.u());
    s.window0 = r.vecS<int64_t>();
    uint64_t nbits = r.u();
    s.flags = support::BitStack::fromWords(r.vecU<uint64_t>(),
                                           nbits);
    uint64_t nbytes = r.u();
    std::vector<uint8_t> missBytes;
    missBytes.reserve(nbytes);
    for (uint64_t i = 0; i < nbytes; ++i)
        missBytes.push_back(static_cast<uint8_t>(r.u()));
    s.misses = support::VarintBuffer::fromBytes(std::move(missBytes));
    s.tableState0 = readTableState(r, s);
    s.storedState0Bytes = r.u();
    uint64_t ncp = r.u();
    for (uint64_t i = 0; i < ncp; ++i) {
        codec::CompressedStream::Checkpoint cp;
        cp.machinePos = r.u();
        cp.flagPos = r.u();
        cp.missPos = r.u();
        cp.window = r.vecS<int64_t>();
        cp.tableState = readTableState(r, s);
        cp.storedStateBytes = r.u();
        s.checkpoints.push_back(std::move(cp));
    }
    return s;
}

} // namespace

uint64_t
moduleFingerprint(const ir::Module& mod)
{
    uint64_t h = 0x0e71'5e00'77e7'0001ull;
    h = support::hashCombine(h, mod.numStmts());
    for (ir::StmtId s = 0; s < mod.numStmts(); ++s) {
        const ir::Instr& in = mod.instr(s);
        h = support::hashCombine(
            h, static_cast<uint64_t>(in.op) |
                   (static_cast<uint64_t>(in.dest) << 8) |
                   (static_cast<uint64_t>(in.src0) << 24));
        h = support::hashCombine(h, static_cast<uint64_t>(in.imm));
    }
    return h;
}

void
save(const std::string& path, const ir::Module& mod,
     const core::WetGraph& graph,
     const core::WetCompressed& compressed)
{
    Writer w;
    w.u(kMagic);
    w.u(kVersion);
    w.u(moduleFingerprint(mod));

    // Graph structure (no tier-1 label vectors).
    w.u(graph.nodes.size());
    for (const auto& node : graph.nodes) {
        w.u(node.func);
        w.u(node.pathId);
        w.u(node.partial ? 1 : 0);
        w.u(node.numInstances);
        w.vecU(node.blocks);
        w.vecU(node.stmts);
        w.vecU(node.blockFirstStmt);
        w.vecU(node.stmtGroup);
        w.vecU(node.stmtMember);
        w.u(node.groups.size());
        for (const auto& g : node.groups) {
            w.vecU(g.members);
            w.vecU(g.inputs);
        }
        w.vecU(node.cfSucc);
        w.vecU(node.cfPred);
    }
    w.u(graph.edges.size());
    for (const auto& e : graph.edges) {
        w.u(e.defNode);
        w.u(e.useNode);
        w.u(e.defStmtPos);
        w.u(e.useStmtPos);
        w.u(e.slot);
        w.u(e.local ? 1 : 0);
        w.u(e.labelPool == core::kNoIndex
                ? 0
                : static_cast<uint64_t>(e.labelPool) + 1);
    }
    w.u(graph.labelPool.size());
    w.u(graph.lastTimestamp);
    w.u(graph.stmtInstancesTotal);
    w.u(graph.valueInstancesTotal);
    w.u(graph.depInstancesTotal);
    w.u(graph.cdInstancesTotal);
    w.u(graph.droppedDeps);

    // Compressed streams.
    for (core::NodeId n = 0; n < graph.nodes.size(); ++n) {
        const core::CompressedNode& cn = compressed.node(n);
        writeStream(w, cn.ts);
        for (const auto& p : cn.patterns)
            writeStream(w, p);
        for (const auto& gs : cn.uvals)
            for (const auto& uv : gs)
                writeStream(w, uv);
    }
    for (uint32_t i = 0; i < graph.labelPool.size(); ++i) {
        writeStream(w, compressed.pool(i).useInst);
        writeStream(w, compressed.pool(i).defInst);
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        WET_FATAL("cannot open '" << path << "' for writing");
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    if (!out)
        WET_FATAL("write to '" << path << "' failed");
}

LoadedWet
load(const std::string& path, const ir::Module& mod)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        WET_FATAL("cannot open '" << path << "'");
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    Reader r(std::move(bytes));

    if (r.u() != kMagic)
        WET_FATAL("'" << path << "' is not a WETX file");
    if (r.u() != kVersion)
        WET_FATAL("'" << path << "' has an unsupported version");
    if (r.u() != moduleFingerprint(mod))
        WET_FATAL("'" << path
                  << "' was built from a different program");

    LoadedWet out;
    out.graph = std::make_unique<core::WetGraph>();
    core::WetGraph& g = *out.graph;

    uint64_t numNodes = r.u();
    g.nodes.resize(numNodes);
    for (auto& node : g.nodes) {
        node.func = static_cast<ir::FuncId>(r.u());
        node.pathId = r.u();
        node.partial = r.u() != 0;
        node.numInstances = r.u();
        node.blocks = r.vecU<ir::BlockId>();
        node.stmts = r.vecU<ir::StmtId>();
        node.blockFirstStmt = r.vecU<uint32_t>();
        node.stmtGroup = r.vecU<uint32_t>();
        node.stmtMember = r.vecU<uint32_t>();
        uint64_t ngroups = r.u();
        node.groups.resize(ngroups);
        for (auto& grp : node.groups) {
            grp.members = r.vecU<uint32_t>();
            grp.inputs = r.vecU<uint32_t>();
            grp.uvals.resize(grp.members.size());
        }
        node.cfSucc = r.vecU<core::NodeId>();
        node.cfPred = r.vecU<core::NodeId>();
    }
    uint64_t numEdges = r.u();
    g.edges.resize(numEdges);
    for (auto& e : g.edges) {
        e.defNode = static_cast<core::NodeId>(r.u());
        e.useNode = static_cast<core::NodeId>(r.u());
        e.defStmtPos = static_cast<uint32_t>(r.u());
        e.useStmtPos = static_cast<uint32_t>(r.u());
        e.slot = static_cast<uint8_t>(r.u());
        e.local = r.u() != 0;
        uint64_t pool = r.u();
        e.labelPool = pool == 0
                          ? core::kNoIndex
                          : static_cast<uint32_t>(pool - 1);
    }
    uint64_t numPool = r.u();
    g.labelPool.resize(numPool); // empty sequences; tier-2 only
    g.lastTimestamp = r.u();
    g.stmtInstancesTotal = r.u();
    g.valueInstancesTotal = r.u();
    g.depInstancesTotal = r.u();
    g.cdInstancesTotal = r.u();
    g.droppedDeps = r.u();

    // Rebuild lookup indexes.
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const core::WetEdge& ed = g.edges[e];
        g.edgesByUse[core::WetGraph::useKey(
                         ed.useNode, ed.useStmtPos, ed.slot)]
            .push_back(e);
        g.edgesByDef[core::WetGraph::defKey(ed.defNode,
                                            ed.defStmtPos)]
            .push_back(e);
    }
    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        const core::WetNode& node = g.nodes[n];
        for (uint32_t i = 0; i < node.stmts.size(); ++i)
            g.stmtIndex[node.stmts[i]].emplace_back(n, i);
    }

    // Compressed streams.
    std::vector<core::CompressedNode> nodes(g.nodes.size());
    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        core::CompressedNode& cn = nodes[n];
        cn.ts = readStream(r);
        cn.patterns.reserve(g.nodes[n].groups.size());
        cn.uvals.resize(g.nodes[n].groups.size());
        for (size_t gi = 0; gi < g.nodes[n].groups.size(); ++gi)
            cn.patterns.push_back(readStream(r));
        for (size_t gi = 0; gi < g.nodes[n].groups.size(); ++gi) {
            size_t members = g.nodes[n].groups[gi].members.size();
            for (size_t mi = 0; mi < members; ++mi)
                cn.uvals[gi].push_back(readStream(r));
        }
    }
    std::vector<core::CompressedPoolEntry> pool(numPool);
    for (auto& pe : pool) {
        pe.useInst = readStream(r);
        pe.defInst = readStream(r);
    }
    if (!r.atEnd())
        WET_FATAL("'" << path << "' has trailing bytes");
    out.compressed = std::make_unique<core::WetCompressed>(
        g, std::move(nodes), std::move(pool));
    return out;
}

} // namespace wetio
} // namespace wet
