#include "wetio.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/artifactverifier.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/hash.h"
#include "support/varint.h"

#if defined(__unix__) || defined(__APPLE__)
#define WET_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define WET_HAVE_POSIX_IO 0
#include <cstdio>
#endif

namespace wet {
namespace wetio {

namespace {

constexpr uint32_t kMagic = 0x58544557; // "WETX"
// Version 2: stream payloads (flag words, miss bytes) are raw
// length-prefixed blobs instead of per-element varints, so loading
// can alias them in place from an mmap'd file.
// Version 3: adds the per-thread SYNC section (event counts after the
// graph scalars, four compressed streams per thread after the pool
// streams). Single-threaded artifacts carry an empty section.
// Version 4: a windowed segment of a segmented build (DESIGN.md §15).
// Identical layout except one extra varint — the window's tsBegin —
// directly after the module fingerprint. Whole-run artifacts keep
// writing version 3, byte-identical to earlier builds; the loader
// accepts both and marks version-4 graphs windowed.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kVersionSegment = 4;

/** Thrown by the reader after a diagnostic has been reported. */
struct LoadAbort
{
};

/** Varint binary writer over a growable byte buffer, with raw-blob
 *  appends for the zero-copy payload sections. */
class Writer
{
  public:
    void
    u(uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<uint8_t>(v));
    }

    void s(int64_t v) { u(support::VarintBuffer::zigzagEncode(v)); }

    void
    raw(const uint8_t* p, size_t n)
    {
        buf_.insert(buf_.end(), p, p + n);
    }

    template <typename T>
    void
    vecU(const std::vector<T>& v)
    {
        u(v.size());
        for (const T& x : v)
            u(static_cast<uint64_t>(x));
    }

    template <typename T>
    void
    vecS(const std::vector<T>& v)
    {
        u(v.size());
        for (const T& x : v)
            s(static_cast<int64_t>(x));
    }

    const std::vector<uint8_t>& bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Matching reader over a borrowed byte span (the artifact view's
 * memory — mmap'd or buffered, the parser cannot tell). Every read
 * is bounds-checked; on corruption it reports a diagnostic (IO004
 * truncation, IO005 malformed encoding, IO007 payload blob past the
 * end) and throws LoadAbort instead of invoking undefined behavior.
 */
class Reader
{
  public:
    Reader(const uint8_t* data, size_t size,
           analysis::DiagEngine& diag, const std::string& path)
        : data_(data), size_(size), diag_(&diag), path_(&path)
    {
    }

    uint64_t
    u()
    {
        uint64_t v = 0;
        int shift = 0;
        for (;;) {
            if (pos_ >= size_) {
                diag_->error("IO004", *path_,
                             "file ends inside a value at byte " +
                                 std::to_string(pos_));
                throw LoadAbort{};
            }
            uint8_t b = data_[pos_++];
            if (shift >= 64 || (shift == 63 && (b & 0x7e))) {
                diag_->error("IO005", *path_,
                             "overlong varint at byte " +
                                 std::to_string(pos_ - 1));
                throw LoadAbort{};
            }
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        return v;
    }

    int64_t s() { return support::VarintBuffer::zigzagDecode(u()); }

    /** Read a declared element count, rejecting counts that cannot
     *  fit in the remaining bytes (at least one byte per element). */
    uint64_t
    count(const char* what)
    {
        uint64_t n = u();
        if (n > remaining()) {
            std::ostringstream os;
            os << what << " count " << n << " exceeds the "
               << remaining() << " remaining bytes";
            diag_->error("IO005", *path_, os.str());
            throw LoadAbort{};
        }
        return n;
    }

    /**
     * Borrow @p n raw bytes in place. The span stays valid for the
     * artifact view's lifetime, so loaded streams alias it directly.
     * A blob reaching past the end of the file is rule IO007.
     */
    const uint8_t*
    blob(uint64_t n, const char* what)
    {
        if (n > remaining()) {
            std::ostringstream os;
            os << what << " blob of " << n
               << " bytes extends past the end of the file ("
               << remaining() << " bytes remain)";
            diag_->error("IO007", *path_, os.str());
            throw LoadAbort{};
        }
        const uint8_t* p = data_ + pos_;
        pos_ += n;
        return p;
    }

    template <typename T>
    std::vector<T>
    vecU(const char* what = "vector")
    {
        uint64_t n = count(what);
        std::vector<T> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(static_cast<T>(u()));
        return v;
    }

    template <typename T>
    std::vector<T>
    vecS(const char* what = "vector")
    {
        uint64_t n = count(what);
        std::vector<T> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(static_cast<T>(s()));
        return v;
    }

    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    analysis::DiagEngine* diag_;
    const std::string* path_;
};

void
writeTableState(Writer& w, const codec::CompressedStream& s)
{
    // FCM/DFCM tables are mostly zero: store (index-delta, value)
    // pairs. Last-n deques and windows are dense but tiny.
    if (s.config.method == codec::Method::Fcm ||
        s.config.method == codec::Method::Dfcm)
    {
        uint64_t touched = 0;
        for (int64_t v : s.tableState0)
            if (v != 0)
                ++touched;
        w.u(s.tableState0.size());
        w.u(touched);
        uint64_t last = 0;
        for (uint64_t i = 0; i < s.tableState0.size(); ++i) {
            if (s.tableState0[i] == 0)
                continue;
            w.u(i - last);
            w.s(s.tableState0[i]);
            last = i;
        }
    } else {
        w.u(s.tableState0.size());
        w.u(s.tableState0.size()); // dense marker: touched == size
        for (int64_t v : s.tableState0)
            w.s(v);
    }
}

std::vector<int64_t>
readTableState(Reader& r, const codec::CompressedStream& s,
               analysis::DiagEngine& diag, const std::string& loc)
{
    uint64_t size = r.u();
    uint64_t touched = r.u();
    // The largest legal state is an FCM table with 24 index bits.
    if (size > (uint64_t{1} << 24)) {
        diag.error("IO005", loc,
                   "table state size " + std::to_string(size) +
                       " exceeds the largest codec table");
        throw LoadAbort{};
    }
    std::vector<int64_t> state(size, 0);
    if ((s.config.method == codec::Method::Fcm ||
         s.config.method == codec::Method::Dfcm)) {
        uint64_t idx = 0;
        for (uint64_t k = 0; k < touched; ++k) {
            idx += r.u();
            if (idx >= size) {
                diag.error("IO005", loc,
                           "table state touches slot " +
                               std::to_string(idx) + " of " +
                               std::to_string(size));
                throw LoadAbort{};
            }
            state[idx] = r.s();
        }
    } else {
        for (uint64_t i = 0; i < size; ++i)
            state[i] = r.s();
    }
    return state;
}

void
writeStream(Writer& w, const codec::CompressedStream& s)
{
    w.u(static_cast<uint64_t>(s.config.method));
    w.u(s.config.context);
    w.u(s.config.tableBits);
    w.u(s.length);
    w.u(s.windowSize);
    w.vecS(s.window0);
    // v2 payload sections: raw blobs that loads alias in place.
    // Flag words go out little-endian byte by byte (via word(), so a
    // borrowed stream round-trips without materializing), miss bytes
    // verbatim.
    w.u(s.flags.size());
    w.u(s.flags.numWords());
    for (size_t i = 0; i < s.flags.numWords(); ++i) {
        uint64_t wd = s.flags.word(i);
        uint8_t le[8];
        for (unsigned b = 0; b < 8; ++b)
            le[b] = static_cast<uint8_t>(wd >> (8 * b));
        w.raw(le, sizeof le);
    }
    w.u(s.misses.sizeBytes());
    w.raw(s.misses.data(), s.misses.sizeBytes());
    writeTableState(w, s);
    w.u(s.storedState0Bytes);
    w.u(s.checkpoints.size());
    for (const auto& cp : s.checkpoints) {
        w.u(cp.machinePos);
        w.u(cp.flagPos);
        w.u(cp.missPos);
        w.vecS(cp.window);
        // Checkpoint states use the same sparse layout.
        codec::CompressedStream tmp;
        tmp.config = s.config;
        tmp.tableState0 = cp.tableState;
        writeTableState(w, tmp);
        w.u(cp.storedStateBytes);
    }
}

codec::CompressedStream
readStream(Reader& r, analysis::DiagEngine& diag,
           const std::string& loc)
{
    if (WET_FAILPOINT_HIT("wetio.load.stream")) {
        // Injected stream-decode failure: reported and aborted the
        // same way as a malformed stream, so the whole load fails
        // cleanly through tryLoad's LoadAbort path.
        diag.error("IO005", loc, "injected stream load fault");
        throw LoadAbort{};
    }
    codec::CompressedStream s;
    s.config.method = static_cast<codec::Method>(r.u());
    s.config.context = static_cast<unsigned>(r.u());
    s.config.tableBits = static_cast<unsigned>(r.u());
    s.length = r.u();
    s.windowSize = static_cast<unsigned>(r.u());
    s.window0 = r.vecS<int64_t>("stream window");
    uint64_t nbits = r.u();
    uint64_t nwords = r.u();
    // Pre-check the word count so nwords * 8 cannot overflow before
    // blob() runs its own bounds check.
    if (nwords > r.remaining() / 8) {
        diag.error("IO007", loc,
                   "flag word blob of " + std::to_string(nwords) +
                       " words extends past the end of the file");
        throw LoadAbort{};
    }
    const uint8_t* words = r.blob(nwords * 8, "flag words");
    if (nbits > nwords * 64) {
        diag.error("IO005", loc,
                   "flag bit count " + std::to_string(nbits) +
                       " exceeds its storage");
        throw LoadAbort{};
    }
    s.flags = support::BitStack::fromSpan(
        words, static_cast<size_t>(nwords),
        static_cast<size_t>(nbits));
    uint64_t nbytes = r.u();
    const uint8_t* miss = r.blob(nbytes, "miss bytes");
    s.misses = support::VarintBuffer::fromSpan(
        miss, static_cast<size_t>(nbytes));
    s.tableState0 = readTableState(r, s, diag, loc);
    s.storedState0Bytes = r.u();
    uint64_t ncp = r.count("checkpoint");
    for (uint64_t i = 0; i < ncp; ++i) {
        codec::CompressedStream::Checkpoint cp;
        cp.machinePos = r.u();
        cp.flagPos = r.u();
        cp.missPos = r.u();
        cp.window = r.vecS<int64_t>("checkpoint window");
        cp.tableState = readTableState(r, s, diag, loc);
        cp.storedStateBytes = r.u();
        s.checkpoints.push_back(std::move(cp));
    }
    // Reject streams whose entry accounting does not add up before
    // anything downstream tries to decode them.
    if (!analysis::verifyStreamStructure(s, loc, diag))
        throw LoadAbort{};
    return s;
}

} // namespace

uint64_t
moduleFingerprint(const ir::Module& mod)
{
    uint64_t h = 0x0e71'5e00'77e7'0001ull;
    h = support::hashCombine(h, mod.numStmts());
    for (ir::StmtId s = 0; s < mod.numStmts(); ++s) {
        const ir::Instr& in = mod.instr(s);
        h = support::hashCombine(
            h, static_cast<uint64_t>(in.op) |
                   (static_cast<uint64_t>(in.dest) << 8) |
                   (static_cast<uint64_t>(in.src0) << 24));
        h = support::hashCombine(h, static_cast<uint64_t>(in.imm));
    }
    return h;
}

std::vector<uint8_t>
serialize(const ir::Module& mod, const core::WetGraph& graph,
          const core::WetCompressed& compressed)
{
    Writer w;
    w.u(kMagic);
    w.u(graph.windowed ? kVersionSegment : kVersion);
    w.u(moduleFingerprint(mod));
    if (graph.windowed)
        w.u(graph.tsBegin);

    // Graph structure (no tier-1 label vectors).
    w.u(graph.nodes.size());
    for (const auto& node : graph.nodes) {
        w.u(node.func);
        w.u(node.pathId);
        w.u(node.partial ? 1 : 0);
        w.u(node.numInstances);
        w.vecU(node.blocks);
        w.vecU(node.stmts);
        w.vecU(node.blockFirstStmt);
        w.vecU(node.stmtGroup);
        w.vecU(node.stmtMember);
        w.u(node.groups.size());
        for (const auto& g : node.groups) {
            w.vecU(g.members);
            w.vecU(g.inputs);
        }
        w.vecU(node.cfSucc);
        w.vecU(node.cfPred);
    }
    w.u(graph.edges.size());
    for (const auto& e : graph.edges) {
        w.u(e.defNode);
        w.u(e.useNode);
        w.u(e.defStmtPos);
        w.u(e.useStmtPos);
        w.u(e.slot);
        w.u(e.local ? 1 : 0);
        w.u(e.labelPool == core::kNoIndex
                ? 0
                : static_cast<uint64_t>(e.labelPool) + 1);
    }
    w.u(graph.labelPool.size());
    w.u(graph.lastTimestamp);
    w.u(graph.stmtInstancesTotal);
    w.u(graph.valueInstancesTotal);
    w.u(graph.depInstancesTotal);
    w.u(graph.cdInstancesTotal);
    w.u(graph.droppedDeps);
    w.u(graph.syncThreads.size());
    for (const auto& st : graph.syncThreads)
        w.u(st.numEvents);

    // Compressed streams.
    for (core::NodeId n = 0; n < graph.nodes.size(); ++n) {
        const core::CompressedNode& cn = compressed.node(n);
        writeStream(w, cn.ts);
        for (const auto& p : cn.patterns)
            writeStream(w, p);
        for (const auto& gs : cn.uvals)
            for (const auto& uv : gs)
                writeStream(w, uv);
    }
    for (uint32_t i = 0; i < graph.labelPool.size(); ++i) {
        writeStream(w, compressed.pool(i).useInst);
        writeStream(w, compressed.pool(i).defInst);
    }
    for (uint32_t t = 0; t < compressed.numSyncThreads(); ++t) {
        const core::CompressedSyncThread& cs = compressed.sync(t);
        writeStream(w, cs.kind);
        writeStream(w, cs.obj);
        writeStream(w, cs.stmt);
        writeStream(w, cs.seq);
    }
    return w.bytes();
}

void
atomicWrite(const std::string& path, const uint8_t* data,
            size_t size)
{
    // Crash-consistent publish: the artifact is staged as a sibling
    // temp file, flushed to stable storage, and atomically renamed
    // over the target. A crash (or injected fault) at any point
    // leaves either the complete old file or the complete new file —
    // never a partial artifact.
    const std::string tmp = path + ".tmp";
    struct TmpGuard
    {
        const std::string* p;
        bool armed = true;
        ~TmpGuard()
        {
            if (armed)
                std::remove(p->c_str());
        }
    } guard{&tmp};

#if WET_HAVE_POSIX_IO
    WET_FAILPOINT("wetio.save.open");
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644); // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd < 0)
        WET_FATAL("cannot open '" << tmp << "' for writing");
    const uint8_t* p = data;
    size_t left = size;
    while (left > 0) {
        WET_FAILPOINT("wetio.save.write");
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            WET_FATAL("write to '" << tmp << "' failed");
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    WET_FAILPOINT("wetio.save.fsync");
    if (::fsync(fd) != 0) {
        ::close(fd);
        WET_FATAL("fsync of '" << tmp << "' failed");
    }
    if (::close(fd) != 0)
        WET_FATAL("close of '" << tmp << "' failed");
    WET_FAILPOINT("wetio.save.rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        WET_FATAL("rename of '" << tmp << "' over '" << path
                                << "' failed");
    guard.armed = false; // published; nothing left to clean up
    // Make the rename itself durable: without the directory fsync a
    // power loss can forget the new directory entry even though the
    // data blocks are safe.
    WET_FAILPOINT("wetio.save.dirsync");
    std::string dir = path;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".")
                                     : dir.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY); // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (dfd >= 0) {
        // Some filesystems refuse directory fsync; the rename is
        // still atomic, so a refusal is not an error.
        (void)::fsync(dfd);
        ::close(dfd);
    }
#else
    WET_FAILPOINT("wetio.save.open");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            WET_FATAL("cannot open '" << tmp << "' for writing");
        WET_FAILPOINT("wetio.save.write");
        out.write(reinterpret_cast<const char*>(data),
                  static_cast<std::streamsize>(size));
        WET_FAILPOINT("wetio.save.fsync");
        out.flush();
        if (!out)
            WET_FATAL("write to '" << tmp << "' failed");
    }
    WET_FAILPOINT("wetio.save.rename");
    std::remove(path.c_str()); // non-POSIX rename cannot replace
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        WET_FATAL("rename of '" << tmp << "' over '" << path
                                << "' failed");
    guard.armed = false;
    WET_FAILPOINT("wetio.save.dirsync");
#endif
}

void
save(const std::string& path, const ir::Module& mod,
     const core::WetGraph& graph,
     const core::WetCompressed& compressed)
{
    std::vector<uint8_t> bytes = serialize(mod, graph, compressed);
    atomicWrite(path, bytes.data(), bytes.size());
}

namespace {

/**
 * Index-range validation of a freshly parsed graph (rule IO005): the
 * verifiers and the tier-2 query classes index nodes, statement
 * positions, and the label pool without further checks, so nothing
 * out of range may survive loading.
 */
bool
validateGraphIndexes(const core::WetGraph& g,
                     analysis::DiagEngine& diag,
                     const std::string& path)
{
    uint64_t before = diag.errorCount();
    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        const core::WetNode& node = g.nodes[n];
        std::string loc =
            path + ": node " + std::to_string(n);
        if (node.blockFirstStmt.size() != node.blocks.size() ||
            node.stmtGroup.size() != node.stmts.size() ||
            node.stmtMember.size() != node.stmts.size())
        {
            diag.error("IO005", loc,
                       "node vector lengths inconsistent");
            continue;
        }
        for (uint32_t off : node.blockFirstStmt) {
            if (off > node.stmts.size()) {
                diag.error("IO005", loc,
                           "block start offset out of range");
                break;
            }
        }
        bool ok = true;
        for (const core::ValueGroup& grp : node.groups) {
            for (uint32_t m : grp.members)
                ok &= m < node.stmts.size();
        }
        for (uint32_t gi : node.stmtGroup)
            ok &= gi == core::kNoIndex || gi < node.groups.size();
        if (!ok)
            diag.error("IO005", loc,
                       "value group indexes out of range");
        for (core::NodeId s : node.cfSucc)
            ok &= s < g.nodes.size();
        for (core::NodeId p : node.cfPred)
            ok &= p < g.nodes.size();
        if (!ok)
            diag.error("IO005", loc, "node indexes out of range");
    }
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const core::WetEdge& ed = g.edges[e];
        bool ok = ed.defNode < g.nodes.size() &&
                  ed.useNode < g.nodes.size();
        if (ok)
            ok = ed.defStmtPos <
                     g.nodes[ed.defNode].stmts.size() &&
                 ed.useStmtPos < g.nodes[ed.useNode].stmts.size();
        ok &= ed.labelPool == core::kNoIndex ||
              ed.labelPool < g.labelPool.size();
        if (!ok)
            diag.error("IO005",
                       path + ": edge " + std::to_string(e),
                       "edge indexes out of range");
    }
    return diag.errorCount() == before;
}

} // namespace

LoadedWet
tryLoad(const std::string& path, const ir::Module& mod,
        analysis::DiagEngine& diag, ArtifactView::Backend backend)
{
    std::shared_ptr<ArtifactView> view =
        ArtifactView::open(path, diag, backend);
    if (!view)
        return {};
    return tryLoadView(std::move(view), path, mod, diag);
}

LoadedWet
tryLoadView(std::shared_ptr<ArtifactView> view,
            const std::string& path, const ir::Module& mod,
            analysis::DiagEngine& diag)
try {
    Reader r(view->data(), view->size(), diag, path);

    if (r.u() != kMagic) {
        diag.error("IO001", path, "bad magic number");
        return {};
    }
    uint64_t version = r.u();
    if (version != kVersion && version != kVersionSegment) {
        diag.error("IO002", path,
                   "file version " + std::to_string(version) +
                       ", this build reads versions " +
                       std::to_string(kVersion) + " and " +
                       std::to_string(kVersionSegment));
        return {};
    }
    if (r.u() != moduleFingerprint(mod)) {
        diag.error("IO003", path,
                   "module fingerprint mismatch; the file was "
                   "built from a different program");
        return {};
    }

    LoadedWet out;
    out.graph = std::make_unique<core::WetGraph>();
    core::WetGraph& g = *out.graph;
    if (version == kVersionSegment) {
        g.tsBegin = r.u();
        g.windowed = true;
    }

    uint64_t numNodes = r.count("node");
    g.nodes.reserve(numNodes);
    for (uint64_t i = 0; i < numNodes; ++i) {
        g.nodes.emplace_back();
        auto& node = g.nodes.back();
        node.func = static_cast<ir::FuncId>(r.u());
        node.pathId = r.u();
        node.partial = r.u() != 0;
        node.numInstances = r.u();
        node.blocks = r.vecU<ir::BlockId>();
        node.stmts = r.vecU<ir::StmtId>();
        node.blockFirstStmt = r.vecU<uint32_t>();
        node.stmtGroup = r.vecU<uint32_t>();
        node.stmtMember = r.vecU<uint32_t>();
        uint64_t ngroups = r.count("value group");
        node.groups.resize(ngroups);
        for (auto& grp : node.groups) {
            grp.members = r.vecU<uint32_t>("group members");
            grp.inputs = r.vecU<uint32_t>("group inputs");
            grp.uvals.resize(grp.members.size());
        }
        node.cfSucc = r.vecU<core::NodeId>();
        node.cfPred = r.vecU<core::NodeId>();
    }
    uint64_t numEdges = r.count("edge");
    g.edges.resize(numEdges);
    for (auto& e : g.edges) {
        e.defNode = static_cast<core::NodeId>(r.u());
        e.useNode = static_cast<core::NodeId>(r.u());
        e.defStmtPos = static_cast<uint32_t>(r.u());
        e.useStmtPos = static_cast<uint32_t>(r.u());
        e.slot = static_cast<uint8_t>(r.u());
        e.local = r.u() != 0;
        uint64_t pool = r.u();
        e.labelPool = pool == 0
                          ? core::kNoIndex
                          : static_cast<uint32_t>(pool - 1);
    }
    uint64_t numPool = r.count("label pool");
    g.labelPool.resize(numPool); // empty sequences; tier-2 only
    g.lastTimestamp = r.u();
    g.stmtInstancesTotal = r.u();
    g.valueInstancesTotal = r.u();
    g.depInstancesTotal = r.u();
    g.cdInstancesTotal = r.u();
    g.droppedDeps = r.u();
    if (g.lastTimestamp < g.tsBegin) {
        // Downstream code computes unsigned window spans.
        diag.error("IO005", path,
                   "window ends at timestamp " +
                       std::to_string(g.lastTimestamp) +
                       " before its tsBegin " +
                       std::to_string(g.tsBegin));
        return {};
    }
    uint64_t numSyncThreads = r.count("sync thread");
    g.syncThreads.resize(numSyncThreads); // tier-2 only: counts, no
                                          // label vectors
    for (auto& st : g.syncThreads) {
        st.numEvents = r.u();
        g.syncEventsTotal += st.numEvents;
    }

    if (!validateGraphIndexes(g, diag, path))
        return {};

    // Rebuild lookup indexes.
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const core::WetEdge& ed = g.edges[e];
        g.edgesByUse[core::WetGraph::useKey(
                         ed.useNode, ed.useStmtPos, ed.slot)]
            .push_back(e);
        g.edgesByDef[core::WetGraph::defKey(ed.defNode,
                                            ed.defStmtPos)]
            .push_back(e);
    }
    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        const core::WetNode& node = g.nodes[n];
        for (uint32_t i = 0; i < node.stmts.size(); ++i)
            g.stmtIndex[node.stmts[i]].emplace_back(n, i);
    }

    // Compressed streams (payloads borrow from the view).
    std::vector<core::CompressedNode> nodes(g.nodes.size());
    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        core::CompressedNode& cn = nodes[n];
        std::string base = path + ": node " + std::to_string(n);
        cn.ts = readStream(r, diag, base + " ts");
        cn.patterns.reserve(g.nodes[n].groups.size());
        cn.uvals.resize(g.nodes[n].groups.size());
        for (size_t gi = 0; gi < g.nodes[n].groups.size(); ++gi)
            cn.patterns.push_back(readStream(
                r, diag,
                base + " group " + std::to_string(gi) +
                    " pattern"));
        for (size_t gi = 0; gi < g.nodes[n].groups.size(); ++gi) {
            size_t members = g.nodes[n].groups[gi].members.size();
            for (size_t mi = 0; mi < members; ++mi)
                cn.uvals[gi].push_back(readStream(
                    r, diag,
                    base + " group " + std::to_string(gi) +
                        " member " + std::to_string(mi)));
        }
    }
    std::vector<core::CompressedPoolEntry> pool(numPool);
    for (uint64_t p = 0; p < numPool; ++p) {
        std::string base = path + ": pool " + std::to_string(p);
        pool[p].useInst = readStream(r, diag, base + " useInst");
        pool[p].defInst = readStream(r, diag, base + " defInst");
    }
    // The failpoint sits before the loop (not inside it) so fault
    // sweeps exercise the sync-section error path on every artifact,
    // including single-threaded ones whose section is empty.
    if (WET_FAILPOINT_HIT("wetio.load.sync")) {
        diag.error("IO005", path + ": sync section",
                   "injected sync stream load fault");
        return {};
    }
    std::vector<core::CompressedSyncThread> sync(numSyncThreads);
    for (uint64_t t = 0; t < numSyncThreads; ++t) {
        std::string base =
            path + ": sync thread " + std::to_string(t);
        sync[t].kind = readStream(r, diag, base + " kind");
        sync[t].obj = readStream(r, diag, base + " obj");
        sync[t].stmt = readStream(r, diag, base + " stmt");
        sync[t].seq = readStream(r, diag, base + " seq");
    }
    if (!r.atEnd()) {
        diag.error("IO006", path,
                   std::to_string(r.remaining()) +
                       " trailing bytes after the last stream");
        return {};
    }
    out.compressed = std::make_unique<core::WetCompressed>(
        g, std::move(nodes), std::move(pool), std::move(sync));
    out.backing = std::move(view);
    return out;
} catch (const LoadAbort&) {
    return {};
}

LoadedWet
load(const std::string& path, const ir::Module& mod)
{
    analysis::DiagEngine diag;
    LoadedWet out = tryLoad(path, mod, diag);
    if (!out.graph || !out.compressed) {
        std::string detail = "malformed WETX file";
        if (!diag.diagnostics().empty()) {
            const analysis::Diagnostic& d =
                diag.diagnostics().front();
            detail = d.rule + ": " + d.message;
        }
        WET_FATAL("cannot load '" << path << "': " << detail);
    }
    return out;
}

} // namespace wetio
} // namespace wet
