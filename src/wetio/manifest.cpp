#include "manifest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define WET_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define WET_HAVE_POSIX_IO 0
#endif

namespace wet {
namespace wetio {

namespace {

constexpr char kManifestMagic[] = "WETM ";
constexpr unsigned kManifestVersion = 4;

std::string
dirOf(const std::string& path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::string
baseOf(const std::string& path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Append the line's own checksum: "<body> <crc>\n". */
std::string
sealLine(const std::string& body)
{
    uint64_t crc = fnv1a64(
        reinterpret_cast<const uint8_t*>(body.data()), body.size());
    return body + " " + hex64(crc) + "\n";
}

/**
 * Split "<body> <crc>" and verify the checksum. Returns false for a
 * torn or corrupted line (no crc field, bad hex, mismatch).
 */
bool
unsealLine(const std::string& line, std::string& body)
{
    size_t sp = line.find_last_of(' ');
    if (sp == std::string::npos || sp + 1 >= line.size())
        return false;
    const std::string crcStr = line.substr(sp + 1);
    if (crcStr.size() != 16)
        return false;
    uint64_t crc = 0;
    for (char c : crcStr) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        crc = (crc << 4) | static_cast<uint64_t>(d);
    }
    body = line.substr(0, sp);
    return fnv1a64(reinterpret_cast<const uint8_t*>(body.data()),
                   body.size()) == crc;
}

std::string
headerLine(uint64_t fingerprint, uint64_t paramSig)
{
    std::ostringstream os;
    os << kManifestMagic << kManifestVersion << " "
       << hex64(fingerprint) << " " << hex64(paramSig);
    return sealLine(os.str());
}

std::string
segLine(const SegmentMeta& m)
{
    std::ostringstream os;
    os << "seg " << m.index << " " << m.file << " " << m.bytes << " "
       << hex64(m.fileCrc) << " " << m.tsBegin << " " << m.tsEnd
       << " " << m.stmts;
    return sealLine(os.str());
}

std::string
endLine(uint64_t count)
{
    std::ostringstream os;
    os << "end " << count;
    return sealLine(os.str());
}

/** Manifest image for a committed prefix (no end record). */
std::string
prefixImage(const Manifest& m)
{
    std::string out = headerLine(m.fingerprint, m.paramSig);
    for (const SegmentMeta& s : m.segments)
        out += segLine(s);
    return out;
}

} // namespace

uint64_t
fnv1a64(const uint8_t* p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
isManifest(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char head[5] = {};
    in.read(head, 5);
    return in.gcount() == 5 &&
           std::string(head, 5) == kManifestMagic;
}

bool
parseManifest(const std::string& path,
              analysis::DiagEngine& diag, Manifest& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        diag.error("IO008", path, "cannot open manifest");
        return false;
    }
    std::string line;
    if (!std::getline(in, line)) {
        diag.error("IO008", path, "empty manifest");
        return false;
    }
    std::string body;
    unsigned version = 0;
    char fp[17] = {};
    char ps[17] = {};
    if (!unsealLine(line, body) ||
        std::sscanf(body.c_str(), "WETM %u %16s %16s", &version, fp,
                    ps) != 3 ||
        version != kManifestVersion)
    {
        diag.error("IO008", path, "malformed manifest header");
        return false;
    }
    out.fingerprint = std::strtoull(fp, nullptr, 16);
    out.paramSig = std::strtoull(ps, nullptr, 16);

    bool sawEnd = false;
    uint64_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string where =
            path + ":" + std::to_string(lineNo);
        if (!unsealLine(line, body)) {
            // Torn tail (interrupted append): the entries before it
            // are still committed.
            diag.note("IO008", where,
                      "torn manifest line; loading the " +
                          std::to_string(out.segments.size()) +
                          " committed segments before it");
            break;
        }
        if (body.rfind("seg ", 0) == 0) {
            SegmentMeta m;
            char file[4096] = {};
            char crc[17] = {};
            unsigned long long idx = 0, bytes = 0, tsb = 0, tse = 0,
                               stmts = 0;
            if (std::sscanf(body.c_str(),
                            "seg %llu %4095s %llu %16s %llu %llu "
                            "%llu",
                            &idx, file, &bytes, crc, &tsb, &tse,
                            &stmts) != 7 ||
                idx != out.segments.size() || sawEnd)
            {
                diag.note("IO008", where,
                          "inconsistent segment record; loading "
                          "the " +
                              std::to_string(out.segments.size()) +
                              " committed segments before it");
                break;
            }
            m.index = static_cast<uint32_t>(idx);
            m.file = file;
            m.bytes = bytes;
            m.fileCrc = std::strtoull(crc, nullptr, 16);
            m.tsBegin = tsb;
            m.tsEnd = tse;
            m.stmts = stmts;
            out.segments.push_back(std::move(m));
        } else if (body.rfind("end ", 0) == 0) {
            unsigned long long count = 0;
            if (std::sscanf(body.c_str(), "end %llu", &count) != 1 ||
                count != out.segments.size() || sawEnd)
            {
                diag.note("IO008", where,
                          "inconsistent end record ignored");
                break;
            }
            sawEnd = true;
        } else {
            diag.note("IO008", where,
                      "unknown manifest record ignored");
            break;
        }
    }
    out.complete = sawEnd;
    return true;
}

ManifestWriter::~ManifestWriter()
{
#if WET_HAVE_POSIX_IO
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

std::unique_ptr<ManifestWriter>
ManifestWriter::create(const std::string& path, uint64_t fingerprint,
                       uint64_t paramSig)
{
    WET_FAILPOINT("wetio.manifest.open");
    const std::string image = headerLine(fingerprint, paramSig);
    atomicWrite(path,
                reinterpret_cast<const uint8_t*>(image.data()),
                image.size());
    std::unique_ptr<ManifestWriter> w(new ManifestWriter);
    w->path_ = path;
#if WET_HAVE_POSIX_IO
    w->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND); // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (w->fd_ < 0)
        WET_FATAL("cannot reopen manifest '" << path << "'");
#endif
    return w;
}

std::unique_ptr<ManifestWriter>
ManifestWriter::resume(const std::string& path,
                       const Manifest& prefix)
{
    WET_FAILPOINT("wetio.manifest.open");
    // Atomically drop any torn tail or stale end record so appends
    // continue from a clean committed prefix.
    const std::string image = prefixImage(prefix);
    atomicWrite(path,
                reinterpret_cast<const uint8_t*>(image.data()),
                image.size());
    std::unique_ptr<ManifestWriter> w(new ManifestWriter);
    w->path_ = path;
#if WET_HAVE_POSIX_IO
    w->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND); // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (w->fd_ < 0)
        WET_FATAL("cannot reopen manifest '" << path << "'");
#endif
    return w;
}

void
ManifestWriter::appendLine(const std::string& body)
{
#if WET_HAVE_POSIX_IO
    const char* p = body.data();
    size_t left = body.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            WET_FATAL("append to manifest '" << path_
                                             << "' failed");
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0)
        WET_FATAL("fsync of manifest '" << path_ << "' failed");
#else
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(body.data(),
              static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out)
        WET_FATAL("append to manifest '" << path_ << "' failed");
#endif
}

void
ManifestWriter::append(const SegmentMeta& meta)
{
    WET_ASSERT(!finished_, "append after finish"); // LINT: internal
    WET_FAILPOINT("wetio.manifest.append");
    appendLine(segLine(meta));
}

void
ManifestWriter::finish(uint64_t count)
{
    WET_ASSERT(!finished_, "finish called twice"); // LINT: internal
    finished_ = true;
    appendLine(endLine(count));
#if WET_HAVE_POSIX_IO
    ::close(fd_);
    fd_ = -1;
#endif
}

SegmentWriter::SegmentWriter(std::string manifestPath,
                             const ir::Module& mod,
                             const codec::SelectorOptions& sel,
                             unsigned threads, uint64_t paramSig,
                             const Manifest* resumeFrom)
    : manifestPath_(std::move(manifestPath)), mod_(mod), sel_(sel),
      threads_(threads)
{
    const uint64_t fp = moduleFingerprint(mod_);
    if (resumeFrom != nullptr) {
        WET_ASSERT(resumeFrom->fingerprint == fp, // LINT: internal
                   "resume fingerprint mismatch");
        committed_ = resumeFrom->segments;
        writer_ = ManifestWriter::resume(manifestPath_, *resumeFrom);
    } else {
        writer_ = ManifestWriter::create(manifestPath_, fp, paramSig);
    }
}

void
SegmentWriter::onSegment(core::WetGraph&& g)
{
    const uint32_t idx = static_cast<uint32_t>(segments_.size());
    if (idx < committed_.size()) {
        // Already committed by the interrupted build. Deterministic
        // replay must produce the identical window; verify the
        // boundary before skipping the compress+save work.
        const SegmentMeta& m = committed_[idx];
        if (m.tsBegin != g.tsBegin || m.tsEnd != g.lastTimestamp ||
            m.stmts != g.stmtInstancesTotal)
        {
            WET_FATAL("resume replay diverged at segment "
                      << idx << ": window (" << g.tsBegin << ", "
                      << g.lastTimestamp << "] does not match the "
                      << "committed (" << m.tsBegin << ", "
                      << m.tsEnd << "]");
        }
        segments_.push_back(m);
        ++skipped_;
        return;
    }

    core::WetCompressed compressed(g, sel_, threads_);
    std::vector<uint8_t> bytes = serialize(mod_, g, compressed);

    SegmentMeta m;
    m.index = idx;
    {
        char suffix[16];
        std::snprintf(suffix, sizeof suffix, ".seg%06u", idx);
        m.file = baseOf(manifestPath_) + suffix;
    }
    m.bytes = bytes.size();
    m.fileCrc = fnv1a64(bytes.data(), bytes.size());
    m.tsBegin = g.tsBegin;
    m.tsEnd = g.lastTimestamp;
    m.stmts = g.stmtInstancesTotal;

    WET_FAILPOINT("wetio.seg.save");
    atomicWrite(dirOf(manifestPath_) + "/" + m.file, bytes.data(),
                bytes.size());
    writer_->append(m);
    segments_.push_back(std::move(m));
}

void
SegmentWriter::finish()
{
    writer_->finish(segments_.size());
}

SegmentedArtifact
tryLoadArtifact(const std::string& path, const ir::Module& mod,
                analysis::DiagEngine& diag,
                ArtifactView::Backend backend)
{
    SegmentedArtifact art;
    if (!isManifest(path)) {
        // Legacy single-file artifact: one implicit segment covering
        // the whole trace. Load failures surface exactly as before.
        LoadedWet w = tryLoad(path, mod, diag, backend);
        if (w.graph) {
            LoadedSegment s;
            s.meta.index = 0;
            s.meta.file = baseOf(path);
            s.meta.tsBegin = w.graph->tsBegin;
            s.meta.tsEnd = w.graph->lastTimestamp;
            s.meta.stmts = w.graph->stmtInstancesTotal;
            s.wet = std::move(w);
            art.segments.push_back(std::move(s));
        }
        return art;
    }

    art.segmented = true;
    if (!parseManifest(path, diag, art.manifest))
        return art;
    if (art.manifest.fingerprint != moduleFingerprint(mod)) {
        diag.error("IO003", path,
                   "module fingerprint mismatch; the manifest was "
                   "built from a different program");
        return art;
    }
    if (!art.manifest.complete)
        diag.note("IO008", path,
                  "manifest has no end record (interrupted "
                  "build); loading the committed prefix");

    const std::string dir = dirOf(path);
    for (const SegmentMeta& meta : art.manifest.segments) {
        LoadedSegment s;
        s.meta = meta;
        const std::string file = dir + "/" + meta.file;
        // Per-segment load problems are collected privately and
        // surfaced as ONE quarantine diagnostic, so a single bad
        // segment cannot flood the caller's diagnostics while the
        // healthy segments load on.
        analysis::DiagEngine local;
        auto quarantine = [&](const char* rule,
                              const std::string& why) {
            s.quarantined = true;
            s.reason = why;
            s.wet = LoadedWet{};
            diag.error(rule, file,
                       "segment " + std::to_string(meta.index) +
                           " quarantined: " + why);
        };
        if (WET_FAILPOINT_HIT("wetio.seg.load")) {
            quarantine("ART006", "injected segment load fault");
            art.segments.push_back(std::move(s));
            continue;
        }
        std::shared_ptr<ArtifactView> view =
            ArtifactView::open(file, local, backend);
        if (!view) {
            quarantine("ART006", "cannot open segment file");
            art.segments.push_back(std::move(s));
            continue;
        }
        if (view->size() != meta.bytes) {
            quarantine("IO009",
                       "file is " + std::to_string(view->size()) +
                           " bytes, manifest committed " +
                           std::to_string(meta.bytes));
            art.segments.push_back(std::move(s));
            continue;
        }
        if (fnv1a64(view->data(), view->size()) != meta.fileCrc) {
            quarantine("IO009",
                       "file checksum does not match the manifest");
            art.segments.push_back(std::move(s));
            continue;
        }
        LoadedWet w = tryLoadView(std::move(view), file, mod, local);
        if (!w.graph || !w.compressed) {
            std::string why = "segment fails structural checks";
            if (!local.diagnostics().empty()) {
                const analysis::Diagnostic& d =
                    local.diagnostics().front();
                why += " (" + d.rule + ": " + d.message + ")";
            }
            quarantine("ART006", why);
            art.segments.push_back(std::move(s));
            continue;
        }
        if (w.graph->tsBegin != meta.tsBegin ||
            w.graph->lastTimestamp != meta.tsEnd)
        {
            quarantine("IO009",
                       "segment window (" +
                           std::to_string(w.graph->tsBegin) + ", " +
                           std::to_string(w.graph->lastTimestamp) +
                           "] does not match the manifest");
            art.segments.push_back(std::move(s));
            continue;
        }
        s.wet = std::move(w);
        art.segments.push_back(std::move(s));
    }
    return art;
}

} // namespace wetio
} // namespace wet
