#include "archprofile.h"

namespace wet {
namespace arch {

ArchProfileSink::ArchProfileSink(unsigned gshare_bits,
                                 const CacheConfig& cache_cfg)
    : predictor_(gshare_bits), cache_(cache_cfg)
{
}

void
ArchProfileSink::onStmt(const interp::StmtEvent& ev)
{
    if (ev.isBranch) {
        bool correct =
            predictor_.predictAndUpdate(ev.stmt, ev.branchTaken);
        branchBits_[ev.stmt].push(!correct);
    } else if (ev.isLoad) {
        bool hit = cache_.access(ev.addr);
        loadBits_[ev.stmt].push(!hit);
    } else if (ev.isStore) {
        bool hit = cache_.access(ev.addr);
        storeBits_[ev.stmt].push(!hit);
    }
}

uint64_t
ArchProfileSink::totalBytes(
    const std::unordered_map<ir::StmtId, support::BitStack>& m)
{
    uint64_t total = 0;
    for (const auto& [stmt, bits] : m) {
        (void)stmt;
        total += bits.sizeBytes();
    }
    return total;
}

uint64_t
ArchProfileSink::branchHistoryBytes() const
{
    return totalBytes(branchBits_);
}

uint64_t
ArchProfileSink::loadHistoryBytes() const
{
    return totalBytes(loadBits_);
}

uint64_t
ArchProfileSink::storeHistoryBytes() const
{
    return totalBytes(storeBits_);
}

} // namespace arch
} // namespace wet
