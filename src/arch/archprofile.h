#ifndef WET_ARCH_ARCHPROFILE_H
#define WET_ARCH_ARCHPROFILE_H

#include <cstdint>
#include <unordered_map>

#include "arch/branchpredictor.h"
#include "arch/cache.h"
#include "interp/tracesink.h"
#include "support/bitstack.h"

namespace wet {
namespace arch {

/**
 * Trace sink that simulates a gshare branch predictor and an L1 data
 * cache alongside the program run and records one history bit per
 * branch / load / store instance, exactly the architecture-specific
 * augmentation of WETs the paper evaluates in Table 4.
 *
 * Histories are kept per static instruction (a bit sequence per
 * branch/load/store statement), so they can be attached to WET nodes
 * as additional label streams.
 */
class ArchProfileSink : public interp::TraceSink
{
  public:
    ArchProfileSink(unsigned gshare_bits = 14,
                    const CacheConfig& cache_cfg = CacheConfig());

    void onStmt(const interp::StmtEvent& ev) override;

    /** Bytes of uncompressed branch misprediction history bits. */
    uint64_t branchHistoryBytes() const;
    /** Bytes of uncompressed load miss history bits. */
    uint64_t loadHistoryBytes() const;
    /** Bytes of uncompressed store miss history bits. */
    uint64_t storeHistoryBytes() const;

    uint64_t branches() const { return predictor_.lookups(); }
    uint64_t mispredicts() const { return predictor_.mispredicts(); }
    uint64_t cacheAccesses() const { return cache_.accesses(); }
    uint64_t cacheMisses() const { return cache_.misses(); }

    /** Per-statement history bits (1 = mispredict / miss). */
    const std::unordered_map<ir::StmtId, support::BitStack>&
    branchHistory() const
    {
        return branchBits_;
    }

    const std::unordered_map<ir::StmtId, support::BitStack>&
    loadHistory() const
    {
        return loadBits_;
    }

    const std::unordered_map<ir::StmtId, support::BitStack>&
    storeHistory() const
    {
        return storeBits_;
    }

  private:
    static uint64_t
    totalBytes(const std::unordered_map<ir::StmtId,
                                        support::BitStack>& m);

    GsharePredictor predictor_;
    Cache cache_;
    std::unordered_map<ir::StmtId, support::BitStack> branchBits_;
    std::unordered_map<ir::StmtId, support::BitStack> loadBits_;
    std::unordered_map<ir::StmtId, support::BitStack> storeBits_;
};

} // namespace arch
} // namespace wet

#endif // WET_ARCH_ARCHPROFILE_H
