#include "branchpredictor.h"

#include "support/error.h"
#include "support/hash.h"

namespace wet {
namespace arch {

GsharePredictor::GsharePredictor(unsigned index_bits)
    : bits_(index_bits)
{
    WET_ASSERT(index_bits >= 4 && index_bits <= 24,
               "gshare index bits out of range");
    counters_.assign(size_t{1} << index_bits, 1); // weakly not-taken
    mask_ = (uint64_t{1} << index_bits) - 1;
}

bool
GsharePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    uint64_t idx = (support::mix64(pc) ^ history_) & mask_;
    uint8_t& ctr = counters_[idx];
    bool predictTaken = ctr >= 2;
    bool correct = (predictTaken == taken);
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
    ++lookups_;
    if (!correct)
        ++mispredicts_;
    return correct;
}

} // namespace arch
} // namespace wet
