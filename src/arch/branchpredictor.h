#ifndef WET_ARCH_BRANCHPREDICTOR_H
#define WET_ARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace wet {
namespace arch {

/**
 * Gshare branch direction predictor: a table of 2-bit saturating
 * counters indexed by (pc XOR global-history). Used to generate the
 * per-branch misprediction bit histories with which the paper augments
 * the WET (Table 4).
 */
class GsharePredictor
{
  public:
    /** @param index_bits log2 of the counter-table size. */
    explicit GsharePredictor(unsigned index_bits = 14);

    /**
     * Predict the branch at @p pc, then update with the real
     * @p taken outcome.
     * @return true if the prediction was correct.
     */
    bool predictAndUpdate(uint64_t pc, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::vector<uint8_t> counters_;
    uint64_t history_ = 0;
    uint64_t mask_;
    unsigned bits_;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace arch
} // namespace wet

#endif // WET_ARCH_BRANCHPREDICTOR_H
