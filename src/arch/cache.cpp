#include "cache.h"

#include "support/error.h"

namespace wet {
namespace arch {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg)
{
    WET_ASSERT(cfg.lineWords > 0 && cfg.numSets > 0 &&
               cfg.associativity > 0, "bad cache geometry");
    WET_ASSERT((cfg.lineWords & (cfg.lineWords - 1)) == 0 &&
               (cfg.numSets & (cfg.numSets - 1)) == 0,
               "cache geometry must be a power of two");
    ways_.assign(size_t{cfg.numSets} * cfg.associativity, Way{});
}

bool
Cache::access(uint64_t addr)
{
    ++accesses_;
    ++clock_;
    uint64_t line = addr / cfg_.lineWords;
    uint64_t set = line & (cfg_.numSets - 1);
    uint64_t tag = line / cfg_.numSets;
    Way* base = &ways_[set * cfg_.associativity];
    Way* victim = base;
    for (uint32_t w = 0; w < cfg_.associativity; ++w) {
        if (base[w].tag == tag) {
            base[w].lastUse = clock_;
            return true;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    ++misses_;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

} // namespace arch
} // namespace wet
