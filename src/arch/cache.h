#ifndef WET_ARCH_CACHE_H
#define WET_ARCH_CACHE_H

#include <cstdint>
#include <vector>

namespace wet {
namespace arch {

/** Configuration of a set-associative cache. */
struct CacheConfig
{
    /** Line size in 64-bit words (addresses are word addresses). */
    uint32_t lineWords = 4;
    uint32_t numSets = 512;
    uint32_t associativity = 8;
};

/**
 * Set-associative LRU cache model over word addresses. Used to
 * generate the per-load/per-store miss bit histories with which the
 * paper augments the WET (Table 4). Default geometry is a 128 KB
 * data cache (512 sets x 8 ways x 32-byte lines).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig& cfg = CacheConfig());

    /**
     * Access the word at @p addr, allocating on miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        uint64_t tag = UINT64_MAX;
        uint64_t lastUse = 0;
    };

    CacheConfig cfg_;
    std::vector<Way> ways_; //!< numSets x associativity, row major
    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace arch
} // namespace wet

#endif // WET_ARCH_CACHE_H
