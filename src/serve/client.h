#ifndef WET_SERVE_CLIENT_H
#define WET_SERVE_CLIENT_H

#include <cstdint>
#include <string>

namespace wet {
namespace serve {

/**
 * Blocking client for the `wet_cli serve` wire protocol (framing
 * documented on serve::Server). Used by the CLI `client` subcommand,
 * the differential stress tests, and bench/table_serve.
 *
 * Not thread-safe: one Client per connection per thread.
 */
class Client
{
  public:
    /** One answered query line, decoded from its response frame. */
    struct Response
    {
        int code = 0;    //!< exit category of the line
        std::string out; //!< stdout payload (byte-exact CLI stdout)
        std::string err; //!< stderr payload (I/O stats, error record)
    };

    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /**
     * Connect to a unix-domain socket at @p path. Retries for up to
     * @p timeoutMs (10ms steps) while the socket file is missing or
     * refusing — covers the window where a freshly spawned server has
     * not bound yet. Throws WetError on timeout.
     */
    void connectUnix(const std::string& path,
                     unsigned timeoutMs = 5000);

    /** Connect to 127.0.0.1:@p port, with the same retry window. */
    void connectTcp(uint16_t port, unsigned timeoutMs = 5000);

    bool connected() const { return fd_ >= 0; }

    /**
     * Send one query line (a '\n' is appended if missing) and block
     * for its response frame. Blank and '#' lines are a protocol
     * error here — the server sends no frame for them; use sendRaw()
     * to exercise that path. Throws WetError on a torn connection or
     * a malformed frame.
     */
    Response query(const std::string& line);

    /** Send raw bytes with no framing expectations (fuzzing, batch
     *  pipelining, deliberately broken input). Throws on a torn
     *  connection. */
    void sendRaw(const std::string& bytes);

    /**
     * Block for the next response frame (pairs with sendRaw of one or
     * more query lines). Returns false on clean EOF before a frame
     * starts; throws WetError on a torn/malformed frame.
     */
    bool readResponse(Response& res);

    /** Half-close the write side: the server sees EOF after the
     *  in-flight lines and winds the connection down. */
    void shutdownWrite();

    /** Hard-close the socket mid-conversation (the torn-connection
     *  case the server must absorb without poisoning its peers). */
    void close();

  private:
    void connectRetry(int family, const void* addr, size_t addrLen,
                      const std::string& what, unsigned timeoutMs);
    /** Refill buf_ from the socket; false on EOF. */
    bool fill();

    int fd_ = -1;
    std::string buf_; //!< unconsumed response bytes
};

} // namespace serve
} // namespace wet

#endif // WET_SERVE_CLIENT_H
