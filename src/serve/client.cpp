#include "client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <thread>

#include "support/error.h"

namespace wet {
namespace serve {

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

void
Client::connectRetry(int family, const void* addr, size_t addrLen,
                     const std::string& what, unsigned timeoutMs)
{
    close();
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    int lastErr = 0;
    do {
        int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            WET_FATAL("socket: " << std::strerror(errno));
        if (::connect(fd, static_cast<const sockaddr*>(addr),
                      static_cast<socklen_t>(addrLen)) == 0) {
            fd_ = fd;
            buf_.clear();
            return;
        }
        lastErr = errno;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } while (std::chrono::steady_clock::now() < deadline);
    WET_FATAL("connect(" << what
                         << "): " << std::strerror(lastErr));
}

void
Client::connectUnix(const std::string& path, unsigned timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        WET_FATAL("unix socket path too long: '" << path << "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    connectRetry(AF_UNIX, &addr, sizeof(addr), path, timeoutMs);
}

void
Client::connectTcp(uint16_t port, unsigned timeoutMs)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connectRetry(AF_INET, &addr, sizeof(addr),
                 "127.0.0.1:" + std::to_string(port), timeoutMs);
}

void
Client::sendRaw(const std::string& bytes)
{
    if (fd_ < 0)
        WET_FATAL("client not connected");
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            WET_FATAL("send: " << std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
}

bool
Client::fill()
{
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            WET_FATAL("recv: " << std::strerror(errno));
        }
        if (n == 0)
            return false;
        buf_.append(chunk, static_cast<size_t>(n));
        return true;
    }
}

bool
Client::readResponse(Response& res)
{
    if (fd_ < 0)
        WET_FATAL("client not connected");
    // Frame header: "wet <code> <outBytes> <errBytes>\n".
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
        if (!fill()) {
            if (buf_.empty())
                return false; // clean EOF between frames
            WET_FATAL("truncated response header");
        }
    }
    std::string header = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    int code = 0;
    uint64_t outBytes = 0;
    uint64_t errBytes = 0;
    if (std::sscanf(header.c_str(), "wet %d %" SCNu64 " %" SCNu64,
                    &code, &outBytes, &errBytes) != 3)
        WET_FATAL("malformed response header: '" << header << "'");
    while (buf_.size() < outBytes + errBytes) {
        if (!fill())
            WET_FATAL("truncated response payload (want "
                      << (outBytes + errBytes) << " bytes, have "
                      << buf_.size() << ")");
    }
    res.code = code;
    res.out = buf_.substr(0, outBytes);
    res.err = buf_.substr(outBytes, errBytes);
    buf_.erase(0, outBytes + errBytes);
    return true;
}

Client::Response
Client::query(const std::string& line)
{
    std::string wire = line;
    if (wire.empty() || wire.back() != '\n')
        wire += '\n';
    sendRaw(wire);
    Response res;
    if (!readResponse(res))
        WET_FATAL("server closed before answering: '" << line
                                                      << "'");
    return res;
}

void
Client::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

} // namespace serve
} // namespace wet
