#ifndef WET_SERVE_QUERYRUNNER_H
#define WET_SERVE_QUERYRUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/depcheck.h"
#include "analysis/diag.h"
#include "core/session.h"
#include "ir/module.h"

namespace wet {
namespace serve {

/**
 * Process exit-code categories of the CLI contract (see
 * tools/wet_cli.cpp and tools/exit_codes.cmake). The serve layer
 * reuses them per query line: each response carries the category its
 * standalone command would have exited with, and a batch's process
 * exit is the worst per-line category.
 */
enum ExitCode : int
{
    kExitOk = 0,
    kExitInternal = 1,
    kExitUsage = 2,
    kExitParse = 3,
    kExitVerify = 4,
    kExitIo = 5,
    kExitRaces = 6,
};

/** Recoverable per-query failure carrying its exit category. */
struct QueryError
{
    int code;
    std::string message;
};

/**
 * One parsed query in the batch grammar — the line language shared
 * verbatim by `wet_cli query --input`, the standalone commands, and
 * the `wet_cli serve` wire protocol:
 *
 *   cf [--from T] [--count N]
 *   values --stmt S [--limit N]
 *   addr --stmt S [--limit N]
 *   slice fn:stmt[:instance] | --stmt S [--k K]  [--engine E] [--max N]
 *   races [--engine cursor|decode]
 *   depcheck
 */
struct QuerySpec
{
    std::string verb;
    std::string sliceQuery; //!< "fn:stmt[:instance]" seed
    std::string engine = "cursor";
    uint64_t stmt = UINT64_MAX;
    uint64_t from = 1;
    uint64_t count = 20;
    uint64_t k = 0;
    uint64_t limit = 20;
    uint64_t maxItems = 100000;
    bool json = false; //!< depcheck only; always false in batch
};

/** printf-append into a string (exact stdio formatting, so serving
 *  layers stay byte-identical to the historical printf output). */
void appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/** Whitespace-split @p line. */
std::vector<std::string> tokenize(const std::string& line);

/**
 * Parse one tokenized batch line. Throws QueryError(kExitUsage) on an
 * unknown verb, a malformed option, or a bad engine — the semantics
 * `query --input` has always had for poisoned lines.
 */
QuerySpec parseQueryLine(const std::vector<std::string>& toks);

/**
 * Resolve a "fn:stmt[:instance]" slice query: fn is a function name
 * or id, stmt a function-local statement index, instance the k-th
 * (timestamp-ordered) execution. Throws QueryError(kExitUsage).
 */
void parseSliceQuery(const std::string& query, const ir::Module& mod,
                     ir::StmtId& stmt, uint64_t& k);

/**
 * Captured output of one query: the bytes the standalone command
 * would have written to stdout and stderr. Run functions append as
 * they go, so when a query unwinds (governor trip, injected fault,
 * decode failure) the partial output is preserved — exactly what the
 * streaming printf implementation used to leave behind.
 */
struct QueryOutput
{
    std::string out;
    std::string err;
};

/**
 * Run one parsed query on @p s, appending into @p res. Returns the
 * exit category (kExitOk, or kExitVerify/kExitRaces for the verbs
 * that report through their exit code). Throws QueryError for usage
 * errors, GovernorLimit on a tripped budget, and WetError for decode
 * faults — callers translate those per the batch contract.
 * @p artifactName is the display name depcheck prints (the WETX
 * path in the CLI).
 */
int runQuery(core::QuerySession& s, const QuerySpec& q,
             const std::string& artifactName, QueryOutput& res);

/**
 * Append a depcheck/verify-style diagnostic report. Shared by the
 * session-backed depcheck verb and the standalone `wet_cli depcheck`
 * command. Returns kExitVerify when @p diag holds errors.
 */
int appendDepcheckResult(std::string& out, bool json,
                         const std::string& artifactName,
                         const analysis::DiagEngine& diag,
                         const analysis::DepCheckStats& stats);

/**
 * One served line of the batch protocol.
 *
 * `isQuery` is false for blank and '#'-comment lines: they consume a
 * line number but produce no output and no response frame. For query
 * lines, `out`/`err` hold the stdout/stderr bytes and `code` the exit
 * category; a failed line keeps its partial `out` and carries the
 * structured record `error: line:<n>: <message>` in `err`, a
 * governor-truncated line keeps its partial `out` plus the truncation
 * marker and stays code 0.
 */
struct LineResult
{
    bool isQuery = false;
    int code = kExitOk;
    std::string out;
    std::string err;
};

/**
 * Serve one line of the batch protocol against @p s with the exact
 * error semantics of `wet_cli query --input`: never throws, never
 * poisons the session (failed queries quarantine the cache readers
 * they touched via the session scope), and reports failures as
 * structured per-line records. @p lineNo is the 1-based input line
 * number (blanks and comments count).
 */
LineResult serveLine(core::QuerySession& s,
                     const std::string& artifactName,
                     const std::string& line, uint64_t lineNo);

} // namespace serve
} // namespace wet

#endif // WET_SERVE_QUERYRUNNER_H
