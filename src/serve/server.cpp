#include "server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/queryrunner.h"
#include "support/error.h"

namespace wet {
namespace serve {

namespace {

/** Write all of @p data; returns false on a torn connection. Uses
 *  MSG_NOSIGNAL so a client that vanished mid-response surfaces as
 *  an error return, not a fatal SIGPIPE. */
bool
writeAll(int fd, const char* data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

Server::Server(std::shared_ptr<core::SharedArtifact> artifact,
               ServerOptions opt)
    : artifact_(std::move(artifact)), opt_(std::move(opt))
{
}

Server::~Server()
{
    try {
        stop();
    } catch (...) {
        // A join or pool-drain failure here would otherwise escape a
        // destructor and terminate; losing the shutdown error beats
        // that, and start()/stop() callers still see it directly.
    }
    if (!opt_.unixPath.empty())
        ::unlink(opt_.unixPath.c_str());
}

void
Server::start()
{
    if (started_.exchange(true))
        WET_FATAL("server already started");

    if (!opt_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt_.unixPath.size() >= sizeof(addr.sun_path))
            WET_FATAL("unix socket path too long: '"
                      << opt_.unixPath << "'");
        std::memcpy(addr.sun_path, opt_.unixPath.c_str(),
                    opt_.unixPath.size() + 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            WET_FATAL("socket(AF_UNIX): " << std::strerror(errno));
        // A stale socket file from a crashed predecessor blocks
        // bind(2); remove it (connect() to a live server would still
        // have succeeded, so only dead files are ever reaped here).
        ::unlink(opt_.unixPath.c_str());
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            int err = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            WET_FATAL("bind('" << opt_.unixPath
                               << "'): " << std::strerror(err));
        }
        address_ = "unix:" + opt_.unixPath;
    } else {
        listenFd_ =
            ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            WET_FATAL("socket(AF_INET): " << std::strerror(errno));
        int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opt_.port);
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            int err = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            WET_FATAL("bind(127.0.0.1:"
                      << opt_.port << "): " << std::strerror(err));
        }
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd_,
                      reinterpret_cast<sockaddr*>(&addr), &len);
        port_ = ntohs(addr.sin_port);
        address_ = "tcp:127.0.0.1:" + std::to_string(port_);
    }

    if (::listen(listenFd_, 64) != 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        WET_FATAL("listen: " << std::strerror(err));
    }

    pool_ = std::make_unique<support::ThreadPool>(opt_.workers);
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        if (opt_.maxConns != 0 &&
            accepted_.load(std::memory_order_relaxed) >=
                opt_.maxConns)
            break;
        pollfd pfd{listenFd_, POLLIN, 0};
        int pr = ::poll(&pfd, 1, 200);
        if (pr < 0 && errno != EINTR)
            break;
        if (pr <= 0 || (pfd.revents & POLLIN) == 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        metrics_.add("server.connections", 1);
        {
            std::lock_guard<std::mutex> lock(connMu_);
            openConns_.push_back(fd);
        }
        // The pool's bounded queue is the connection backlog: when
        // every worker is busy and the queue is full, submit()
        // blocks the accept loop — backpressure, not unbounded fd
        // accumulation.
        pool_->submit([this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    try {
        serveConnection(fd);
    } catch (...) {
        // A connection handler must never leak an exception into the
        // pool: anything unexpected just drops this one connection.
        metrics_.add("server.connection_errors", 1);
    }
    {
        std::lock_guard<std::mutex> lock(connMu_);
        openConns_.erase(std::remove(openConns_.begin(),
                                     openConns_.end(), fd),
                         openConns_.end());
    }
    ::close(fd);
    metrics_.add("server.connections_closed", 1);
}

void
Server::serveConnection(int fd)
{
    core::QuerySession session(artifact_, opt_.session);

    std::string buf;
    char chunk[4096];
    uint64_t lineNo = 0;
    bool discarding = false; //!< inside an oversized line
    bool open = true;

    auto answer = [&](const LineResult& r) -> bool {
        if (!r.isQuery)
            return true;
        std::string frame;
        appendf(frame, "wet %d %zu %zu\n", r.code, r.out.size(),
                r.err.size());
        frame += r.out;
        frame += r.err;
        metrics_.add("server.bytes_out", frame.size());
        metrics_.add("server.lines", 1);
        if (r.code != kExitOk)
            metrics_.add("server.lines_failed", 1);
        return writeAll(fd, frame.data(), frame.size());
    };

    auto serveOne = [&](const std::string& line) -> bool {
        ++lineNo;
        if (discarding) {
            // The tail of a line that blew the length bound: it was
            // already answered with an error frame when the bound
            // tripped; drop the remainder silently.
            discarding = false;
            --lineNo; // the oversized line counted once, at trip time
            return true;
        }
        return answer(
            serveLine(session, artifact_->name(), line, lineNo));
    };

    while (open) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // torn connection
        }
        if (n == 0) {
            // EOF: a final unterminated line is still a line, the
            // same way std::getline serves the last line of a batch
            // file with no trailing newline.
            if (!buf.empty() && !discarding)
                serveOne(buf);
            break;
        }
        metrics_.add("server.bytes_in", static_cast<uint64_t>(n));
        buf.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (size_t nl = buf.find('\n', start);
             nl != std::string::npos;
             nl = buf.find('\n', start)) {
            std::string line = buf.substr(start, nl - start);
            start = nl + 1;
            if (!serveOne(line)) {
                open = false;
                break;
            }
        }
        buf.erase(0, start);
        if (open && !discarding && buf.size() > opt_.maxLineBytes) {
            // Oversized request line: answer one error frame now,
            // then discard bytes until the next newline. The
            // connection — and its session — keep serving.
            ++lineNo;
            LineResult r;
            r.isQuery = true;
            r.code = kExitUsage;
            appendf(r.err,
                    "error: line:%llu: request line exceeds %zu "
                    "bytes\n",
                    static_cast<unsigned long long>(lineNo),
                    opt_.maxLineBytes);
            if (!answer(r))
                break;
            buf.clear();
            discarding = true;
        } else if (discarding) {
            buf.clear();
        }
    }

    // Fold this connection's session activity into the server-wide
    // registry (thread-safe merge; the session itself is quiescent —
    // this thread was its only driver).
    metrics_.merge(session.metrics());
}

void
Server::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    stopping_.store(true, std::memory_order_release);
    // Join the accept loop first so no new connection can slip in
    // behind the shutdown sweep below.
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        // Nudge open connections: they finish the line in flight,
        // then read EOF and wind down normally.
        std::lock_guard<std::mutex> lock(connMu_);
        for (int fd : openConns_)
            ::shutdown(fd, SHUT_RD);
    }
    if (pool_) {
        pool_->wait();
        pool_->shutdown();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Server::waitDone()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (pool_)
        pool_->wait();
}

} // namespace serve
} // namespace wet
