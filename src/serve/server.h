#ifndef WET_SERVE_SERVER_H
#define WET_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "core/sharedartifact.h"
#include "support/metrics.h"
#include "support/threadpool.h"

namespace wet {
namespace serve {

struct ServerOptions
{
    /** Non-empty: listen on this unix-domain socket path. */
    std::string unixPath;
    /** Otherwise: listen on 127.0.0.1:@p port (0 = ephemeral; read
     *  the bound port back with Server::port()). */
    uint16_t port = 0;
    /** Connection-handler worker threads (the support::ThreadPool
     *  contract: <=1 degrades to inline serial handling). */
    unsigned workers = 4;
    /** Per-connection session knobs: cache bound, analysis threads,
     *  resource-governor limits. */
    core::SessionOptions session;
    /** Stop accepting after this many connections (0 = unlimited);
     *  in-flight connections drain before waitDone() returns. */
    uint64_t maxConns = 0;
    /** Protocol bound on one request line; longer lines answer an
     *  error frame and are discarded up to the next newline. */
    size_t maxLineBytes = size_t{1} << 16;
};

/**
 * Concurrent multi-session query server over one SharedArtifact.
 *
 * One accept loop + a worker pool; every accepted connection gets its
 * own QuerySession (own bounded stream-reader cache, metrics and
 * governor) over the shared immutable artifact state, so connections
 * never contend beyond the artifact's exactly-once analysis build.
 *
 * Wire protocol (`wet_cli serve`): the client sends newline-delimited
 * query lines in exactly the `wet_cli query --input` batch grammar
 * (cf / values / addr / slice / races / depcheck). Blank lines and
 * '#' comments are consumed (they count toward line numbering, as in
 * batch files) but produce no response. Every other line is answered
 * with one frame:
 *
 *   wet <code> <outBytes> <errBytes>\n
 *   <outBytes bytes of stdout payload><errBytes bytes of stderr payload>
 *
 * where <code> is the exit category the standalone command would
 * have produced, the stdout payload is byte-identical to the
 * standalone command's stdout, and the stderr payload carries the
 * engine I/O stats and/or the structured `error: line:<n>: <message>`
 * record of a failed line. A failed or governor-truncated line keeps
 * the session serving — the per-connection session quarantines the
 * cache readers the line touched, exactly like a poisoned batch
 * line. A connection ends when the client closes its write side; a
 * torn connection (mid-query disconnect) is dropped without
 * affecting any other session.
 *
 * On close, each connection's session metrics merge into the
 * server-wide registry (metrics()), alongside the server's own
 * connections/lines/bytes counters.
 */
class Server
{
  public:
    Server(std::shared_ptr<core::SharedArtifact> artifact,
           ServerOptions opt);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind, listen, and spawn the accept loop. Throws WetError when
     *  the socket cannot be bound. */
    void start();

    /**
     * Graceful shutdown: stop accepting, half-close every open
     * connection (handlers finish their in-flight line, then see
     * EOF), drain the worker pool, join the accept loop. Idempotent.
     */
    void stop();

    /** Block until the accept loop has exited (maxConns reached or
     *  stop()) and every connection handler has drained. */
    void waitDone();

    /** Bound TCP port (after start(); 0 for unix sockets). */
    uint16_t port() const { return port_; }

    /** Printable listen address. */
    const std::string& address() const { return address_; }

    /** Server-wide metrics: accept-loop counters plus every closed
     *  connection's merged session metrics. */
    support::Metrics& metrics() { return metrics_; }

    uint64_t
    connectionsServed() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    void serveConnection(int fd);

    std::shared_ptr<core::SharedArtifact> artifact_;
    ServerOptions opt_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::string address_;
    std::unique_ptr<support::ThreadPool> pool_;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<uint64_t> accepted_{0};
    std::mutex connMu_;
    std::vector<int> openConns_; //!< live connection fds (guarded)
    support::Metrics metrics_;
};

} // namespace serve
} // namespace wet

#endif // WET_SERVE_SERVER_H
