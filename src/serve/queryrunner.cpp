#include "queryrunner.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "analysis/moduleverifier.h"
#include "analysis/racedetect.h"
#include "analysis/staticdep.h"
#include "core/addrquery.h"
#include "core/cfquery.h"
#include "core/cursorslicer.h"
#include "core/slicer.h"
#include "core/valuequery.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/governor.h"

namespace wet {
namespace serve {

void
appendf(std::string& out, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    char buf[512];
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) {
        out.append(buf, static_cast<size_t>(n));
    } else {
        std::string big(static_cast<size_t>(n) + 1, '\0');
        std::vsnprintf(big.data(), big.size(), fmt, ap2);
        out.append(big.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
}

std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t)
        toks.push_back(t);
    return toks;
}

QuerySpec
parseQueryLine(const std::vector<std::string>& toks)
{
    QuerySpec q;
    q.verb = toks[0];
    if (q.verb != "cf" && q.verb != "values" && q.verb != "addr" &&
        q.verb != "slice" && q.verb != "races" &&
        q.verb != "depcheck")
    {
        throw QueryError{kExitUsage,
                         "unknown batch query '" + q.verb + "'"};
    }
    auto num = [&](size_t& i) -> uint64_t {
        if (i + 1 >= toks.size())
            throw QueryError{kExitUsage,
                             "option '" + toks[i] +
                                 "' needs a value in batch query"};
        return std::strtoull(toks[++i].c_str(), nullptr, 10);
    };
    for (size_t i = 1; i < toks.size(); ++i) {
        const std::string& opt = toks[i];
        if (opt == "--stmt")
            q.stmt = num(i);
        else if (opt == "--from")
            q.from = num(i);
        else if (opt == "--count")
            q.count = num(i);
        else if (opt == "--k")
            q.k = num(i);
        else if (opt == "--limit")
            q.limit = num(i);
        else if (opt == "--max")
            q.maxItems = num(i);
        else if (opt == "--engine" && i + 1 < toks.size())
            q.engine = toks[++i];
        else if (q.verb == "slice" && q.sliceQuery.empty() &&
                 opt.rfind("--", 0) != 0)
            q.sliceQuery = opt;
        else
            throw QueryError{kExitUsage,
                             "bad option '" + opt +
                                 "' in batch query"};
    }
    if (q.engine != "cursor" && q.engine != "decode")
        throw QueryError{kExitUsage,
                         "bad engine '" + q.engine +
                             "' in batch query"};
    return q;
}

void
parseSliceQuery(const std::string& query, const ir::Module& mod,
                ir::StmtId& stmt, uint64_t& k)
{
    auto bad = [&]() -> QueryError {
        return QueryError{kExitUsage, "bad slice query '" + query +
                                          "', expected "
                                          "fn:stmt[:instance]"};
    };
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t colon = query.find(':', start);
        parts.push_back(query.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty() ||
        parts[1].empty())
        throw bad();

    ir::FuncId fid;
    if (std::all_of(parts[0].begin(), parts[0].end(), ::isdigit)) {
        fid = static_cast<ir::FuncId>(
            std::strtoull(parts[0].c_str(), nullptr, 10));
        if (fid >= mod.numFunctions())
            throw bad();
    } else if (mod.hasFunction(parts[0])) {
        fid = mod.functionByName(parts[0]);
    } else {
        throw QueryError{kExitUsage,
                         "no function '" + parts[0] + "'"};
    }

    const ir::Function& fn = mod.function(fid);
    uint64_t local = std::strtoull(parts[1].c_str(), nullptr, 10);
    uint64_t fnStmts = 0;
    for (const ir::BasicBlock& b : fn.blocks)
        fnStmts += b.instrs.size();
    if (local >= fnStmts)
        throw QueryError{kExitUsage,
                         "function '" + fn.name + "' has only " +
                             std::to_string(fnStmts) + " statements"};
    // Statement ids are dense per function in block order, so the
    // global id is the function's first id plus the local index.
    stmt = fn.blocks[0].instrs[0].stmt +
           static_cast<ir::StmtId>(local);
    k = parts.size() == 3
            ? std::strtoull(parts[2].c_str(), nullptr, 10)
            : 0;
}

namespace {

/**
 * Degraded-answer record for one unavailable segment: the query still
 * succeeds, this note on the err span tells the caller which time
 * range the answer does not cover (the segment window is
 * (tsBegin, tsEnd], printed as its first..last timestamp).
 */
void
segmentNote(core::QuerySession& s, size_t k, QueryOutput& res)
{
    const core::ArtifactSegment& info = s.segmentInfo(k);
    appendf(res.err,
            "note: segment %zu (t=%llu..%llu) is quarantined; the "
            "answer covers the remaining time ranges\n",
            k, static_cast<unsigned long long>(info.tsBegin + 1),
            static_cast<unsigned long long>(info.tsEnd));
}

/**
 * Run @p body against segment @p k under the degradation contract:
 * an already-quarantined segment contributes only a note; a WetError
 * out of a segment of a multi-segment artifact quarantines that
 * segment for the rest of the session and degrades to a note, so the
 * healthy ranges still answer. On a single-segment artifact the error
 * propagates unchanged — the legacy per-line error semantics stay
 * byte-identical. GovernorLimit is a WetError but a budget trip is a
 * property of the query, not the segment, so it always propagates.
 * @return true when the segment contributed to the answer.
 */
template <typename Fn>
bool
touchSegment(core::QuerySession& s, size_t k, QueryOutput& res,
             Fn&& body)
{
    if (s.segmentQuarantined(k)) {
        segmentNote(s, k, res);
        return false;
    }
    try {
        WET_FAILPOINT("core.session.segment");
        body(k);
        return true;
    } catch (const GovernorLimit&) {
        throw;
    } catch (const WetError&) {
        if (s.numSegments() == 1)
            throw;
        s.quarantineSegment(k);
        segmentNote(s, k, res);
        return false;
    }
}

int
runCf(core::QuerySession& s, const QuerySpec& q, QueryOutput& res)
{
    core::QuerySession::Scope scope(s, "cf");
    // Timestamp 0 precedes every trace window; the extraction has
    // always answered it with zero rows.
    if (q.from == 0)
        return kExitOk;
    // A --count of 0 has always behaved like 1 (the extraction loop
    // tests the cap after the first visit); the fixed window below
    // must reproduce that.
    const uint64_t count = q.count == 0 ? 1 : q.count;
    const uint64_t windowEnd =
        q.from > UINT64_MAX - (count - 1) ? UINT64_MAX
                                          : q.from + count - 1;
    // The request is a fixed window [from, from+count-1] of the global
    // timestamp line; only segments overlapping it are touched at all.
    for (size_t seg = 0; seg < s.numSegments(); ++seg) {
        const core::ArtifactSegment& info = s.segmentInfo(seg);
        if (q.from > info.tsEnd || windowEnd <= info.tsBegin)
            continue;
        touchSegment(s, seg, res, [&](size_t k) {
            core::WetAccess& wa = *s.segmentAccess(k);
            const core::WetGraph& g = wa.graph();
            const uint64_t subFrom =
                std::max<uint64_t>(q.from, info.tsBegin + 1);
            const uint64_t subEnd = std::min<uint64_t>(windowEnd,
                                                       info.tsEnd);
            if (subFrom > subEnd)
                return;
            core::ControlFlowQuery cf(wa);
            cf.extractRange(
                subFrom, subEnd - subFrom + 1,
                [&](core::NodeId n, core::Timestamp t) {
                    // Deadline/resident poll per emitted row: a
                    // cache-warm query does little decoding, so it
                    // must stay governed here.
                    support::Governor::poll();
                    const core::WetNode& node = g.nodes[n];
                    appendf(res.out, "t=%-8llu fn%u path%llu [",
                            static_cast<unsigned long long>(t),
                            node.func,
                            static_cast<unsigned long long>(
                                node.pathId));
                    for (size_t b = 0; b < node.blocks.size(); ++b)
                        appendf(res.out, "%sb%u", b ? " " : "",
                                node.blocks[b]);
                    appendf(res.out, "]\n");
                });
        });
    }
    return kExitOk;
}

int
runValues(core::QuerySession& s, const QuerySpec& q, QueryOutput& res)
{
    if (q.stmt == UINT64_MAX)
        throw QueryError{kExitUsage, "values requires --stmt"};
    core::QuerySession::Scope scope(s, "values");
    uint64_t shown = 0;
    uint64_t total = 0;
    // Segments partition the timestamp line, so draining them in
    // order yields the global timestamp-ordered trace; the row limit
    // and the instance total span all of them.
    for (size_t seg = 0; seg < s.numSegments(); ++seg) {
        touchSegment(s, seg, res, [&](size_t k) {
            core::ValueTraceQuery vq(*s.segmentAccess(k));
            total += vq.extract(
                static_cast<ir::StmtId>(q.stmt),
                [&](core::Timestamp t, int64_t v) {
                    support::Governor::poll();
                    if (shown++ < q.limit)
                        appendf(res.out, "<t=%llu, %lld>\n",
                                static_cast<unsigned long long>(t),
                                static_cast<long long>(v));
                });
        });
    }
    appendf(res.out, "(%llu instances total)\n",
            static_cast<unsigned long long>(total));
    return kExitOk;
}

int
runAddr(core::QuerySession& s, const QuerySpec& q, QueryOutput& res)
{
    if (q.stmt == UINT64_MAX)
        throw QueryError{kExitUsage, "addr requires --stmt"};
    if (q.stmt >= s.module().numStmts())
        throw QueryError{kExitUsage, "statement id out of range"};
    ir::Opcode op =
        s.module().instr(static_cast<ir::StmtId>(q.stmt)).op;
    if (op != ir::Opcode::Load && op != ir::Opcode::Store)
        throw QueryError{kExitUsage,
                         "statement " + std::to_string(q.stmt) +
                             " is not a load or store"};
    core::QuerySession::Scope scope(s, "addr");
    uint64_t shown = 0;
    uint64_t total = 0;
    for (size_t seg = 0; seg < s.numSegments(); ++seg) {
        touchSegment(s, seg, res, [&](size_t k) {
            core::AddressTraceQuery aq(*s.segmentAccess(k));
            total += aq.extract(
                static_cast<ir::StmtId>(q.stmt),
                [&](core::Timestamp t, uint64_t addr) {
                    support::Governor::poll();
                    if (shown++ < q.limit)
                        appendf(res.out, "<t=%llu, 0x%llx>\n",
                                static_cast<unsigned long long>(t),
                                static_cast<unsigned long long>(
                                    addr));
                });
        });
    }
    appendf(res.out, "(%llu instances total)\n",
            static_cast<unsigned long long>(total));
    return kExitOk;
}

void
appendIoStats(QueryOutput& res, const std::string& engine,
              const core::SliceIoStats& st)
{
    appendf(res.err,
            "engine %s: %llu streams opened, %llu values "
            "decoded, %llu of %llu artifact bytes touched "
            "(%.2f%%)\n",
            engine.c_str(),
            static_cast<unsigned long long>(st.streamsOpened),
            static_cast<unsigned long long>(st.valuesDecoded),
            static_cast<unsigned long long>(st.bytesTouched),
            static_cast<unsigned long long>(st.bytesTotal),
            100.0 * st.fractionTouched());
}

/** Execution count of @p stmt within one segment's graph (exactly
 *  the instances WetSlicer::locate enumerates there). */
uint64_t
stmtInstancesIn(const core::WetGraph& g, ir::StmtId stmt)
{
    auto it = g.stmtIndex.find(stmt);
    if (it == g.stmtIndex.end())
        return 0;
    uint64_t n = 0;
    for (const auto& site : it->second)
        n += g.nodes[site.first].instances();
    return n;
}

int
runSlice(core::QuerySession& s, const QuerySpec& q, QueryOutput& res)
{
    const ir::Module& mod = s.module();
    ir::StmtId stmt;
    uint64_t k = q.k;
    if (!q.sliceQuery.empty()) {
        parseSliceQuery(q.sliceQuery, mod, stmt, k);
    } else if (q.stmt != UINT64_MAX) {
        if (q.stmt >= mod.numStmts())
            throw QueryError{kExitUsage,
                             "statement id out of range"};
        stmt = static_cast<ir::StmtId>(q.stmt);
    } else {
        throw QueryError{kExitUsage,
                         "slice requires fn:stmt[:instance] or "
                         "--stmt"};
    }

    core::QuerySession::Scope scope(s, "slice");

    // Dependence edges never cross a segment boundary, so a backward
    // slice lives entirely in the segment holding its seed. Map the
    // global instance index onto a segment by the per-segment
    // execution counts (pure graph arithmetic, no stream I/O);
    // instance numbering counts healthy segments only, and the notes
    // below flag any quarantined window the numbering skipped.
    size_t seedSeg = s.numSegments();
    uint64_t localK = 0;
    uint64_t before = 0;
    for (size_t seg = 0; seg < s.numSegments(); ++seg) {
        if (s.segmentQuarantined(seg)) {
            segmentNote(s, seg, res);
            continue;
        }
        const uint64_t here =
            stmtInstancesIn(s.segmentAccess(seg)->graph(), stmt);
        if (seedSeg == s.numSegments() && k - before < here) {
            seedSeg = seg;
            localK = k - before;
        }
        before += here;
    }
    if (seedSeg == s.numSegments()) {
        throw QueryError{kExitUsage,
                         "statement " + std::to_string(stmt) +
                             " has no instance " + std::to_string(k)};
    }

    bool contained = true;
    touchSegment(s, seedSeg, res, [&](size_t seg) {
        // Both engines drive the same WetSlicer over the same
        // artifact; stdout is engine-invariant by construction
        // (golden slice tests byte-compare the two), only the stderr
        // I/O stats differ.
        core::SliceAccess& acc =
            q.engine == "decode"
                ? static_cast<core::SliceAccess&>(
                      *s.segmentDecodeSlice(seg))
                : *s.segmentCursorSlice(seg);

        core::WetSlicer slicer(acc);
        core::SliceItem seed = slicer.locate(stmt, localK);
        if (!seed.valid()) {
            throw QueryError{
                kExitUsage, "statement " + std::to_string(stmt) +
                                " has no instance " +
                                std::to_string(k)};
        }
        core::SliceResult sres = slicer.backward(seed, q.maxItems);

        const ir::StmtRef& ref = mod.stmtRef(stmt);
        appendf(
            res.out,
            "backward slice of stmt %u (%s:%u) instance %llu: "
            "%zu instances, %llu edges%s\n",
            stmt, mod.function(ref.func).name.c_str(),
            stmt - mod.function(ref.func).blocks[0].instrs[0].stmt,
            static_cast<unsigned long long>(k), sres.items.size(),
            static_cast<unsigned long long>(sres.edgesTraversed),
            sres.truncated ? " (truncated)" : "");

        // Per-statement instance counts, ascending by statement id
        // (deterministic, complete — the golden tests depend on it).
        const core::WetGraph& g = s.segmentAccess(seg)->graph();
        std::map<ir::StmtId, uint64_t> counts;
        for (const auto& item : sres.items)
            counts[g.nodes[item.node].stmts[item.pos]]++;
        for (const auto& [st, c] : counts)
            appendf(res.out, "  stmt %-6u %-6s x %llu\n", st,
                    ir::opcodeName(mod.instr(st).op),
                    static_cast<unsigned long long>(c));

        // Static/dynamic cross-validation: the dynamic slice must
        // stay inside the static backward slice of the seed
        // statement.
        const analysis::StaticDepGraph& sdg = s.depGraph();
        std::vector<bool> staticSlice = sdg.backwardSlice(stmt);
        uint64_t staticCount = 0;
        for (bool b : staticSlice)
            staticCount += b;
        std::vector<ir::StmtId> escapes;
        for (const auto& [st, c] : counts) {
            (void)c;
            if (!staticSlice[st])
                escapes.push_back(st);
        }
        if (escapes.empty()) {
            appendf(res.out,
                    "containment: %zu dynamic stmts within %llu "
                    "static stmts: OK\n",
                    counts.size(),
                    static_cast<unsigned long long>(staticCount));
        } else {
            for (ir::StmtId st : escapes)
                appendf(res.out,
                        "containment: stmt %u escapes the static "
                        "slice\n",
                        st);
        }

        appendIoStats(res, q.engine,
                      q.engine == "decode"
                          ? s.segmentDecodeSlice(seg)->stats()
                          : s.segmentCursorSlice(seg)->stats());
        contained = escapes.empty();
    });
    return contained ? kExitOk : kExitVerify;
}

int
runRaces(core::QuerySession& s, const QuerySpec& q, QueryOutput& res)
{
    core::QuerySession::Scope scope(s, "races");

    // Both engines feed the same vector-clock detector; stdout is
    // engine-invariant by construction (the race bench asserts the
    // two reports byte-equal), only the stderr I/O stats differ.
    // Per-segment reports merge losslessly: a race is identified by
    // (addr, endpoints) so the union stays sorted-deduplicated, sync
    // events sum, and the thread count is the widest segment's.
    std::set<analysis::Race> merged;
    uint32_t threads = 0;
    uint64_t events = 0;
    core::SliceIoStats st;
    for (size_t seg = 0; seg < s.numSegments(); ++seg) {
        touchSegment(s, seg, res, [&](size_t k) {
            const core::WetCompressed& c = *s.segmentInfo(k).compressed;
            analysis::RaceReport rep;
            core::SliceIoStats sst;
            if (q.engine == "decode") {
                analysis::DecodeSyncAccess sa(
                    c, &s.cache(), static_cast<unsigned>(k));
                rep = analysis::detectRaces(sa);
                sst = sa.stats();
            } else {
                analysis::CursorSyncAccess sa(
                    c, &s.cache(), static_cast<unsigned>(k));
                rep = analysis::detectRaces(sa);
                sst = sa.stats();
            }
            merged.insert(rep.races.begin(), rep.races.end());
            threads = std::max(threads, rep.numThreads);
            events += rep.numEvents;
            st.streamsOpened += sst.streamsOpened;
            st.valuesDecoded += sst.valuesDecoded;
            st.bytesTouched += sst.bytesTouched;
            st.bytesTotal += sst.bytesTotal;
            st.cursorRestarts += sst.cursorRestarts;
        });
    }
    analysis::RaceReport rep;
    rep.races.assign(merged.begin(), merged.end());
    rep.numThreads = threads;
    rep.numEvents = events;
    res.out += rep.renderText();
    appendIoStats(res, q.engine, st);
    return rep.races.empty() ? kExitOk : kExitRaces;
}

int
runDepcheck(core::QuerySession& s, const QuerySpec& q,
            const std::string& artifactName, QueryOutput& res)
{
    core::QuerySession::Scope scope(s, "depcheck");
    analysis::DiagEngine diag;
    analysis::verifyModule(s.module(), diag);
    analysis::DepCheckStats stats;
    if (!diag.hasErrors()) {
        // Each segment's dependence edges are checked against the
        // same static over-approximation; findings land in one shared
        // diag and the work counters sum across segments.
        for (size_t seg = 0; seg < s.numSegments(); ++seg) {
            touchSegment(s, seg, res, [&](size_t k) {
                const core::WetCompressed& c =
                    *s.segmentInfo(k).compressed;
                analysis::DepCheckStats st;
                analysis::verifyDeps(c.graph(), s.moduleAnalysis(),
                                     s.depGraph(), diag, &c, {}, &st);
                stats.ddEdges += st.ddEdges;
                stats.cdEdges += st.cdEdges;
                stats.sliceSeeds += st.sliceSeeds;
                stats.sliceItems += st.sliceItems;
            });
        }
    }
    return appendDepcheckResult(res.out, q.json, artifactName, diag,
                                stats);
}

} // namespace

int
appendDepcheckResult(std::string& out, bool json,
                     const std::string& artifactName,
                     const analysis::DiagEngine& diag,
                     const analysis::DepCheckStats& stats)
{
    if (json) {
        out += diag.renderJson();
    } else {
        if (!diag.diagnostics().empty() || diag.hasErrors())
            out += diag.renderText();
        if (!diag.hasErrors())
            appendf(out,
                    "%s: OK (%llu DD edges, %llu CD edges, "
                    "%llu slice probes over %llu items)\n",
                    artifactName.c_str(),
                    static_cast<unsigned long long>(stats.ddEdges),
                    static_cast<unsigned long long>(stats.cdEdges),
                    static_cast<unsigned long long>(stats.sliceSeeds),
                    static_cast<unsigned long long>(
                        stats.sliceItems));
    }
    return diag.hasErrors() ? kExitVerify : kExitOk;
}

int
runQuery(core::QuerySession& s, const QuerySpec& q,
         const std::string& artifactName, QueryOutput& res)
{
    if (q.verb == "cf")
        return runCf(s, q, res);
    if (q.verb == "values")
        return runValues(s, q, res);
    if (q.verb == "addr")
        return runAddr(s, q, res);
    if (q.verb == "slice")
        return runSlice(s, q, res);
    if (q.verb == "races")
        return runRaces(s, q, res);
    if (q.verb == "depcheck")
        return runDepcheck(s, q, artifactName, res);
    throw QueryError{kExitUsage,
                     "unknown batch query '" + q.verb + "'"};
}

LineResult
serveLine(core::QuerySession& s, const std::string& artifactName,
          const std::string& line, uint64_t lineNo)
{
    LineResult r;
    std::vector<std::string> toks = tokenize(line);
    if (toks.empty() || toks[0][0] == '#')
        return r;
    r.isQuery = true;
    QueryOutput qo;
    // One bad line must not take the session down: it becomes a
    // structured error record (the batch CLI prints it to stderr, the
    // server ships it in the response frame's err span) and the line
    // keeps whatever partial output it produced. The session
    // quarantines the readers a failed query touched, so later lines
    // answer byte-identically to a fresh session.
    try {
        QuerySpec q = parseQueryLine(toks);
        r.code = runQuery(s, q, artifactName, qo);
    } catch (const GovernorLimit& e) {
        // Truncation is a result, not an error: the partial output
        // stands and the batch goes on.
        appendf(qo.out, "(truncated by governor: %s)\n",
                e.which().c_str());
        r.code = kExitOk;
    } catch (const QueryError& e) {
        appendf(qo.err, "error: line:%llu: %s\n",
                static_cast<unsigned long long>(lineNo),
                e.message.c_str());
        r.code = e.code;
    } catch (const WetError& e) {
        appendf(qo.err, "error: line:%llu: %s\n",
                static_cast<unsigned long long>(lineNo), e.what());
        r.code = kExitInternal;
    }
    r.out = std::move(qo.out);
    r.err = std::move(qo.err);
    return r;
}

} // namespace serve
} // namespace wet
