#include "cursor.h"

#include <algorithm>

#include "codec/entryio.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/governor.h"

namespace wet {
namespace codec {

StreamCursor::StreamCursor(const CompressedStream& s, Mode mode)
    : s_(&s), mode_(mode)
{
    WET_FAILPOINT("codec.cursor.init");
    if (s.config.method == Method::Raw) {
        raw_ = true;
        rawVals_.reserve(s.length);
        size_t pos = 0;
        for (uint64_t i = 0; i < s.length; ++i)
            rawVals_.push_back(s.misses.readSignedAt(pos));
        decodeSteps_ = s.length;
        support::Governor::charge(s.length);
        return;
    }
    blModel_ = makeModel(s.config);
    if (mode_ == Mode::Bidirectional)
        frModel_ = makeModel(s.config);
    idxBits_ = blModel_->hitIndexBits();
    ctxLen_ = blModel_->contextValues();
    n_ = s.windowSize;
    WET_ASSERT(n_ >= 1 && s.window0.size() == n_,
               "corrupt stream window");
    initFront();
}

void
StreamCursor::initFront()
{
    window_ = s_->window0;
    blModel_->loadState(s_->tableState0);
    if (frModel_)
        frModel_->reset();
    frFlags_.clear();
    frVals_.clear();
    machinePos_ = 0;
    sweepStart_ = 0;
    flagPos_ = 0;
    missPos_ = 0;
    decodeSteps_ += n_; // window materialization
    support::Governor::charge(n_);
}

void
StreamCursor::initFromCheckpoint(const CompressedStream::Checkpoint& cp)
{
    window_ = cp.window;
    blModel_->loadState(cp.tableState);
    if (frModel_)
        frModel_->reset();
    frFlags_.clear();
    frVals_.clear();
    machinePos_ = cp.machinePos;
    sweepStart_ = cp.machinePos;
    flagPos_ = cp.flagPos;
    missPos_ = cp.missPos;
    decodeSteps_ += n_; // window materialization
    support::Governor::charge(n_);
}

const int64_t*
StreamCursor::ctxLeft()
{
    for (unsigned i = 0; i < ctxLen_; ++i)
        ctxBuf_[i] = window_[i];
    return ctxBuf_;
}

const int64_t*
StreamCursor::ctxRight()
{
    for (unsigned i = 0; i < ctxLen_; ++i)
        ctxBuf_[i] = window_[n_ - 1 - i];
    return ctxBuf_;
}

void
StreamCursor::stepForward()
{
    WET_ASSERT(machinePos_ + n_ < s_->length, "stepForward past end");
    WET_FAILPOINT("codec.cursor.step");
    support::Governor::charge(1);
    Entry e = detail::readEntryForward(s_->flags, s_->misses, flagPos_,
                                       missPos_, idxBits_);
    int64_t v = blModel_->consume(e, ctxRight());
    int64_t leaving = window_[0];
    for (unsigned i = 0; i + 1 < n_; ++i)
        window_[i] = window_[i + 1];
    window_[n_ - 1] = v;
    if (frModel_) {
        Entry fe = frModel_->create(leaving, ctxLeft());
        detail::pushEntryReversed(frFlags_, frVals_, fe, idxBits_);
    }
    ++machinePos_;
    ++decodeSteps_;
}

bool
StreamCursor::stepBackward()
{
    WET_ASSERT(mode_ == Mode::Bidirectional,
               "backward step on a forward-only cursor");
    WET_ASSERT(machinePos_ > sweepStart_,
               "backward step before the sweep start");
    WET_FAILPOINT("codec.cursor.back");
    support::Governor::charge(1);
    Entry fe = detail::popEntryReversed(frFlags_, frVals_, idxBits_);
    int64_t v = frModel_->consume(fe, ctxLeft());
    int64_t leaving = window_[n_ - 1];
    for (unsigned i = n_ - 1; i > 0; --i)
        window_[i] = window_[i - 1];
    window_[0] = v;
    Entry be = blModel_->create(leaving, ctxRight());
    detail::unreadEntryForward(s_->flags, s_->misses, flagPos_,
                               missPos_, be, idxBits_);
    --machinePos_;
    ++decodeSteps_;
    return s_->flags.get(flagPos_) == be.hit;
}

int64_t
StreamCursor::at(uint64_t q)
{
    WET_ASSERT(q < s_->length, "cursor access at " << q
               << " past length " << s_->length);
    if (raw_)
        return rawVals_[q];

    if (q >= machinePos_ && q < machinePos_ + n_)
        return window_[q - machinePos_];

    // Plan the cheapest route: step forward, step backward (within
    // the current sweep), or re-initialize from the best checkpoint
    // at or before q and sweep forward from there.
    const CompressedStream::Checkpoint* best = nullptr;
    for (const auto& cp : s_->checkpoints) {
        if (cp.machinePos <= q &&
            (!best || cp.machinePos > best->machinePos))
        {
            best = &cp;
        }
    }
    const uint64_t kReinitCost = 64; // table/window copy
    uint64_t costFwd = q >= machinePos_ ? q - machinePos_
                                        : UINT64_MAX;
    uint64_t costBwd =
        (mode_ == Mode::Bidirectional && q < machinePos_ &&
         q >= sweepStart_)
            ? machinePos_ - q
            : UINT64_MAX;
    uint64_t ckptPos = best ? best->machinePos : 0;
    uint64_t costCkpt = (q - ckptPos) + kReinitCost;

    if (costFwd <= costBwd && costFwd <= costCkpt) {
        // fall through to the forward loop below
    } else if (costBwd <= costCkpt) {
        // Divergence between the re-created and stored BL entries
        // means the stream's two redundant sides disagree — possible
        // with payload corruption that passes the structural load
        // checks, so it is a data fault (recoverable), not a panic.
        while (machinePos_ > q)
            if (!stepBackward())
                WET_FATAL("backward step diverged from the stored "
                          "BL entry at machine position "
                          << machinePos_
                          << " (corrupt stream payload)");
    } else if (best) {
        ++restarts_;
        initFromCheckpoint(*best);
    } else {
        ++restarts_;
        initFront();
    }
    while (machinePos_ + n_ <= q)
        stepForward();
    return window_[q - machinePos_];
}

bool
StreamCursor::tryPrev(int64_t& out)
{
    WET_ASSERT(pos_ > 0, "tryPrev at position 0");
    uint64_t q = pos_ - 1;
    if (!raw_ && mode_ == Mode::Bidirectional && q < machinePos_ &&
        q >= sweepStart_)
    {
        while (machinePos_ > q)
            if (!stepBackward())
                return false;
    }
    out = at(q);
    pos_ = q;
    return true;
}

bool
StreamCursor::tryNext(int64_t& out)
{
    if (poisoned_ || pos_ >= s_->length)
        return false;
    try {
        out = at(pos_);
    } catch (const GovernorLimit&) {
        // A governor trip is not a decode failure: the cursor state
        // is intact and the stream may be re-read after the budget
        // resets, so do not poison.
        throw;
    } catch (const WetError&) {
        poisoned_ = true;
        return false;
    }
    ++pos_;
    return true;
}

bool
StreamCursor::trySeek(uint64_t q)
{
    if (poisoned_ || q > s_->length)
        return false;
    pos_ = q;
    return true;
}

void
StreamCursor::captureCheckpoints(CompressedStream& out,
                                 uint64_t interval)
{
    WET_ASSERT(&out == s_, "captureCheckpoints over a foreign stream");
    WET_ASSERT(machinePos_ == 0 && flagPos_ == 0,
               "captureCheckpoints requires a fresh cursor");
    WET_ASSERT(interval > 0, "checkpoint interval must be positive");
    out.checkpoints.clear();
    if (raw_)
        return;
    const uint64_t maxPos = s_->length - n_;
    uint64_t lastCkpt = 0;
    while (machinePos_ < maxPos) {
        stepForward();
        // Self-limiting spacing: a checkpoint must cover at least
        // `interval` values AND several values per byte of its own
        // state snapshot, so incompressible streams with big tables
        // are not drowned in checkpoint overhead.
        uint64_t span = machinePos_ - lastCkpt;
        if (span >= interval &&
            span >= 4 * blModel_->storedStateBytes() &&
            machinePos_ < maxPos)
        {
            lastCkpt = machinePos_;
            CompressedStream::Checkpoint cp;
            cp.machinePos = machinePos_;
            cp.flagPos = flagPos_;
            cp.missPos = missPos_;
            cp.window = window_;
            cp.tableState = blModel_->saveState();
            cp.storedStateBytes = blModel_->storedStateBytes();
            out.checkpoints.push_back(std::move(cp));
        }
    }
    initFront();
}

} // namespace codec
} // namespace wet
