#ifndef WET_CODEC_SELECTOR_H
#define WET_CODEC_SELECTOR_H

#include <vector>

#include "codec/stream.h"

namespace wet {
namespace codec {

/** Options for per-stream codec selection. */
struct SelectorOptions
{
    /** Prefix length used to audition each candidate codec. */
    uint64_t sampleSize = 4096;
    /** Streams shorter than this are stored raw. */
    uint64_t rawThreshold = 64;
    /** Checkpoint interval forwarded to the encoder (0 = none). */
    uint64_t checkpointInterval = 0;
    /** Candidate configurations; empty selects candidateConfigs(). */
    std::vector<CodecConfig> candidates;
};

/** Outcome statistics of one selection (for the ablation bench). */
struct SelectionInfo
{
    CodecConfig chosen;
    uint64_t estimatedBytes = 0;
};

/**
 * Compress @p vals with the best of the candidate codecs (FCM,
 * differential FCM, last n, last n stride; three context sizes each).
 * Mirrors the paper's §5 "Selection": every method is auditioned on a
 * prefix of the stream and the best performer compresses the rest.
 */
CompressedStream compressBest(const std::vector<int64_t>& vals,
                              const SelectorOptions& opt = {},
                              SelectionInfo* info = nullptr);

/**
 * Estimate the compressed size (bytes) of @p vals under @p cfg using
 * a prefix sample of @p sample values, without building the stream.
 */
uint64_t estimateBytes(const std::vector<int64_t>& vals,
                       CodecConfig cfg, uint64_t sample);

} // namespace codec
} // namespace wet

#endif // WET_CODEC_SELECTOR_H
