#include "sequitur.h"

#include <algorithm>

#include "support/error.h"
#include "support/hash.h"
#include "support/varint.h"

namespace wet {
namespace codec {

namespace {

/** Rule reference encoding in the symbol space. */
inline int64_t
ruleSym(int32_t rule)
{
    return -1 - static_cast<int64_t>(rule);
}

inline bool
isRuleSym(int64_t sym)
{
    return sym < 0;
}

inline int32_t
symRule(int64_t sym)
{
    return static_cast<int32_t>(-1 - sym);
}

} // namespace

// The implementation is a faithful arena-based transcription of
// Nevill-Manning's reference implementation: digram bookkeeping is
// embedded in join(), symbols clean their digrams when deleted, and
// the rule-utility check runs exactly once per match, on the first
// symbol of the rule involved.

size_t
SequiturGrammar::DigramHash::operator()(const DigramKey& k) const
{
    return static_cast<size_t>(
        support::hashCombine(support::mix64(
                                 static_cast<uint64_t>(k.first)),
                             static_cast<uint64_t>(k.second)));
}

SequiturGrammar::DigramKey
SequiturGrammar::digramKey(int64_t a, int64_t b)
{
    return DigramKey{a, b};
}

int32_t
SequiturGrammar::newNode(int64_t sym)
{
    Node n;
    n.sym = sym;
    nodes_.push_back(n);
    int32_t id = static_cast<int32_t>(nodes_.size() - 1);
    if (isRuleSym(sym))
        ++ruleFreq_[symRule(sym)];
    return id;
}

void
SequiturGrammar::unindexDigram(int32_t first)
{
    // Remove the table entry for the digram (first, first->next) if
    // this occurrence owns it. Valid with stale links, as in the
    // reference implementation's delete_digram().
    int32_t second = nodes_[first].next;
    if (second < 0 || isGuard(first) || isGuard(second))
        return;
    DigramKey key = digramKey(nodes_[first].sym,
                              nodes_[second].sym);
    auto it = digrams_.find(key);
    if (it != digrams_.end() && it->second == first)
        digrams_.erase(it);
}

void
SequiturGrammar::indexDigram(int32_t first)
{
    int32_t second = nodes_[first].next;
    if (second < 0 || isGuard(first) || isGuard(second))
        return;
    digrams_[digramKey(nodes_[first].sym, nodes_[second].sym)] =
        first;
}

void
SequiturGrammar::link(int32_t left, int32_t right)
{
    // join(): re-linking a symbol that already had a successor
    // retires its old digram entry first.
    if (nodes_[left].next >= 0)
        unindexDigram(left);
    nodes_[left].next = right;
    nodes_[right].prev = left;
}

void
SequiturGrammar::deleteSymbol(int32_t node)
{
    WET_ASSERT(!isGuard(node), "deleting a guard");
    link(nodes_[node].prev, nodes_[node].next);
    unindexDigram(node); // uses the stale next pointer, as intended
    if (isRuleSym(nodes_[node].sym))
        --ruleFreq_[symRule(nodes_[node].sym)];
    nodes_[node].dead = true;
}

void
SequiturGrammar::insertAfter(int32_t at, int32_t node)
{
    link(node, nodes_[at].next);
    link(at, node);
}

void
SequiturGrammar::substitute(int32_t first, int32_t rule)
{
    int32_t q = nodes_[first].prev;
    deleteSymbol(nodes_[q].next);
    deleteSymbol(nodes_[q].next);
    insertAfter(q, newNode(ruleSym(rule)));
    if (!checkDigram(q))
        checkDigram(nodes_[q].next);
}

void
SequiturGrammar::match(int32_t ss, int32_t found)
{
    int32_t rule;
    int32_t foundSecond = nodes_[found].next;
    WET_ASSERT(nodes_[found].sym == nodes_[ss].sym &&
               nodes_[foundSecond].sym == nodes_[nodes_[ss].next].sym,
               "digram table entry does not match the occurrence: "
               "(" << nodes_[found].sym << ","
               << nodes_[foundSecond].sym << ") vs ("
               << nodes_[ss].sym << ","
               << nodes_[nodes_[ss].next].sym << ")");
    if (isGuard(nodes_[found].prev) &&
        isGuard(nodes_[foundSecond].next) &&
        nodes_[nodes_[found].prev].rule > 0)
    {
        // The matching occurrence is exactly an existing rule body.
        rule = nodes_[nodes_[found].prev].rule;
        substitute(ss, rule);
    } else {
        // Create a new rule from copies of the digram.
        rule = static_cast<int32_t>(guards_.size());
        int32_t guard = newNode(0);
        nodes_[guard].guard = true;
        nodes_[guard].rule = rule;
        nodes_[guard].next = guard;
        nodes_[guard].prev = guard;
        guards_.push_back(guard);
        ruleFreq_.push_back(0);
        ruleDead_.push_back(false);

        int64_t s1 = nodes_[ss].sym;
        int64_t s2 = nodes_[nodes_[ss].next].sym;
        insertAfter(guard, newNode(s1));
        insertAfter(nodes_[guard].prev, newNode(s2));

        substitute(found, rule);
        substitute(ss, rule);

        // The rule body owns the digram entry from now on.
        indexDigram(nodes_[guard].next);
    }
    // Rule utility, checked once at the safe point: if the first
    // body symbol of the involved rule references a once-used rule,
    // inline it.
    int32_t bodyFirst = nodes_[guards_[rule]].next;
    if (isRuleSym(nodes_[bodyFirst].sym)) {
        int32_t rr = symRule(nodes_[bodyFirst].sym);
        if (ruleFreq_[rr] == 1)
            expandRuleAt(rr, bodyFirst);
    }
}

bool
SequiturGrammar::checkDigram(int32_t first)
{
    if (first < 0)
        return false;
    int32_t second = nodes_[first].next;
    if (second < 0 || isGuard(first) || isGuard(second))
        return false;
    DigramKey key = digramKey(nodes_[first].sym,
                              nodes_[second].sym);
    auto it = digrams_.find(key);
    if (it == digrams_.end()) {
        digrams_[key] = first;
        return false;
    }
    int32_t found = it->second;
    if (found == first)
        return false;
    // Overlapping occurrence (aaa): do not replace.
    if (nodes_[found].next == first || nodes_[first].next == found)
        return false;
    match(first, found);
    return true;
}

void
SequiturGrammar::expandRuleAt(int32_t rule, int32_t node)
{
    WET_ASSERT(isRuleSym(nodes_[node].sym) &&
               symRule(nodes_[node].sym) == rule,
               "expandRuleAt at a non-use");
    int32_t guard = guards_[rule];
    int32_t left = nodes_[node].prev;
    int32_t right = nodes_[node].next;
    int32_t bodyFirst = nodes_[guard].next;
    int32_t bodyLast = nodes_[guard].prev;
    WET_ASSERT(bodyFirst != guard, "inlining an empty rule");

    // Retire the use's own digram; join() handles (left, use).
    unindexDigram(node);
    nodes_[node].dead = true;
    --ruleFreq_[rule];
    ruleDead_[rule] = true;
    nodes_[guard].dead = true;

    link(left, bodyFirst);
    link(bodyLast, right);
    // Index the new right boundary digram directly (reference
    // implementation behaviour: no cascading checks here).
    indexDigram(bodyLast);
}

SequiturGrammar::SequiturGrammar(const std::vector<int64_t>& values)
{
    // Start rule 0.
    int32_t guard = newNode(0);
    nodes_[guard].guard = true;
    nodes_[guard].rule = 0;
    nodes_[guard].next = guard;
    nodes_[guard].prev = guard;
    guards_.push_back(guard);
    ruleFreq_.push_back(0);
    ruleDead_.push_back(false);

    std::unordered_map<int64_t, int64_t> dict;
    for (int64_t v : values) {
        auto [it, inserted] = dict.try_emplace(
            v, static_cast<int64_t>(dictionary_.size()));
        if (inserted)
            dictionary_.push_back(v);
        int32_t node = newNode(it->second);
        int32_t tail = nodes_[guard].prev;
        insertAfter(tail, node);
        if (tail != guard)
            checkDigram(tail);
    }
}

std::vector<int32_t>
SequiturGrammar::reachableRules() const
{
    std::vector<int32_t> order;
    std::vector<bool> seen(guards_.size(), false);
    std::vector<int32_t> work{0};
    seen[0] = true;
    while (!work.empty()) {
        int32_t r = work.back();
        work.pop_back();
        order.push_back(r);
        int32_t guard = guards_[r];
        for (int32_t n = nodes_[guard].next; n != guard;
             n = nodes_[n].next)
        {
            if (isRuleSym(nodes_[n].sym)) {
                int32_t rr = symRule(nodes_[n].sym);
                if (!seen[rr]) {
                    seen[rr] = true;
                    work.push_back(rr);
                }
            }
        }
    }
    std::sort(order.begin(), order.end());
    return order;
}

size_t
SequiturGrammar::numRules() const
{
    return reachableRules().size();
}

uint64_t
SequiturGrammar::totalSymbols() const
{
    uint64_t total = 0;
    for (int32_t r : reachableRules()) {
        int32_t guard = guards_[r];
        for (int32_t n = nodes_[guard].next; n != guard;
             n = nodes_[n].next)
        {
            ++total;
        }
    }
    return total;
}

uint64_t
SequiturGrammar::sizeBytes() const
{
    support::VarintBuffer buf;
    for (int32_t r : reachableRules()) {
        int32_t guard = guards_[r];
        for (int32_t n = nodes_[guard].next; n != guard;
             n = nodes_[n].next)
        {
            buf.pushSigned(nodes_[n].sym);
        }
        buf.pushSigned(INT64_MIN); // rule terminator sentinel
    }
    return buf.sizeBytes() + dictionary_.size() * sizeof(int64_t);
}

std::vector<int64_t>
SequiturGrammar::expand() const
{
    std::vector<int64_t> out;
    std::vector<int32_t> stack;
    stack.push_back(nodes_[guards_[0]].next);
    while (!stack.empty()) {
        int32_t n = stack.back();
        if (isGuard(n)) {
            stack.pop_back();
            continue;
        }
        stack.back() = nodes_[n].next;
        int64_t sym = nodes_[n].sym;
        if (isRuleSym(sym))
            stack.push_back(nodes_[guards_[symRule(sym)]].next);
        else
            out.push_back(dictionary_[static_cast<size_t>(sym)]);
    }
    return out;
}

std::vector<int64_t>
SequiturGrammar::expandBackward() const
{
    std::vector<int64_t> out;
    std::vector<int32_t> stack;
    stack.push_back(nodes_[guards_[0]].prev);
    while (!stack.empty()) {
        int32_t n = stack.back();
        if (isGuard(n)) {
            stack.pop_back();
            continue;
        }
        stack.back() = nodes_[n].prev;
        int64_t sym = nodes_[n].sym;
        if (isRuleSym(sym))
            stack.push_back(nodes_[guards_[symRule(sym)]].prev);
        else
            out.push_back(dictionary_[static_cast<size_t>(sym)]);
    }
    return out;
}

} // namespace codec
} // namespace wet
