#ifndef WET_CODEC_STREAM_H
#define WET_CODEC_STREAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/bitstack.h"
#include "support/varint.h"

namespace wet {
namespace codec {

/** Tier-2 compression methods (paper §4 and §5 "Selection"). */
enum class Method : uint8_t {
    Raw,         //!< varint list; fallback for tiny streams
    Fcm,         //!< bidirectional finite context method (Fig. 5)
    Dfcm,        //!< differential FCM (strides through the table)
    LastN,       //!< bidirectional last-n (move-to-front deque, Fig. 7)
    LastNStride, //!< last-n over strides
};

/** Printable method name, e.g. "dfcm3". */
std::string methodName(Method m, unsigned context);

/** One codec configuration: method + context size. */
struct CodecConfig
{
    Method method = Method::Fcm;
    /** FCM/DFCM: context length; LastN*: deque size. */
    unsigned context = 2;
    /** FCM/DFCM lookup-table index bits (0 = auto from length). */
    unsigned tableBits = 0;

    bool operator==(const CodecConfig& o) const
    {
        return method == o.method && context == o.context &&
               tableBits == o.tableBits;
    }
};

/**
 * The candidate configurations the per-stream selector tries: FCM,
 * differential FCM, last n, and last n stride, each in three context
 * sizes (paper §5 "Selection").
 */
const std::vector<CodecConfig>& candidateConfigs();

/**
 * At-rest compressed form of one value stream, resting at the front:
 * the first `n` values are stored uncompressed as the context window,
 * every later value has one entry (hit flag, plus the evicted
 * prediction on a miss) in `flags`/`misses`, and `tableState0` is the
 * backward-compression lookup-table (or last-n deque) state required
 * to start decoding at position 0 (paper Fig. 5/7).
 *
 * Entries store the *evicted prediction*, not the value: the value
 * itself always lives in the table at decode time, which is what
 * makes O(1) bidirectional sliding possible.
 */
class CompressedStream
{
  public:
    CodecConfig config;
    uint64_t length = 0;           //!< logical value count
    unsigned windowSize = 0;       //!< n (0 for Raw)
    std::vector<int64_t> window0;  //!< first n values (padded w/ 0)
    support::BitStack flags;       //!< per-entry bits, forward order
    support::VarintBuffer misses;  //!< per-miss victims, forward order
    std::vector<int64_t> tableState0; //!< table/deque at position 0
    /** Serialized (sparse) size of tableState0, set by the encoder. */
    uint64_t storedState0Bytes = 0;

    /** Sparse checkpoint for O(interval) seeking (optional). */
    struct Checkpoint
    {
        uint64_t machinePos = 0; //!< values decoded before this point
        uint64_t flagPos = 0;
        uint64_t missPos = 0;
        std::vector<int64_t> window;
        std::vector<int64_t> tableState;
        uint64_t storedStateBytes = 0;
    };
    std::vector<Checkpoint> checkpoints;

    /** In-memory footprint in bytes (window + entries + state). */
    uint64_t sizeBytes() const;

    /** Entry-stream payload only (flags + misses), in bytes. */
    uint64_t payloadBytes() const;
};

} // namespace codec
} // namespace wet

#endif // WET_CODEC_STREAM_H
