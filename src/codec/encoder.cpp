#include "encoder.h"

#include <algorithm>

#include "codec/cursor.h"
#include "codec/entryio.h"
#include "codec/model.h"
#include "support/error.h"

namespace wet {
namespace codec {

namespace {

/** Minimum stream length for predictor codecs. */
constexpr uint64_t kMinPredictorLength = 16;

CompressedStream
encodeRaw(const std::vector<int64_t>& vals)
{
    CompressedStream out;
    out.config = CodecConfig{Method::Raw, 0, 0};
    out.length = vals.size();
    out.windowSize = 0;
    for (int64_t v : vals)
        out.misses.pushSigned(v);
    return out;
}

} // namespace

CompressedStream
encodeStream(const std::vector<int64_t>& vals, CodecConfig cfg0,
             uint64_t checkpoint_interval)
{
    const uint64_t m = vals.size();
    CodecConfig cfg = resolveConfig(cfg0, m);
    if (cfg.method == Method::Raw || m < kMinPredictorLength)
        return encodeRaw(vals);

    auto frModel = makeModel(cfg);
    auto blModel = makeModel(cfg);
    const unsigned idxBits = frModel->hitIndexBits();
    const unsigned ctxLen = frModel->contextValues();
    const unsigned n = detail::windowSizeFor(cfg, *frModel);
    WET_ASSERT(m > n, "stream too short for window");

    CompressedStream out;
    out.config = cfg;
    out.length = m;
    out.windowSize = n;

    std::vector<int64_t> window(vals.begin(), vals.begin() + n);
    int64_t ctxBuf[10];
    auto ctxLeft = [&]() {
        for (unsigned i = 0; i < ctxLen; ++i)
            ctxBuf[i] = window[i];
        return ctxBuf;
    };
    auto ctxRight = [&]() {
        for (unsigned i = 0; i < ctxLen; ++i)
            ctxBuf[i] = window[n - 1 - i];
        return ctxBuf;
    };
    auto shiftLeft = [&](int64_t incoming) {
        for (unsigned i = 0; i + 1 < n; ++i)
            window[i] = window[i + 1];
        window[n - 1] = incoming;
    };
    auto shiftRight = [&](int64_t incoming) {
        for (unsigned i = n - 1; i > 0; --i)
            window[i] = window[i - 1];
        window[0] = incoming;
    };

    // Phase 1 — forward sweep: compress values [0, m-n) into the FR
    // side using their right context, leaving the window at the end.
    support::BitStack frFlags;
    support::VarintBuffer frVals;
    for (uint64_t p = 0; p + n < m; ++p) {
        int64_t leaving = window[0];
        shiftLeft(vals[p + n]);
        Entry e = frModel->create(leaving, ctxLeft());
        detail::pushEntryReversed(frFlags, frVals, e, idxBits);
    }

    // Phase 2 — backward sweep: uncompress the FR side step by step
    // and re-compress each window-leaving value into the BL side
    // using its left context. Afterwards the stream rests at the
    // front and the FR side is provably back to its initial state.
    support::BitStack blTmpFlags;
    support::VarintBuffer blTmpVals;
    for (uint64_t p = m - n; p > 0; --p) {
        Entry fe = detail::popEntryReversed(frFlags, frVals, idxBits);
        int64_t value = frModel->consume(fe, ctxLeft());
        int64_t leaving = window[n - 1];
        shiftRight(value);
        Entry be = blModel->create(leaving, ctxRight());
        detail::pushEntryReversed(blTmpFlags, blTmpVals, be, idxBits);
    }
    WET_ASSERT(frFlags.empty() && frVals.empty(),
               "FR side not fully unwound");
    for (unsigned i = 0; i < n; ++i) {
        WET_ASSERT(window[i] == vals[i],
                   "window mismatch after backward sweep at " << i);
    }

    // Phase 3 — reverse the backward-created BL entries into forward
    // read order.
    const uint64_t entries = m - n;
    for (uint64_t k = 0; k < entries; ++k) {
        Entry e = detail::popEntryReversed(blTmpFlags, blTmpVals,
                                           idxBits);
        detail::writeEntryForward(out.flags, out.misses, e, idxBits);
    }
    WET_ASSERT(blTmpFlags.empty() && blTmpVals.empty(),
               "BL temp not fully drained");

    out.window0 = window;
    out.tableState0 = blModel->saveState();
    out.storedState0Bytes = blModel->storedStateBytes();

    if (checkpoint_interval > 0) {
        StreamCursor cur(out, StreamCursor::Mode::Forward);
        cur.captureCheckpoints(out, checkpoint_interval);
    }
    return out;
}

std::vector<int64_t>
decodeAll(const CompressedStream& s)
{
    std::vector<int64_t> vals;
    vals.reserve(s.length);
    StreamCursor cur(s, StreamCursor::Mode::Forward);
    for (uint64_t q = 0; q < s.length; ++q)
        vals.push_back(cur.next());
    return vals;
}

} // namespace codec
} // namespace wet
