#ifndef WET_CODEC_ENTRYIO_H
#define WET_CODEC_ENTRYIO_H

#include "codec/model.h"
#include "support/bitstack.h"
#include "support/varint.h"

namespace wet {
namespace codec {
namespace detail {

/**
 * Entry serialization. Two layouts are used:
 *
 * - forward layout ([flag][hit-index?]) for the at-rest BL entry
 *   stream, which cursors read with increasing offsets;
 * - reversed layout ([hit-index?][flag]) for transient stacks (the
 *   cursor-local FR side and the encoder's backward sweep), which are
 *   consumed by popping.
 *
 * Miss victims go to a VarintBuffer, which is poppable and
 * backward-readable on its own.
 */

/** Append an entry in forward layout. */
inline void
writeEntryForward(support::BitStack& flags, support::VarintBuffer& vals,
                  const Entry& e, unsigned idx_bits)
{
    flags.push(e.hit);
    if (e.hit) {
        if (idx_bits)
            flags.pushBits(e.hitIndex, idx_bits);
    } else {
        vals.pushSigned(e.missVictim);
    }
}

/** Read an entry in forward layout, advancing both positions. */
inline Entry
readEntryForward(const support::BitStack& flags,
                 const support::VarintBuffer& vals, size_t& flag_pos,
                 size_t& miss_pos, unsigned idx_bits)
{
    Entry e;
    e.hit = flags.get(flag_pos++);
    if (e.hit) {
        if (idx_bits) {
            e.hitIndex = flags.getBits(flag_pos, idx_bits);
            flag_pos += idx_bits;
        }
    } else {
        e.missVictim = vals.readSignedAt(miss_pos);
    }
    return e;
}

/**
 * Step both positions backwards over an entry whose content is
 * already known (used when a backward step re-creates a stored BL
 * entry and only needs to rewind the read offsets).
 */
inline void
unreadEntryForward(const support::BitStack& flags,
                   const support::VarintBuffer& vals,
                   size_t& flag_pos, size_t& miss_pos, const Entry& e,
                   unsigned idx_bits)
{
    (void)flags;
    if (e.hit) {
        flag_pos -= 1 + idx_bits;
    } else {
        flag_pos -= 1;
        vals.readSignedBefore(miss_pos); // moves miss_pos back
    }
}

/** Push an entry in reversed layout (poppable). */
inline void
pushEntryReversed(support::BitStack& flags, support::VarintBuffer& vals,
                  const Entry& e, unsigned idx_bits)
{
    if (e.hit) {
        if (idx_bits)
            flags.pushBits(e.hitIndex, idx_bits);
    } else {
        vals.pushSigned(e.missVictim);
    }
    flags.push(e.hit);
}

/** Pop an entry pushed with pushEntryReversed. */
inline Entry
popEntryReversed(support::BitStack& flags, support::VarintBuffer& vals,
                 unsigned idx_bits)
{
    Entry e;
    e.hit = flags.pop();
    if (e.hit) {
        if (idx_bits)
            e.hitIndex = flags.popBits(idx_bits);
    } else {
        e.missVictim = vals.popSigned();
    }
    return e;
}

/** Window size for a resolved configuration. */
inline unsigned
windowSizeFor(const CodecConfig& cfg, const PredictorModel& model)
{
    (void)cfg;
    unsigned k = model.contextValues();
    return k == 0 ? 1 : k;
}

} // namespace detail
} // namespace codec
} // namespace wet

#endif // WET_CODEC_ENTRYIO_H
