#include "selector.h"

#include <algorithm>

#include "codec/encoder.h"
#include "codec/entryio.h"
#include "codec/model.h"
#include "support/error.h"

namespace wet {
namespace codec {

uint64_t
estimateBytes(const std::vector<int64_t>& vals, CodecConfig cfg0,
              uint64_t sample)
{
    const uint64_t m = vals.size();
    CodecConfig cfg = resolveConfig(cfg0, m);
    auto model = makeModel(cfg);
    const unsigned idxBits = model->hitIndexBits();
    const unsigned ctxLen = model->contextValues();
    const unsigned n = detail::windowSizeFor(cfg, *model);
    if (m <= n)
        return m * sizeof(int64_t);

    const uint64_t lim =
        std::min<uint64_t>(m, std::max<uint64_t>(sample, n + 1));
    // One unidirectional creation pass over the prefix: entry sizes
    // are identical in both directions, so this predicts the real
    // encoder's payload rate.
    std::vector<int64_t> window(vals.begin(), vals.begin() + n);
    int64_t ctxBuf[10];
    uint64_t bits = 0;
    uint64_t missBytes = 0;
    for (uint64_t p = 0; p + n < lim; ++p) {
        for (unsigned i = 0; i < ctxLen; ++i)
            ctxBuf[i] = window[n - 1 - i];
        Entry e = model->create(vals[p + n], ctxBuf);
        bits += 1 + (e.hit ? idxBits : 0);
        if (!e.hit) {
            support::VarintBuffer tmp;
            tmp.pushSigned(e.missVictim);
            missBytes += tmp.sizeBytes();
        }
        for (unsigned i = 0; i + 1 < n; ++i)
            window[i] = window[i + 1];
        window[n - 1] = vals[p + n];
    }
    const uint64_t sampled = lim - n;
    if (sampled == 0)
        return m * sizeof(int64_t);
    double perValue =
        (static_cast<double>(bits) / 8.0 +
         static_cast<double>(missBytes)) /
        static_cast<double>(sampled);
    uint64_t payload = static_cast<uint64_t>(
        perValue * static_cast<double>(m - n));
    return payload + model->storedStateBytes() +
           n * sizeof(int64_t) + 16;
}

CompressedStream
compressBest(const std::vector<int64_t>& vals,
             const SelectorOptions& opt, SelectionInfo* info)
{
    const uint64_t m = vals.size();
    if (m < opt.rawThreshold) {
        CompressedStream s =
            encodeStream(vals, CodecConfig{Method::Raw, 0, 0}, 0);
        if (info) {
            info->chosen = s.config;
            info->estimatedBytes = s.sizeBytes();
        }
        return s;
    }
    const auto& candidates = opt.candidates.empty()
                                 ? candidateConfigs()
                                 : opt.candidates;
    CodecConfig best = candidates.front();
    uint64_t bestEst = UINT64_MAX;
    for (const auto& cfg : candidates) {
        uint64_t est = estimateBytes(vals, cfg, opt.sampleSize);
        if (est < bestEst) {
            bestEst = est;
            best = cfg;
        }
    }
    // Raw is the safety net when prediction does not pay at all.
    if (bestEst > m * sizeof(int64_t)) {
        best = CodecConfig{Method::Raw, 0, 0};
    }
    CompressedStream s =
        encodeStream(vals, best, opt.checkpointInterval);
    if (info) {
        info->chosen = s.config;
        info->estimatedBytes = bestEst;
    }
    return s;
}

} // namespace codec
} // namespace wet
