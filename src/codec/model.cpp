#include "model.h"

#include <algorithm>

#include "support/error.h"
#include "support/hash.h"

namespace wet {
namespace codec {

namespace {

/** Two's-complement subtraction without signed-overflow UB. */
inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

/** Two's-complement addition without signed-overflow UB. */
inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

} // namespace

std::string
methodName(Method m, unsigned context)
{
    switch (m) {
      case Method::Raw: return "raw";
      case Method::Fcm: return "fcm" + std::to_string(context);
      case Method::Dfcm: return "dfcm" + std::to_string(context);
      case Method::LastN: return "last" + std::to_string(context);
      case Method::LastNStride:
        return "laststride" + std::to_string(context);
    }
    return "?";
}

const std::vector<CodecConfig>&
candidateConfigs()
{
    static const std::vector<CodecConfig> configs = {
        {Method::Fcm, 1, 0},         {Method::Fcm, 2, 0},
        {Method::Fcm, 3, 0},         {Method::Dfcm, 1, 0},
        {Method::Dfcm, 2, 0},        {Method::Dfcm, 3, 0},
        {Method::LastN, 2, 0},       {Method::LastN, 4, 0},
        {Method::LastN, 8, 0},       {Method::LastNStride, 2, 0},
        {Method::LastNStride, 4, 0}, {Method::LastNStride, 8, 0},
    };
    return configs;
}

CodecConfig
resolveConfig(CodecConfig cfg, uint64_t length)
{
    if ((cfg.method == Method::Fcm || cfg.method == Method::Dfcm) &&
        cfg.tableBits == 0)
    {
        // Scale the lookup table with the stream so that the at-rest
        // table snapshot stays a small fraction of the raw stream.
        unsigned bits = 4;
        while ((uint64_t{1} << bits) < length / 8 && bits < 12)
            ++bits;
        cfg.tableBits = bits;
    }
    return cfg;
}

namespace {

/**
 * FCM / differential FCM model. The table maps a hashed context of
 * the last `ctxLen` values (FCM) or strides (DFCM) to the predicted
 * value (FCM) or predicted stride (DFCM).
 */
class FcmModel : public PredictorModel
{
  public:
    FcmModel(unsigned ctx_len, unsigned table_bits, bool stride)
        : ctxLen_(ctx_len), bits_(table_bits), stride_(stride)
    {
        WET_ASSERT(ctx_len >= 1 && ctx_len <= 8, "bad context length");
        WET_ASSERT(table_bits >= 1 && table_bits <= 24,
                   "bad table bits");
        table_.assign(size_t{1} << bits_, 0);
    }

    unsigned
    contextValues() const override
    {
        return stride_ ? ctxLen_ + 1 : ctxLen_;
    }

    unsigned hitIndexBits() const override { return 0; }

    Entry
    create(int64_t actual, const int64_t* ctx) override
    {
        size_t idx = index(ctx);
        int64_t coded = stride_ ? wrapSub(actual, ctx[0]) : actual;
        Entry e;
        if (table_[idx] == coded) {
            e.hit = true;
        } else {
            e.hit = false;
            e.missVictim = table_[idx];
            table_[idx] = coded;
        }
        return e;
    }

    int64_t
    consume(const Entry& e, const int64_t* ctx) override
    {
        size_t idx = index(ctx);
        int64_t coded = table_[idx];
        if (!e.hit)
            table_[idx] = e.missVictim;
        return stride_ ? wrapAdd(coded, ctx[0]) : coded;
    }

    std::vector<int64_t> saveState() const override { return table_; }

    void
    loadState(const std::vector<int64_t>& s) override
    {
        WET_ASSERT(s.size() == table_.size(), "state size mismatch");
        table_ = s;
    }

    void reset() override { std::fill(table_.begin(), table_.end(), 0); }

    uint64_t
    stateBytes() const override
    {
        return table_.size() * sizeof(int64_t);
    }

    uint64_t
    storedStateBytes() const override
    {
        // Sparse form: delta-coded slot index (~2 bytes) plus a
        // varint value (~8 bytes worst case, ~4 typical).
        uint64_t touched = 0;
        for (int64_t v : table_)
            if (v != 0)
                ++touched;
        return 8 + touched * 10;
    }

  private:
    size_t
    index(const int64_t* ctx) const
    {
        uint64_t key[8];
        if (stride_) {
            for (unsigned i = 0; i < ctxLen_; ++i) {
                key[i] = static_cast<uint64_t>(ctx[i]) -
                         static_cast<uint64_t>(ctx[i + 1]);
            }
        } else {
            for (unsigned i = 0; i < ctxLen_; ++i)
                key[i] = static_cast<uint64_t>(ctx[i]);
        }
        return support::hashContext(key, ctxLen_, bits_);
    }

    std::vector<int64_t> table_;
    unsigned ctxLen_;
    unsigned bits_;
    bool stride_;
};

/**
 * Last-n model (Fig. 7): a deque of the n most recent distinct
 * values (or strides). A hit stores only the matching slot and
 * rotates it to the front (invertible); a miss pushes the value in
 * front and records the evicted oldest entry as the victim.
 */
class LastNModel : public PredictorModel
{
  public:
    LastNModel(unsigned n, bool stride) : n_(n), stride_(stride)
    {
        WET_ASSERT(n >= 2 && n <= 64, "bad last-n size");
        deque_.assign(n_, 0);
        idxBits_ = 1;
        while ((1u << idxBits_) < n_)
            ++idxBits_;
    }

    unsigned contextValues() const override { return stride_ ? 1 : 0; }

    unsigned hitIndexBits() const override { return idxBits_; }

    Entry
    create(int64_t actual, const int64_t* ctx) override
    {
        int64_t coded = stride_ ? wrapSub(actual, ctx[0]) : actual;
        Entry e;
        for (unsigned j = 0; j < n_; ++j) {
            if (deque_[j] == coded) {
                e.hit = true;
                e.hitIndex = j;
                // Move-to-front rotation (invertible given j).
                std::rotate(deque_.begin(), deque_.begin() + j,
                            deque_.begin() + j + 1);
                return e;
            }
        }
        e.hit = false;
        e.missVictim = deque_.back();
        deque_.pop_back();
        deque_.insert(deque_.begin(), coded);
        return e;
    }

    int64_t
    consume(const Entry& e, const int64_t* ctx) override
    {
        int64_t coded;
        if (e.hit) {
            coded = deque_.front();
            // Undo the move-to-front rotation.
            std::rotate(deque_.begin(),
                        deque_.begin() + 1,
                        deque_.begin() + e.hitIndex + 1);
        } else {
            coded = deque_.front();
            deque_.erase(deque_.begin());
            deque_.push_back(e.missVictim);
        }
        return stride_ ? wrapAdd(coded, ctx[0]) : coded;
    }

    std::vector<int64_t> saveState() const override { return deque_; }

    void
    loadState(const std::vector<int64_t>& s) override
    {
        WET_ASSERT(s.size() == deque_.size(), "state size mismatch");
        deque_ = s;
    }

    void reset() override { std::fill(deque_.begin(), deque_.end(), 0); }

    uint64_t
    stateBytes() const override
    {
        return deque_.size() * sizeof(int64_t);
    }

    uint64_t
    storedStateBytes() const override
    {
        return deque_.size() * sizeof(int64_t);
    }

  private:
    std::vector<int64_t> deque_;
    unsigned n_;
    bool stride_;
    unsigned idxBits_ = 1;
};

} // namespace

std::unique_ptr<PredictorModel>
makeModel(const CodecConfig& cfg)
{
    switch (cfg.method) {
      case Method::Fcm:
        return std::make_unique<FcmModel>(cfg.context, cfg.tableBits,
                                          false);
      case Method::Dfcm:
        return std::make_unique<FcmModel>(cfg.context, cfg.tableBits,
                                          true);
      case Method::LastN:
        return std::make_unique<LastNModel>(cfg.context, false);
      case Method::LastNStride:
        return std::make_unique<LastNModel>(cfg.context, true);
      case Method::Raw:
        break;
    }
    WET_ASSERT(false, "no model for this method");
    return nullptr;
}

uint64_t
CompressedStream::payloadBytes() const
{
    return flags.sizeBytes() + misses.sizeBytes();
}

uint64_t
CompressedStream::sizeBytes() const
{
    uint64_t total = 16; // header: config, length
    total += window0.size() * sizeof(int64_t);
    total += payloadBytes();
    total += storedState0Bytes;
    for (const auto& cp : checkpoints) {
        total += 24;
        total += cp.window.size() * sizeof(int64_t);
        total += cp.storedStateBytes;
    }
    return total;
}

} // namespace codec
} // namespace wet
