#ifndef WET_CODEC_SEQUITUR_H
#define WET_CODEC_SEQUITUR_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wet {
namespace codec {

/**
 * Sequitur (Nevill-Manning & Witten, DCC'97): linear-time grammar
 * inference producing a context-free grammar whose single expansion
 * is the input. The paper's §4 discusses it as the alternative
 * stream compressor that *is* traversable in both directions (Larus
 * used it for whole program paths, Chilimbi for address traces) but
 * is "nearly not as effective as the unidirectional predictors when
 * compressing value streams" — the claim bench/ablation_sequitur
 * reproduces on real WET label streams.
 *
 * The implementation maintains the two classic invariants online:
 * digram uniqueness (no pair of adjacent symbols occurs twice) and
 * rule utility (every rule is referenced at least twice).
 */
class SequiturGrammar
{
  public:
    /** Infer the grammar for @p values. */
    explicit SequiturGrammar(const std::vector<int64_t>& values);

    /** Number of rules, including the start rule. */
    size_t numRules() const;

    /** Total symbols across all rule right-hand sides. */
    uint64_t totalSymbols() const;

    /**
     * Serialized size: varint-coded rule bodies plus the terminal
     * dictionary (distinct 64-bit values).
     */
    uint64_t sizeBytes() const;

    /** Expand the start rule left to right (decompression). */
    std::vector<int64_t> expand() const;

    /**
     * Expand right to left — demonstrating that a grammar, unlike a
     * unidirectional predictor stream, can be traversed backwards.
     */
    std::vector<int64_t> expandBackward() const;

  private:
    // Symbols: values >= 0 are terminal-dictionary indices, values
    // < 0 are rule references (rule r encoded as -1 - r).
    struct Node
    {
        int64_t sym = 0;
        int32_t prev = -1;
        int32_t next = -1;
        bool guard = false;
        bool dead = false; //!< unlinked by a substitution/inline
        int32_t rule = -1; //!< for guards: which rule this heads
    };

    int32_t newNode(int64_t sym);
    int32_t ruleGuard(int32_t rule) const { return guards_[rule]; }
    void link(int32_t a, int32_t b);
    bool isGuard(int32_t n) const { return nodes_[n].guard; }

    using DigramKey = std::pair<int64_t, int64_t>;

    struct DigramHash
    {
        size_t operator()(const DigramKey& k) const;
    };

    static DigramKey digramKey(int64_t a, int64_t b);
    void indexDigram(int32_t first);
    void unindexDigram(int32_t first);
    void deleteSymbol(int32_t node);
    void insertAfter(int32_t at, int32_t node);
    /** Enforce digram uniqueness; true if a replacement happened. */
    bool checkDigram(int32_t first);
    void match(int32_t ss, int32_t found);
    void substitute(int32_t first, int32_t rule);
    void expandRuleAt(int32_t rule, int32_t node);
    std::vector<int32_t> reachableRules() const;

    std::vector<Node> nodes_;
    std::vector<int32_t> guards_;        //!< per rule: guard node
    std::vector<int64_t> ruleFreq_;      //!< reference counts
    std::vector<bool> ruleDead_;
    std::vector<int64_t> dictionary_;    //!< terminal id -> value
    // exact digram -> node index of the digram's first symbol
    std::unordered_map<DigramKey, int32_t, DigramHash> digrams_;
};

} // namespace codec
} // namespace wet

#endif // WET_CODEC_SEQUITUR_H
