#ifndef WET_CODEC_MODEL_H
#define WET_CODEC_MODEL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/stream.h"

namespace wet {
namespace codec {

/** The logical content of one compressed entry. */
struct Entry
{
    bool hit = false;
    uint64_t hitIndex = 0;  //!< LastN*: deque slot that matched
    int64_t missVictim = 0; //!< evicted prediction on a miss
};

/**
 * One direction's predictor state (the paper's FRTB or BLTB, or one
 * move-to-front deque for the last-n methods) together with the
 * create/consume step rules of the bidirectional compression scheme
 * (Fig. 5/7):
 *
 * - create(actual, ctx): compress `actual` given the nearest-first
 *   context `ctx`; mutates the state so that the value now lives in
 *   the table/deque and the entry carries only the eviction victim.
 * - consume(entry, ctx): the exact inverse — recover the value from
 *   the state and roll the state back using the stored victim.
 *
 * Because consume() perfectly undoes create(), the state is a pure
 * function of the stream position, which is what allows the window to
 * slide either way in O(1).
 */
class PredictorModel
{
  public:
    virtual ~PredictorModel() = default;

    /** Number of context values the model needs (window size). */
    virtual unsigned contextValues() const = 0;

    /** Bits used to store a hit's auxiliary index (0 for FCM). */
    virtual unsigned hitIndexBits() const = 0;

    /** Compress @p actual against @p ctx; mutates state. */
    virtual Entry create(int64_t actual, const int64_t* ctx) = 0;

    /** Invert create(): recover the value, roll back the state. */
    virtual int64_t consume(const Entry& e, const int64_t* ctx) = 0;

    /** Export the state (for the at-rest snapshot / checkpoints). */
    virtual std::vector<int64_t> saveState() const = 0;

    /** Import a previously saved state. */
    virtual void loadState(const std::vector<int64_t>& s) = 0;

    /** Reset to the initial (all zero) state. */
    virtual void reset() = 0;

    /** In-memory footprint of the state in bytes. */
    virtual uint64_t stateBytes() const = 0;

    /**
     * Serialized footprint of the state: FCM tables are stored
     * sparsely (only touched slots), so a stream that exercised few
     * contexts pays only for those.
     */
    virtual uint64_t storedStateBytes() const = 0;
};

/**
 * Build the model for a configuration.
 * @param cfg codec configuration (tableBits already resolved)
 */
std::unique_ptr<PredictorModel> makeModel(const CodecConfig& cfg);

/**
 * Resolve tableBits for a stream of @p length values (identity for
 * configs that set it explicitly or that do not use a table).
 */
CodecConfig resolveConfig(CodecConfig cfg, uint64_t length);

} // namespace codec
} // namespace wet

#endif // WET_CODEC_MODEL_H
