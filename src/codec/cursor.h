#ifndef WET_CODEC_CURSOR_H
#define WET_CODEC_CURSOR_H

#include <memory>
#include <vector>

#include "codec/model.h"
#include "codec/stream.h"
#include "support/error.h"

namespace wet {
namespace codec {

/**
 * Decoding cursor over a CompressedStream.
 *
 * The cursor keeps the paper's sliding uncompressed window: values
 * enter the window from the BL (ahead) side when stepping forward and
 * from the cursor-local FR (behind) side when stepping backward; each
 * step is O(1). A Forward cursor skips FR bookkeeping and can only
 * move ahead (re-initializing from the front or a checkpoint to go
 * back); a Bidirectional cursor additionally materializes the FR side
 * as it advances, after which it can step back freely to wherever its
 * current sweep started.
 *
 * Random access is provided by at(): sequential patterns cost O(1)
 * amortized per access; jumping far behind a Forward sweep costs a
 * re-scan from the nearest checkpoint (or the front).
 */
class StreamCursor
{
  public:
    enum class Mode { Forward, Bidirectional };

    explicit StreamCursor(const CompressedStream& s,
                          Mode mode = Mode::Bidirectional);

    uint64_t length() const { return s_->length; }

    /** Value at index @p q (see class comment for cost model). */
    int64_t at(uint64_t q);

    /** Sequential read at the cursor position, then advance. */
    int64_t
    next()
    {
        int64_t v = at(pos_);
        ++pos_;
        return v;
    }

    /** Step the cursor position back, then read. Position must be
     *  nonzero — stepping before the front is a caller bug, caught the
     *  same way tryPrev catches it rather than wrapping the index. */
    int64_t
    prev()
    {
        WET_ASSERT(pos_ > 0, "prev at position 0");
        --pos_;
        return at(pos_);
    }

    /**
     * Checked prev(): steps back and writes the value to @p out,
     * returning false when the backward machine's re-created BL
     * entry disagrees with the stored entry stream — i.e. the
     * stream's two redundant sides are inconsistent, which a
     * well-formed artifact can never produce. Queries treat that
     * divergence as an internal invariant violation (panic); the
     * artifact verifier uses this entry point to report it as a
     * diagnostic instead. The cursor is unusable after a failure.
     */
    bool tryPrev(int64_t& out);

    /**
     * Checked next(): reads the value at the cursor position into
     * @p out and advances, returning false at the end of the stream
     * or when decoding fails (an injected fault, or divergence while
     * re-scanning backward). A decode failure poisons the cursor —
     * every later try* call returns false — so a quarantined reader
     * can never serve half-decoded state.
     */
    bool tryNext(int64_t& out);

    /** Checked seek(): false (position unchanged) when @p q is past
     *  length() or the cursor is poisoned, instead of trapping. */
    bool trySeek(uint64_t q);

    /** True once a checked decode has failed on this cursor. */
    bool poisoned() const { return poisoned_; }

    bool hasNext() const { return pos_ < s_->length; }
    bool hasPrev() const { return pos_ > 0; }
    uint64_t pos() const { return pos_; }

    /** Reposition the cursor. @p q may be length() (one past the last
     *  value, the natural start for a backward sweep) but not beyond:
     *  a position past the end can never be read by next() or prev()
     *  and always indicates index arithmetic gone wrong upstream. */
    void
    seek(uint64_t q)
    {
        WET_ASSERT(q <= s_->length,
                   "seek past end: " << q << " > " << s_->length);
        pos_ = q;
    }

    /**
     * Decode work performed so far, in machine steps (one per value
     * entering the window, either direction; Raw streams count their
     * full up-front decode). The cursor-locality benches divide this
     * by length() to estimate the fraction of the stream touched.
     */
    uint64_t decodeSteps() const { return decodeSteps_; }

    /**
     * Times at() abandoned the current sweep and re-initialized from
     * the front or a checkpoint to reach a position behind it. A
     * sequential forward pass never restarts; a nonzero count on a
     * query that believes itself linear is the re-scan bug class the
     * extraction layers assert against (DESIGN.md §14).
     */
    uint64_t restarts() const { return restarts_; }

    /**
     * Scan the whole stream, storing a decode checkpoint into @p out
     * every @p interval values (encoder helper; requires a fresh
     * Forward cursor over @p out itself).
     */
    void captureCheckpoints(CompressedStream& out, uint64_t interval);

  private:
    void initFront();
    void initFromCheckpoint(const CompressedStream::Checkpoint& cp);
    void stepForward();
    /** One machine step back; false on FR/BL divergence. */
    bool stepBackward();
    const int64_t* ctxLeft();
    const int64_t* ctxRight();

    const CompressedStream* s_;
    Mode mode_;
    bool raw_ = false;
    std::vector<int64_t> rawVals_;

    std::unique_ptr<PredictorModel> blModel_;
    std::unique_ptr<PredictorModel> frModel_;
    unsigned idxBits_ = 0;
    unsigned ctxLen_ = 0;
    unsigned n_ = 1;
    uint64_t machinePos_ = 0;   //!< window covers [machinePos, +n)
    uint64_t sweepStart_ = 0;   //!< earliest back-steppable position
    size_t flagPos_ = 0;
    size_t missPos_ = 0;
    std::vector<int64_t> window_;
    support::BitStack frFlags_;
    support::VarintBuffer frVals_;
    int64_t ctxBuf_[10];

    uint64_t pos_ = 0; //!< logical next()/prev() position
    uint64_t decodeSteps_ = 0;
    uint64_t restarts_ = 0;
    bool poisoned_ = false;
};

} // namespace codec
} // namespace wet

#endif // WET_CODEC_CURSOR_H
