#ifndef WET_CODEC_ENCODER_H
#define WET_CODEC_ENCODER_H

#include <vector>

#include "codec/stream.h"

namespace wet {
namespace codec {

/**
 * Compress @p vals with the given configuration. Streams shorter than
 * the method's minimum viable length fall back to Method::Raw.
 *
 * The encoder performs the paper's "repeated application of the
 * compression operation": a forward sweep that builds the FR side,
 * then a backward sweep that converts everything into the BL side,
 * leaving the stream at rest at the front with the BL lookup-table
 * snapshot needed to start decoding at position 0.
 *
 * @param checkpoint_interval if non-zero, capture a decode
 *        checkpoint every that many values (space/seek-time knob).
 */
CompressedStream encodeStream(const std::vector<int64_t>& vals,
                              CodecConfig cfg,
                              uint64_t checkpoint_interval = 0);

/** Decode a whole stream front to back (convenience / tests). */
std::vector<int64_t> decodeAll(const CompressedStream& s);

} // namespace codec
} // namespace wet

#endif // WET_CODEC_ENCODER_H
