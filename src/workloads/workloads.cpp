#include "workloads.h"

#include "lang/codegen.h"
#include "support/error.h"
#include "support/rng.h"

namespace wet {
namespace workloads {

namespace {

/** First value is the scale; all later `in()` reads are random. */
class ScaleThenRandomInput : public interp::InputSource
{
  public:
    ScaleThenRandomInput(uint64_t scale, uint64_t seed)
        : scale_(scale), rng_(seed)
    {
    }

    int64_t
    next() override
    {
        if (!scaleRead_) {
            scaleRead_ = true;
            return static_cast<int64_t>(scale_);
        }
        return static_cast<int64_t>(rng_.next() >> 16);
    }

  private:
    uint64_t scale_;
    support::Rng rng_;
    bool scaleRead_ = false;
};

// Shared pseudo-random helper embedded in each program. Keeping the
// generator inside the program (rather than in()) gives the value
// profile the mixed predictable/unpredictable character of real runs.
const char* kRndHelper = R"WET(
const RNG = 0;

fn rnd() {
    var s = mem[RNG];
    s = (s * 6364136223846793005 + 1442695040888963407) &
        0x7fffffffffffffff;
    mem[RNG] = s;
    return s >> 17;
}
)WET";

// --------------------------------------------------------------- go
// 099.go: game-tree search over a board with irregular control flow
// and data-dependent branching (the paper's hardest-to-compress
// subject).
const char* kGoSource = R"WET(
const SIZE = 81;
const BOARD = 16;

fn eval_move(idx, player) {
    // Score only the stones reachable from the move by a
    // board-content-driven walk: loop lengths and branches depend on
    // the data, like real go position evaluation.
    var s = 0;
    var p = idx;
    var steps = 0;
    while (steps < 24) {
        var c = mem[BOARD + p];
        if (c == player) {
            s = s + 7;
            p = (p + 1) % SIZE;
        } else if (c == 0) {
            s = s + 1;
            p = (p + 3) % SIZE;
            if (mem[BOARD + p] == player) {
                s = s + 4;
            }
        } else {
            s = s - 5;
            p = (p + c * 2 + 1) % SIZE;
            if (s < 0 - 30) {
                return s;
            }
        }
        steps = steps + 1 + (c & 1);
    }
    return s;
}

fn negamax(depth, player, last) {
    if (depth == 0) {
        return eval_move(last, player);
    }
    var best = 0 - 1000000;
    var idx = (last * 7 + rnd()) % SIZE;
    var step = 1 + rnd() % 7;
    for (var tried = 0; tried < 4; tried = tried + 1) {
        idx = (idx + step) % SIZE;
        if (mem[BOARD + idx] == 0) {
            mem[BOARD + idx] = player;
            var v = 0 - negamax(depth - 1, 3 - player, idx);
            mem[BOARD + idx] = 0;
            if (v > best) {
                best = v;
            }
        } else if (mem[BOARD + idx] == player && tried > 1) {
            best = best + 1;
        }
    }
    if (best < 0 - 900000) {
        best = eval_move(last, player);
    }
    return best;
}

fn main() {
    mem[RNG] = 88172645463325252;
    var games = in();
    var total = 0;
    for (var g = 0; g < games; g = g + 1) {
        for (var i = 0; i < SIZE; i = i + 1) {
            mem[BOARD + i] = rnd() % 3;
        }
        total = total + negamax(4, 1, rnd() % SIZE);
    }
    out(total);
}
)WET";

// -------------------------------------------------------------- gcc
// 126.gcc: compile synthetic expression trees — build, constant-fold,
// and "emit" — heavy recursion over pointer structures.
const char* kGccSource = R"WET(
const ARENA = 16;
const NODE_WORDS = 4;
const NEXT_FREE = 8;
// node layout: [op, lhs, rhs, val]; op 0 = leaf constant

fn new_node(op, lhs, rhs, val) {
    var p = mem[NEXT_FREE];
    mem[NEXT_FREE] = p + NODE_WORDS;
    mem[p] = op;
    mem[p + 1] = lhs;
    mem[p + 2] = rhs;
    mem[p + 3] = val;
    return p;
}

fn build(depth) {
    if (depth == 0 || rnd() % 4 == 0) {
        return new_node(0, 0, 0, rnd() % 1000);
    }
    var op = 1 + rnd() % 4;
    var l = build(depth - 1);
    var r = build(depth - 1);
    return new_node(op, l, r, 0);
}

fn apply(op, a, b) {
    if (op == 1) { return a + b; }
    if (op == 2) { return a - b; }
    if (op == 3) { return a * b; }
    return a / (b + 1);
}

fn fold(p) {
    var op = mem[p];
    if (op == 0) {
        return p;
    }
    var l = fold(mem[p + 1]);
    var r = fold(mem[p + 2]);
    mem[p + 1] = l;
    mem[p + 2] = r;
    if (mem[l] == 0 && mem[r] == 0) {
        mem[p] = 0;
        mem[p + 3] = apply(op, mem[l + 3], mem[r + 3]);
    }
    return p;
}

fn emit(p) {
    // count the instructions a code generator would produce
    if (mem[p] == 0) {
        return 1;
    }
    var l = emit(mem[p + 1]);
    var r = emit(mem[p + 2]);
    var cost = 1;
    if (mem[p] == 3 || mem[p] == 4) {
        cost = 3;
    }
    return l + r + cost;
}

fn main() {
    mem[RNG] = 424242;
    var functions = in();
    var total = 0;
    for (var f = 0; f < functions; f = f + 1) {
        mem[NEXT_FREE] = ARENA;
        var tree = build(7);
        tree = fold(tree);
        total = total + emit(tree);
    }
    out(total);
}
)WET";

// --------------------------------------------------------------- li
// 130.li: a lisp-ish list interpreter — cons cells, map, filter, and
// reduce loops over linked structures.
const char* kLiSource = R"WET(
const HEAP = 16;
const NEXT_FREE = 8;
const NIL = 0;
// cons cell: [car, cdr]

fn cons(a, d) {
    var p = mem[NEXT_FREE];
    mem[NEXT_FREE] = p + 2;
    mem[p] = a;
    mem[p + 1] = d;
    return p;
}

fn build_list(n) {
    var lst = NIL;
    for (var i = 0; i < n; i = i + 1) {
        lst = cons(rnd() % 100, lst);
    }
    return lst;
}

fn map_inc(lst) {
    if (lst == NIL) {
        return NIL;
    }
    return cons(mem[lst] + 1, map_inc(mem[lst + 1]));
}

fn filter_odd(lst) {
    if (lst == NIL) {
        return NIL;
    }
    var rest = filter_odd(mem[lst + 1]);
    if ((mem[lst] & 1) == 1) {
        return cons(mem[lst], rest);
    }
    return rest;
}

fn sum(lst) {
    var s = 0;
    while (lst != NIL) {
        s = s + mem[lst];
        lst = mem[lst + 1];
    }
    return s;
}

fn main() {
    mem[RNG] = 31415926;
    var rounds = in();
    var total = 0;
    for (var r = 0; r < rounds; r = r + 1) {
        mem[NEXT_FREE] = HEAP;
        var lst = build_list(64);
        var m = map_inc(lst);
        var f = filter_odd(m);
        total = total + sum(f);
    }
    out(total);
}
)WET";

// ------------------------------------------------------------- gzip
// 164.gzip: LZ77-style compression — sliding-window match search
// with hash heads over repetitive synthetic text.
const char* kGzipSource = R"WET(
const TEXT = 4096;
const TEXT_LEN = 16384;
const HEAD = 512;
const HEAD_SIZE = 1024;

fn gen_text() {
    // repetitive data: random runs plus copies of earlier chunks
    var pos = 0;
    while (pos < TEXT_LEN) {
        if (pos > 512 && rnd() % 4 == 0) {
            var src = rnd() % (pos - 256);
            var len = 8 + rnd() % 48;
            for (var i = 0; i < len && pos < TEXT_LEN; i = i + 1) {
                mem[TEXT + pos] = mem[TEXT + src + i];
                pos = pos + 1;
            }
        } else {
            var len = 4 + rnd() % 24;
            for (var i = 0; i < len && pos < TEXT_LEN; i = i + 1) {
                mem[TEXT + pos] = rnd() % 160;
                pos = pos + 1;
            }
        }
    }
}

fn hash3(p) {
    return (mem[TEXT + p] * 33 * 33 + mem[TEXT + p + 1] * 33 +
            mem[TEXT + p + 2]) % HEAD_SIZE;
}

fn match_len(a, b, limit) {
    var n = 0;
    while (n < limit && mem[TEXT + a + n] == mem[TEXT + b + n]) {
        n = n + 1;
    }
    return n;
}

fn main() {
    mem[RNG] = 271828182;
    var passes = in();
    var matches = 0;
    var literals = 0;
    for (var pass = 0; pass < passes; pass = pass + 1) {
        gen_text();
        for (var i = 0; i < HEAD_SIZE; i = i + 1) {
            mem[HEAD + i] = 0 - 1;
        }
        var pos = 0;
        while (pos + 3 < TEXT_LEN) {
            var h = hash3(pos);
            var cand = mem[HEAD + h];
            mem[HEAD + h] = pos;
            var best = 0;
            if (cand >= 0 && pos - cand < 4096) {
                var limit = TEXT_LEN - pos - 1;
                if (limit > 255) {
                    limit = 255;
                }
                best = match_len(cand, pos, limit);
            }
            if (best >= 3) {
                matches = matches + 1;
                pos = pos + best;
            } else {
                literals = literals + 1;
                pos = pos + 1;
            }
        }
    }
    out(matches);
    out(literals);
}
)WET";

// -------------------------------------------------------------- mcf
// 181.mcf: network optimization — Bellman-Ford relaxation sweeps over
// an in-memory arc list (pointer-chasing loads, long dependence
// chains).
const char* kMcfSource = R"WET(
const NODES = 512;
const DEG = 4;
const DIST = 1024;
const ARC_TO = 2048;
const ARC_COST = 16384;

fn main() {
    mem[RNG] = 16180339;
    var rounds = in();
    var reached = 0;
    for (var r = 0; r < rounds; r = r + 1) {
        // build a fresh random network
        for (var i = 0; i < NODES; i = i + 1) {
            mem[DIST + i] = 1000000000;
            for (var d = 0; d < DEG; d = d + 1) {
                mem[ARC_TO + i * DEG + d] = rnd() % NODES;
                mem[ARC_COST + i * DEG + d] = 1 + rnd() % 100;
            }
        }
        mem[DIST + 0] = 0;
        var changed = 1;
        var sweeps = 0;
        while (changed == 1 && sweeps < 24) {
            changed = 0;
            for (var i = 0; i < NODES; i = i + 1) {
                var du = mem[DIST + i];
                if (du < 1000000000) {
                    for (var d = 0; d < DEG; d = d + 1) {
                        var v = mem[ARC_TO + i * DEG + d];
                        var c = mem[ARC_COST + i * DEG + d];
                        if (du + c < mem[DIST + v]) {
                            mem[DIST + v] = du + c;
                            changed = 1;
                        }
                    }
                }
            }
            sweeps = sweeps + 1;
        }
        for (var i = 0; i < NODES; i = i + 1) {
            if (mem[DIST + i] < 1000000000) {
                reached = reached + 1;
            }
        }
    }
    out(reached);
}
)WET";

// ----------------------------------------------------------- parser
// 197.parser: generate token streams from a small grammar and parse
// them back with a recursive-descent parser (branchy, call heavy).
const char* kParserSource = R"WET(
const TOKENS = 1024;
const GEN_POS = 8;
const PARSE_POS = 9;
// tokens: 0..9 numbers, 10 '+', 11 '-', 12 '*', 13 '(', 14 ')'

fn gen_expr(depth) {
    var p = mem[GEN_POS];
    if (depth == 0 || rnd() % 3 == 0) {
        mem[TOKENS + p] = rnd() % 10;
        mem[GEN_POS] = p + 1;
        return 0;
    }
    if (rnd() % 4 == 0) {
        mem[TOKENS + p] = 13;
        mem[GEN_POS] = p + 1;
        gen_expr(depth - 1);
        var q = mem[GEN_POS];
        mem[TOKENS + q] = 14;
        mem[GEN_POS] = q + 1;
        return 0;
    }
    gen_expr(depth - 1);
    var q = mem[GEN_POS];
    mem[TOKENS + q] = 10 + rnd() % 3;
    mem[GEN_POS] = q + 1;
    gen_expr(depth - 1);
    return 0;
}

fn peek() {
    return mem[TOKENS + mem[PARSE_POS]];
}

fn next_tok() {
    var t = peek();
    mem[PARSE_POS] = mem[PARSE_POS] + 1;
    return t;
}

fn parse_factor() {
    var t = next_tok();
    if (t == 13) {
        var v = parse_expr();
        next_tok(); // ')'
        return v;
    }
    return t;
}

fn parse_term() {
    var v = parse_factor();
    while (peek() == 12) {
        next_tok();
        v = v * parse_factor();
    }
    return v;
}

fn parse_expr() {
    var v = parse_term();
    while (peek() == 10 || peek() == 11) {
        var op = next_tok();
        var r = parse_term();
        if (op == 10) {
            v = v + r;
        } else {
            v = v - r;
        }
    }
    return v;
}

const DICT = 2048;
const DICT_SIZE = 18;

fn dict_lookup(tok) {
    // Linear dictionary scan, as a parser does for every word: the
    // dominant, highly regular part of real parsing workloads.
    for (var d = 0; d < DICT_SIZE; d = d + 1) {
        if (mem[DICT + d] == tok * 7 % 97) {
            return d;
        }
    }
    return 0 - 1;
}

fn main() {
    mem[RNG] = 14142135;
    var sentences = in();
    var checksum = 0;
    for (var d = 0; d < DICT_SIZE; d = d + 1) {
        mem[DICT + d] = d * 11 % 97;
    }
    for (var s = 0; s < sentences; s = s + 1) {
        mem[GEN_POS] = 0;
        gen_expr(6);
        var e = mem[GEN_POS];
        mem[TOKENS + e] = 15; // end marker
        // Dictionary pass over every token of the sentence.
        for (var t = 0; t < e; t = t + 1) {
            checksum = checksum + dict_lookup(mem[TOKENS + t]);
        }
        mem[PARSE_POS] = 0;
        checksum = checksum + parse_expr();
    }
    out(checksum);
}
)WET";

// ----------------------------------------------------------- vortex
// 255.vortex: an object database — open-addressing hash table with
// insert / lookup / delete transactions (the paper's most
// compressible subject: highly regular control and values).
const char* kVortexSource = R"WET(
const CAP = 16384;
const KEYS = 1024;
const VALS = 32768;
const EMPTY = 0;
const TOMB = 1;

fn slot_of(key) {
    var h = (key * 2654435761) % CAP;
    if (h < 0) {
        h = 0 - h;
    }
    return h;
}

fn insert(key, val) {
    var s = slot_of(key);
    for (var probe = 0; probe < CAP; probe = probe + 1) {
        var k = mem[KEYS + s];
        if (k == EMPTY || k == TOMB || k == key) {
            mem[KEYS + s] = key;
            mem[VALS + s] = val;
            return s;
        }
        s = s + 1;
        if (s == CAP) {
            s = 0;
        }
    }
    return 0 - 1;
}

fn lookup(key) {
    var s = slot_of(key);
    for (var probe = 0; probe < CAP; probe = probe + 1) {
        var k = mem[KEYS + s];
        if (k == EMPTY) {
            return 0 - 1;
        }
        if (k == key) {
            return mem[VALS + s];
        }
        s = s + 1;
        if (s == CAP) {
            s = 0;
        }
    }
    return 0 - 1;
}

fn erase(key) {
    var s = slot_of(key);
    for (var probe = 0; probe < CAP; probe = probe + 1) {
        var k = mem[KEYS + s];
        if (k == EMPTY) {
            return 0;
        }
        if (k == key) {
            mem[KEYS + s] = TOMB;
            return 1;
        }
        s = s + 1;
        if (s == CAP) {
            s = 0;
        }
    }
    return 0;
}

fn main() {
    mem[RNG] = 57721566;
    var txns = in();
    var hits = 0;
    var base = 2;
    for (var t = 0; t < txns; t = t + 1) {
        // Phase-structured object transactions: a fixed insert /
        // lookup / update rhythm with high key locality, like the
        // paper's very regular database subject.
        var kind = t % 8;
        var key = base + t % 97;
        if (kind < 2) {
            insert(key, key * 3 + 1);
        } else if (kind < 7) {
            if (lookup(key) >= 0) {
                hits = hits + 1;
            }
        } else {
            erase(base + t % 193);
            base = base + 1;
            if (base > 3000) {
                base = 2;
            }
        }
    }
    out(hits);
}
)WET";

// ------------------------------------------------------------ bzip2
// 256.bzip2: block transforms — counting sort, move-to-front, and
// run-length coding over generated blocks (regular loop nests).
const char* kBzip2Source = R"WET(
const BLOCK = 4096;
const BLOCK_LEN = 2048;
const COUNTS = 512;
const MTF = 768;
const SORTED = 8192;

fn main() {
    mem[RNG] = 26535897;
    var blocks = in();
    var outBits = 0;
    for (var b = 0; b < blocks; b = b + 1) {
        // generate a skewed-symbol block
        for (var i = 0; i < BLOCK_LEN; i = i + 1) {
            var r = rnd() % 100;
            var sym = r % 8;
            if (r > 80) {
                sym = 8 + r % 56;
            }
            mem[BLOCK + i] = sym;
        }
        // counting sort
        for (var s = 0; s < 64; s = s + 1) {
            mem[COUNTS + s] = 0;
        }
        for (var i = 0; i < BLOCK_LEN; i = i + 1) {
            var s = mem[BLOCK + i];
            mem[COUNTS + s] = mem[COUNTS + s] + 1;
        }
        var at = 0;
        for (var s = 0; s < 64; s = s + 1) {
            for (var c = 0; c < mem[COUNTS + s]; c = c + 1) {
                mem[SORTED + at] = s;
                at = at + 1;
            }
        }
        // move-to-front over the original block
        for (var s = 0; s < 64; s = s + 1) {
            mem[MTF + s] = s;
        }
        var zeros = 0;
        for (var i = 0; i < BLOCK_LEN; i = i + 1) {
            var sym = mem[BLOCK + i];
            var j = 0;
            while (mem[MTF + j] != sym) {
                j = j + 1;
            }
            var found = j;
            while (j > 0) {
                mem[MTF + j] = mem[MTF + j - 1];
                j = j - 1;
            }
            mem[MTF + 0] = sym;
            if (found == 0) {
                zeros = zeros + 1;
            }
        }
        // run-length estimate over the sorted block
        var runs = 0;
        for (var i = 1; i < BLOCK_LEN; i = i + 1) {
            if (mem[SORTED + i] != mem[SORTED + i - 1]) {
                runs = runs + 1;
            }
        }
        outBits = outBits + runs * 6 + zeros;
    }
    out(outBits);
}
)WET";

// ------------------------------------------------------------ twolf
// 300.twolf: simulated-annealing placement — random cell swaps with
// data-dependent accept/reject (irregular value and branch profile).
const char* kTwolfSource = R"WET(
const CELLS = 256;
const XS = 1024;
const YS = 2048;
const NETS = 3072;
// each "net" connects cell i to cell mem[NETS+i]

fn wirelen(i) {
    var j = mem[NETS + i];
    var dx = mem[XS + i] - mem[XS + j];
    var dy = mem[YS + i] - mem[YS + j];
    if (dx < 0) {
        dx = 0 - dx;
    }
    if (dy < 0) {
        dy = 0 - dy;
    }
    if (dx > dy) {
        return dx * 2 + dy;
    }
    return dy * 2 + dx;
}

fn cost_around(i) {
    // Walk this cell's fan-in chain: the chain length depends on the
    // placement data, so control flow varies move to move.
    var c = wirelen(i);
    var k = mem[NETS + i];
    var hops = 0;
    while (hops < 12 && k != i) {
        c = c + wirelen(k);
        if (mem[XS + k] > mem[XS + i]) {
            k = mem[NETS + k];
        } else {
            k = (k + mem[YS + k]) % CELLS;
        }
        hops = hops + 1 + (c & 1);
    }
    return c;
}

fn main() {
    mem[RNG] = 17320508;
    var moves = in();
    for (var i = 0; i < CELLS; i = i + 1) {
        mem[XS + i] = rnd() % 64;
        mem[YS + i] = rnd() % 64;
        mem[NETS + i] = rnd() % CELLS;
    }
    var temp = 1000;
    var accepted = 0;
    for (var m = 0; m < moves; m = m + 1) {
        var a = rnd() % CELLS;
        var b = rnd() % CELLS;
        var kind = rnd() % 3;
        var before = cost_around(a);
        if (kind != 1) {
            before = before + cost_around(b);
        }
        var tx = mem[XS + a];
        var ty = mem[YS + a];
        if (kind == 0) {
            // pairwise swap
            mem[XS + a] = mem[XS + b];
            mem[YS + a] = mem[YS + b];
            mem[XS + b] = tx;
            mem[YS + b] = ty;
        } else if (kind == 1) {
            // single-cell displacement
            mem[XS + a] = rnd() % 64;
            mem[YS + a] = rnd() % 64;
        } else {
            // axis swap: exchange one coordinate only
            mem[XS + a] = mem[XS + b];
            mem[XS + b] = tx;
        }
        var after = cost_around(a);
        if (kind != 1) {
            after = after + cost_around(b);
        }
        var delta = after - before;
        var noisy = rnd() % 1000;
        if (delta < 0 || noisy < temp ||
            (delta < 8 && noisy < temp * 2))
        {
            accepted = accepted + 1;
            if (delta > 0 && temp > 10) {
                temp = temp - 1;
            }
        } else {
            // undo the move
            if (kind == 0) {
                var ux = mem[XS + a];
                var uy = mem[YS + a];
                mem[XS + a] = mem[XS + b];
                mem[YS + a] = mem[YS + b];
                mem[XS + b] = ux;
                mem[YS + b] = uy;
            } else if (kind == 1) {
                mem[XS + a] = tx;
                mem[YS + a] = ty;
            } else {
                mem[XS + b] = mem[XS + a];
                mem[XS + a] = tx;
            }
        }
        if (m % 64 == 63 && temp > 10) {
            temp = temp - 5;
        }
    }
    out(accepted);
}
)WET";

// ------------------------------------------------------- mt.counter
// mt.counter: three workers hammer four shared histogram cells with
// unsynchronized read-modify-writes — the canonical data race. Each
// worker also keeps a private accumulator cell so the trace mixes
// racy and thread-local accesses. This is the positive control for
// the race detector: every run must report races.
const char* kMtCounterSource = R"WET(
const HIST = 8;
const PRIV = 16;

fn worker(id, iters) {
    var sum = 0;
    for (var i = 0; i < iters; i = i + 1) {
        var slot = HIST + ((id + i) % 4);
        mem[slot] = mem[slot] + id;
        mem[PRIV + id] = mem[PRIV + id] + mem[slot] % 7;
        sum = sum + mem[PRIV + id] % 13;
    }
    return sum;
}

fn main() {
    var scale = in();
    var iters = scale * 6 + 4;
    for (var s = 0; s < 4; s = s + 1) {
        mem[HIST + s] = 0;
    }
    var t1 = spawn worker(1, iters);
    var t2 = spawn worker(2, iters);
    var t3 = spawn worker(3, iters);
    var r1 = join(t1);
    var r2 = join(t2);
    var r3 = join(t3);
    var total = 0;
    for (var s = 0; s < 4; s = s + 1) {
        total = total + mem[HIST + s];
    }
    out(total);
    out(r1 + r2 + r3);
}
)WET";

// ---------------------------------------------------------- mt.bank
// mt.bank: three tellers shuffle money between eight shared accounts,
// every transfer inside one global lock. All cross-thread accesses
// are release/acquire-ordered, so the detector must report zero races
// and the account total is conserved. Negative control for lock-based
// happens-before edges.
const char* kMtBankSource = R"WET(
const ACCTS = 8;
const BASE = 8;
const LBANK = 1;

fn teller(id, rounds) {
    var moved = 0;
    for (var r = 0; r < rounds; r = r + 1) {
        var from = (id + r) % ACCTS;
        var to = (id * 3 + r * 5 + 1) % ACCTS;
        lock(LBANK);
        if (from != to) {
            var amt = mem[BASE + from] % 16;
            mem[BASE + from] = mem[BASE + from] - amt;
            mem[BASE + to] = mem[BASE + to] + amt;
            moved = moved + amt;
        }
        unlock(LBANK);
    }
    return moved;
}

fn main() {
    var scale = in();
    var rounds = scale * 5 + 3;
    for (var a = 0; a < ACCTS; a = a + 1) {
        mem[BASE + a] = 100 + a * 10;
    }
    var t1 = spawn teller(1, rounds);
    var t2 = spawn teller(2, rounds);
    var t3 = spawn teller(3, rounds);
    var m = join(t1);
    m = m + join(t2);
    m = m + join(t3);
    var total = 0;
    for (var a = 0; a < ACCTS; a = a + 1) {
        total = total + mem[BASE + a];
    }
    out(total);
    out(m);
}
)WET";

// ---------------------------------------------------------- mt.tree
// mt.tree: fork-join divide-and-conquer sum. Each node spawns a
// thread for its left half and recurses into the right half itself,
// so the thread lifetimes form a binary tree. Leaves touch disjoint
// array ranges and parents only combine after join, so the program is
// race-free with no locks at all — negative control for spawn/join
// happens-before edges.
const char* kMtTreeSource = R"WET(
const DATA = 32;
const PARTIAL = 512;

fn leaf(lo, n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        var v = mem[DATA + lo + i];
        s = s + v;
        mem[DATA + lo + i] = (v * 3 + lo) % 97;
    }
    return s;
}

fn node(lo, n, depth) {
    if (depth == 0 || n < 4) {
        return leaf(lo, n);
    }
    var half = n / 2;
    var t = spawn node(lo, half, depth - 1);
    var right = node(lo + half, n - half, depth - 1);
    var left = join(t);
    mem[PARTIAL + lo] = left + right;
    return left + right;
}

fn main() {
    var scale = in();
    var n = scale * 4 + 16;
    if (n > 256) {
        n = 256;
    }
    for (var i = 0; i < n; i = i + 1) {
        mem[DATA + i] = (i * 7 + 3) % 41;
    }
    out(node(0, n, 2));
    var check = 0;
    for (var i = 0; i < n; i = i + 1) {
        check = check + mem[DATA + i];
    }
    out(check);
}
)WET";

std::vector<Workload>
makeWorkloads()
{
    auto withRnd = [](const char* src) {
        return std::string(kRndHelper) + src;
    };
    std::vector<Workload> w;
    w.push_back({"099.go", "game-tree search, irregular control flow",
                 withRnd(kGoSource), 1 << 16, 400});
    w.push_back({"126.gcc", "expression-tree compiler passes",
                 withRnd(kGccSource), 1 << 16, 900});
    w.push_back({"130.li", "list interpreter over cons cells",
                 withRnd(kLiSource), 1 << 16, 600});
    w.push_back({"164.gzip", "LZ77 sliding-window compressor",
                 withRnd(kGzipSource), 1 << 16, 3});
    w.push_back({"181.mcf", "Bellman-Ford network optimization",
                 withRnd(kMcfSource), 1 << 16, 10});
    w.push_back({"197.parser", "grammar generator + R-D parser",
                 withRnd(kParserSource), 1 << 16, 1000});
    w.push_back({"255.vortex", "object database transactions",
                 withRnd(kVortexSource), 1 << 16, 60000});
    w.push_back({"256.bzip2", "block sort + MTF + RLE transforms",
                 withRnd(kBzip2Source), 1 << 16, 10});
    w.push_back({"300.twolf", "simulated-annealing placement",
                 withRnd(kTwolfSource), 1 << 16, 2200});
    // Threaded workloads: exercise the per-thread SYNC streams and
    // the race detector (one racy positive control, two race-free
    // negative controls). They use no rnd(), so their cross-thread
    // access patterns are fully determined by the scale.
    w.push_back({"mt.counter", "unsynchronized shared counters (racy)",
                 kMtCounterSource, 1 << 16, 300});
    w.push_back({"mt.bank", "lock-serialized transfers (race-free)",
                 kMtBankSource, 1 << 16, 300});
    w.push_back({"mt.tree", "fork-join range sum (race-free)",
                 kMtTreeSource, 1 << 16, 40});
    return w;
}

} // namespace

const std::vector<Workload>&
allWorkloads()
{
    static const std::vector<Workload> workloads = makeWorkloads();
    return workloads;
}

const Workload&
workloadByName(const std::string& name)
{
    for (const auto& w : allWorkloads())
        if (w.name == name)
            return w;
    WET_FATAL("unknown workload '" << name << "'");
}

ir::Module
compileWorkload(const Workload& w)
{
    return lang::compileString(w.source, w.memWords);
}

std::unique_ptr<interp::InputSource>
makeWorkloadInput(const Workload& w, uint64_t scale)
{
    // Seed differs per workload so no two programs see the same
    // external input stream.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    for (char c : w.name)
        seed = seed * 131 + static_cast<unsigned char>(c);
    return std::make_unique<ScaleThenRandomInput>(scale, seed);
}

} // namespace workloads
} // namespace wet
