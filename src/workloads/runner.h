#ifndef WET_WORKLOADS_RUNNER_H
#define WET_WORKLOADS_RUNNER_H

#include <memory>

#include "analysis/moduleanalysis.h"
#include "core/builder.h"
#include "interp/interpreter.h"
#include "workloads/workloads.h"

namespace wet {
namespace workloads {

/** Everything produced by one traced workload run. */
struct RunArtifacts
{
    std::unique_ptr<ir::Module> module;
    std::unique_ptr<analysis::ModuleAnalysis> ma;
    interp::RunResult run;
    core::WetGraph graph;
    /** Wall seconds for interpret + WET construction. */
    double buildSeconds = 0.0;
};

/** Knobs for buildWet (used by the ablation benches). */
struct BuildConfig
{
    /** Ball–Larus path cap; 1 forces one-block path nodes. */
    uint64_t maxPaths = uint64_t{1} << 24;
    core::BuilderOptions builder;
    /** Worker threads for module analysis (1 = serial). */
    unsigned threads = 1;
};

/**
 * Compile, trace, and build the WET of one workload at a given
 * scale. @p extra_sink, when non-null, also observes the trace
 * (e.g. an arch::ArchProfileSink for Table 4).
 */
std::unique_ptr<RunArtifacts>
buildWet(const Workload& w, uint64_t scale,
         interp::TraceSink* extra_sink = nullptr,
         const BuildConfig& cfg = BuildConfig());

/** Run a workload without building a WET (plain statistics). */
interp::RunResult runOnly(const Workload& w, uint64_t scale,
                          interp::TraceSink* sink = nullptr);

} // namespace workloads
} // namespace wet

#endif // WET_WORKLOADS_RUNNER_H
