#include "runner.h"

#include "support/timer.h"

namespace wet {
namespace workloads {

std::unique_ptr<RunArtifacts>
buildWet(const Workload& w, uint64_t scale,
         interp::TraceSink* extra_sink, const BuildConfig& cfg)
{
    auto art = std::make_unique<RunArtifacts>();
    art->module =
        std::make_unique<ir::Module>(compileWorkload(w));
    art->ma = std::make_unique<analysis::ModuleAnalysis>(
        *art->module, cfg.maxPaths, cfg.threads);

    auto input = makeWorkloadInput(w, scale);
    core::WetBuilder builder(*art->ma, cfg.builder);
    interp::TeeSink tee;
    tee.addSink(&builder);
    if (extra_sink)
        tee.addSink(extra_sink);

    support::Timer timer;
    interp::Interpreter interp(*art->ma, *input, &tee);
    art->run = interp.run();
    art->graph = builder.take();
    art->buildSeconds = timer.seconds();
    return art;
}

interp::RunResult
runOnly(const Workload& w, uint64_t scale, interp::TraceSink* sink)
{
    ir::Module mod = compileWorkload(w);
    analysis::ModuleAnalysis ma(mod);
    auto input = makeWorkloadInput(w, scale);
    interp::Interpreter interp(ma, *input, sink);
    return interp.run();
}

} // namespace workloads
} // namespace wet
