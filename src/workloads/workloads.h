#ifndef WET_WORKLOADS_WORKLOADS_H
#define WET_WORKLOADS_WORKLOADS_H

#include <memory>
#include <string>
#include <vector>

#include "interp/input.h"
#include "support/error.h"
#include "ir/module.h"

namespace wet {
namespace workloads {

/**
 * One synthetic benchmark program. The first nine workloads model
 * the program classes of the paper's SpecInt 95/2000 subjects
 * (irregular search, compilation, interpretation, compression,
 * network optimization, parsing, object database, block transforms,
 * and annealing placement) so that the WET compression and query
 * behaviour spans the same qualitative range. Three mt.* workloads
 * add threaded programs — one racy, one lock-ordered, one fork-join
 * tree — to exercise the SYNC streams and the race detector. See
 * DESIGN.md §2 and §12.
 */
struct Workload
{
    std::string name;        //!< paper-style name, e.g. "099.go"
    std::string description;
    std::string source;      //!< wetlang program text
    uint64_t memWords;       //!< flat memory size to compile with
    /** Scale value that yields roughly the default run length; the
     *  program reads it with its first `in()`. */
    uint64_t defaultScale;
};

/** All twelve workloads: the nine single-threaded ones in the
 *  paper's table order, then the three threaded mt.* ones. */
const std::vector<Workload>& allWorkloads();

/** Find a workload by name; throws WetError if unknown. */
const Workload& workloadByName(const std::string& name);

/** Compile a workload's source to IR. */
ir::Module compileWorkload(const Workload& w);

/**
 * Input source for a run: the scale first, then deterministic
 * pseudo-random values (each workload consumes what it needs).
 */
std::unique_ptr<interp::InputSource>
makeWorkloadInput(const Workload& w, uint64_t scale);

} // namespace workloads
} // namespace wet

#endif // WET_WORKLOADS_WORKLOADS_H
