#include "tracelog.h"

#include <deque>

#include "support/error.h"

namespace wet {
namespace baseline {

void
TraceLog::onEnterFunction(ir::FuncId f, const interp::DepRef& cs)
{
    (void)f;
    (void)cs;
    controlStack_.push_back(interp::DepRef{});
}

void
TraceLog::onLeaveFunction(ir::FuncId f)
{
    (void)f;
    controlStack_.pop_back();
}

void
TraceLog::onBlockEnter(ir::FuncId f, ir::BlockId b,
                       const interp::DepRef& control)
{
    blocks_.push_back(BlockRec{f, b});
    controlStack_.back() = control;
}

void
TraceLog::onStmt(const interp::StmtEvent& ev)
{
    Event e;
    e.stmt = ev.stmt;
    e.instance = ev.instance;
    e.value = ev.value;
    e.addr = ev.addr;
    e.deps[0] = ev.deps[0];
    e.deps[1] = ev.deps[1];
    e.control = controlStack_.back();
    e.numDeps = ev.numDeps;
    e.flags = static_cast<uint8_t>((ev.hasValue ? kHasValue : 0) |
                                   (ev.isLoad ? kIsLoad : 0) |
                                   (ev.isStore ? kIsStore : 0) |
                                   (ev.isBranch ? kIsBranch : 0));
    events_.push_back(e);
}

uint64_t
TraceLog::sizeBytes() const
{
    return events_.size() * sizeof(Event) +
           blocks_.size() * sizeof(BlockRec);
}

void
TraceLog::buildIndex()
{
    if (indexBuilt_)
        return;
    index_.reserve(events_.size());
    for (uint64_t i = 0; i < events_.size(); ++i)
        index_[key(events_[i].stmt, events_[i].instance)] = i;
    indexBuilt_ = true;
}

uint64_t
TraceLog::extractValues(
    ir::StmtId stmt, const std::function<void(int64_t)>& visit) const
{
    uint64_t count = 0;
    for (const Event& e : events_) {
        if (e.stmt == stmt && (e.flags & kHasValue)) {
            visit(e.value);
            ++count;
        }
    }
    return count;
}

uint64_t
TraceLog::extractAddresses(
    ir::StmtId stmt, const std::function<void(uint64_t)>& visit) const
{
    uint64_t count = 0;
    for (const Event& e : events_) {
        if (e.stmt == stmt && (e.flags & (kIsLoad | kIsStore))) {
            visit(e.addr);
            ++count;
        }
    }
    return count;
}

uint64_t
TraceLog::extractControlFlow(
    const std::function<void(ir::FuncId, ir::BlockId)>& visit) const
{
    for (const BlockRec& b : blocks_)
        visit(b.func, b.block);
    return blocks_.size();
}

std::vector<std::pair<ir::StmtId, uint32_t>>
TraceLog::backwardSlice(ir::StmtId stmt, uint32_t k,
                        uint64_t max_items) const
{
    WET_ASSERT(indexBuilt_,
               "call buildIndex() before backwardSlice()");
    std::vector<std::pair<ir::StmtId, uint32_t>> out;
    std::unordered_map<uint64_t, bool> seen;
    std::deque<uint64_t> work;
    auto push = [&](ir::StmtId s, uint32_t inst) {
        uint64_t kk = key(s, inst);
        if (!seen.emplace(kk, true).second)
            return;
        work.push_back(kk);
    };
    push(stmt, k);
    while (!work.empty() && out.size() < max_items) {
        uint64_t kk = work.front();
        work.pop_front();
        ir::StmtId s = static_cast<ir::StmtId>(kk >> 32);
        uint32_t inst = static_cast<uint32_t>(kk);
        out.emplace_back(s, inst);
        auto it = index_.find(kk);
        if (it == index_.end())
            continue;
        const Event& e = events_[it->second];
        for (uint8_t d = 0; d < e.numDeps; ++d)
            push(e.deps[d].stmt, e.deps[d].instance);
        if (e.control.valid())
            push(e.control.stmt, e.control.instance);
    }
    return out;
}

} // namespace baseline
} // namespace wet
