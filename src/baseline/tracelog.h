#ifndef WET_BASELINE_TRACELOG_H
#define WET_BASELINE_TRACELOG_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "interp/tracesink.h"
#include "ir/module.h"

namespace wet {
namespace baseline {

/**
 * The baseline the paper's introduction argues against: a flat,
 * uncompressed whole-execution log in execution order. Every profile
 * kind is present, but related information is only reachable by
 * scanning, and the memory cost is the raw trace.
 *
 * Queries mirror the WET query classes so bench/baseline_compare can
 * time the same questions against both representations.
 */
class TraceLog : public interp::TraceSink
{
  public:
    /** One executed statement, fully expanded (40 bytes). */
    struct Event
    {
        ir::StmtId stmt;
        uint32_t instance;
        int64_t value;
        uint64_t addr;
        interp::DepRef deps[2];
        interp::DepRef control;
        uint8_t numDeps;
        uint8_t flags; //!< bit 0 hasValue, 1 isLoad, 2 isStore, 3 isBranch
    };

    static constexpr uint8_t kHasValue = 1;
    static constexpr uint8_t kIsLoad = 2;
    static constexpr uint8_t kIsStore = 4;
    static constexpr uint8_t kIsBranch = 8;

    // TraceSink interface -------------------------------------------------
    void onEnterFunction(ir::FuncId f,
                         const interp::DepRef& cs) override;
    void onLeaveFunction(ir::FuncId f) override;
    void onBlockEnter(ir::FuncId f, ir::BlockId b,
                      const interp::DepRef& control) override;
    void onStmt(const interp::StmtEvent& ev) override;

    // Introspection -------------------------------------------------------
    const std::vector<Event>& events() const { return events_; }

    /** In-memory footprint of the log in bytes. */
    uint64_t sizeBytes() const;

    /**
     * Build the (stmt, local instance) -> event position index that
     * slicing needs; idempotent. Its memory is *not* part of
     * sizeBytes (it is query working state).
     */
    void buildIndex();

    // Queries (linear scans, as a flat log forces) -------------------------

    /** All values produced by @p stmt, in execution order. */
    uint64_t extractValues(
        ir::StmtId stmt,
        const std::function<void(int64_t)>& visit) const;

    /** All effective addresses touched by load/store @p stmt. */
    uint64_t extractAddresses(
        ir::StmtId stmt,
        const std::function<void(uint64_t)>& visit) const;

    /** Walk the block-level control flow trace. */
    uint64_t extractControlFlow(
        const std::function<void(ir::FuncId, ir::BlockId)>& visit)
        const;

    /**
     * Backward dynamic slice from the @p k-th execution of
     * @p stmt over data and control dependences.
     * @return visited (stmt, instance) pairs; empty if absent.
     */
    std::vector<std::pair<ir::StmtId, uint32_t>>
    backwardSlice(ir::StmtId stmt, uint32_t k,
                  uint64_t max_items = UINT64_MAX) const;

  private:
    struct BlockRec
    {
        ir::FuncId func;
        ir::BlockId block;
    };

    std::vector<Event> events_;
    std::vector<BlockRec> blocks_;
    std::vector<interp::DepRef> controlStack_;
    /** (stmt, instance) -> index in events_. */
    std::unordered_map<uint64_t, uint64_t> index_;
    bool indexBuilt_ = false;

    static uint64_t
    key(ir::StmtId s, uint32_t inst)
    {
        return (static_cast<uint64_t>(s) << 32) | inst;
    }
};

} // namespace baseline
} // namespace wet

#endif // WET_BASELINE_TRACELOG_H
