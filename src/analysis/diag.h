#ifndef WET_ANALYSIS_DIAG_H
#define WET_ANALYSIS_DIAG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wet {
namespace analysis {

/** Severity of a diagnostic. Errors indicate a broken invariant. */
enum class Severity : uint8_t { Note, Warning, Error };

/** Printable severity, e.g. "error". */
const char* severityName(Severity s);

/**
 * One finding of a verifier pass: a stable rule id (catalogued in
 * ruleDescription()), a severity, a human-oriented location string
 * ("fn 2 block 3", "node 17 edge 240", "byte 112"), and the message.
 */
struct Diagnostic
{
    std::string rule;
    Severity severity = Severity::Error;
    std::string location;
    std::string message;
};

/**
 * Shared diagnostics sink of the verifier subsystem.
 *
 * Passes report findings here instead of throwing, so one run can
 * surface every broken invariant at once; the engine renders the
 * collection as text (one line per finding, compiler style) or JSON
 * (stable layout for tooling and golden tests).
 *
 * Recording stops after `limit()` findings to bound the output on
 * catastrophically corrupt inputs, but the per-severity counters keep
 * counting, so hasErrors()/errorCount() stay truthful.
 */
class DiagEngine
{
  public:
    void report(std::string rule, Severity sev, std::string location,
                std::string message);

    void
    error(std::string rule, std::string location, std::string message)
    {
        report(std::move(rule), Severity::Error, std::move(location),
               std::move(message));
    }

    void
    warning(std::string rule, std::string location,
            std::string message)
    {
        report(std::move(rule), Severity::Warning,
               std::move(location), std::move(message));
    }

    void
    note(std::string rule, std::string location, std::string message)
    {
        report(std::move(rule), Severity::Note, std::move(location),
               std::move(message));
    }

    const std::vector<Diagnostic>& diagnostics() const
    { return diags_; }

    uint64_t errorCount() const { return errors_; }
    uint64_t warningCount() const { return warnings_; }
    uint64_t noteCount() const { return notes_; }
    bool hasErrors() const { return errors_ > 0; }

    /** True if any recorded diagnostic carries @p rule. */
    bool hasRule(const std::string& rule) const;

    /** Distinct rule ids among the recorded diagnostics. */
    std::vector<std::string> firedRules() const;

    size_t limit() const { return limit_; }
    void setLimit(size_t n) { limit_ = n; }

    /** Compiler-style text: "RULE severity: [location] message". */
    std::string renderText() const;

    /** Stable JSON object (diagnostics array + severity counters). */
    std::string renderJson() const;

  private:
    std::vector<Diagnostic> diags_;
    uint64_t errors_ = 0;
    uint64_t warnings_ = 0;
    uint64_t notes_ = 0;
    size_t limit_ = 256;
};

/**
 * One-line description of a rule id from the verifier rule catalog
 * (see DESIGN.md §7); nullptr for unknown ids.
 */
const char* ruleDescription(const std::string& rule);

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_DIAG_H
