#ifndef WET_ANALYSIS_ARTIFACTVERIFIER_H
#define WET_ANALYSIS_ARTIFACTVERIFIER_H

#include <cstdint>
#include <string>

#include "analysis/diag.h"
#include "codec/stream.h"
#include "core/compressed.h"

namespace wet {
namespace analysis {

/** Cost knobs for the compressed-artifact verifier. */
struct ArtifactVerifierOptions
{
    /** Exercise the backward decode machinery and compare it with the
     *  forward decode (rule ART001). */
    bool checkBidirectional = true;
    /** Compare decodes against tier-1 label vectors when the graph
     *  still holds them (rule ART002). */
    bool checkTier1 = true;
    /** Values decoded per checkpoint probe (rule ART004); the probe
     *  always covers at least the checkpoint's window. */
    uint64_t checkpointProbeValues = 64;
};

/**
 * Structural validation of a single compressed stream (rule ART003,
 * checkpoint shape under ART004). Returns true when the stream can be
 * decoded without tripping internal assertions: every later check and
 * every cursor construction must be gated on this. Bounds-checks the
 * entry stream byte-by-byte, so it is safe on arbitrary input.
 */
bool verifyStreamStructure(const codec::CompressedStream& s,
                           const std::string& location,
                           DiagEngine& diag);

/**
 * Full single-stream verification: structure (ART003/ART004), forward
 * vs backward decode (ART001), checkpoint probes against the forward
 * decode (ART004), and — when @p tier1 is non-null — comparison with
 * the original tier-1 sequence (ART002).
 */
bool verifyStream(const codec::CompressedStream& s,
                  const std::string& location, DiagEngine& diag,
                  const std::vector<int64_t>* tier1 = nullptr,
                  const ArtifactVerifierOptions& opt = {});

/**
 * Verify a whole tier-2 artifact (rules ART001..ART005): every label
 * stream round-trips (forward decode == backward decode == tier-1
 * original when available), checkpoints reproduce the forward decode,
 * and stream logical lengths agree with the graph structure (instance
 * counts, group shapes, pool pairing) without materializing more than
 * one stream at a time.
 *
 * Index-range consistency between the graph and the artifact's
 * node/pool tables is the loader's job (IO005); this verifier assumes
 * wc.node(n)/wc.pool(i) are valid for every graph index.
 *
 * Findings go to @p diag; returns true when no errors were added.
 */
bool verifyArtifact(const core::WetCompressed& wc, DiagEngine& diag,
                    const ArtifactVerifierOptions& opt = {});

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_ARTIFACTVERIFIER_H
