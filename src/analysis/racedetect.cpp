#include "racedetect.h"

#include <algorithm>
#include <map>
#include <set>

#include "codec/encoder.h"
#include "ir/opcode.h"
#include "support/error.h"

namespace wet {
namespace analysis {

namespace {

using interp::SyncKind;

/** Number of per-thread SYNC component streams (kind/obj/stmt/seq). */
constexpr uint32_t kSyncComponents = 4;

const codec::CompressedStream&
syncStream(const core::WetCompressed& c, uint32_t tid, uint32_t comp)
{
    const core::CompressedSyncThread& cs = c.sync(tid);
    switch (comp) {
      case 0: return cs.kind;
      case 1: return cs.obj;
      case 2: return cs.stmt;
      default: return cs.seq;
    }
}

/**
 * I/O accounting over the warm entries of @p cache belonging to one
 * race engine (selected by its stream-key kind). Mirrors the slicing
 * engines' accounting so `races` and `slice` stats are comparable:
 * at-rest bytes scaled by the fraction of values actually decoded.
 */
core::SliceIoStats
syncCacheStats(const core::StreamCache& cache,
               const core::WetCompressed& c, core::StreamKind kind,
               unsigned segment)
{
    core::SliceIoStats st;
    st.bytesTotal = core::artifactStreamBytes(c);
    cache.forEach([&](uint64_t key, const core::SeqReader& r) {
        if (core::streamKeyKind(key) != kind)
            return;
        if (core::streamKeySegment(key) != segment)
            return;
        const codec::CompressedStream* s = r.stream();
        if (s == nullptr)
            return;
        ++st.streamsOpened;
        uint64_t steps = r.decodeSteps();
        st.valuesDecoded += steps;
        st.cursorRestarts += r.restarts();
        uint64_t len = s->length;
        uint64_t bytes = s->sizeBytes();
        st.bytesTouched +=
            len == 0 ? bytes
                     : std::min(bytes, bytes * steps / len);
    });
    return st;
}

struct OpenStream : public core::SeqReader
{
    explicit OpenStream(const codec::CompressedStream& s)
        : stream_(&s),
          cursor(s, codec::StreamCursor::Mode::Bidirectional)
    {
    }

    uint64_t length() const override { return cursor.length(); }
    int64_t at(uint64_t i) override { return cursor.at(i); }
    uint64_t decodeSteps() const override
    {
        return cursor.decodeSteps();
    }
    uint64_t restarts() const override { return cursor.restarts(); }
    const codec::CompressedStream* stream() const override
    {
        return stream_;
    }

    const codec::CompressedStream* stream_;
    codec::StreamCursor cursor;
};

struct DecodedStream : public core::SeqReader
{
    explicit DecodedStream(const codec::CompressedStream& s)
        : stream_(&s), values(codec::decodeAll(s))
    {
    }

    uint64_t length() const override { return values.size(); }
    int64_t at(uint64_t i) override { return values[i]; }
    uint64_t decodeSteps() const override { return values.size(); }
    const codec::CompressedStream* stream() const override
    {
        return stream_;
    }

    const codec::CompressedStream* stream_;
    std::vector<int64_t> values;
};

} // namespace

// ---------------------------------------------------------------- //
// Engines

CursorSyncAccess::CursorSyncAccess(const core::WetCompressed& c,
                                   core::StreamCache* cache,
                                   unsigned segment)
    : c_(&c), cache_(cache != nullptr ? cache : &own_),
      seg_(segment)
{
}

CursorSyncAccess::~CursorSyncAccess() = default;

uint32_t
CursorSyncAccess::numThreads() const
{
    return c_->numSyncThreads();
}

core::SeqReader&
CursorSyncAccess::component(uint32_t tid, uint32_t comp)
{
    const codec::CompressedStream& s = syncStream(*c_, tid, comp);
    return cache_->get(
        streamKey(core::StreamKind::CursorSync, tid, comp, 0, seg_),
        [&]() -> std::unique_ptr<core::SeqReader> {
            return std::make_unique<OpenStream>(s);
        });
}

core::SliceIoStats
CursorSyncAccess::stats() const
{
    return syncCacheStats(*cache_, *c_, core::StreamKind::CursorSync,
                          seg_);
}

DecodeSyncAccess::DecodeSyncAccess(const core::WetCompressed& c,
                                   core::StreamCache* cache,
                                   unsigned segment)
    : c_(&c), cache_(cache != nullptr ? cache : &own_),
      seg_(segment)
{
}

DecodeSyncAccess::~DecodeSyncAccess() = default;

uint32_t
DecodeSyncAccess::numThreads() const
{
    return c_->numSyncThreads();
}

core::SeqReader&
DecodeSyncAccess::component(uint32_t tid, uint32_t comp)
{
    const codec::CompressedStream& s = syncStream(*c_, tid, comp);
    return cache_->get(
        streamKey(core::StreamKind::DecodeSync, tid, comp, 0, seg_),
        [&]() -> std::unique_ptr<core::SeqReader> {
            return std::make_unique<DecodedStream>(s);
        });
}

core::SliceIoStats
DecodeSyncAccess::stats() const
{
    return syncCacheStats(*cache_, *c_, core::StreamKind::DecodeSync,
                          seg_);
}

// ---------------------------------------------------------------- //
// Shared vector-clock detector core

namespace {

using Clock = std::vector<uint64_t>;

void
joinInto(Clock& a, const Clock& b)
{
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = std::max(a[i], b[i]);
}

/**
 * SHB-style vector-clock happens-before state machine. Events must
 * arrive in interleaving (seq) order. Per address and thread only the
 * last read and last write are kept — a racy statement pair reports
 * once per overwrite chain, and the report set dedupes the rest — so
 * state is O(threads × addresses), not O(trace).
 *
 * The update rules (C = per-thread clocks, L = per-lock clocks):
 *   spawn t→u:   C_u ⊔= C_t, then C_t[t]++   (child inherits; the
 *                parent's later events stay concurrent with it)
 *   join t←u:    C_t ⊔= C_u
 *   acquire t,l: C_t ⊔= L_l
 *   release t,l: L_l = C_t, then C_t[t]++
 * An access by u recorded at epoch e races a later access by t iff
 * e > C_t[u], i.e. t has not synchronized with u since.
 */
class HbDetector
{
  public:
    explicit HbDetector(uint32_t num_threads)
        : n_(num_threads), clocks_(num_threads, Clock(num_threads, 0))
    {
        for (uint32_t t = 0; t < n_; ++t)
            clocks_[t][t] = 1;
    }

    void
    event(uint32_t t, SyncKind kind, int64_t obj, ir::StmtId stmt)
    {
        switch (kind) {
          case SyncKind::Spawn:
            if (validTid(obj)) {
                joinInto(clocks_[static_cast<uint32_t>(obj)],
                         clocks_[t]);
                ++clocks_[t][t];
            }
            break;
          case SyncKind::Join:
            if (validTid(obj))
                joinInto(clocks_[t],
                         clocks_[static_cast<uint32_t>(obj)]);
            break;
          case SyncKind::Acquire: {
            auto it = locks_.find(obj);
            if (it != locks_.end())
                joinInto(clocks_[t], it->second);
            break;
          }
          case SyncKind::Release:
            locks_[obj] = clocks_[t];
            ++clocks_[t][t];
            break;
          case SyncKind::Read: {
            AddrState& a = addr(obj);
            check(a.lastWr, obj, t, stmt, false);
            a.lastRd[t] = {clocks_[t][t], stmt, true};
            break;
          }
          case SyncKind::Write: {
            AddrState& a = addr(obj);
            check(a.lastWr, obj, t, stmt, true);
            check(a.lastRd, obj, t, stmt, true, false);
            a.lastWr[t] = {clocks_[t][t], stmt, true};
            break;
          }
        }
    }

    std::set<Race> races;

  private:
    /** Last access of one thread: its epoch in that thread's clock. */
    struct AccessRec
    {
        uint64_t clk = 0;
        ir::StmtId stmt = ir::kNoStmt;
        bool valid = false;
    };

    struct AddrState
    {
        std::vector<AccessRec> lastWr, lastRd;
    };

    bool validTid(int64_t obj) const
    {
        return obj >= 0 && static_cast<uint64_t>(obj) < n_;
    }

    AddrState&
    addr(int64_t x)
    {
        AddrState& a = addrs_[x];
        if (a.lastWr.empty()) {
            a.lastWr.resize(n_);
            a.lastRd.resize(n_);
        }
        return a;
    }

    void
    check(const std::vector<AccessRec>& prior, int64_t x, uint32_t t,
          ir::StmtId stmt, bool cur_is_write, bool prior_is_write = true)
    {
        for (uint32_t u = 0; u < n_; ++u) {
            if (u == t || !prior[u].valid)
                continue;
            if (prior[u].clk > clocks_[t][u])
                races.insert(Race{
                    x,
                    RaceAccess{u, prior[u].stmt, prior_is_write},
                    RaceAccess{t, stmt, cur_is_write}});
        }
    }

    uint32_t n_;
    std::vector<Clock> clocks_;
    std::map<int64_t, Clock> locks_;
    std::map<int64_t, AddrState> addrs_;
};

} // namespace

RaceReport
detectRaces(SyncAccess& sync)
{
    const uint32_t n = sync.numThreads();
    RaceReport rep;
    rep.numThreads = n;
    if (n == 0)
        return rep;

    // K-way merge of the per-thread streams on the global seq
    // counter. Each thread's head seq is cached so the cursor only
    // advances when that thread is consumed.
    std::vector<uint64_t> pos(n, 0), len(n, 0), head(n, 0);
    for (uint32_t t = 0; t < n; ++t) {
        len[t] = sync.component(t, 3).length();
        if (len[t] > 0)
            head[t] = static_cast<uint64_t>(sync.component(t, 3).at(0));
    }

    HbDetector det(n);
    for (;;) {
        uint32_t best = n;
        for (uint32_t t = 0; t < n; ++t) {
            if (pos[t] >= len[t])
                continue;
            if (best == n || head[t] < head[best])
                best = t;
        }
        if (best == n)
            break;
        const uint64_t i = pos[best];
        det.event(best,
                  static_cast<SyncKind>(sync.component(best, 0).at(i)),
                  sync.component(best, 1).at(i),
                  static_cast<ir::StmtId>(
                      sync.component(best, 2).at(i)));
        ++rep.numEvents;
        ++pos[best];
        if (pos[best] < len[best])
            head[best] = static_cast<uint64_t>(
                sync.component(best, 3).at(pos[best]));
    }

    rep.races.assign(det.races.begin(), det.races.end());
    return rep;
}

RaceReport
detectRaces(const core::WetCompressed& c, RaceEngine engine,
            core::StreamCache* cache)
{
    if (engine == RaceEngine::Cursor) {
        CursorSyncAccess sa(c, cache);
        return detectRaces(sa);
    }
    DecodeSyncAccess sa(c, cache);
    return detectRaces(sa);
}

std::string
RaceReport::renderText() const
{
    std::string out = "races: " + std::to_string(races.size()) +
                      "  threads: " + std::to_string(numThreads) +
                      "  sync events: " + std::to_string(numEvents) +
                      "\n";
    auto access = [](const RaceAccess& a) {
        return std::string(a.isWrite ? "write" : "read") + " stmt " +
               std::to_string(a.stmt) + " (thread " +
               std::to_string(a.thread) + ")";
    };
    for (const Race& r : races)
        out += "addr " + std::to_string(r.addr) + ": " +
               access(r.first) + " vs " + access(r.second) + "\n";
    return out;
}

// ---------------------------------------------------------------- //
// Decoded-trace oracle

std::vector<RawSyncEvent>
decodeSyncEvents(const core::WetCompressed& c)
{
    std::vector<RawSyncEvent> events;
    for (uint32_t t = 0; t < c.numSyncThreads(); ++t) {
        const core::CompressedSyncThread& cs = c.sync(t);
        std::vector<int64_t> kind = codec::decodeAll(cs.kind);
        std::vector<int64_t> obj = codec::decodeAll(cs.obj);
        std::vector<int64_t> stmt = codec::decodeAll(cs.stmt);
        std::vector<int64_t> seq = codec::decodeAll(cs.seq);
        const size_t n = std::min(
            std::min(kind.size(), obj.size()),
            std::min(stmt.size(), seq.size()));
        for (size_t i = 0; i < n; ++i)
            events.push_back(RawSyncEvent{
                t, static_cast<SyncKind>(kind[i]), obj[i],
                static_cast<ir::StmtId>(stmt[i]),
                static_cast<uint64_t>(seq[i])});
    }
    std::sort(events.begin(), events.end(),
              [](const RawSyncEvent& a, const RawSyncEvent& b) {
                  return a.seq != b.seq ? a.seq < b.seq
                                        : a.thread < b.thread;
              });
    return events;
}

namespace {

/** Dense ancestor bitsets over a DAG whose edges only point from
 *  earlier to later interleaving positions. */
class AncestorSets
{
  public:
    explicit AncestorSets(size_t n)
        : words_((n + 63) / 64), bits_(n * words_, 0)
    {
    }

    void
    addEdge(size_t from, size_t to)
    {
        uint64_t* dst = row(to);
        const uint64_t* src = row(from);
        for (size_t w = 0; w < words_; ++w)
            dst[w] |= src[w];
        dst[from / 64] |= uint64_t{1} << (from % 64);
    }

    bool
    reaches(size_t from, size_t to) const
    {
        return (row(to)[from / 64] >> (from % 64)) & 1;
    }

  private:
    uint64_t* row(size_t i) { return bits_.data() + i * words_; }
    const uint64_t* row(size_t i) const
    {
        return bits_.data() + i * words_;
    }

    size_t words_;
    std::vector<uint64_t> bits_;
};

} // namespace

RaceReport
detectRacesOracle(std::vector<RawSyncEvent> events,
                  uint32_t num_threads)
{
    std::sort(events.begin(), events.end(),
              [](const RawSyncEvent& a, const RawSyncEvent& b) {
                  return a.seq != b.seq ? a.seq < b.seq
                                        : a.thread < b.thread;
              });

    const size_t n = events.size();
    RaceReport rep;
    rep.numThreads = num_threads;
    rep.numEvents = n;

    auto validTid = [&](int64_t obj) {
        return obj >= 0 && static_cast<uint64_t>(obj) < num_threads;
    };

    // Explicit happens-before edges: program order, spawn → child's
    // first event, child's last event → join, release → next acquire
    // of the same lock. All edges run forward in seq order, so one
    // pass accumulates full ancestor sets.
    AncestorSets anc(n);
    std::vector<int64_t> lastOf(num_threads, -1);
    std::map<int64_t, size_t> spawnIdx;  // child tid -> spawn event
    std::map<int64_t, size_t> lastRelease; // lock -> release event
    for (size_t i = 0; i < n; ++i) {
        const RawSyncEvent& ev = events[i];
        if (ev.thread >= num_threads)
            continue;
        if (lastOf[ev.thread] >= 0) {
            anc.addEdge(static_cast<size_t>(lastOf[ev.thread]), i);
        } else {
            auto it = spawnIdx.find(ev.thread);
            if (it != spawnIdx.end())
                anc.addEdge(it->second, i);
        }
        lastOf[ev.thread] = static_cast<int64_t>(i);
        switch (ev.kind) {
          case SyncKind::Spawn:
            if (validTid(ev.obj))
                spawnIdx[ev.obj] = i;
            break;
          case SyncKind::Join:
            if (validTid(ev.obj) && lastOf[ev.obj] >= 0)
                anc.addEdge(static_cast<size_t>(lastOf[ev.obj]), i);
            break;
          case SyncKind::Acquire: {
            auto it = lastRelease.find(ev.obj);
            if (it != lastRelease.end())
                anc.addEdge(it->second, i);
            break;
          }
          case SyncKind::Release:
            lastRelease[ev.obj] = i;
            break;
          default:
            break;
        }
    }

    // Same last-access bookkeeping as the vector-clock core, but the
    // ordering question is answered by reachability, not epochs.
    struct Rec
    {
        size_t idx = 0;
        ir::StmtId stmt = ir::kNoStmt;
        bool valid = false;
    };
    struct AddrState
    {
        std::vector<Rec> lastWr, lastRd;
    };
    std::map<int64_t, AddrState> addrs;
    std::set<Race> races;

    auto check = [&](const std::vector<Rec>& prior, int64_t x,
                     size_t i, bool cur_is_write,
                     bool prior_is_write) {
        const RawSyncEvent& ev = events[i];
        for (uint32_t u = 0; u < num_threads; ++u) {
            if (u == ev.thread || !prior[u].valid)
                continue;
            if (!anc.reaches(prior[u].idx, i))
                races.insert(Race{
                    x, RaceAccess{u, prior[u].stmt, prior_is_write},
                    RaceAccess{ev.thread, ev.stmt, cur_is_write}});
        }
    };

    for (size_t i = 0; i < n; ++i) {
        const RawSyncEvent& ev = events[i];
        if (ev.thread >= num_threads)
            continue;
        if (ev.kind != SyncKind::Read && ev.kind != SyncKind::Write)
            continue;
        AddrState& a = addrs[ev.obj];
        if (a.lastWr.empty()) {
            a.lastWr.resize(num_threads);
            a.lastRd.resize(num_threads);
        }
        if (ev.kind == SyncKind::Read) {
            check(a.lastWr, ev.obj, i, false, true);
            a.lastRd[ev.thread] = {i, ev.stmt, true};
        } else {
            check(a.lastWr, ev.obj, i, true, true);
            check(a.lastRd, ev.obj, i, true, false);
            a.lastWr[ev.thread] = {i, ev.stmt, true};
        }
    }

    rep.races.assign(races.begin(), races.end());
    return rep;
}

// ---------------------------------------------------------------- //
// SYNC verifier rules

bool
verifySync(const core::WetCompressed& c, const ir::Module* mod,
           DiagEngine& diag)
{
    const uint64_t before = diag.errorCount();
    const uint32_t n = c.numSyncThreads();
    // A windowed (segment) graph holds only a slice of the run's
    // sync events: its seq values start past 1, spawns/acquires may
    // precede the window, so the lifecycle and discipline rules
    // relax to what is checkable within the window (DESIGN.md §15).
    const bool windowed = c.graph().windowed;

    auto kindOpcode = [](int64_t k) {
        switch (static_cast<SyncKind>(k)) {
          case SyncKind::Spawn: return ir::Opcode::Spawn;
          case SyncKind::Join: return ir::Opcode::Join;
          case SyncKind::Acquire: return ir::Opcode::Lock;
          case SyncKind::Release: return ir::Opcode::Unlock;
          case SyncKind::Read: return ir::Opcode::Load;
          default: return ir::Opcode::Store;
        }
    };

    // Raw decoded values, not RawSyncEvent: SYNC001 must see kind
    // values exactly as stored, before any narrowing cast.
    struct VEvent
    {
        uint32_t thread;
        int64_t kind, obj, stmt, seq;
    };
    std::vector<VEvent> events;
    for (uint32_t t = 0; t < n; ++t) {
        const core::CompressedSyncThread& cs = c.sync(t);
        std::vector<int64_t> kind = codec::decodeAll(cs.kind);
        std::vector<int64_t> obj = codec::decodeAll(cs.obj);
        std::vector<int64_t> stmt = codec::decodeAll(cs.stmt);
        std::vector<int64_t> seq = codec::decodeAll(cs.seq);
        const size_t len = std::min(
            std::min(kind.size(), obj.size()),
            std::min(stmt.size(), seq.size()));
        for (size_t i = 0; i < len; ++i)
            events.push_back(
                VEvent{t, kind[i], obj[i], stmt[i], seq[i]});

        // SYNC004 (per-thread half): seq strictly increasing.
        for (size_t i = 1; i < seq.size(); ++i)
            if (seq[i] <= seq[i - 1])
                diag.error("SYNC004",
                           "thread " + std::to_string(t) +
                               " event " + std::to_string(i),
                           "per-thread seq not strictly increasing");
    }
    std::sort(events.begin(), events.end(),
              [](const VEvent& a, const VEvent& b) {
                  return a.seq != b.seq ? a.seq < b.seq
                                        : a.thread < b.thread;
              });

    // SYNC001: every event must carry a known kind, and (when the
    // module is at hand) a statement whose opcode matches it.
    for (const VEvent& ev : events) {
        const std::string loc = "thread " +
                                std::to_string(ev.thread) + " seq " +
                                std::to_string(ev.seq);
        if (ev.kind < 0 || ev.kind > 5) {
            diag.error("SYNC001", loc,
                       "unknown sync event kind " +
                           std::to_string(ev.kind));
            continue;
        }
        if (mod == nullptr)
            continue;
        if (ev.stmt < 0 ||
            static_cast<uint64_t>(ev.stmt) >= mod->numStmts()) {
            diag.error("SYNC001", loc,
                       "sync event statement " +
                           std::to_string(ev.stmt) +
                           " out of range");
        } else if (mod->instr(static_cast<ir::StmtId>(ev.stmt)).op !=
                   kindOpcode(ev.kind)) {
            diag.error("SYNC001", loc,
                       "sync event kind does not match the opcode "
                       "of stmt " + std::to_string(ev.stmt));
        }
    }

    // SYNC004 (global half): the seq values across all threads must
    // form a permutation of 1..N (seq is one shared counter). A
    // window sees a contiguous slice of that counter instead, so only
    // contiguity is checkable.
    {
        std::vector<int64_t> all;
        all.reserve(events.size());
        for (const VEvent& ev : events)
            all.push_back(ev.seq);
        std::sort(all.begin(), all.end());
        const int64_t base = windowed && !all.empty() ? all[0] - 1 : 0;
        if (windowed && base < 0)
            diag.error("SYNC004", "seq " + std::to_string(all[0]),
                       "global seq values start below 1");
        for (size_t i = 0; i < all.size(); ++i) {
            if (all[i] != base + static_cast<int64_t>(i + 1)) {
                diag.error("SYNC004", "seq " + std::to_string(all[i]),
                           windowed
                               ? "global seq values of the window "
                                 "are not contiguous"
                               : "global seq values are not a "
                                 "permutation of 1.." +
                                     std::to_string(all.size()));
                break;
            }
        }
    }

    // SYNC002 (lock discipline) and SYNC003 (thread lifecycle) walk
    // the merged interleaving.
    std::map<int64_t, uint32_t> holder;
    std::vector<bool> spawned(n, false), joined(n, false);
    for (const VEvent& ev : events) {
        if (ev.kind < 0 || ev.kind > 5)
            continue; // already reported by SYNC001
        const std::string loc = "thread " +
                                std::to_string(ev.thread) + " seq " +
                                std::to_string(ev.seq);
        switch (static_cast<SyncKind>(ev.kind)) {
          case SyncKind::Spawn:
            if (ev.obj <= 0 || static_cast<uint64_t>(ev.obj) >= n)
                diag.error("SYNC003", loc,
                           "spawned thread id " +
                               std::to_string(ev.obj) +
                               " out of range");
            else if (spawned[static_cast<uint32_t>(ev.obj)])
                diag.error("SYNC003", loc,
                           "thread " + std::to_string(ev.obj) +
                               " spawned twice");
            else
                spawned[static_cast<uint32_t>(ev.obj)] = true;
            break;
          case SyncKind::Join:
            if (ev.obj <= 0 || static_cast<uint64_t>(ev.obj) >= n ||
                (!windowed && !spawned[static_cast<uint32_t>(ev.obj)]))
                // In a window the spawn may precede the cut, so only
                // the id-range half of the rule applies.
                diag.error("SYNC003", loc,
                           "join of never-spawned thread " +
                               std::to_string(ev.obj));
            else if (joined[static_cast<uint32_t>(ev.obj)])
                diag.error("SYNC003", loc,
                           "thread " + std::to_string(ev.obj) +
                               " joined twice");
            else
                joined[static_cast<uint32_t>(ev.obj)] = true;
            break;
          case SyncKind::Acquire:
            if (holder.count(ev.obj))
                diag.error("SYNC002", loc,
                           "acquire of lock " +
                               std::to_string(ev.obj) +
                               " already held by thread " +
                               std::to_string(holder[ev.obj]));
            else
                holder[ev.obj] = ev.thread;
            break;
          case SyncKind::Release: {
            auto it = holder.find(ev.obj);
            if (it == holder.end()) {
                // In a window the acquire may precede the cut.
                if (!windowed)
                    diag.error("SYNC002", loc,
                               "release of lock " +
                                   std::to_string(ev.obj) +
                                   " not held by the releasing "
                                   "thread");
            } else if (it->second != ev.thread) {
                diag.error("SYNC002", loc,
                           "release of lock " +
                               std::to_string(ev.obj) +
                               " not held by the releasing thread");
            } else {
                holder.erase(it);
            }
            break;
          }
          default:
            break;
        }
    }
    for (const auto& [lock, t] : holder)
        diag.warning("SYNC002", "lock " + std::to_string(lock),
                     "lock still held by thread " +
                         std::to_string(t) +
                         " at the end of the trace");

    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
