#include "balllarus.h"

#include <algorithm>

#include "support/error.h"

namespace wet {
namespace analysis {

BallLarus::BallLarus(const CfgInfo& cfg, uint64_t max_paths)
    : cfg_(&cfg)
{
    build(max_paths);
}

void
BallLarus::enterBlockMode()
{
    const ir::Function& fn = cfg_->function();
    const size_t n = fn.blocks.size();
    blockMode_ = true;
    numPaths_ = n;
    edgeVals_.assign(n, {});
    exitVals_.assign(n, 0);
    entryVals_.assign(n, 0);
    for (size_t b = 0; b < n; ++b) {
        edgeVals_[b].assign(fn.blocks[b].succs.size(), 0);
        exitVals_[b] = b;  // path id of single-block path = block id
        entryVals_[b] = b; // restart at any block
    }
    dagEdges_.clear();
}

void
BallLarus::build(uint64_t max_paths)
{
    const ir::Function& fn = cfg_->function();
    const size_t n = fn.blocks.size();
    entryNode_ = static_cast<uint32_t>(n);
    exitNode_ = static_cast<uint32_t>(n + 1);

    edgeVals_.resize(n);
    for (size_t b = 0; b < n; ++b)
        edgeVals_[b].assign(fn.blocks[b].succs.size(), 0);
    exitVals_.assign(n, 0);
    entryVals_.assign(n, UINT64_MAX);

    // Build the path DAG: per-node ordered out-edge lists.
    dagEdges_.assign(n + 2, {});
    for (ir::BlockId u = 0; u < n; ++u) {
        if (!cfg_->reachable(u))
            continue;
        const auto& succs = fn.blocks[u].succs;
        bool hasBack = false;
        for (size_t idx = 0; idx < succs.size(); ++idx) {
            if (cfg_->isBackEdge(u, idx))
                hasBack = true;
            else
                dagEdges_[u].push_back(DagEdge{succs[idx], 0, false});
        }
        if (cfg_->isExitBlock(u) || hasBack)
            dagEdges_[u].push_back(DagEdge{exitNode_, 0, true});
    }
    // ENTRY: first the real entry block (val 0 by construction), then
    // one dummy edge per distinct loop header.
    dagEdges_[entryNode_].push_back(DagEdge{0, 0, true});
    for (ir::BlockId h : cfg_->loopHeaders()) {
        if (h != 0)
            dagEdges_[entryNode_].push_back(DagEdge{h, 0, true});
    }

    // Topological order of the DAG via DFS postorder from ENTRY.
    std::vector<uint32_t> post;
    {
        std::vector<uint8_t> state(n + 2, 0);
        struct Frame
        {
            uint32_t node;
            size_t next = 0;
        };
        std::vector<Frame> stack{Frame{entryNode_}};
        state[entryNode_] = 1;
        while (!stack.empty()) {
            Frame& f = stack.back();
            if (f.next < dagEdges_[f.node].size()) {
                uint32_t s = dagEdges_[f.node][f.next++].target;
                WET_ASSERT(state[s] != 1, "cycle in Ball-Larus DAG");
                if (!state[s]) {
                    state[s] = 1;
                    stack.push_back(Frame{s});
                }
            } else {
                state[f.node] = 2;
                post.push_back(f.node);
                stack.pop_back();
            }
        }
    }

    // NumPaths and edge values in topological (postorder) order.
    std::vector<uint64_t> numPaths(n + 2, 0);
    numPaths[exitNode_] = 1;
    for (uint32_t v : post) {
        if (v == exitNode_)
            continue;
        uint64_t sum = 0;
        for (auto& e : dagEdges_[v]) {
            e.val = sum;
            WET_ASSERT(numPaths[e.target] > 0 || e.target == exitNode_,
                       "DAG successor numbered after its predecessor");
            sum += numPaths[e.target];
            if (sum > max_paths) {
                enterBlockMode();
                return;
            }
        }
        numPaths[v] = sum;
    }
    numPaths_ = numPaths[entryNode_];
    if (numPaths_ == 0) {
        // Entry unreachable from DAG walk should not happen; guard.
        enterBlockMode();
        return;
    }

    // Export the values in runtime-protocol form.
    for (ir::BlockId u = 0; u < n; ++u) {
        if (!cfg_->reachable(u))
            continue;
        const auto& succs = fn.blocks[u].succs;
        size_t dagIdx = 0;
        for (size_t idx = 0; idx < succs.size(); ++idx) {
            if (cfg_->isBackEdge(u, idx))
                continue;
            edgeVals_[u][idx] = dagEdges_[u][dagIdx++].val;
        }
        if (dagIdx < dagEdges_[u].size()) {
            // Trailing dummy/exit edge.
            exitVals_[u] = dagEdges_[u][dagIdx].val;
        }
    }
    for (const auto& e : dagEdges_[entryNode_])
        entryVals_[e.target] = e.val;
}

std::vector<ir::BlockId>
BallLarus::decode(uint64_t path_id) const
{
    const ir::Function& fn = cfg_->function();
    std::vector<ir::BlockId> seq;
    if (blockMode_) {
        WET_ASSERT(path_id < fn.blocks.size(),
                   "block-mode path id out of range");
        seq.push_back(static_cast<ir::BlockId>(path_id));
        return seq;
    }
    WET_ASSERT(path_id < numPaths_, "path id " << path_id
               << " out of range (numPaths=" << numPaths_ << ")");
    uint64_t r = path_id;
    uint32_t node = entryNode_;
    while (node != exitNode_) {
        const auto& edges = dagEdges_[node];
        WET_ASSERT(!edges.empty(), "path decode stuck at node " << node);
        // Edges are stored with increasing val; take the last edge
        // whose val does not exceed the remainder.
        size_t pick = 0;
        for (size_t i = 0; i < edges.size(); ++i) {
            if (edges[i].val <= r)
                pick = i;
            else
                break;
        }
        r -= edges[pick].val;
        node = edges[pick].target;
        if (node != exitNode_ && node != entryNode_)
            seq.push_back(static_cast<ir::BlockId>(node));
    }
    WET_ASSERT(r == 0, "path decode remainder " << r << " for id "
                                                << path_id);
    return seq;
}

} // namespace analysis
} // namespace wet
