#include "dominators.h"

#include <algorithm>

#include "support/error.h"

namespace wet {
namespace analysis {

DomTree
DomTree::solve(size_t num_nodes,
               const std::vector<std::vector<ir::BlockId>>& preds,
               ir::BlockId root)
{
    // Reverse postorder over the graph implied by the predecessor
    // lists' transpose; build successor lists first.
    std::vector<std::vector<ir::BlockId>> succs(num_nodes);
    for (size_t v = 0; v < num_nodes; ++v)
        for (ir::BlockId p : preds[v])
            succs[p].push_back(static_cast<ir::BlockId>(v));

    std::vector<uint32_t> rpoIndex(num_nodes, UINT32_MAX);
    std::vector<ir::BlockId> order;
    order.reserve(num_nodes);
    {
        std::vector<uint8_t> state(num_nodes, 0);
        struct Frame
        {
            ir::BlockId node;
            size_t next = 0;
        };
        std::vector<Frame> stack{Frame{root}};
        state[root] = 1;
        std::vector<ir::BlockId> post;
        while (!stack.empty()) {
            Frame& f = stack.back();
            if (f.next < succs[f.node].size()) {
                ir::BlockId s = succs[f.node][f.next++];
                if (!state[s]) {
                    state[s] = 1;
                    stack.push_back(Frame{s});
                }
            } else {
                post.push_back(f.node);
                stack.pop_back();
            }
        }
        order.assign(post.rbegin(), post.rend());
        for (size_t i = 0; i < order.size(); ++i)
            rpoIndex[order[i]] = static_cast<uint32_t>(i);
    }

    DomTree t;
    t.root_ = root;
    t.idom_.assign(num_nodes, ir::kNoBlock);
    t.idom_[root] = root;

    auto intersect = [&](ir::BlockId a, ir::BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = t.idom_[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = t.idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId v : order) {
            if (v == root)
                continue;
            ir::BlockId newIdom = ir::kNoBlock;
            for (ir::BlockId p : preds[v]) {
                if (rpoIndex[p] == UINT32_MAX ||
                    t.idom_[p] == ir::kNoBlock)
                {
                    continue; // predecessor not reachable from root
                }
                newIdom = (newIdom == ir::kNoBlock)
                              ? p : intersect(p, newIdom);
            }
            if (newIdom != ir::kNoBlock && t.idom_[v] != newIdom) {
                t.idom_[v] = newIdom;
                changed = true;
            }
        }
    }

    t.depth_.assign(num_nodes, UINT32_MAX);
    t.depth_[root] = 0;
    // Nodes in RPO have their idom earlier in RPO, so one pass works.
    for (ir::BlockId v : order) {
        if (v != root && t.idom_[v] != ir::kNoBlock)
            t.depth_[v] = t.depth_[t.idom_[v]] + 1;
    }
    return t;
}

DomTree
DomTree::dominators(const ir::Function& fn)
{
    const size_t n = fn.blocks.size();
    std::vector<std::vector<ir::BlockId>> preds(n);
    for (size_t b = 0; b < n; ++b)
        preds[b] = fn.blocks[b].preds;
    return solve(n, preds, 0);
}

DomTree
DomTree::postDominators(const ir::Function& fn)
{
    const size_t n = fn.blocks.size();
    const ir::BlockId exitId = virtualExit(fn);
    // Reverse graph: preds of v in the reverse graph = succs of v in
    // the CFG; the virtual exit's reverse-preds are the exit blocks.
    std::vector<std::vector<ir::BlockId>> preds(n + 1);
    for (ir::BlockId b = 0; b < n; ++b) {
        for (ir::BlockId s : fn.blocks[b].succs)
            preds[b].push_back(s);
        const auto& term = fn.blocks[b].terminator();
        if (term.op == ir::Opcode::Ret || term.op == ir::Opcode::Halt)
            preds[b].push_back(exitId);
    }
    // Blocks with no path to an exit (infinite loops) would be
    // unreachable in the reverse graph. Attach them to the virtual
    // exit so control dependence stays defined.
    {
        // Reverse reachability from exit.
        std::vector<bool> seen(n + 1, false);
        std::vector<ir::BlockId> work{exitId};
        seen[exitId] = true;
        // The reverse graph's successors of v are the CFG predecessors
        // of v (and exit's successors are the exit blocks).
        while (!work.empty()) {
            ir::BlockId v = work.back();
            work.pop_back();
            if (v == exitId) {
                for (ir::BlockId b = 0; b < n; ++b) {
                    const auto& term = fn.blocks[b].terminator();
                    if ((term.op == ir::Opcode::Ret ||
                         term.op == ir::Opcode::Halt) && !seen[b])
                    {
                        seen[b] = true;
                        work.push_back(b);
                    }
                }
            } else {
                for (ir::BlockId p : fn.blocks[v].preds) {
                    if (!seen[p]) {
                        seen[p] = true;
                        work.push_back(p);
                    }
                }
            }
        }
        for (ir::BlockId b = 0; b < n; ++b)
            if (!seen[b])
                preds[b].push_back(exitId);
    }
    return solve(n + 1, preds, exitId);
}

bool
DomTree::dominates(ir::BlockId a, ir::BlockId b) const
{
    if (depth_[b] == UINT32_MAX || depth_[a] == UINT32_MAX)
        return false;
    while (depth_[b] > depth_[a])
        b = idom_[b];
    return a == b;
}

} // namespace analysis
} // namespace wet
