#include "artifactverifier.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "codec/cursor.h"
#include "codec/encoder.h"
#include "codec/entryio.h"
#include "codec/model.h"

namespace wet {
namespace analysis {

namespace {

using codec::CompressedStream;
using codec::Method;

/**
 * Count one bounds-checked LEB128 value starting at @p pos. Returns
 * false on a truncated or overlong encoding; on success @p pos is one
 * past the value.
 */
bool
skipVarint(const uint8_t* bytes, size_t size, size_t& pos)
{
    size_t len = 0;
    while (pos < size && (bytes[pos] & 0x80)) {
        ++pos;
        if (++len > 9)
            return false; // 64-bit values need at most 10 bytes
    }
    if (pos == size)
        return false; // ran out before the terminating byte
    ++pos;
    return true;
}

bool
methodKnown(Method m)
{
    switch (m) {
      case Method::Raw:
      case Method::Fcm:
      case Method::Dfcm:
      case Method::LastN:
      case Method::LastNStride:
        return true;
    }
    return false;
}

} // namespace

bool
verifyStreamStructure(const codec::CompressedStream& s,
                      const std::string& location, DiagEngine& diag)
{
    if (!methodKnown(s.config.method)) {
        std::ostringstream os;
        os << "unknown codec method "
           << int{static_cast<uint8_t>(s.config.method)};
        diag.error("ART003", location, os.str());
        return false;
    }

    if (s.config.method == Method::Raw) {
        bool shapeOk = s.windowSize == 0 && s.window0.empty() &&
                       s.tableState0.empty() && s.flags.empty() &&
                       s.checkpoints.empty();
        if (!shapeOk) {
            diag.error("ART003", location,
                       "raw stream carries predictor-codec state");
            return false;
        }
        // data()/sizeBytes() rather than bytes(): a loaded stream's
        // payload may be a borrowed span into the artifact view.
        const uint8_t* bytes = s.misses.data();
        const size_t nbytes = s.misses.sizeBytes();
        size_t pos = 0;
        for (uint64_t i = 0; i < s.length; ++i) {
            if (!skipVarint(bytes, nbytes, pos)) {
                std::ostringstream os;
                os << "value " << i << " of " << s.length
                   << " truncated or overlong at byte " << pos;
                diag.error("ART003", location, os.str());
                return false;
            }
        }
        if (pos != nbytes) {
            std::ostringstream os;
            os << (nbytes - pos)
               << " trailing bytes after the last value";
            diag.error("ART003", location, os.str());
            return false;
        }
        return true;
    }

    // Predictor codecs: validate the parameters the model constructors
    // assert on, then the model itself tells us the expected shapes.
    bool paramsOk;
    if (s.config.method == Method::Fcm ||
        s.config.method == Method::Dfcm)
    {
        paramsOk = s.config.context >= 1 && s.config.context <= 8 &&
                   s.config.tableBits >= 1 && s.config.tableBits <= 24;
    } else {
        paramsOk = s.config.context >= 2 && s.config.context <= 64;
    }
    if (!paramsOk) {
        std::ostringstream os;
        os << "codec parameters out of range (context "
           << s.config.context << ", tableBits " << s.config.tableBits
           << ")";
        diag.error("ART003", location, os.str());
        return false;
    }

    auto model = codec::makeModel(s.config);
    const unsigned idxBits = model->hitIndexBits();
    const unsigned n = codec::detail::windowSizeFor(s.config, *model);
    const size_t stateSize = model->saveState().size();

    if (s.windowSize != n || s.window0.size() != n) {
        std::ostringstream os;
        os << "window holds " << s.window0.size()
           << " values, declared " << s.windowSize << ", codec needs "
           << n;
        diag.error("ART003", location, os.str());
        return false;
    }
    if (s.length <= n) {
        std::ostringstream os;
        os << "length " << s.length
           << " does not exceed the context window (" << n << ")";
        diag.error("ART003", location, os.str());
        return false;
    }
    if (s.tableState0.size() != stateSize) {
        std::ostringstream os;
        os << "table snapshot holds " << s.tableState0.size()
           << " entries, codec state has " << stateSize;
        diag.error("ART003", location, os.str());
        return false;
    }

    // Walk the entry stream exactly as a forward cursor would, with
    // bounds checks instead of assertions.
    const uint8_t* missBytes = s.misses.data();
    const size_t missSize = s.misses.sizeBytes();
    const uint64_t entries = s.length - n;
    size_t flagPos = 0;
    size_t missPos = 0;
    for (uint64_t i = 0; i < entries; ++i) {
        if (flagPos >= s.flags.size()) {
            std::ostringstream os;
            os << "flag stream ends at entry " << i << " of "
               << entries;
            diag.error("ART003", location, os.str());
            return false;
        }
        bool hit = s.flags.get(flagPos++);
        if (hit) {
            flagPos += idxBits;
            if (flagPos > s.flags.size()) {
                std::ostringstream os;
                os << "hit index truncated at entry " << i;
                diag.error("ART003", location, os.str());
                return false;
            }
        } else if (!skipVarint(missBytes, missSize, missPos)) {
            std::ostringstream os;
            os << "miss value truncated at entry " << i;
            diag.error("ART003", location, os.str());
            return false;
        }
    }
    if (flagPos != s.flags.size() || missPos != missSize) {
        std::ostringstream os;
        os << "entry stream leaves "
           << (s.flags.size() - flagPos) << " flag bits and "
           << (missSize - missPos) << " miss bytes unread";
        diag.error("ART003", location, os.str());
        return false;
    }

    bool ckptOk = true;
    uint64_t prevPos = 0;
    for (size_t c = 0; c < s.checkpoints.size(); ++c) {
        const CompressedStream::Checkpoint& cp = s.checkpoints[c];
        std::ostringstream why;
        if (cp.machinePos <= prevPos && !(c == 0 && cp.machinePos > 0))
            why << "position " << cp.machinePos
                << " not past the previous checkpoint";
        else if (cp.machinePos + n >= s.length)
            why << "position " << cp.machinePos
                << " leaves no values to decode";
        else if (cp.window.size() != n)
            why << "window holds " << cp.window.size() << " values";
        else if (cp.tableState.size() != stateSize)
            why << "table snapshot holds " << cp.tableState.size()
                << " entries, codec state has " << stateSize;
        else if (cp.flagPos > s.flags.size() ||
                 cp.missPos > missSize)
            why << "entry-stream offsets out of bounds";
        if (!why.str().empty()) {
            std::ostringstream os;
            os << "checkpoint " << c << ": " << why.str();
            diag.error("ART004", location, os.str());
            ckptOk = false;
        }
        prevPos = cp.machinePos;
    }
    return ckptOk;
}

bool
verifyStream(const codec::CompressedStream& s,
             const std::string& location, DiagEngine& diag,
             const std::vector<int64_t>* tier1,
             const ArtifactVerifierOptions& opt)
{
    uint64_t before = diag.errorCount();
    if (!verifyStreamStructure(s, location, diag))
        return false;
    if (s.length == 0)
        return true;

    std::vector<int64_t> forward = codec::decodeAll(s);

    if (opt.checkTier1 && tier1) {
        if (tier1->size() != forward.size()) {
            std::ostringstream os;
            os << "decode yields " << forward.size()
               << " values, tier-1 holds " << tier1->size();
            diag.error("ART002", location, os.str());
        } else {
            for (size_t i = 0; i < forward.size(); ++i) {
                if (forward[i] != (*tier1)[i]) {
                    std::ostringstream os;
                    os << "decode diverges from the tier-1 labels "
                       << "at value " << i << " (" << forward[i]
                       << " vs " << (*tier1)[i] << ")";
                    diag.error("ART002", location, os.str());
                    break;
                }
            }
        }
    }

    if (opt.checkBidirectional && s.config.method != Method::Raw) {
        codec::StreamCursor cur(s,
                                codec::StreamCursor::Mode::Bidirectional);
        cur.seek(s.length);
        uint64_t i = s.length;
        while (cur.hasPrev()) {
            int64_t v = 0;
            --i;
            if (!cur.tryPrev(v)) {
                std::ostringstream os;
                os << "backward machine diverges from the stored "
                   << "entry stream near value " << i
                   << " (the FR and BL sides are inconsistent)";
                diag.error("ART001", location, os.str());
                break;
            }
            if (v != forward[i]) {
                std::ostringstream os;
                os << "backward decode diverges at value " << i
                   << " (" << v << " vs " << forward[i] << ")";
                diag.error("ART001", location, os.str());
                break;
            }
        }
    }

    if (!s.checkpoints.empty()) {
        // Probe checkpoints in descending position order with one
        // forward cursor: seeking to a checkpoint's position from
        // further ahead forces the cursor to re-initialize from that
        // checkpoint, so each probe exercises its snapshot.
        codec::StreamCursor cur(s, codec::StreamCursor::Mode::Forward);
        for (size_t c = s.checkpoints.size(); c-- > 0;) {
            const CompressedStream::Checkpoint& cp = s.checkpoints[c];
            uint64_t span = std::max<uint64_t>(
                opt.checkpointProbeValues, 2 * s.windowSize);
            uint64_t end = std::min(s.length, cp.machinePos + span);
            for (uint64_t q = cp.machinePos; q < end; ++q) {
                if (cur.at(q) != forward[q]) {
                    std::ostringstream os;
                    os << "checkpoint " << c
                       << " decode diverges at value " << q;
                    diag.error("ART004", location, os.str());
                    break;
                }
            }
        }
    }
    return diag.errorCount() == before;
}

bool
verifyArtifact(const core::WetCompressed& wc, DiagEngine& diag,
               const ArtifactVerifierOptions& opt)
{
    uint64_t before = diag.errorCount();
    const core::WetGraph& g = wc.graph();

    auto tier1Of = [&](const auto& vec)
        -> std::unique_ptr<std::vector<int64_t>> {
        if (!opt.checkTier1 || vec.empty())
            return nullptr;
        return std::make_unique<std::vector<int64_t>>(vec.begin(),
                                                      vec.end());
    };

    for (core::NodeId n = 0; n < g.nodes.size(); ++n) {
        const core::WetNode& node = g.nodes[n];
        const core::CompressedNode& cn = wc.node(n);
        std::string base = "node " + std::to_string(n);

        if (cn.ts.length != node.numInstances) {
            std::ostringstream os;
            os << "timestamp stream holds " << cn.ts.length
               << " values for " << node.numInstances << " instances";
            diag.error("ART005", base, os.str());
        }
        verifyStream(cn.ts, base + " ts", diag,
                     tier1Of(node.ts).get(), opt);

        if (cn.patterns.size() != node.groups.size() ||
            cn.uvals.size() != node.groups.size())
        {
            std::ostringstream os;
            os << "artifact has " << cn.patterns.size()
               << " pattern and " << cn.uvals.size()
               << " unique-value groups for " << node.groups.size()
               << " value groups";
            diag.error("ART005", base, os.str());
            continue;
        }
        for (size_t gi = 0; gi < node.groups.size(); ++gi) {
            const core::ValueGroup& grp = node.groups[gi];
            std::string gloc =
                base + " group " + std::to_string(gi);
            if (cn.patterns[gi].length != node.numInstances) {
                std::ostringstream os;
                os << "pattern stream holds "
                   << cn.patterns[gi].length << " values for "
                   << node.numInstances << " instances";
                diag.error("ART005", gloc, os.str());
            }
            bool patternOk = verifyStream(
                cn.patterns[gi], gloc + " pattern", diag,
                tier1Of(grp.pattern).get(), opt);

            if (cn.uvals[gi].size() != grp.members.size()) {
                std::ostringstream os;
                os << "artifact has " << cn.uvals[gi].size()
                   << " unique-value streams for "
                   << grp.members.size() << " members";
                diag.error("ART005", gloc, os.str());
                continue;
            }
            // Each member stores one unique value per distinct
            // pattern index.
            uint64_t distinct = 0;
            if (patternOk && cn.patterns[gi].length > 0) {
                std::vector<int64_t> pat =
                    codec::decodeAll(cn.patterns[gi]);
                int64_t maxIdx = -1;
                for (int64_t v : pat)
                    maxIdx = std::max(maxIdx, v);
                distinct = static_cast<uint64_t>(maxIdx + 1);
            }
            for (size_t mi = 0; mi < grp.members.size(); ++mi) {
                std::string mloc =
                    gloc + " member " + std::to_string(mi);
                if (patternOk &&
                    cn.uvals[gi][mi].length != distinct)
                {
                    std::ostringstream os;
                    os << "unique-value stream holds "
                       << cn.uvals[gi][mi].length
                       << " values, pattern indexes " << distinct;
                    diag.error("ART005", mloc, os.str());
                }
                verifyStream(cn.uvals[gi][mi], mloc + " uvals", diag,
                             grp.uvals.size() > mi
                                 ? tier1Of(grp.uvals[mi]).get()
                                 : nullptr,
                             opt);
            }
        }
    }

    for (uint32_t p = 0; p < g.labelPool.size(); ++p) {
        const core::CompressedPoolEntry& cp = wc.pool(p);
        std::string base = "pool " + std::to_string(p);
        if (cp.useInst.length != cp.defInst.length) {
            std::ostringstream os;
            os << "use stream holds " << cp.useInst.length
               << " labels, def stream " << cp.defInst.length;
            diag.error("ART005", base, os.str());
        }
        verifyStream(cp.useInst, base + " useInst", diag,
                     tier1Of(g.labelPool[p].useInst).get(), opt);
        verifyStream(cp.defInst, base + " defInst", diag,
                     tier1Of(g.labelPool[p].defInst).get(), opt);
    }

    if (wc.numSyncThreads() != g.syncThreads.size()) {
        std::ostringstream os;
        os << "artifact has " << wc.numSyncThreads()
           << " sync streams for " << g.syncThreads.size()
           << " threads";
        diag.error("ART005", "sync", os.str());
    }
    for (uint32_t t = 0; t < wc.numSyncThreads() &&
                         t < g.syncThreads.size();
         ++t) {
        const core::SyncThread& st = g.syncThreads[t];
        const core::CompressedSyncThread& cs = wc.sync(t);
        std::string base = "sync thread " + std::to_string(t);
        const codec::CompressedStream* streams[4] = {
            &cs.kind, &cs.obj, &cs.stmt, &cs.seq};
        const std::vector<int64_t>* tier1[4] = {&st.kind, &st.obj,
                                                &st.stmt, &st.seq};
        const char* names[4] = {" kind", " obj", " stmt", " seq"};
        for (int c = 0; c < 4; ++c) {
            if (streams[c]->length != st.numEvents) {
                std::ostringstream os;
                os << names[c] + 1 << " stream holds "
                   << streams[c]->length << " values for "
                   << st.numEvents << " events";
                diag.error("ART005", base, os.str());
            }
            verifyStream(*streams[c], base + names[c], diag,
                         tier1Of(*tier1[c]).get(), opt);
        }
    }
    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
