#ifndef WET_ANALYSIS_DOMINATORS_H
#define WET_ANALYSIS_DOMINATORS_H

#include <vector>

#include "ir/module.h"

namespace wet {
namespace analysis {

/**
 * Dominator or post-dominator tree of one function, computed with the
 * iterative Cooper–Harvey–Kennedy algorithm.
 *
 * For post-dominators the CFG is augmented with a virtual exit node
 * (id = numBlocks) that all Ret/Halt blocks lead to; blocks with no
 * path to any exit (infinite loops) are conservatively attached
 * directly to the virtual exit.
 */
class DomTree
{
  public:
    /** Forward dominator tree rooted at the entry block. */
    static DomTree dominators(const ir::Function& fn);

    /** Post-dominator tree rooted at the virtual exit node. */
    static DomTree postDominators(const ir::Function& fn);

    /** Id of the virtual exit node used by post-dominator trees. */
    static ir::BlockId
    virtualExit(const ir::Function& fn)
    {
        return fn.numBlocks();
    }

    /**
     * Immediate (post)dominator of @p b. The root returns itself.
     * Unreachable blocks return kNoBlock.
     */
    ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

    /** Depth of @p b in the tree (root = 0; kNoBlock for unreachable). */
    uint32_t depth(ir::BlockId b) const { return depth_[b]; }

    /** True if @p a (post)dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

    /** Number of nodes including any virtual exit. */
    size_t numNodes() const { return idom_.size(); }

    ir::BlockId root() const { return root_; }

  private:
    DomTree() = default;

    /**
     * Generic solver over an explicit graph.
     * @param num_nodes node count
     * @param preds predecessor lists
     * @param root the root node
     */
    static DomTree solve(size_t num_nodes,
                         const std::vector<std::vector<ir::BlockId>>&
                             preds,
                         ir::BlockId root);

    std::vector<ir::BlockId> idom_;
    std::vector<uint32_t> depth_;
    ir::BlockId root_ = 0;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_DOMINATORS_H
