#include "reachingdefs.h"

#include <algorithm>

#include "ir/opcode.h"
#include "support/error.h"

namespace wet {
namespace analysis {

namespace {

void
setBit(std::vector<uint64_t>& b, uint32_t i)
{
    b[i >> 6] |= uint64_t{1} << (i & 63);
}

void
clearBit(std::vector<uint64_t>& b, uint32_t i)
{
    b[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool
getBit(const std::vector<uint64_t>& b, uint32_t i)
{
    return (b[i >> 6] >> (i & 63)) & 1;
}

/** out |= in; returns true when out changed. */
bool
unionInto(std::vector<uint64_t>& out, const std::vector<uint64_t>& in)
{
    bool changed = false;
    for (size_t w = 0; w < out.size(); ++w) {
        uint64_t nv = out[w] | in[w];
        changed |= nv != out[w];
        out[w] = nv;
    }
    return changed;
}

} // namespace

ReachingDefs::ReachingDefs(const ir::Module& mod,
                           const ir::Function& fn)
    : mod_(&mod), fn_(&fn)
{
    WET_ASSERT(mod.finalized(),
               "reaching definitions need a finalized module");

    // Collect definition sites in block/instruction (= statement id)
    // order, so per-register site lists come out sorted.
    const ir::BlockId nblocks = fn.numBlocks();
    std::vector<uint32_t> blockFirstSite(nblocks, 0);
    sitesOfReg_.resize(fn.numRegs);
    for (ir::BlockId b = 0; b < nblocks; ++b) {
        blockFirstSite[b] = static_cast<uint32_t>(sites_.size());
        for (const ir::Instr& in : fn.blocks[b].instrs) {
            if (!ir::hasDef(in.op) || in.dest == ir::kNoReg)
                continue;
            uint32_t site = static_cast<uint32_t>(sites_.size());
            sites_.push_back(DefSite{in.stmt, in.dest});
            sitesOfReg_[in.dest].push_back(site);
        }
    }

    const size_t words = (numBits() + 63) / 64;
    std::vector<Bits> gen(nblocks, Bits(words, 0));
    std::vector<Bits> killMask(nblocks, Bits(words, ~uint64_t{0}));
    in_.assign(nblocks, Bits(words, 0));
    std::vector<Bits> out(nblocks, Bits(words, 0));

    // GEN = the block's downward-exposed definitions (the last write
    // of each register); KILL = every site of any register the block
    // writes, plus its entry pseudo-site. killMask holds ~KILL so
    // that OUT = GEN | (IN & killMask).
    for (ir::BlockId b = 0; b < nblocks; ++b) {
        uint32_t site = blockFirstSite[b];
        std::vector<uint32_t> lastSite(fn.numRegs, UINT32_MAX);
        for (const ir::Instr& in : fn.blocks[b].instrs) {
            if (!ir::hasDef(in.op) || in.dest == ir::kNoReg)
                continue;
            lastSite[in.dest] = site++;
            for (uint32_t s : sitesOfReg_[in.dest])
                clearBit(killMask[b], s);
            clearBit(killMask[b], entryBit(in.dest));
        }
        for (ir::RegId r = 0; r < fn.numRegs; ++r)
            if (lastSite[r] != UINT32_MAX)
                setBit(gen[b], lastSite[r]);
    }

    // Entry: every register carries its entry pseudo-definition.
    for (ir::RegId r = 0; r < fn.numRegs; ++r)
        setBit(in_[0], entryBit(r));

    // Iterate to fixpoint (CFGs are small; round-robin converges in
    // a handful of passes).
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b = 0; b < nblocks; ++b) {
            for (ir::BlockId p : fn.blocks[b].preds)
                changed |= unionInto(in_[b], out[p]);
            Bits next(words, 0);
            for (size_t w = 0; w < words; ++w)
                next[w] = gen[b][w] | (in_[b][w] & killMask[b][w]);
            changed |= next != out[b];
            out[b] = std::move(next);
        }
    }
}

ReachingDefs::RegDefs
ReachingDefs::defsAt(ir::StmtId use, ir::RegId r) const
{
    const ir::StmtRef& ref = mod_->stmtRef(use);
    const ir::BasicBlock& blk = fn_->blocks[ref.block];
    WET_ASSERT(r < fn_->numRegs, "register out of range");

    RegDefs res;
    // A definition of r earlier in the same block shadows everything
    // arriving at the block entry; the latest one wins.
    for (uint32_t i = ref.index; i-- > 0;) {
        const ir::Instr& in = blk.instrs[i];
        if (ir::hasDef(in.op) && in.dest == r) {
            res.stmts.push_back(in.stmt);
            return res;
        }
    }
    for (uint32_t site : sitesOfReg_[r])
        if (getBit(in_[ref.block], site))
            res.stmts.push_back(sites_[site].stmt);
    res.fromEntry = getBit(in_[ref.block], entryBit(r));
    return res;
}

} // namespace analysis
} // namespace wet
