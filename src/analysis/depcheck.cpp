#include "depcheck.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "codec/encoder.h"
#include "ir/opcode.h"

namespace wet {
namespace analysis {

namespace {

using core::kCdSlot;
using core::kNoIndex;
using core::NodeId;
using core::WetEdge;
using core::WetGraph;
using core::WetNode;

std::string
edgeLoc(uint32_t e, const WetEdge& ed)
{
    std::ostringstream os;
    os << "edge " << e << " (def node " << ed.defNode << " pos "
       << ed.defStmtPos << " -> use node " << ed.useNode << " pos "
       << ed.useStmtPos << " slot " << int{ed.slot} << ")";
    return os.str();
}

/** Tier-1 labels when present, else a tier-2 decode (see verifyWet). */
template <typename T>
bool
materialize(const std::vector<T>& tier1,
            const codec::CompressedStream* stream,
            std::vector<int64_t>& out)
{
    if (!tier1.empty()) {
        out.assign(tier1.begin(), tier1.end());
        return true;
    }
    if (stream && stream->length > 0) {
        out = codec::decodeAll(*stream);
        return true;
    }
    return false;
}

/** True when the edge's endpoints index real statement positions. */
bool
edgeInRange(const WetGraph& g, const WetEdge& ed)
{
    return ed.defNode < g.nodes.size() &&
           ed.useNode < g.nodes.size() &&
           ed.defStmtPos < g.nodes[ed.defNode].stmts.size() &&
           ed.useStmtPos < g.nodes[ed.useNode].stmts.size();
}

/** WET011/WET012: every dynamic DD edge against the static sets. */
void
checkDataDeps(const WetGraph& g, const ir::Module& mod,
              const StaticDepGraph& sdg, DiagEngine& diag,
              DepCheckStats* stats)
{
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const WetEdge& ed = g.edges[e];
        if (ed.slot == kCdSlot || !edgeInRange(g, ed))
            continue;
        ir::StmtId use = g.nodes[ed.useNode].stmts[ed.useStmtPos];
        ir::StmtId def = g.nodes[ed.defNode].stmts[ed.defStmtPos];
        if (use >= mod.numStmts() || def >= mod.numStmts())
            continue; // reported as WET009
        if (stats)
            ++stats->ddEdges;

        SlotInfo si = slotInfo(mod.instr(use), ed.slot);
        if (si.kind == SlotKind::None) {
            std::ostringstream os;
            os << "statement " << use << " ("
               << ir::opcodeName(mod.instr(use).op)
               << ") never populates dependence slot "
               << int{ed.slot};
            diag.error("WET011", edgeLoc(e, ed), os.str());
            continue;
        }
        if (si.kind == SlotKind::Mem &&
            mod.instr(def).op != ir::Opcode::Store)
        {
            std::ostringstream os;
            os << "memory dependence def statement " << def
               << " is a " << ir::opcodeName(mod.instr(def).op)
               << ", not a store";
            diag.error("WET012", edgeLoc(e, ed), os.str());
            continue;
        }
        if (!sdg.mayDepend(use, ed.slot, def)) {
            std::ostringstream os;
            os << "def statement " << def
               << " is not in the static may-definition set of "
               << "statement " << use << " slot " << int{ed.slot}
               << " (" << sdg.mayDefs(use, ed.slot).size()
               << " statically possible defs)";
            diag.error("WET011", edgeLoc(e, ed), os.str());
        }
    }
}

/** WET013: every dynamic CD edge against the static CD parents. */
void
checkControlDeps(const WetGraph& g, const ir::Module& mod,
                 const StaticDepGraph& sdg, DiagEngine& diag,
                 DepCheckStats* stats)
{
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const WetEdge& ed = g.edges[e];
        if (ed.slot != kCdSlot || !edgeInRange(g, ed))
            continue;
        ir::StmtId use = g.nodes[ed.useNode].stmts[ed.useStmtPos];
        ir::StmtId def = g.nodes[ed.defNode].stmts[ed.defStmtPos];
        if (use >= mod.numStmts() || def >= mod.numStmts())
            continue; // reported as WET009
        if (stats)
            ++stats->cdEdges;
        if (!sdg.mayControl(use, def)) {
            std::ostringstream os;
            os << "def statement " << def << " ("
               << ir::opcodeName(mod.instr(def).op)
               << ") is neither a static FOW control-dependence "
               << "parent of statement " << use
               << "'s block nor a call site of its function";
            diag.error("WET013", edgeLoc(e, ed), os.str());
        }
    }
}

/**
 * Instance-level backward walker over the WET edge labels, kept
 * self-contained because wet_verifier links below wet_core: builds
 * its own use-key index and materializes label pools lazily.
 */
class SliceWalker
{
  public:
    SliceWalker(const WetGraph& g,
                const core::WetCompressed* compressed)
        : g_(&g), compressed_(compressed),
          poolLoaded_(g.labelPool.size(), 0),
          poolUse_(g.labelPool.size()), poolDef_(g.labelPool.size())
    {
        for (uint32_t e = 0; e < g.edges.size(); ++e) {
            const WetEdge& ed = g.edges[e];
            if (!edgeInRange(g, ed))
                continue;
            byUse_[WetGraph::useKey(ed.useNode, ed.useStmtPos,
                                    ed.slot)]
                .push_back(e);
        }
    }

    /**
     * Walk backward from (node, pos, instance); calls
     * @p onStmt(stmt) for every visited statement (including the
     * seed). Stops after @p maxItems items. Returns items visited.
     */
    template <typename Fn>
    uint64_t
    walk(NodeId seedNode, uint32_t seedPos, uint64_t seedInst,
         uint64_t maxItems, Fn onStmt)
    {
        struct Item
        {
            NodeId node;
            uint32_t pos;
            uint64_t inst;
        };
        std::vector<Item> work{{seedNode, seedPos, seedInst}};
        std::unordered_set<uint64_t> seen{
            pack(seedNode, seedPos, seedInst)};
        uint64_t visited = 0;
        while (!work.empty() && visited < maxItems) {
            Item it = work.back();
            work.pop_back();
            ++visited;
            const WetNode& node = g_->nodes[it.node];
            onStmt(node.stmts[it.pos]);

            auto follow = [&](uint32_t usePos, uint8_t slot) {
                auto f = byUse_.find(
                    WetGraph::useKey(it.node, usePos, slot));
                if (f == byUse_.end())
                    return;
                for (uint32_t e : f->second) {
                    const WetEdge& ed = g_->edges[e];
                    uint64_t defInst;
                    if (!resolve(ed, it.inst, defInst))
                        continue;
                    uint64_t key = pack(ed.defNode, ed.defStmtPos,
                                        defInst);
                    if (seen.insert(key).second)
                        work.push_back(
                            {ed.defNode, ed.defStmtPos, defInst});
                }
            };
            follow(it.pos, 0);
            follow(it.pos, 1);
            follow(blockFirstOf(node, it.pos), kCdSlot);
        }
        return visited;
    }

  private:
    static uint64_t
    pack(NodeId n, uint32_t pos, uint64_t inst)
    {
        // node < 2^20 and pos < 2^14 hold for any graph the builder
        // emits (same packing as the core slicer); instances are
        // capped to 30 bits, plenty for the sampled walks here.
        return (uint64_t{n} << 44) | (uint64_t{pos} << 30) |
               (inst & ((uint64_t{1} << 30) - 1));
    }

    /** First statement position of the block containing @p pos. */
    static uint32_t
    blockFirstOf(const WetNode& node, uint32_t pos)
    {
        const auto& firsts = node.blockFirstStmt;
        auto it = std::upper_bound(firsts.begin(), firsts.end(), pos);
        return it == firsts.begin() ? 0 : *(it - 1);
    }

    /**
     * Def instance fed into use instance @p useInst along @p ed;
     * false when this edge carries no label for that instance.
     */
    bool
    resolve(const WetEdge& ed, uint64_t useInst, uint64_t& defInst)
    {
        if (ed.local) {
            defInst = useInst;
            return true;
        }
        if (ed.labelPool == kNoIndex ||
            ed.labelPool >= g_->labelPool.size() ||
            !loadPool(ed.labelPool))
            return false;
        const auto& useSeq = poolUse_[ed.labelPool];
        auto it = std::lower_bound(useSeq.begin(), useSeq.end(),
                                   static_cast<int64_t>(useInst));
        if (it == useSeq.end() ||
            *it != static_cast<int64_t>(useInst))
            return false;
        size_t i = static_cast<size_t>(it - useSeq.begin());
        if (i >= poolDef_[ed.labelPool].size())
            return false;
        defInst =
            static_cast<uint64_t>(poolDef_[ed.labelPool][i]);
        return true;
    }

    bool
    loadPool(uint32_t p)
    {
        if (poolLoaded_[p])
            return poolLoaded_[p] == 1;
        bool okU = materialize(
            g_->labelPool[p].useInst,
            compressed_ ? &compressed_->pool(p).useInst : nullptr,
            poolUse_[p]);
        bool okD = materialize(
            g_->labelPool[p].defInst,
            compressed_ ? &compressed_->pool(p).defInst : nullptr,
            poolDef_[p]);
        poolLoaded_[p] = (okU && okD) ? 1 : 2;
        return poolLoaded_[p] == 1;
    }

    const WetGraph* g_;
    const core::WetCompressed* compressed_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> byUse_;
    std::vector<char> poolLoaded_;
    std::vector<std::vector<int64_t>> poolUse_;
    std::vector<std::vector<int64_t>> poolDef_;
};

/**
 * WET014: dynamic backward slices from a deterministic sample of
 * seeds must stay inside the static backward slice of the seed.
 */
void
checkSliceContainment(const WetGraph& g, const ir::Module& mod,
                      const StaticDepGraph& sdg, DiagEngine& diag,
                      const core::WetCompressed* compressed,
                      const DepCheckOptions& opt,
                      DepCheckStats* stats)
{
    if (opt.maxSliceSeeds == 0)
        return;

    // Deterministic seed choice: executed Out statements ascending
    // (program outputs make the most meaningful slices), padded with
    // executed def-port statements.
    std::vector<ir::StmtId> seeds;
    auto collect = [&](auto pred) {
        for (ir::StmtId s = 0;
             s < mod.numStmts() && seeds.size() < opt.maxSliceSeeds;
             ++s) {
            if (!pred(mod.instr(s).op))
                continue;
            if (g.stmtIndex.find(s) == g.stmtIndex.end())
                continue;
            if (std::find(seeds.begin(), seeds.end(), s) ==
                seeds.end())
                seeds.push_back(s);
        }
    };
    collect([](ir::Opcode op) { return op == ir::Opcode::Out; });
    collect([](ir::Opcode op) { return ir::hasDef(op); });
    if (seeds.empty())
        return;

    SliceWalker walker(g, compressed);
    for (ir::StmtId seed : seeds) {
        // Smallest (node, position) occurrence, last instance.
        const auto& sites = g.stmtIndex.at(seed);
        auto site = *std::min_element(sites.begin(), sites.end());
        const WetNode& node = g.nodes[site.first];
        if (node.numInstances == 0)
            continue;
        if (stats)
            ++stats->sliceSeeds;

        std::vector<bool> staticSlice = sdg.backwardSlice(seed);
        bool reported = false;
        uint64_t items = walker.walk(
            site.first, site.second, node.numInstances - 1,
            opt.maxSliceItems, [&](ir::StmtId s) {
                if (reported || s >= mod.numStmts() ||
                    staticSlice[s])
                    return;
                reported = true;
                std::ostringstream os;
                os << "dynamic backward slice from statement "
                   << seed << " reaches statement " << s
                   << ", which is outside the static backward "
                   << "slice";
                diag.error("WET014",
                           "slice seed " + std::to_string(seed),
                           os.str());
            });
        if (stats)
            stats->sliceItems += items;
    }
}

} // namespace

bool
verifyDeps(const core::WetGraph& g, const ModuleAnalysis& ma,
           const StaticDepGraph& sdg, DiagEngine& diag,
           const core::WetCompressed* compressed,
           const DepCheckOptions& opt, DepCheckStats* stats)
{
    uint64_t before = diag.errorCount();
    const ir::Module& mod = ma.module();
    checkDataDeps(g, mod, sdg, diag, stats);
    checkControlDeps(g, mod, sdg, diag, stats);
    checkSliceContainment(g, mod, sdg, diag, compressed, opt, stats);
    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
