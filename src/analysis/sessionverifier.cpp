#include "sessionverifier.h"

#include <sstream>

namespace wet {
namespace analysis {

bool
verifySessionCache(const core::StreamCache& cache,
                   const std::string& location, DiagEngine& diag)
{
    uint64_t before = diag.errorCount();
    if (cache.capacity() > 0 && cache.size() > cache.capacity()) {
        std::ostringstream os;
        os << "warm set holds " << cache.size()
           << " readers, capacity is " << cache.capacity();
        diag.error("SES001", location, os.str());
    }
    if (cache.graveyardSize() != 0) {
        std::ostringstream os;
        os << cache.graveyardSize()
           << " retired readers await purge at a query boundary";
        diag.error("SES002", location, os.str());
    }
    if (cache.lruSize() != cache.size()) {
        std::ostringstream os;
        os << "LRU list tracks " << cache.lruSize()
           << " entries, map holds " << cache.size();
        diag.error("SES003", location, os.str());
    }
    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
