#ifndef WET_ANALYSIS_SESSIONVERIFIER_H
#define WET_ANALYSIS_SESSIONVERIFIER_H

#include <string>

#include "analysis/diag.h"
#include "core/streamcache.h"

namespace wet {
namespace analysis {

/**
 * Invariant checks over a session's stream cache, meant to run at a
 * query boundary (no query in flight):
 *
 *  - SES001: the warm set never exceeds the configured capacity —
 *    deferred eviction may only park readers in the graveyard, not
 *    let the warm set grow past its bound;
 *  - SES002: the graveyard is empty — every query scope must purge
 *    the readers it evicted or quarantined before the next query
 *    starts;
 *  - SES003: the LRU recency list and the key map agree in size —
 *    an entry in one but not the other means eviction or quarantine
 *    left the two structures inconsistent.
 *
 * Findings go to @p diag under @p location; returns true when no
 * errors were added.
 */
bool verifySessionCache(const core::StreamCache& cache,
                        const std::string& location, DiagEngine& diag);

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_SESSIONVERIFIER_H
