#ifndef WET_ANALYSIS_CFG_H
#define WET_ANALYSIS_CFG_H

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace wet {
namespace analysis {

/**
 * Depth-first traversal facts about one function's CFG: visit order,
 * reachability from the entry block, and DFS back-edge classification
 * (an edge u->v is a back edge when v is on the DFS stack while u->v is
 * examined). Ball–Larus path numbering removes exactly these edges to
 * obtain its acyclic path DAG.
 */
class CfgInfo
{
  public:
    explicit CfgInfo(const ir::Function& fn);

    const ir::Function& function() const { return *fn_; }

    bool reachable(ir::BlockId b) const { return reachable_[b]; }

    /** True if successor edge (b, succ_idx) is a DFS back edge. */
    bool
    isBackEdge(ir::BlockId b, size_t succ_idx) const
    {
        return backEdge_[b][succ_idx];
    }

    /** Blocks in reverse postorder of the back-edge-free DAG. */
    const std::vector<ir::BlockId>& rpo() const { return rpo_; }

    /** Postorder index of block (UINT32_MAX when unreachable). */
    uint32_t postIndex(ir::BlockId b) const { return postIndex_[b]; }

    /** Targets of back edges, i.e. loop headers, deduplicated. */
    const std::vector<ir::BlockId>& loopHeaders() const
    { return loopHeaders_; }

    /** True if the block ends the function (Ret or Halt). */
    bool isExitBlock(ir::BlockId b) const;

  private:
    const ir::Function* fn_;
    std::vector<bool> reachable_;
    std::vector<std::vector<bool>> backEdge_;
    std::vector<ir::BlockId> rpo_;
    std::vector<uint32_t> postIndex_;
    std::vector<ir::BlockId> loopHeaders_;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_CFG_H
