#include "diag.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wet {
namespace analysis {

namespace {

struct RuleEntry
{
    const char* id;
    const char* description;
};

// The verifier rule catalog. Stable ids: IRnnn for the module
// verifier, WETnnn for the WET graph verifier, ARTnnn for the
// compressed-artifact verifier, IOnnn for WETX file loading,
// SYNCnnn for the SYNC-stream verifier.
const RuleEntry kRules[] = {
    {"IR001", "register used without a dominating definition"},
    {"IR002", "basic block / terminator structure malformed"},
    {"IR003", "CFG successor/predecessor lists not reciprocal"},
    {"IR004", "dominator tree disagrees with recomputation"},
    {"IR005", "post-dominator tree disagrees with recomputation"},
    {"IR006", "Ball-Larus path table inconsistent with the CFG"},
    {"IR007", "Ball-Larus decoded path is not a valid CFG path"},
    {"WET001", "node timestamps not strictly increasing"},
    {"WET002", "node instance count disagrees with its labels"},
    {"WET003", "global timestamp accounting broken"},
    {"WET004", "tier-1 local edge is not actually inferable"},
    {"WET005", "edge label sequence malformed"},
    {"WET006", "shared edge-label pool entry inconsistent"},
    {"WET007", "CD edge contradicts recomputed control dependence"},
    {"WET008", "value group structure invalid"},
    {"WET009", "node structure inconsistent with the path table"},
    {"WET010", "node control-flow adjacency not reciprocal"},
    {"WET011", "dynamic DD edge outside the static may-definition "
               "set"},
    {"WET012", "memory dependence def is not a store"},
    {"WET013", "dynamic CD edge outside the static control-"
               "dependence parents"},
    {"WET014", "dynamic slice escapes the static backward slice"},
    {"ART001", "forward and backward stream decodes disagree"},
    {"ART002", "decoded stream differs from tier-1 labels"},
    {"ART003", "compressed stream structurally invalid"},
    {"ART004", "stream checkpoint invalid"},
    {"ART005", "stream length disagrees with graph structure"},
    {"ART006", "segment failed to load and was quarantined"},
    {"IO001", "not a readable WETX file (unopenable or bad magic)"},
    {"IO002", "unsupported WETX version"},
    {"IO003", "WETX was built from a different program"},
    {"IO004", "WETX file truncated"},
    {"IO005", "WETX structure corrupt"},
    {"IO006", "WETX file has trailing bytes"},
    {"IO008", "segment manifest malformed or torn"},
    {"IO009", "segment file disagrees with its manifest entry"},
    {"SYNC001", "sync event malformed (unknown kind or mismatched "
                "statement opcode)"},
    {"SYNC002", "lock discipline violated (unbalanced or foreign "
                "acquire/release)"},
    {"SYNC003", "thread lifecycle violated (bad spawn/join pairing)"},
    {"SYNC004", "sync seq counters not a consistent interleaving"},
};

void
jsonEscape(std::ostringstream& os, const std::string& s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

const char*
ruleDescription(const std::string& rule)
{
    for (const RuleEntry& e : kRules)
        if (rule == e.id)
            return e.description;
    return nullptr;
}

void
DiagEngine::report(std::string rule, Severity sev,
                   std::string location, std::string message)
{
    switch (sev) {
      case Severity::Error: ++errors_; break;
      case Severity::Warning: ++warnings_; break;
      case Severity::Note: ++notes_; break;
    }
    if (diags_.size() >= limit_)
        return;
    diags_.push_back(Diagnostic{std::move(rule), sev,
                                std::move(location),
                                std::move(message)});
}

bool
DiagEngine::hasRule(const std::string& rule) const
{
    for (const Diagnostic& d : diags_)
        if (d.rule == rule)
            return true;
    return false;
}

std::vector<std::string>
DiagEngine::firedRules() const
{
    std::vector<std::string> rules;
    for (const Diagnostic& d : diags_)
        rules.push_back(d.rule);
    std::sort(rules.begin(), rules.end());
    rules.erase(std::unique(rules.begin(), rules.end()),
                rules.end());
    return rules;
}

std::string
DiagEngine::renderText() const
{
    std::ostringstream os;
    for (const Diagnostic& d : diags_) {
        os << d.rule << ' ' << severityName(d.severity) << ": ["
           << d.location << "] " << d.message << '\n';
    }
    uint64_t recorded = diags_.size();
    uint64_t total = errors_ + warnings_ + notes_;
    if (total > recorded)
        os << "... " << (total - recorded)
           << " further diagnostics suppressed\n";
    os << errors_ << " error(s), " << warnings_ << " warning(s), "
       << notes_ << " note(s)\n";
    return os.str();
}

std::string
DiagEngine::renderJson() const
{
    std::ostringstream os;
    os << "{\n  \"diagnostics\": [";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic& d = diags_[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"rule\": \"";
        jsonEscape(os, d.rule);
        os << "\", \"severity\": \"" << severityName(d.severity)
           << "\", \"location\": \"";
        jsonEscape(os, d.location);
        os << "\", \"message\": \"";
        jsonEscape(os, d.message);
        os << "\"}";
    }
    os << (diags_.empty() ? "]" : "\n  ]");
    os << ",\n  \"errors\": " << errors_
       << ",\n  \"warnings\": " << warnings_
       << ",\n  \"notes\": " << notes_ << "\n}\n";
    return os.str();
}

} // namespace analysis
} // namespace wet
