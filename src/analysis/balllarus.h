#ifndef WET_ANALYSIS_BALLLARUS_H
#define WET_ANALYSIS_BALLLARUS_H

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/**
 * Ball–Larus path numbering of one function (Ball & Larus, MICRO'96).
 *
 * Back edges are removed from the CFG and replaced with dummy edges
 * (ENTRY -> loop header, back-edge source -> EXIT), yielding a DAG in
 * which every acyclic path gets a unique id in [0, numPaths).
 *
 * Runtime protocol (used by the trace segmentation in the WET
 * builder): on function entry r = 0; traversing a non-back edge adds
 * edgeVal(u, idx); taking a back edge u->v finishes the current path
 * with id r + exitVal(u) and restarts with r = entryVal(v); reaching a
 * Ret/Halt block u finishes with id r + exitVal(u).
 *
 * When the function has more than @p max_paths static paths the
 * numbering degrades to block mode: every basic block is its own
 * single-block path (the paper's base case of one node per block).
 */
class BallLarus
{
  public:
    explicit BallLarus(const CfgInfo& cfg,
                       uint64_t max_paths = uint64_t{1} << 24);

    /** True when path explosion forced one-block paths. */
    bool blockMode() const { return blockMode_; }

    /** Total number of static path ids. */
    uint64_t numPaths() const { return numPaths_; }

    /** Increment for traversing non-back successor edge (u, idx). */
    uint64_t
    edgeVal(ir::BlockId u, size_t idx) const
    {
        return edgeVals_[u][idx];
    }

    /** Finishing increment at block u (back-edge source or exit). */
    uint64_t exitVal(ir::BlockId u) const { return exitVals_[u]; }

    /** Restart value when a new path begins at loop header v. */
    uint64_t entryVal(ir::BlockId v) const { return entryVals_[v]; }

    /** True if block v can start a path (entry block or loop header). */
    bool
    canStartPath(ir::BlockId v) const
    {
        return entryVals_[v] != UINT64_MAX;
    }

    /** Decode a path id back into its basic-block sequence. */
    std::vector<ir::BlockId> decode(uint64_t path_id) const;

    const CfgInfo& cfg() const { return *cfg_; }

  private:
    struct DagEdge
    {
        uint32_t target;   //!< DAG node id (blocks, then ENTRY, EXIT)
        uint64_t val = 0;
        bool dummy = false;
    };

    void build(uint64_t max_paths);
    void enterBlockMode();

    const CfgInfo* cfg_;
    bool blockMode_ = false;
    uint64_t numPaths_ = 0;
    std::vector<std::vector<uint64_t>> edgeVals_;
    std::vector<uint64_t> exitVals_;
    std::vector<uint64_t> entryVals_;
    std::vector<std::vector<DagEdge>> dagEdges_; //!< per DAG node
    uint32_t entryNode_ = 0;
    uint32_t exitNode_ = 0;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_BALLLARUS_H
