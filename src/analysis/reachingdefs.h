#ifndef WET_ANALYSIS_REACHINGDEFS_H
#define WET_ANALYSIS_REACHINGDEFS_H

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace wet {
namespace analysis {

/**
 * Per-function reaching definitions, solved with the classic
 * iterative bitset dataflow over the CFG.
 *
 * A definition site is any instruction with a def port writing a real
 * register. In addition, every register owns one *entry definition*
 * pseudo-site generated at the function entry: parameters arrive in
 * registers 0..numParams-1 from the call site, so a use reached by
 * the entry definition of a parameter register may (statically)
 * receive its value from outside the function. The interprocedural
 * layer (StaticDepGraph) expands those entry definitions through the
 * call graph.
 *
 * Queries are per (use statement, register): the local definition
 * statements that may reach the use, plus whether the entry
 * definition reaches it.
 */
class ReachingDefs
{
  public:
    ReachingDefs(const ir::Module& mod, const ir::Function& fn);

    /** One real definition site of the function. */
    struct DefSite
    {
        ir::StmtId stmt;
        ir::RegId reg;
    };

    /** May-definitions of register @p r at statement @p use. */
    struct RegDefs
    {
        /** Local definition statements, sorted ascending. */
        std::vector<ir::StmtId> stmts;
        /** True when the entry pseudo-definition reaches the use. */
        bool fromEntry = false;
    };

    /**
     * May-definitions of @p r visible at @p use (a statement of this
     * function), i.e. at the program point just before it executes.
     */
    RegDefs defsAt(ir::StmtId use, ir::RegId r) const;

    /** All real definition sites, in statement order. */
    const std::vector<DefSite>& sites() const { return sites_; }

    const ir::Function& function() const { return *fn_; }

  private:
    using Bits = std::vector<uint64_t>;

    uint32_t numBits() const
    {
        return static_cast<uint32_t>(sites_.size()) + fn_->numRegs;
    }
    uint32_t entryBit(ir::RegId r) const
    {
        return static_cast<uint32_t>(sites_.size()) + r;
    }

    const ir::Module* mod_;
    const ir::Function* fn_;
    std::vector<DefSite> sites_;
    /** Site ids per register, ascending by statement. */
    std::vector<std::vector<uint32_t>> sitesOfReg_;
    /** Per block: reaching set at block entry. */
    std::vector<Bits> in_;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_REACHINGDEFS_H
