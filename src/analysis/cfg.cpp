#include "cfg.h"

#include <algorithm>

#include "support/error.h"

namespace wet {
namespace analysis {

CfgInfo::CfgInfo(const ir::Function& fn) : fn_(&fn)
{
    const size_t n = fn.blocks.size();
    reachable_.assign(n, false);
    backEdge_.resize(n);
    postIndex_.assign(n, UINT32_MAX);
    for (size_t b = 0; b < n; ++b)
        backEdge_[b].assign(fn.blocks[b].succs.size(), false);

    // Iterative DFS with explicit colors: 0 = white, 1 = gray (on
    // stack), 2 = black. An edge to a gray node is a back edge.
    std::vector<uint8_t> color(n, 0);
    struct Frame
    {
        ir::BlockId block;
        size_t next = 0;
    };
    std::vector<Frame> stack;
    std::vector<ir::BlockId> postorder;
    std::vector<bool> headerSeen(n, false);

    stack.push_back(Frame{0});
    color[0] = 1;
    reachable_[0] = true;
    while (!stack.empty()) {
        Frame& f = stack.back();
        const auto& succs = fn.blocks[f.block].succs;
        if (f.next < succs.size()) {
            size_t idx = f.next++;
            ir::BlockId s = succs[idx];
            if (color[s] == 1) {
                backEdge_[f.block][idx] = true;
                if (!headerSeen[s]) {
                    headerSeen[s] = true;
                    loopHeaders_.push_back(s);
                }
            } else if (color[s] == 0) {
                color[s] = 1;
                reachable_[s] = true;
                stack.push_back(Frame{s});
            }
        } else {
            color[f.block] = 2;
            postIndex_[f.block] =
                static_cast<uint32_t>(postorder.size());
            postorder.push_back(f.block);
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
}

bool
CfgInfo::isExitBlock(ir::BlockId b) const
{
    const auto& term = fn_->blocks[b].terminator();
    return term.op == ir::Opcode::Ret || term.op == ir::Opcode::Halt;
}

} // namespace analysis
} // namespace wet
