#ifndef WET_ANALYSIS_RACEDETECT_H
#define WET_ANALYSIS_RACEDETECT_H

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/diag.h"
#include "core/compressed.h"
#include "core/cursorslicer.h"
#include "core/streamcache.h"
#include "interp/tracesink.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/** One endpoint of a race: a shared-memory access of one thread. */
struct RaceAccess
{
    uint32_t thread = 0;
    ir::StmtId stmt = ir::kNoStmt;
    bool isWrite = false;
};

/**
 * One data race: two conflicting accesses to the same address (at
 * least one a write, by different threads) with no happens-before
 * order between them. `first` is the earlier access in the recorded
 * interleaving. Races are identified by (addr, endpoints) — a racy
 * pair inside a loop reports once, not once per iteration.
 */
struct Race
{
    int64_t addr = 0;
    RaceAccess first;
    RaceAccess second;

    friend bool
    operator<(const Race& a, const Race& b)
    {
        auto key = [](const Race& r) {
            return std::tuple(r.addr, r.first.stmt, r.second.stmt,
                              r.first.thread, r.second.thread,
                              r.first.isWrite, r.second.isWrite);
        };
        return key(a) < key(b);
    }
    friend bool
    operator==(const Race& a, const Race& b)
    {
        return !(a < b) && !(b < a);
    }
};

/**
 * Result of one race scan. Both engines (and the oracle, on the same
 * event sequence) produce identical reports, so renderText() is
 * byte-stable across engines by construction: races are sorted and
 * deduplicated, and no timing or I/O figures appear in the text.
 */
struct RaceReport
{
    std::vector<Race> races; //!< sorted ascending, deduplicated
    uint32_t numThreads = 0;
    uint64_t numEvents = 0; //!< sync events scanned

    /** Stable text rendering (one line per race). */
    std::string renderText() const;
};

/**
 * Per-thread SYNC stream surface the detector core walks: one
 * SeqReader per (thread, component). Component indexes mirror the
 * stream-key layout of StreamKind::CursorSync / DecodeSync:
 * 0 kind, 1 obj, 2 stmt, 3 seq.
 */
class SyncAccess
{
  public:
    virtual ~SyncAccess() = default;

    virtual uint32_t numThreads() const = 0;
    virtual core::SeqReader& component(uint32_t tid, uint32_t comp) = 0;
};

/**
 * Race-detection engine that walks the compressed SYNC streams
 * directly through bidirectional StreamCursors — the whole scan runs
 * on the artifact without decoding any stream into a buffer (the
 * paper's traversal-without-decompression claim, applied to race
 * detection). Pass a shared StreamCache to keep readers warm across
 * queries; the default is a private unbounded cache.
 */
class CursorSyncAccess : public SyncAccess
{
  public:
    explicit CursorSyncAccess(const core::WetCompressed& c,
                              core::StreamCache* cache = nullptr,
                              unsigned segment = 0);
    ~CursorSyncAccess() override;

    uint32_t numThreads() const override;
    core::SeqReader& component(uint32_t tid, uint32_t comp) override;

    /** I/O accounting over the engine's warm readers. */
    core::SliceIoStats stats() const;

  private:
    const core::WetCompressed* c_;
    core::StreamCache own_;
    core::StreamCache* cache_;
    unsigned seg_ = 0;
};

/**
 * Reference engine: same surface, but every SYNC stream is fully
 * decoded into a vector on first touch (what a conventional
 * decompress-then-analyze race detector pays). Reports must come out
 * byte-identical to CursorSyncAccess; only stats() differs.
 */
class DecodeSyncAccess : public SyncAccess
{
  public:
    explicit DecodeSyncAccess(const core::WetCompressed& c,
                              core::StreamCache* cache = nullptr,
                              unsigned segment = 0);
    ~DecodeSyncAccess() override;

    uint32_t numThreads() const override;
    core::SeqReader& component(uint32_t tid, uint32_t comp) override;

    core::SliceIoStats stats() const;

  private:
    const core::WetCompressed* c_;
    core::StreamCache own_;
    core::StreamCache* cache_;
    unsigned seg_ = 0;
};

enum class RaceEngine : uint8_t { Cursor, Decode };

/**
 * Vector-clock happens-before race scan over @p sync: the per-thread
 * streams are k-way merged on the global seq counter and fed through
 * an SHB-style detector (spawn/join and lock release→acquire edges;
 * last read/write per address per thread). The detector core is
 * shared by both engines — they differ only in how stream values are
 * fetched — so reports are identical by construction.
 */
RaceReport detectRaces(SyncAccess& sync);

/** Convenience wrapper: build the engine's access and scan @p c. */
RaceReport detectRaces(const core::WetCompressed& c, RaceEngine engine,
                       core::StreamCache* cache = nullptr);

/**
 * One fully materialized sync event with its thread, for the oracle
 * (and for fuzzing either detector with synthetic interleavings).
 */
struct RawSyncEvent
{
    uint32_t thread = 0;
    interp::SyncKind kind = interp::SyncKind::Read;
    int64_t obj = 0;
    ir::StmtId stmt = ir::kNoStmt;
    uint64_t seq = 0;
};

/**
 * Naive decoded-trace oracle: builds the explicit happens-before
 * graph over @p events (program order, spawn→child-start,
 * child-end→join, lock release→acquire) and answers every ordering
 * query by transitive-closure reachability instead of vector clocks.
 * Shares no ordering machinery with detectRaces, so agreement under
 * differential fuzzing exercises the vector-clock update rules
 * against ground truth. O(n²) — test-sized traces only.
 */
RaceReport detectRacesOracle(std::vector<RawSyncEvent> events,
                             uint32_t num_threads);

/** Decode the SYNC section of @p c into a flat event list. */
std::vector<RawSyncEvent> decodeSyncEvents(const core::WetCompressed& c);

/**
 * SYNC-section verifier rules (run from `wet_cli verify`):
 *
 *   SYNC001  malformed event: unknown kind value, or a sync event
 *            whose statement's opcode does not match its kind
 *   SYNC002  lock discipline: acquire of a held lock, or release by
 *            a non-holder, in the merged interleaving
 *   SYNC003  thread lifecycle: join of a never-spawned thread,
 *            double spawn/join, or a thread id out of range
 *   SYNC004  seq integrity: per-thread seq not strictly increasing,
 *            or the global seq values not a permutation of 1..N
 *
 * Returns true when no error was reported. @p mod may be null (the
 * opcode cross-checks of SYNC001 are skipped).
 */
bool verifySync(const core::WetCompressed& c, const ir::Module* mod,
                DiagEngine& diag);

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_RACEDETECT_H
