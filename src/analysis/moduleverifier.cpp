#include "moduleverifier.h"

#include <sstream>
#include <unordered_set>

#include "analysis/balllarus.h"
#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "ir/opcode.h"

namespace wet {
namespace analysis {

namespace {

/** Dense bitset over block ids, sized once per function. */
class BlockSet
{
  public:
    explicit BlockSet(size_t n, bool full = false)
        : words_((n + 63) / 64, full ? ~uint64_t{0} : 0), n_(n)
    {
        if (full && n % 64)
            words_.back() = (uint64_t{1} << (n % 64)) - 1;
    }

    bool
    get(size_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }

    /** this &= o; returns true if anything changed. */
    bool
    intersect(const BlockSet& o)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t nv = words_[w] & o.words_[w];
            changed |= nv != words_[w];
            words_[w] = nv;
        }
        return changed;
    }

    bool
    operator==(const BlockSet& o) const
    {
        return words_ == o.words_;
    }

    size_t size() const { return n_; }

  private:
    std::vector<uint64_t> words_;
    size_t n_;
};

std::string
loc(ir::FuncId f, const ir::Function& fn)
{
    std::ostringstream os;
    os << "fn " << f << " '" << fn.name << "'";
    return os.str();
}

std::string
loc(ir::FuncId f, const ir::Function& fn, ir::BlockId b)
{
    std::ostringstream os;
    os << loc(f, fn) << " block " << b;
    return os.str();
}

/**
 * Iterative bitset dominator solver over an explicit predecessor
 * graph: dom[root] = {root}; dom[v] = {v} | AND over preds. Nodes
 * not reachable from the root keep a full set; callers must restrict
 * queries to reachable nodes.
 */
std::vector<BlockSet>
solveDomSets(size_t num_nodes,
             const std::vector<std::vector<uint32_t>>& preds,
             uint32_t root)
{
    std::vector<BlockSet> dom(num_nodes,
                              BlockSet(num_nodes, true));
    dom[root] = BlockSet(num_nodes);
    dom[root].set(root);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t v = 0; v < num_nodes; ++v) {
            if (v == root)
                continue;
            BlockSet nv(num_nodes, true);
            bool any = false;
            for (uint32_t p : preds[v]) {
                nv.intersect(dom[p]);
                any = true;
            }
            if (!any)
                continue;
            nv.set(v);
            if (!(nv == dom[v])) {
                dom[v] = nv;
                changed = true;
            }
        }
    }
    return dom;
}

/** Nodes reachable from @p root over @p succs. */
std::vector<bool>
reachableFrom(size_t num_nodes,
              const std::vector<std::vector<uint32_t>>& succs,
              uint32_t root)
{
    std::vector<bool> seen(num_nodes, false);
    std::vector<uint32_t> stack{root};
    seen[root] = true;
    while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t v : succs[u]) {
            if (!seen[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

/** IR002 + IR003: block shape, terminators, succ/pred reciprocity. */
bool
checkStructure(ir::FuncId f, const ir::Function& fn,
               DiagEngine& diag)
{
    uint64_t before = diag.errorCount();
    const size_t n = fn.blocks.size();
    if (n == 0) {
        diag.error("IR002", loc(f, fn), "function has no blocks");
        return false;
    }
    for (ir::BlockId b = 0; b < n; ++b) {
        const ir::BasicBlock& blk = fn.blocks[b];
        if (blk.instrs.empty()) {
            diag.error("IR002", loc(f, fn, b), "block is empty");
            continue;
        }
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            bool last = i + 1 == blk.instrs.size();
            if (ir::isTerminator(blk.instrs[i].op) != last) {
                std::ostringstream os;
                os << "instr " << i
                   << (last ? " does not end the block with a "
                              "terminator"
                            : " is a terminator in the middle of "
                              "the block");
                diag.error("IR002", loc(f, fn, b), os.str());
            }
        }
        size_t wantSuccs = 0;
        switch (blk.terminator().op) {
          case ir::Opcode::Br: wantSuccs = 2; break;
          case ir::Opcode::Jmp: wantSuccs = 1; break;
          default: wantSuccs = 0; break;
        }
        if (blk.succs.size() != wantSuccs) {
            std::ostringstream os;
            os << ir::opcodeName(blk.terminator().op)
               << " terminator expects " << wantSuccs
               << " successor(s), block has " << blk.succs.size();
            diag.error("IR002", loc(f, fn, b), os.str());
        }
        for (ir::BlockId s : blk.succs) {
            if (s >= n) {
                std::ostringstream os;
                os << "successor " << s << " out of range (function "
                   << "has " << n << " blocks)";
                diag.error("IR002", loc(f, fn, b), os.str());
            }
        }
    }
    if (diag.errorCount() != before)
        return false; // reciprocity needs in-range successor lists

    // Successor/predecessor reciprocity as multisets.
    for (ir::BlockId b = 0; b < n; ++b) {
        for (ir::BlockId s : fn.blocks[b].succs) {
            const auto& preds = fn.blocks[s].preds;
            size_t wanted = 0, have = 0;
            for (ir::BlockId x : fn.blocks[b].succs)
                wanted += x == s;
            for (ir::BlockId p : preds)
                have += p == b;
            if (have != wanted) {
                std::ostringstream os;
                os << "edge to block " << s << " appears " << wanted
                   << "x in succs but " << have
                   << "x in the target's preds";
                diag.error("IR003", loc(f, fn, b), os.str());
            }
        }
        for (ir::BlockId p : fn.blocks[b].preds) {
            if (p >= n) {
                std::ostringstream os;
                os << "predecessor " << p << " out of range";
                diag.error("IR003", loc(f, fn, b), os.str());
                continue;
            }
            bool found = false;
            for (ir::BlockId s : fn.blocks[p].succs)
                found |= s == b;
            if (!found) {
                std::ostringstream os;
                os << "predecessor " << p
                   << " does not list this block as a successor";
                diag.error("IR003", loc(f, fn, b), os.str());
            }
        }
    }
    return diag.errorCount() == before;
}

/** IR001: forward definite-assignment dataflow over registers. */
void
checkDefBeforeUse(ir::FuncId f, const ir::Function& fn,
                  const CfgInfo& cfg, DiagEngine& diag)
{
    const size_t n = fn.blocks.size();
    const size_t r = fn.numRegs;
    // out[b]: registers definitely assigned on every path from entry
    // through the end of b. Must-analysis: initialize non-entry
    // blocks to "all" and intersect.
    std::vector<BlockSet> out(n, BlockSet(r, true));
    auto transfer = [&](ir::BlockId b, BlockSet in,
                        DiagEngine* d) -> BlockSet {
        for (size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
            const ir::Instr& ins = fn.blocks[b].instrs[i];
            auto use = [&](ir::RegId reg, const char* what) {
                if (reg == ir::kNoReg || reg >= r)
                    return; // range errors are Module::verify's job
                if (d && !in.get(reg)) {
                    std::ostringstream os;
                    os << "instr " << i << " ("
                       << ir::opcodeName(ins.op) << ") " << what
                       << " r" << reg
                       << " may be read before assignment";
                    d->error("IR001", loc(f, fn, b), os.str());
                }
            };
            int uses = ir::numUses(ins.op);
            if (uses >= 1)
                use(ins.src0, "src0");
            if (uses >= 2)
                use(ins.src1, "src1");
            if (ins.op == ir::Opcode::Ret)
                use(ins.src0, "return value");
            for (ir::RegId a : ins.args)
                use(a, "call argument");
            if (ir::hasDef(ins.op) && ins.dest != ir::kNoReg &&
                ins.dest < r)
                in.set(ins.dest);
        }
        return in;
    };

    BlockSet entryIn(r);
    for (uint32_t p = 0; p < fn.numParams && p < r; ++p)
        entryIn.set(p);
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : cfg.rpo()) {
            BlockSet in(r, true);
            if (b == 0)
                in = entryIn;
            else
                for (ir::BlockId p : fn.blocks[b].preds)
                    if (cfg.reachable(p))
                        in.intersect(out[p]);
            BlockSet nout = transfer(b, std::move(in), nullptr);
            if (!(nout == out[b])) {
                out[b] = std::move(nout);
                changed = true;
            }
        }
    }
    // Reporting pass at the fixpoint.
    for (ir::BlockId b = 0; b < n; ++b) {
        if (!cfg.reachable(b))
            continue;
        BlockSet in(r, true);
        if (b == 0)
            in = entryIn;
        else
            for (ir::BlockId p : fn.blocks[b].preds)
                if (cfg.reachable(p))
                    in.intersect(out[p]);
        transfer(b, std::move(in), &diag);
    }
}

/** IR004/IR005: cross-check DomTree against a bitset recomputation. */
void
checkDominators(ir::FuncId f, const ir::Function& fn,
                const CfgInfo& cfg, DiagEngine& diag)
{
    const uint32_t n = fn.numBlocks();

    { // Forward dominators rooted at the entry block.
        std::vector<std::vector<uint32_t>> preds(n);
        for (ir::BlockId b = 0; b < n; ++b)
            for (ir::BlockId p : fn.blocks[b].preds)
                if (cfg.reachable(p))
                    preds[b].push_back(p);
        std::vector<BlockSet> dom = solveDomSets(n, preds, 0);
        DomTree tree = DomTree::dominators(fn);
        for (ir::BlockId a = 0; a < n; ++a) {
            if (!cfg.reachable(a))
                continue;
            for (ir::BlockId b = 0; b < n; ++b) {
                if (!cfg.reachable(b))
                    continue;
                bool want = dom[b].get(a);
                if (tree.dominates(a, b) != want) {
                    std::ostringstream os;
                    os << "block " << a << (want ? " should" :
                       " should not") << " dominate block " << b
                       << ", tree says otherwise";
                    diag.error("IR004", loc(f, fn), os.str());
                }
            }
        }
    }

    { // Post-dominators rooted at the virtual exit node (id n).
        const uint32_t exit = n;
        std::vector<std::vector<uint32_t>> rpreds(n + 1);
        std::vector<std::vector<uint32_t>> rsuccs(n + 1);
        for (ir::BlockId b = 0; b < n; ++b) {
            for (ir::BlockId s : fn.blocks[b].succs)
                rpreds[b].push_back(s);
            if (cfg.isExitBlock(b))
                rpreds[b].push_back(exit);
            // Reverse edges for reachability from the exit.
            for (ir::BlockId s : fn.blocks[b].succs)
                rsuccs[s].push_back(b);
            if (cfg.isExitBlock(b))
                rsuccs[exit].push_back(b);
        }
        std::vector<bool> reachesExit =
            reachableFrom(n + 1, rsuccs, exit);
        std::vector<BlockSet> pdom = solveDomSets(n + 1, rpreds,
                                                  exit);
        DomTree tree = DomTree::postDominators(fn);
        for (ir::BlockId b = 0; b < n; ++b) {
            if (!cfg.reachable(b))
                continue;
            if (!reachesExit[b]) {
                // Documented convention: blocks with no path to an
                // exit hang directly off the virtual exit node.
                if (tree.idom(b) != DomTree::virtualExit(fn)) {
                    std::ostringstream os;
                    os << "block " << b << " cannot reach an exit "
                       << "but its ipostdom is " << tree.idom(b)
                       << ", not the virtual exit";
                    diag.error("IR005", loc(f, fn), os.str());
                }
                continue;
            }
            for (ir::BlockId a = 0; a <= n; ++a) {
                if (a < n && (!cfg.reachable(a) || !reachesExit[a]))
                    continue;
                bool want = pdom[b].get(a);
                if (tree.dominates(a, b) != want) {
                    std::ostringstream os;
                    os << (a == n ? "the virtual exit" : "block ")
                       << (a == n ? std::string()
                                  : std::to_string(a))
                       << (want ? " should" : " should not")
                       << " post-dominate block " << b
                       << ", tree says otherwise";
                    diag.error("IR005", loc(f, fn), os.str());
                }
            }
        }
    }
}

/**
 * Independent acyclic-path count: DAG paths from @p u to the
 * conceptual EXIT, memoized. Matches the Ball-Larus DAG by
 * construction rules only (non-back edges; a path may end at an exit
 * block or a back-edge source), not by reusing its tables.
 */
uint64_t
countPaths(const ir::Function& fn, const CfgInfo& cfg, ir::BlockId u,
           std::vector<uint64_t>& memo, bool& overflow)
{
    constexpr uint64_t kUnset = UINT64_MAX;
    constexpr uint64_t kCap = uint64_t{1} << 40;
    if (memo[u] != kUnset)
        return memo[u];
    memo[u] = 0; // cycle guard; the DAG walk must not revisit
    const auto& succs = fn.blocks[u].succs;
    bool hasBack = false;
    uint64_t total = 0;
    for (size_t i = 0; i < succs.size(); ++i) {
        if (cfg.isBackEdge(u, i)) {
            hasBack = true;
            continue;
        }
        total += countPaths(fn, cfg, succs[i], memo, overflow);
        if (total > kCap) {
            overflow = true;
            total = kCap;
        }
    }
    if (cfg.isExitBlock(u) || hasBack)
        ++total;
    memo[u] = total;
    return total;
}

/** IR006/IR007: the BL table enumerates exactly the acyclic paths. */
void
checkBallLarus(ir::FuncId f, const ir::Function& fn,
               const CfgInfo& cfg, DiagEngine& diag,
               const ModuleVerifierOptions& opt)
{
    BallLarus bl(cfg, opt.maxPaths);
    if (bl.blockMode()) {
        if (bl.numPaths() != fn.blocks.size()) {
            std::ostringstream os;
            os << "block-mode path table has " << bl.numPaths()
               << " ids for " << fn.blocks.size() << " blocks";
            diag.error("IR006", loc(f, fn), os.str());
        }
        return;
    }

    // Path count, recomputed without the BL tables.
    bool overflow = false;
    std::vector<uint64_t> memo(fn.blocks.size(), UINT64_MAX);
    uint64_t want = countPaths(fn, cfg, 0, memo, overflow);
    for (ir::BlockId h : cfg.loopHeaders())
        if (h != 0)
            want += countPaths(fn, cfg, h, memo, overflow);
    if (overflow) {
        diag.warning("IR006", loc(f, fn),
                     "acyclic path count overflows the recount cap; "
                     "count check skipped");
    } else if (want != bl.numPaths()) {
        std::ostringstream os;
        os << "path table claims " << bl.numPaths()
           << " paths, CFG has " << want << " acyclic paths";
        diag.error("IR006", loc(f, fn), os.str());
        return; // decode checks would cascade
    }

    // Decode / re-encode round trip over a prefix of the id space.
    uint64_t cap = std::min<uint64_t>(bl.numPaths(),
                                      opt.maxDecodedPaths);
    std::unordered_set<std::string> seen;
    for (uint64_t id = 0; id < cap; ++id) {
        std::vector<ir::BlockId> seq = bl.decode(id);
        std::ostringstream osLoc;
        osLoc << loc(f, fn) << " path " << id;
        if (seq.empty()) {
            diag.error("IR007", osLoc.str(),
                       "path decodes to an empty block sequence");
            continue;
        }
        std::string key(reinterpret_cast<const char*>(seq.data()),
                        seq.size() * sizeof(seq[0]));
        if (!seen.insert(std::move(key)).second) {
            diag.error("IR006", osLoc.str(),
                       "two path ids decode to the same block "
                       "sequence");
            continue;
        }
        if (!bl.canStartPath(seq.front())) {
            std::ostringstream os;
            os << "decoded path starts at block " << seq.front()
               << ", which is neither the entry nor a loop header";
            diag.error("IR007", osLoc.str(), os.str());
            continue;
        }
        uint64_t r = bl.entryVal(seq.front());
        bool valid = true;
        for (size_t i = 0; i + 1 < seq.size() && valid; ++i) {
            const auto& succs = fn.blocks[seq[i]].succs;
            bool found = false;
            for (size_t k = 0; k < succs.size(); ++k) {
                if (succs[k] == seq[i + 1] &&
                    !cfg.isBackEdge(seq[i], k))
                {
                    r += bl.edgeVal(seq[i], k);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::ostringstream os;
                os << "decoded step " << seq[i] << " -> "
                   << seq[i + 1]
                   << " is not a forward CFG edge";
                diag.error("IR007", osLoc.str(), os.str());
                valid = false;
            }
        }
        if (!valid)
            continue;
        ir::BlockId last = seq.back();
        bool lastHasBack = false;
        for (size_t k = 0; k < fn.blocks[last].succs.size(); ++k)
            lastHasBack |= cfg.isBackEdge(last, k);
        if (!cfg.isExitBlock(last) && !lastHasBack) {
            std::ostringstream os;
            os << "decoded path ends at block " << last
               << ", which neither exits nor sources a back edge";
            diag.error("IR007", osLoc.str(), os.str());
            continue;
        }
        uint64_t reencoded = r + bl.exitVal(last);
        if (reencoded != id) {
            std::ostringstream os;
            os << "decoded path re-encodes to id " << reencoded;
            diag.error("IR006", osLoc.str(), os.str());
        }
    }
}

} // namespace

bool
verifyModule(const ir::Module& mod, DiagEngine& diag,
             const ModuleVerifierOptions& opt)
{
    uint64_t before = diag.errorCount();
    if (!mod.finalized()) {
        diag.error("IR002", "module", "module is not finalized");
        return false;
    }
    for (ir::FuncId f = 0; f < mod.numFunctions(); ++f) {
        const ir::Function& fn = mod.function(f);
        if (!checkStructure(f, fn, diag))
            continue; // CFG-dependent passes would cascade
        CfgInfo cfg(fn);
        checkDefBeforeUse(f, fn, cfg, diag);
        checkDominators(f, fn, cfg, diag);
        checkBallLarus(f, fn, cfg, diag, opt);
    }
    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
