#include "wetverifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "codec/encoder.h"
#include "ir/opcode.h"

namespace wet {
namespace analysis {

namespace {

using core::kCdSlot;
using core::kNoIndex;
using core::kNoNode;
using core::NodeId;
using core::WetEdge;
using core::WetGraph;
using core::WetNode;

std::string
nodeLoc(NodeId n)
{
    std::ostringstream os;
    os << "node " << n;
    return os.str();
}

std::string
edgeLoc(uint32_t e, const WetEdge& ed)
{
    std::ostringstream os;
    os << "edge " << e << " (def node " << ed.defNode << " pos "
       << ed.defStmtPos << " -> use node " << ed.useNode << " pos "
       << ed.useStmtPos << " slot " << int{ed.slot} << ")";
    return os.str();
}

/**
 * Materialize one label sequence: the tier-1 vector when non-empty,
 * else a decode of the tier-2 stream when available. Returns false
 * when neither source exists (labels dropped, nothing to check).
 */
template <typename T>
bool
materialize(const std::vector<T>& tier1,
            const codec::CompressedStream* stream,
            std::vector<int64_t>& out)
{
    if (!tier1.empty()) {
        out.assign(tier1.begin(), tier1.end());
        return true;
    }
    if (stream && stream->length > 0) {
        out = codec::decodeAll(*stream);
        return true;
    }
    return false;
}

/** Node structure against the module and the BL path table. */
void
checkNodeStructure(const WetGraph& g, const ModuleAnalysis& ma,
                   NodeId n, DiagEngine& diag)
{
    const WetNode& node = g.nodes[n];
    const ir::Module& mod = ma.module();
    if (node.func >= mod.numFunctions()) {
        std::ostringstream os;
        os << "function id " << node.func << " out of range";
        diag.error("WET009", nodeLoc(n), os.str());
        return;
    }
    const ir::Function& fn = mod.function(node.func);
    const BallLarus& bl = ma.fn(node.func).bl;

    if (!node.partial) {
        if (bl.blockMode()
                ? node.pathId >= fn.blocks.size()
                : node.pathId >= bl.numPaths()) {
            std::ostringstream os;
            os << "path id " << node.pathId
               << " out of range for function " << node.func;
            diag.error("WET009", nodeLoc(n), os.str());
            return;
        }
        std::vector<ir::BlockId> want = bl.decode(node.pathId);
        if (node.blocks != want) {
            std::ostringstream os;
            os << "block sequence disagrees with the path table "
               << "decode of path " << node.pathId;
            diag.error("WET009", nodeLoc(n), os.str());
            return;
        }
    }
    if (node.blocks.size() != node.blockFirstStmt.size()) {
        diag.error("WET009", nodeLoc(n),
                   "blocks and blockFirstStmt lengths differ");
        return;
    }

    // Statement list: per block a slice of the block's instructions;
    // complete for every block but (on partial paths) the last.
    uint32_t pos = 0;
    for (size_t j = 0; j < node.blocks.size(); ++j) {
        ir::BlockId b = node.blocks[j];
        if (b >= fn.blocks.size()) {
            std::ostringstream os;
            os << "block " << b << " out of range";
            diag.error("WET009", nodeLoc(n), os.str());
            return;
        }
        if (node.blockFirstStmt[j] != pos) {
            std::ostringstream os;
            os << "blockFirstStmt[" << j << "] = "
               << node.blockFirstStmt[j] << ", expected " << pos;
            diag.error("WET009", nodeLoc(n), os.str());
            return;
        }
        const auto& instrs = fn.blocks[b].instrs;
        uint32_t end = j + 1 < node.blocks.size()
                           ? static_cast<uint32_t>(
                                 pos + instrs.size())
                           : static_cast<uint32_t>(
                                 node.stmts.size());
        bool lastBlock = j + 1 == node.blocks.size();
        uint32_t count = end - pos;
        if (count > instrs.size() ||
            (!node.partial && lastBlock && count != instrs.size()))
        {
            std::ostringstream os;
            os << "block " << b << " contributes " << count
               << " statements, has " << instrs.size();
            diag.error("WET009", nodeLoc(n), os.str());
            return;
        }
        for (uint32_t i = 0; i < count; ++i) {
            if (node.stmts[pos + i] != instrs[i].stmt) {
                std::ostringstream os;
                os << "statement at position " << (pos + i)
                   << " is " << node.stmts[pos + i]
                   << ", block " << b << " instr " << i << " is "
                   << instrs[i].stmt;
                diag.error("WET009", nodeLoc(n), os.str());
                return;
            }
        }
        pos = end;
    }
    if (pos != node.stmts.size()) {
        std::ostringstream os;
        os << "blocks cover " << pos << " of " << node.stmts.size()
           << " statements";
        diag.error("WET009", nodeLoc(n), os.str());
    }

    // The statement index must know every (node, position).
    for (uint32_t i = 0; i < node.stmts.size(); ++i) {
        auto it = g.stmtIndex.find(node.stmts[i]);
        bool found = false;
        if (it != g.stmtIndex.end())
            for (const auto& [nn, pp] : it->second)
                found |= nn == n && pp == i;
        if (!found) {
            std::ostringstream os;
            os << "statement " << node.stmts[i] << " at position "
               << i << " missing from the statement index";
            diag.error("WET009", nodeLoc(n), os.str());
            break;
        }
    }
}

/** WET001/WET002/WET003: timestamp labels. */
void
checkTimestamps(const WetGraph& g,
                const core::WetCompressed* compressed,
                DiagEngine& diag, const WetVerifierOptions& opt)
{
    uint64_t totalInstances = 0;
    bool haveAll = true;
    std::vector<uint64_t> allTs;
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        const WetNode& node = g.nodes[n];
        totalInstances += node.numInstances;
        std::vector<int64_t> ts;
        if (!materialize(node.ts,
                         compressed ? &compressed->node(n).ts
                                    : nullptr,
                         ts))
        {
            if (node.numInstances > 0)
                haveAll = false;
            continue;
        }
        if (ts.size() != node.numInstances) {
            std::ostringstream os;
            os << "has " << ts.size() << " timestamps but claims "
               << node.numInstances << " instances";
            diag.error("WET002", nodeLoc(n), os.str());
        }
        for (size_t i = 0; i < ts.size(); ++i) {
            uint64_t t = static_cast<uint64_t>(ts[i]);
            // A windowed (segment) graph covers (tsBegin,
            // lastTimestamp]; whole-run graphs have tsBegin == 0.
            if (t <= g.tsBegin || t > g.lastTimestamp) {
                std::ostringstream os;
                os << "timestamp " << t << " at instance " << i
                   << " outside [" << (g.tsBegin + 1) << ", "
                   << g.lastTimestamp << "]";
                diag.error("WET001", nodeLoc(n), os.str());
                break;
            }
            if (i > 0 && t <= static_cast<uint64_t>(ts[i - 1])) {
                std::ostringstream os;
                os << "timestamps not strictly increasing at "
                   << "instance " << i << " (" << ts[i - 1]
                   << " then " << t << ")";
                diag.error("WET001", nodeLoc(n), os.str());
                break;
            }
            allTs.push_back(t);
        }
    }
    if (!haveAll)
        return; // tier-1 dropped and no streams: accounting unknowable
    const uint64_t span = g.lastTimestamp - g.tsBegin;
    if (totalInstances != span) {
        std::ostringstream os;
        os << "nodes hold " << totalInstances
           << " instances but the window covers " << span
           << " timestamps ((" << g.tsBegin << ", "
           << g.lastTimestamp << "])";
        diag.error("WET003", "graph", os.str());
        return;
    }
    if (span > opt.maxTimestampBitmap) {
        diag.note("WET003", "graph",
                  "trace too long for the timestamp uniqueness "
                  "bitmap; uniqueness check skipped");
        return;
    }
    std::vector<bool> seen(span + 1, false);
    for (uint64_t t : allTs) {
        if (seen[t - g.tsBegin]) {
            std::ostringstream os;
            os << "timestamp " << t
               << " assigned to more than one path instance";
            diag.error("WET003", "graph", os.str());
            return;
        }
        seen[t - g.tsBegin] = true;
    }
}

/** WET004/WET005/WET006: dependence edges and the label pool. */
void
checkEdges(const WetGraph& g, const core::WetCompressed* compressed,
           DiagEngine& diag)
{
    // Use-key -> edges, built locally (also validates ranges).
    std::unordered_map<uint64_t, std::vector<uint32_t>> byUse;
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const WetEdge& ed = g.edges[e];
        if (ed.defNode >= g.nodes.size() ||
            ed.useNode >= g.nodes.size())
        {
            diag.error("WET005", edgeLoc(e, ed),
                       "edge endpoint node id out of range");
            continue;
        }
        if (ed.defStmtPos >= g.nodes[ed.defNode].stmts.size() ||
            ed.useStmtPos >= g.nodes[ed.useNode].stmts.size())
        {
            diag.error("WET005", edgeLoc(e, ed),
                       "edge statement position out of range");
            continue;
        }
        if (ed.slot != kCdSlot && ed.slot > 1) {
            std::ostringstream os;
            os << "slot " << int{ed.slot}
               << " is neither a dependence slot nor the CD slot";
            diag.error("WET005", edgeLoc(e, ed), os.str());
            continue;
        }
        byUse[WetGraph::useKey(ed.useNode, ed.useStmtPos, ed.slot)]
            .push_back(e);
    }

    // Pool reference counting for WET006.
    std::vector<uint32_t> poolRefs(g.labelPool.size(), 0);

    // Materialized pool sequences, decoded lazily at most once.
    std::vector<char> poolLoaded(g.labelPool.size(), 0);
    std::vector<std::vector<int64_t>> poolUse(g.labelPool.size());
    std::vector<std::vector<int64_t>> poolDef(g.labelPool.size());
    auto loadPool = [&](uint32_t p) -> bool {
        if (poolLoaded[p])
            return poolLoaded[p] == 1;
        bool okU = materialize(
            g.labelPool[p].useInst,
            compressed ? &compressed->pool(p).useInst : nullptr,
            poolUse[p]);
        bool okD = materialize(
            g.labelPool[p].defInst,
            compressed ? &compressed->pool(p).defInst : nullptr,
            poolDef[p]);
        poolLoaded[p] = (okU && okD) ? 1 : 2;
        return poolLoaded[p] == 1;
    };

    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const WetEdge& ed = g.edges[e];
        if (ed.defNode >= g.nodes.size() ||
            ed.useNode >= g.nodes.size() ||
            ed.defStmtPos >= g.nodes[ed.defNode].stmts.size() ||
            ed.useStmtPos >= g.nodes[ed.useNode].stmts.size())
            continue; // reported above

        if (ed.local) {
            // Tier-1 inference (paper §3.3): labels were dropped
            // because every instance pairs equal indices. That is
            // only sound when the edge is intra-node, the def
            // precedes the use inside the path, and no other edge
            // feeds the same use slot.
            if (ed.defNode != ed.useNode) {
                diag.error("WET004", edgeLoc(e, ed),
                           "local edge spans two nodes");
                continue;
            }
            if (ed.defStmtPos >= ed.useStmtPos) {
                diag.error("WET004", edgeLoc(e, ed),
                           "local edge's def does not precede its "
                           "use within the path");
            }
            if (ed.labelPool != kNoIndex) {
                diag.error("WET004", edgeLoc(e, ed),
                           "local edge still references a label "
                           "pool entry");
            }
            uint64_t key = WetGraph::useKey(ed.useNode,
                                            ed.useStmtPos, ed.slot);
            if (byUse[key].size() != 1) {
                std::ostringstream os;
                os << "local edge shares its use slot with "
                   << (byUse[key].size() - 1) << " other edge(s), "
                   << "so dropping its labels was not inferable";
                diag.error("WET004", edgeLoc(e, ed), os.str());
            }
            continue;
        }

        if (ed.labelPool == kNoIndex ||
            ed.labelPool >= g.labelPool.size())
        {
            diag.error("WET005", edgeLoc(e, ed),
                       "non-local edge has no valid label pool "
                       "reference");
            continue;
        }
        ++poolRefs[ed.labelPool];
        if (!loadPool(ed.labelPool))
            continue; // tier-1 dropped and no streams
        const auto& useSeq = poolUse[ed.labelPool];
        const auto& defSeq = poolDef[ed.labelPool];
        if (useSeq.size() != defSeq.size()) {
            std::ostringstream os;
            os << "label pool entry " << ed.labelPool << " has "
               << useSeq.size() << " use labels but "
               << defSeq.size() << " def labels";
            diag.error("WET006", edgeLoc(e, ed), os.str());
            continue;
        }
        if (useSeq.empty()) {
            diag.warning("WET005", edgeLoc(e, ed),
                         "edge carries no labels");
            continue;
        }
        uint64_t useInst = g.nodes[ed.useNode].instances();
        uint64_t defInst = g.nodes[ed.defNode].instances();
        for (size_t i = 0; i < useSeq.size(); ++i) {
            if (static_cast<uint64_t>(useSeq[i]) >= useInst ||
                static_cast<uint64_t>(defSeq[i]) >= defInst)
            {
                std::ostringstream os;
                os << "label " << i << " references instance ("
                   << useSeq[i] << ", " << defSeq[i]
                   << ") beyond the nodes' instance counts ("
                   << useInst << ", " << defInst << ")";
                diag.error("WET005", edgeLoc(e, ed), os.str());
                break;
            }
            if (i > 0 && useSeq[i] <= useSeq[i - 1]) {
                std::ostringstream os;
                os << "use-instance sequence not strictly "
                   << "increasing at label " << i;
                diag.error("WET005", edgeLoc(e, ed), os.str());
                break;
            }
        }
    }

    // Per use slot: at most one def per use instance across edges.
    for (const auto& [key, edges] : byUse) {
        (void)key;
        if (edges.size() < 2)
            continue;
        std::unordered_map<int64_t, uint32_t> owner;
        for (uint32_t e : edges) {
            const WetEdge& ed = g.edges[e];
            if (ed.local || ed.labelPool == kNoIndex ||
                ed.labelPool >= g.labelPool.size() ||
                !loadPool(ed.labelPool))
                continue;
            for (int64_t u : poolUse[ed.labelPool]) {
                auto [it, inserted] = owner.try_emplace(u, e);
                if (!inserted) {
                    std::ostringstream os;
                    os << "use instance " << u
                       << " receives a def from this edge and "
                       << "edge " << it->second;
                    diag.error("WET005", edgeLoc(e, ed), os.str());
                    break;
                }
            }
        }
    }

    for (uint32_t p = 0; p < g.labelPool.size(); ++p) {
        if (poolRefs[p] == 0) {
            std::ostringstream os;
            os << "label pool entry " << p
               << " is referenced by no edge";
            diag.warning("WET006", "pool " + std::to_string(p),
                         os.str());
        }
    }
}

/** WET007: CD edges against recomputed static control dependence. */
void
checkControlDeps(const WetGraph& g, const ModuleAnalysis& ma,
                 DiagEngine& diag)
{
    const ir::Module& mod = ma.module();
    for (uint32_t e = 0; e < g.edges.size(); ++e) {
        const WetEdge& ed = g.edges[e];
        if (ed.slot != kCdSlot)
            continue;
        if (ed.defNode >= g.nodes.size() ||
            ed.useNode >= g.nodes.size())
            continue; // reported as WET005
        const WetNode& useNode = g.nodes[ed.useNode];
        const WetNode& defNode = g.nodes[ed.defNode];
        if (ed.useStmtPos >= useNode.stmts.size() ||
            ed.defStmtPos >= defNode.stmts.size())
            continue; // reported as WET005

        // The use position must open a block of the use node.
        ir::BlockId ctl = ir::kNoBlock;
        for (size_t j = 0; j < useNode.blockFirstStmt.size(); ++j) {
            if (useNode.blockFirstStmt[j] == ed.useStmtPos) {
                ctl = useNode.blocks[j];
                break;
            }
        }
        if (ctl == ir::kNoBlock) {
            diag.error("WET007", edgeLoc(e, ed),
                       "CD use position does not start a block of "
                       "the use node");
            continue;
        }
        if (useNode.func >= mod.numFunctions() ||
            defNode.stmts[ed.defStmtPos] >= mod.numStmts() ||
            ctl >= mod.function(useNode.func).blocks.size())
            continue; // reported as WET009
        const ControlDep& cd = ma.fn(useNode.func).cd;
        const ir::Instr& def =
            mod.instr(defNode.stmts[ed.defStmtPos]);
        if (def.op == ir::Opcode::Br) {
            if (defNode.func != useNode.func) {
                diag.error("WET007", edgeLoc(e, ed),
                           "CD predicate lives in a different "
                           "function than the controlled block");
                continue;
            }
            ir::BlockId predBlock =
                mod.stmtRef(defNode.stmts[ed.defStmtPos]).block;
            bool found = false;
            for (const CdParent& p : cd.parents(ctl))
                found |= p.pred == predBlock;
            if (!found) {
                std::ostringstream os;
                os << "block " << ctl << " of function "
                   << useNode.func
                   << " is not control dependent on block "
                   << predBlock
                   << " per the Ferrante-Ottenstein-Warren "
                   << "recomputation";
                diag.error("WET007", edgeLoc(e, ed), os.str());
            }
        } else if (def.op == ir::Opcode::Call ||
                   def.op == ir::Opcode::Spawn) {
            // A callsite controller is legal even for blocks with
            // static CD parents: the tracer attributes a block to
            // the invocation whenever no predicate region is open
            // (e.g. a loop header's first iteration). Only the
            // callee identity is checkable statically. Spawn sites
            // control the spawned thread's entry the same way.
            if (def.imm < 0 ||
                static_cast<uint64_t>(def.imm) != useNode.func)
            {
                std::ostringstream os;
                os << "CD call site invokes function " << def.imm
                   << ", controlled block belongs to function "
                   << useNode.func;
                diag.error("WET007", edgeLoc(e, ed), os.str());
            }
        } else {
            std::ostringstream os;
            os << "CD def is a " << ir::opcodeName(def.op)
               << ", expected a branch, call, or spawn site";
            diag.error("WET007", edgeLoc(e, ed), os.str());
        }
    }
}

/** WET008: value group structure and pattern/uvals alignment. */
void
checkValueGroups(const WetGraph& g, const ir::Module& mod,
                 const core::WetCompressed* compressed,
                 DiagEngine& diag)
{
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        const WetNode& node = g.nodes[n];
        if (node.stmtGroup.size() != node.stmts.size() ||
            node.stmtMember.size() != node.stmts.size())
        {
            diag.error("WET008", nodeLoc(n),
                       "stmtGroup/stmtMember lengths disagree with "
                       "the statement list");
            continue;
        }
        bool structureOk = true;
        for (uint32_t p = 0;
             p < node.stmts.size() && structureOk; ++p) {
            if (node.stmts[p] >= mod.numStmts())
                break; // reported as WET009
            ir::Opcode op = mod.instr(node.stmts[p]).op;
            // Every def port is grouped except Const: immediates of
            // the static program carry no dynamic value profile.
            bool def = ir::hasDef(op) && op != ir::Opcode::Const;
            uint32_t gi = node.stmtGroup[p];
            if (!def) {
                if (gi != kNoIndex) {
                    std::ostringstream os;
                    os << "position " << p
                       << " has no value profile but belongs to "
                       << "group " << gi;
                    diag.error("WET008", nodeLoc(n), os.str());
                    structureOk = false;
                }
                continue;
            }
            if (gi == kNoIndex || gi >= node.groups.size()) {
                std::ostringstream os;
                os << "def-port position " << p
                   << " has no valid group";
                diag.error("WET008", nodeLoc(n), os.str());
                structureOk = false;
                continue;
            }
            uint32_t mi = node.stmtMember[p];
            if (mi >= node.groups[gi].members.size() ||
                node.groups[gi].members[mi] != p)
            {
                std::ostringstream os;
                os << "position " << p << " claims member " << mi
                   << " of group " << gi
                   << ", group does not list it there";
                diag.error("WET008", nodeLoc(n), os.str());
                structureOk = false;
            }
        }
        if (!structureOk)
            continue;

        for (size_t gi = 0; gi < node.groups.size(); ++gi) {
            const core::ValueGroup& grp = node.groups[gi];
            const core::CompressedNode* cn =
                compressed ? &compressed->node(n) : nullptr;
            std::vector<int64_t> pattern;
            if (!materialize(grp.pattern,
                             cn && gi < cn->patterns.size()
                                 ? &cn->patterns[gi]
                                 : nullptr,
                             pattern))
                continue; // labels dropped, nothing to check
            if (pattern.size() != node.numInstances &&
                node.numInstances > 0)
            {
                std::ostringstream os;
                os << "group " << gi << " pattern has "
                   << pattern.size() << " entries for "
                   << node.numInstances << " instances";
                diag.error("WET008", nodeLoc(n), os.str());
                continue;
            }
            int64_t maxIdx = -1;
            for (int64_t v : pattern)
                maxIdx = std::max(maxIdx, v);
            uint64_t distinct = static_cast<uint64_t>(maxIdx + 1);
            for (int64_t v : pattern) {
                if (v < 0 ||
                    static_cast<uint64_t>(v) >= distinct)
                {
                    std::ostringstream os;
                    os << "group " << gi
                       << " pattern index " << v << " invalid";
                    diag.error("WET008", nodeLoc(n), os.str());
                    break;
                }
            }
            for (size_t mi = 0; mi < grp.members.size(); ++mi) {
                std::vector<int64_t> uv;
                const codec::CompressedStream* us =
                    cn && gi < cn->uvals.size() &&
                            mi < cn->uvals[gi].size()
                        ? &cn->uvals[gi][mi]
                        : nullptr;
                if (!materialize(grp.uvals.size() > mi
                                     ? grp.uvals[mi]
                                     : std::vector<int64_t>{},
                                 us, uv))
                    continue;
                if (uv.size() != distinct) {
                    std::ostringstream os;
                    os << "group " << gi << " member " << mi
                       << " has " << uv.size()
                       << " unique values, pattern indexes "
                       << distinct;
                    diag.error("WET008", nodeLoc(n), os.str());
                }
            }
        }
    }
}

/** WET010: control-flow adjacency reciprocity. */
void
checkCfAdjacency(const WetGraph& g, DiagEngine& diag)
{
    auto countIn = [](const std::vector<NodeId>& v, NodeId x) {
        size_t c = 0;
        for (NodeId y : v)
            c += y == x;
        return c;
    };
    for (NodeId n = 0; n < g.nodes.size(); ++n) {
        for (NodeId s : g.nodes[n].cfSucc) {
            if (s >= g.nodes.size()) {
                diag.error("WET010", nodeLoc(n),
                           "cf successor out of range");
                continue;
            }
            if (countIn(g.nodes[n].cfSucc, s) !=
                countIn(g.nodes[s].cfPred, n))
            {
                std::ostringstream os;
                os << "cf edge to node " << s
                   << " not mirrored in the target's preds";
                diag.error("WET010", nodeLoc(n), os.str());
            }
        }
        for (NodeId p : g.nodes[n].cfPred) {
            if (p >= g.nodes.size()) {
                diag.error("WET010", nodeLoc(n),
                           "cf predecessor out of range");
                continue;
            }
            if (countIn(g.nodes[n].cfPred, p) !=
                countIn(g.nodes[p].cfSucc, n))
            {
                std::ostringstream os;
                os << "cf edge from node " << p
                   << " not mirrored in the source's succs";
                diag.error("WET010", nodeLoc(n), os.str());
            }
        }
    }
}

} // namespace

bool
verifyWet(const core::WetGraph& g, const ModuleAnalysis& ma,
          DiagEngine& diag, const core::WetCompressed* compressed,
          const WetVerifierOptions& opt)
{
    uint64_t before = diag.errorCount();
    for (NodeId n = 0; n < g.nodes.size(); ++n)
        checkNodeStructure(g, ma, n, diag);
    checkTimestamps(g, compressed, diag, opt);
    checkEdges(g, compressed, diag);
    checkControlDeps(g, ma, diag);
    if (opt.checkValueGroups)
        checkValueGroups(g, ma.module(), compressed, diag);
    checkCfAdjacency(g, diag);
    return diag.errorCount() == before;
}

} // namespace analysis
} // namespace wet
