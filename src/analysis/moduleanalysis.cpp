#include "moduleanalysis.h"

#include "support/error.h"
#include "support/threadpool.h"

namespace wet {
namespace analysis {

FunctionAnalysis::FunctionAnalysis(const ir::Function& fn,
                                   uint64_t max_paths)
    : cfg(fn),
      postdom(DomTree::postDominators(fn)),
      cd(fn, postdom),
      bl(cfg, max_paths)
{
}

ModuleAnalysis::ModuleAnalysis(const ir::Module& m, uint64_t max_paths,
                               unsigned threads)
    : module_(&m)
{
    WET_ASSERT(m.finalized(), "ModuleAnalysis requires finalized module");
    // Function analyses are independent (each reads only its own
    // ir::Function), so they fan out; slot f is written only by the
    // task for function f, giving the same vector as a serial loop.
    fns_.resize(m.numFunctions());
    auto analyzeOne = [&](size_t f) {
        fns_[f] = std::make_unique<FunctionAnalysis>(
            m.function(static_cast<ir::FuncId>(f)), max_paths);
    };
    if (threads > 1 && m.numFunctions() > 1) {
        support::ThreadPool pool(threads);
        support::parallelFor(&pool, m.numFunctions(), analyzeOne);
    } else {
        for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
            analyzeOne(f);
    }
}

} // namespace analysis
} // namespace wet
