#include "moduleanalysis.h"

#include "support/error.h"

namespace wet {
namespace analysis {

FunctionAnalysis::FunctionAnalysis(const ir::Function& fn,
                                   uint64_t max_paths)
    : cfg(fn),
      postdom(DomTree::postDominators(fn)),
      cd(fn, postdom),
      bl(cfg, max_paths)
{
}

ModuleAnalysis::ModuleAnalysis(const ir::Module& m, uint64_t max_paths)
    : module_(&m)
{
    WET_ASSERT(m.finalized(), "ModuleAnalysis requires finalized module");
    fns_.reserve(m.numFunctions());
    for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
        fns_.push_back(std::make_unique<FunctionAnalysis>(
            m.function(f), max_paths));
    }
}

} // namespace analysis
} // namespace wet
