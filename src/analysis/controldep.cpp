#include "controldep.h"

#include <algorithm>

#include "support/error.h"

namespace wet {
namespace analysis {

ControlDep::ControlDep(const ir::Function& fn, const DomTree& postdom)
    : pd_(&postdom)
{
    const size_t n = fn.blocks.size();
    parents_.resize(n);
    for (ir::BlockId a = 0; a < n; ++a) {
        if (postdom.depth(a) == UINT32_MAX)
            continue; // not attached to the post-dominator tree
        const auto& succs = fn.blocks[a].succs;
        for (size_t idx = 0; idx < succs.size(); ++idx) {
            ir::BlockId b = succs[idx];
            if (postdom.dominates(b, a))
                continue;
            // Walk B up the post-dominator tree to ipdom(A),
            // exclusive; each node passed is control dependent on
            // (A, idx).
            ir::BlockId stop = postdom.idom(a);
            ir::BlockId x = b;
            while (x != stop) {
                WET_ASSERT(x != ir::kNoBlock &&
                           x != postdom.root(),
                           "CD walk escaped the post-dominator tree");
                CdParent p{a, static_cast<uint8_t>(idx)};
                auto& vec = parents_[x];
                if (std::find(vec.begin(), vec.end(), p) == vec.end())
                    vec.push_back(p);
                x = postdom.idom(x);
            }
        }
    }
}

} // namespace analysis
} // namespace wet
