#include "staticdep.h"

#include <algorithm>
#include <set>

#include "ir/opcode.h"
#include "support/error.h"

namespace wet {
namespace analysis {

namespace {

void
sortUnique(std::vector<ir::StmtId>& v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool
contains(const std::vector<ir::StmtId>& v, ir::StmtId s)
{
    return std::binary_search(v.begin(), v.end(), s);
}

} // namespace

SlotInfo
slotInfo(const ir::Instr& in, uint8_t slot)
{
    using ir::Opcode;
    SlotInfo si;
    switch (in.op) {
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Mov:
      case Opcode::Out:
      case Opcode::Br:
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        break;
      case Opcode::Load:
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        else if (slot == 1)
            si = {SlotKind::Mem, ir::kNoReg};
        break;
      case Opcode::Store:
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        else if (slot == 1)
            si = {SlotKind::Reg, in.src1};
        break;
      case Opcode::Ret:
        if (slot == 0 && in.src0 != ir::kNoReg)
            si = {SlotKind::Reg, in.src0};
        break;
      case Opcode::Call:
        if (slot == 0)
            si = {SlotKind::CallRet, ir::kNoReg};
        break;
      case Opcode::Join:
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        else if (slot == 1)
            si = {SlotKind::SpawnRet, ir::kNoReg};
        break;
      case Opcode::Lock:
      case Opcode::Unlock:
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        break;
      case Opcode::Const:
      case Opcode::In:
      case Opcode::Spawn: // value (the thread id) has no static def
      case Opcode::Jmp:
      case Opcode::Halt:
        break;
      default: // binary ALU and comparisons
        if (slot == 0)
            si = {SlotKind::Reg, in.src0};
        else if (slot == 1)
            si = {SlotKind::Reg, in.src1};
        break;
    }
    return si;
}

StaticDepGraph::StaticDepGraph(const ModuleAnalysis& ma)
    : mod_(&ma.module())
{
    WET_ASSERT(mod_->finalized(), "static dependence needs a "
                                  "finalized module");
    const size_t nf = mod_->numFunctions();
    rd_.reserve(nf);
    for (ir::FuncId f = 0; f < nf; ++f)
        rd_.emplace_back(*mod_, mod_->function(f));

    collectSites();
    solveParamIn();
    computeRetOut();
    buildSlotDefs();
    buildCdParents(ma);
}

void
StaticDepGraph::collectSites()
{
    const size_t nf = mod_->numFunctions();
    callSites_.resize(nf);
    for (ir::FuncId f = 0; f < nf; ++f) {
        for (const ir::BasicBlock& b : mod_->function(f).blocks) {
            for (const ir::Instr& in : b.instrs) {
                if (in.op == ir::Opcode::Store) {
                    stores_.push_back(in.stmt);
                } else if (in.op == ir::Opcode::Call ||
                           in.op == ir::Opcode::Spawn) {
                    // Spawn sites are call sites for CD and argument
                    // flow: the child's entry region is attributed to
                    // the spawning instruction.
                    callSites_[static_cast<ir::FuncId>(in.imm)]
                        .push_back(in.stmt);
                    if (in.op == ir::Opcode::Spawn)
                        spawnTargets_.push_back(
                            static_cast<ir::FuncId>(in.imm));
                }
            }
        }
    }
    // Statement ids are assigned in function order, so both lists are
    // already sorted; keep the invariant explicit.
    sortUnique(stores_);
    for (auto& cs : callSites_)
        sortUnique(cs);
    std::sort(spawnTargets_.begin(), spawnTargets_.end());
    spawnTargets_.erase(
        std::unique(spawnTargets_.begin(), spawnTargets_.end()),
        spawnTargets_.end());
}

void
StaticDepGraph::solveParamIn()
{
    const size_t nf = mod_->numFunctions();
    paramIn_.resize(nf);
    std::vector<std::vector<std::set<ir::StmtId>>> acc(nf);
    for (ir::FuncId f = 0; f < nf; ++f) {
        acc[f].resize(mod_->function(f).numParams);
        paramIn_[f].resize(mod_->function(f).numParams);
    }

    // One record per (call site, argument): the argument's local
    // reaching definitions, plus an optional link to a caller
    // parameter when the argument may still hold the caller's own
    // incoming value (entry pseudo-definition reaches the call).
    struct ArgFlow
    {
        ir::FuncId callee;
        uint32_t param;
        std::vector<ir::StmtId> localDefs;
        ir::FuncId caller;
        uint32_t callerParam; //!< UINT32_MAX when no propagation
    };
    std::vector<ArgFlow> flows;
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = mod_->function(f);
        for (const ir::BasicBlock& b : fn.blocks) {
            for (const ir::Instr& in : b.instrs) {
                if (in.op != ir::Opcode::Call &&
                    in.op != ir::Opcode::Spawn)
                    continue;
                const auto callee = static_cast<ir::FuncId>(in.imm);
                const uint32_t np = std::min<uint32_t>(
                    static_cast<uint32_t>(in.args.size()),
                    mod_->function(callee).numParams);
                for (uint32_t a = 0; a < np; ++a) {
                    ReachingDefs::RegDefs defs =
                        rd_[f].defsAt(in.stmt, in.args[a]);
                    ArgFlow fl{callee, a, std::move(defs.stmts), f,
                               UINT32_MAX};
                    if (defs.fromEntry && in.args[a] < fn.numParams)
                        fl.callerParam = in.args[a];
                    flows.push_back(std::move(fl));
                }
            }
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (const ArgFlow& fl : flows) {
            std::set<ir::StmtId>& dst = acc[fl.callee][fl.param];
            for (ir::StmtId s : fl.localDefs)
                changed |= dst.insert(s).second;
            if (fl.callerParam != UINT32_MAX)
                for (ir::StmtId s : acc[fl.caller][fl.callerParam])
                    changed |= dst.insert(s).second;
        }
    }

    for (ir::FuncId f = 0; f < nf; ++f)
        for (uint32_t p = 0; p < paramIn_[f].size(); ++p)
            paramIn_[f][p].assign(acc[f][p].begin(), acc[f][p].end());
}

void
StaticDepGraph::computeRetOut()
{
    const size_t nf = mod_->numFunctions();
    retOut_.resize(nf);
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = mod_->function(f);
        std::vector<ir::StmtId>& out = retOut_[f];
        for (const ir::BasicBlock& b : fn.blocks) {
            for (const ir::Instr& in : b.instrs) {
                if (in.op != ir::Opcode::Ret ||
                    in.src0 == ir::kNoReg)
                    continue;
                ReachingDefs::RegDefs defs =
                    rd_[f].defsAt(in.stmt, in.src0);
                out.insert(out.end(), defs.stmts.begin(),
                           defs.stmts.end());
                if (defs.fromEntry && in.src0 < fn.numParams) {
                    const auto& pi = paramIn_[f][in.src0];
                    out.insert(out.end(), pi.begin(), pi.end());
                }
            }
        }
        sortUnique(out);
    }
    // Join's return slot may receive the Ret value of any spawned
    // thread (which thread a tid names is dynamic).
    for (ir::FuncId f : spawnTargets_)
        spawnRetOut_.insert(spawnRetOut_.end(), retOut_[f].begin(),
                            retOut_[f].end());
    sortUnique(spawnRetOut_);
}

void
StaticDepGraph::buildSlotDefs()
{
    slotDefs_.resize(size_t{mod_->numStmts()} * 2);
    for (ir::StmtId s = 0; s < mod_->numStmts(); ++s) {
        const ir::Instr& in = mod_->instr(s);
        const ir::StmtRef& ref = mod_->stmtRef(s);
        const ir::Function& fn = mod_->function(ref.func);
        for (uint8_t k = 0; k < 2; ++k) {
            SlotInfo si = slotInfo(in, k);
            if (si.kind != SlotKind::Reg)
                continue;
            ReachingDefs::RegDefs defs = rd_[ref.func].defsAt(s, si.reg);
            std::vector<ir::StmtId>& dst = slotDefs_[size_t{s} * 2 + k];
            dst = std::move(defs.stmts);
            if (defs.fromEntry && si.reg < fn.numParams) {
                const auto& pi = paramIn_[ref.func][si.reg];
                dst.insert(dst.end(), pi.begin(), pi.end());
            }
            sortUnique(dst);
        }
    }
}

void
StaticDepGraph::buildCdParents(const ModuleAnalysis& ma)
{
    const size_t nf = mod_->numFunctions();
    cd_.resize(nf);
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = mod_->function(f);
        cd_[f].resize(fn.numBlocks());
        for (ir::BlockId b = 0; b < fn.numBlocks(); ++b) {
            std::vector<ir::StmtId>& dst = cd_[f][b];
            for (const CdParent& p : ma.fn(f).cd.parents(b))
                dst.push_back(fn.blocks[p.pred].terminator().stmt);
            // The calling instruction is always a legal dynamic CD
            // parent: parentless regions, and every region the first
            // time control enters the function, are attributed to the
            // call site by the tracer.
            dst.insert(dst.end(), callSites_[f].begin(),
                       callSites_[f].end());
            sortUnique(dst);
        }
    }
}

const std::vector<ir::StmtId>&
StaticDepGraph::mayDefs(ir::StmtId use, uint8_t slot) const
{
    const ir::Instr& in = mod_->instr(use);
    SlotInfo si = slotInfo(in, slot);
    switch (si.kind) {
      case SlotKind::Reg:
        return slotDefs_[size_t{use} * 2 + slot];
      case SlotKind::Mem:
        return stores_;
      case SlotKind::CallRet:
        return retOut_[static_cast<ir::FuncId>(in.imm)];
      case SlotKind::SpawnRet:
        return spawnRetOut_;
      case SlotKind::None:
        break;
    }
    return empty_;
}

bool
StaticDepGraph::mayDepend(ir::StmtId use, uint8_t slot,
                          ir::StmtId def) const
{
    return contains(mayDefs(use, slot), def);
}

const std::vector<ir::StmtId>&
StaticDepGraph::cdParents(ir::StmtId use) const
{
    const ir::StmtRef& ref = mod_->stmtRef(use);
    return cd_[ref.func][ref.block];
}

bool
StaticDepGraph::mayControl(ir::StmtId use, ir::StmtId def) const
{
    return contains(cdParents(use), def);
}

std::vector<bool>
StaticDepGraph::backwardSlice(ir::StmtId seed) const
{
    std::vector<bool> in(mod_->numStmts(), false);
    std::vector<ir::StmtId> work;
    in[seed] = true;
    work.push_back(seed);
    while (!work.empty()) {
        ir::StmtId s = work.back();
        work.pop_back();
        auto visit = [&](const std::vector<ir::StmtId>& defs) {
            for (ir::StmtId d : defs) {
                if (!in[d]) {
                    in[d] = true;
                    work.push_back(d);
                }
            }
        };
        visit(mayDefs(s, 0));
        visit(mayDefs(s, 1));
        visit(cdParents(s));
    }
    return in;
}

} // namespace analysis
} // namespace wet
