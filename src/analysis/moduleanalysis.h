#ifndef WET_ANALYSIS_MODULEANALYSIS_H
#define WET_ANALYSIS_MODULEANALYSIS_H

#include <memory>
#include <vector>

#include "analysis/balllarus.h"
#include "analysis/cfg.h"
#include "analysis/controldep.h"
#include "analysis/dominators.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/** All per-function static analyses bundled together. */
struct FunctionAnalysis
{
    explicit FunctionAnalysis(const ir::Function& fn, uint64_t max_paths);

    CfgInfo cfg;
    DomTree postdom;
    ControlDep cd;
    BallLarus bl;
};

/**
 * Static analyses for every function of a module: CFG facts,
 * post-dominators, control dependence, and Ball–Larus numbering.
 * Shared by the tracing interpreter (dynamic control dependence) and
 * the WET builder (path segmentation). The module must outlive this
 * object.
 *
 * Each FunctionAnalysis is a pure function of its ir::Function, so
 * with threads > 1 the per-function analyses run concurrently on a
 * support::ThreadPool; results land in function-id order and are
 * identical to a serial build.
 */
class ModuleAnalysis
{
  public:
    explicit ModuleAnalysis(const ir::Module& m,
                            uint64_t max_paths = uint64_t{1} << 24,
                            unsigned threads = 1);

    const FunctionAnalysis&
    fn(ir::FuncId f) const
    {
        return *fns_[f];
    }

    const ir::Module& module() const { return *module_; }

  private:
    const ir::Module* module_;
    std::vector<std::unique_ptr<FunctionAnalysis>> fns_;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_MODULEANALYSIS_H
