#ifndef WET_ANALYSIS_MODULEVERIFIER_H
#define WET_ANALYSIS_MODULEVERIFIER_H

#include <cstdint>

#include "analysis/diag.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/** Cost knobs for the module verifier. */
struct ModuleVerifierOptions
{
    /** Per function: decode/re-encode at most this many BL path ids
     *  (the count check always covers the whole table). */
    uint64_t maxDecodedPaths = 4096;
    /** Ball-Larus explosion threshold, mirroring ModuleAnalysis. */
    uint64_t maxPaths = uint64_t{1} << 24;
};

/**
 * LLVM-verifier-style static checks over a finalized module (rules
 * IR001..IR007): def-before-use via forward definite-assignment
 * dataflow, block/terminator shape, CFG successor/predecessor
 * reciprocity, dominator and post-dominator trees cross-checked
 * against an independent O(n^2) bitset recomputation, and the
 * Ball-Larus path table checked to enumerate exactly the acyclic
 * paths of each CFG (independent path count + decode/re-encode).
 *
 * Findings go to @p diag; returns true when no errors were added.
 */
bool verifyModule(const ir::Module& mod, DiagEngine& diag,
                  const ModuleVerifierOptions& opt = {});

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_MODULEVERIFIER_H
