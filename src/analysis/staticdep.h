#ifndef WET_ANALYSIS_STATICDEP_H
#define WET_ANALYSIS_STATICDEP_H

#include <cstdint>
#include <vector>

#include "analysis/moduleanalysis.h"
#include "analysis/reachingdefs.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/**
 * What a dependence slot of a dynamic statement event statically
 * stands for. The tracing interpreter records up to two data
 * dependences per executed statement, indexed by slot; this mirrors
 * that layout exactly so dynamic DD edges can be checked against the
 * static may-dependence sets slot by slot.
 */
enum class SlotKind : uint8_t
{
    None,    //!< the slot is never populated for this opcode
    Reg,     //!< register read: def is a reaching definition
    Mem,     //!< memory read (Load slot 1): def is some Store
    CallRet, //!< call return (Call slot 0): def produced the value
             //!< returned by the callee
    SpawnRet, //!< join return (Join slot 1): def produced the value
              //!< returned by some spawned thread's entry function
};

struct SlotInfo
{
    SlotKind kind = SlotKind::None;
    /** The register read; valid only for SlotKind::Reg. */
    ir::RegId reg = ir::kNoReg;
};

/** Static meaning of dependence slot @p slot of instruction @p in. */
SlotInfo slotInfo(const ir::Instr& in, uint8_t slot);

/**
 * Whole-module static may-dependence graph: the conservative
 * over-approximation every dynamic DD/CD edge of a WET must fall
 * inside.
 *
 * Data dependences come from per-function reaching definitions
 * (ReachingDefs) extended interprocedurally:
 *  - a parameter register use reached by the function-entry
 *    pseudo-definition may receive its value from any argument
 *    definition at any call site of the function (paramIn sets,
 *    solved as a fixpoint over the call graph, so parameters
 *    forwarded through chains of calls are covered);
 *  - a Load's memory slot may depend on any Store of the module
 *    (flat may-alias memory model — matches the interpreter's single
 *    word-addressed memory);
 *  - a Call statement's return slot may depend on any definition
 *    that can flow into a Ret of the callee (retOut sets).
 *
 * Control dependences reuse the FOW ControlDep pass: a statement may
 * be control dependent on the Br terminator of any static CD parent
 * of its block, or on any call site of its function (the dynamic
 * tracer attributes parentless regions — and every region on the
 * first entry into a function — to the calling instruction).
 *
 * All query results are sorted StmtId vectors, so containment checks
 * are binary searches.
 */
class StaticDepGraph
{
  public:
    explicit StaticDepGraph(const ModuleAnalysis& ma);

    /**
     * Statements that may define dependence slot @p slot of @p use.
     * Sorted ascending; empty for slots the opcode never populates.
     */
    const std::vector<ir::StmtId>& mayDefs(ir::StmtId use,
                                           uint8_t slot) const;

    /** True when @p def ∈ mayDefs(use, slot). */
    bool mayDepend(ir::StmtId use, uint8_t slot, ir::StmtId def) const;

    /**
     * Statements @p use may be dynamically control dependent on: the
     * Br terminators of its block's static CD parents plus every call
     * site of its function. Sorted ascending.
     */
    const std::vector<ir::StmtId>& cdParents(ir::StmtId use) const;

    /** True when @p def ∈ cdParents(use). */
    bool mayControl(ir::StmtId use, ir::StmtId def) const;

    /**
     * Static backward slice from @p seed: the transitive closure of
     * may-DD and may-CD predecessors. Indexed by StmtId.
     */
    std::vector<bool> backwardSlice(ir::StmtId seed) const;

    const ReachingDefs& reaching(ir::FuncId f) const { return rd_[f]; }
    /** Call and Spawn statements targeting @p f, sorted. */
    const std::vector<ir::StmtId>& callSites(ir::FuncId f) const
    {
        return callSites_[f];
    }
    /** Defs that may flow out of any spawned thread's Ret, sorted
     *  (the may-def set of every Join's return slot). */
    const std::vector<ir::StmtId>& spawnRetOut() const
    {
        return spawnRetOut_;
    }
    /** Every Store statement of the module, sorted. */
    const std::vector<ir::StmtId>& stores() const { return stores_; }
    /** Definitions that may flow into a Ret of @p f, sorted. */
    const std::vector<ir::StmtId>& retOut(ir::FuncId f) const
    {
        return retOut_[f];
    }
    /**
     * Definitions that may flow into parameter @p p of @p f from its
     * call sites, sorted.
     */
    const std::vector<ir::StmtId>& paramIn(ir::FuncId f,
                                           uint32_t p) const
    {
        return paramIn_[f][p];
    }

    const ir::Module& module() const { return *mod_; }

  private:
    void collectSites();
    void solveParamIn();
    void computeRetOut();
    void buildSlotDefs();
    void buildCdParents(const ModuleAnalysis& ma);

    const ir::Module* mod_;
    std::vector<ReachingDefs> rd_;
    std::vector<std::vector<ir::StmtId>> callSites_;
    std::vector<ir::StmtId> stores_;
    /** Functions appearing as a Spawn target somewhere. */
    std::vector<ir::FuncId> spawnTargets_;
    std::vector<ir::StmtId> spawnRetOut_;
    /** paramIn_[f][p]: may-defs of parameter p arriving at entry. */
    std::vector<std::vector<std::vector<ir::StmtId>>> paramIn_;
    std::vector<std::vector<ir::StmtId>> retOut_;
    /** slotDefs_[stmt*2+slot]: may-defs of register slots. */
    std::vector<std::vector<ir::StmtId>> slotDefs_;
    /** cd_[f][block]: legal dynamic CD defs for the block's stmts. */
    std::vector<std::vector<std::vector<ir::StmtId>>> cd_;
    std::vector<ir::StmtId> empty_;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_STATICDEP_H
