#ifndef WET_ANALYSIS_WETVERIFIER_H
#define WET_ANALYSIS_WETVERIFIER_H

#include <cstdint>

#include "analysis/diag.h"
#include "analysis/moduleanalysis.h"
#include "core/compressed.h"
#include "core/wetgraph.h"

namespace wet {
namespace analysis {

/** Cost knobs for the WET graph verifier. */
struct WetVerifierOptions
{
    /** Skip the global timestamp-uniqueness bitmap when the trace is
     *  longer than this many ticks (the sum check still runs). */
    uint64_t maxTimestampBitmap = uint64_t{1} << 28;
    /** Verify value-group structure and patterns (can dominate the
     *  cost on value-heavy traces). */
    bool checkValueGroups = true;
};

/**
 * Static invariant checks over a built or deserialized WET graph
 * (rules WET001..WET010): per-node timestamp strict monotonicity and
 * global timestamp accounting, tier-1 local-edge inferability,
 * edge-label pool well-formedness and per-use exclusivity, CD edges
 * cross-checked against independently recomputed control dependence,
 * value-group structure, node structure against the Ball-Larus path
 * table, and control-flow adjacency reciprocity.
 *
 * Label sequences are taken from the tier-1 vectors when present;
 * on a deserialized (tier-2-only) graph pass @p compressed so the
 * verifier can decode them instead. With neither (labels dropped via
 * dropTier1Labels and no streams), label-content checks are skipped.
 *
 * Findings go to @p diag; returns true when no errors were added.
 */
bool verifyWet(const core::WetGraph& g, const ModuleAnalysis& ma,
               DiagEngine& diag,
               const core::WetCompressed* compressed = nullptr,
               const WetVerifierOptions& opt = {});

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_WETVERIFIER_H
