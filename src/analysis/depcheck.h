#ifndef WET_ANALYSIS_DEPCHECK_H
#define WET_ANALYSIS_DEPCHECK_H

#include <cstdint>

#include "analysis/diag.h"
#include "analysis/moduleanalysis.h"
#include "analysis/staticdep.h"
#include "core/compressed.h"
#include "core/wetgraph.h"

namespace wet {
namespace analysis {

/** Cost knobs for the static/dynamic dependence cross-check. */
struct DepCheckOptions
{
    /** Seeds for the WET014 slice-containment probe (0 disables). */
    uint32_t maxSliceSeeds = 4;
    /** Per-seed cap on visited dynamic slice items. */
    uint64_t maxSliceItems = 200000;
};

/** Work accounting of one verifyDeps run. */
struct DepCheckStats
{
    uint64_t ddEdges = 0;      //!< DD edges checked (WET011/WET012)
    uint64_t cdEdges = 0;      //!< CD edges checked (WET013)
    uint64_t sliceSeeds = 0;   //!< WET014 probes executed
    uint64_t sliceItems = 0;   //!< dynamic slice items visited
};

/**
 * Differential oracle between the dynamic dependence profile stored
 * in a WET and the static may-dependence over-approximation
 * (StaticDepGraph). A sound tracer/builder can only ever record a
 * subset of what the static analysis allows, so any escape convicts
 * one of the two sides:
 *
 *  - WET011: a dynamic DD edge whose def statement is not in the
 *    static may-definition set of its use slot;
 *  - WET012: a memory dependence (Load slot 1) whose def is not a
 *    Store;
 *  - WET013: a dynamic CD edge whose def is neither the Br
 *    terminator of a static FOW CD parent of the controlled block
 *    nor a call site of the block's function;
 *  - WET014: a dynamic backward slice that escapes the static
 *    backward slice of its seed statement (instance-level walk over
 *    the edge labels, a deterministic sample of seeds).
 *
 * Label sequences come from the tier-1 vectors when present, else
 * from @p compressed; with neither, WET014 degrades to local-edge
 * walking only (WET011-WET013 are label-free).
 *
 * Findings go to @p diag; returns true when no errors were added.
 */
bool verifyDeps(const core::WetGraph& g, const ModuleAnalysis& ma,
                const StaticDepGraph& sdg, DiagEngine& diag,
                const core::WetCompressed* compressed = nullptr,
                const DepCheckOptions& opt = {},
                DepCheckStats* stats = nullptr);

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_DEPCHECK_H
