#ifndef WET_ANALYSIS_CONTROLDEP_H
#define WET_ANALYSIS_CONTROLDEP_H

#include <vector>

#include "analysis/dominators.h"
#include "ir/module.h"

namespace wet {
namespace analysis {

/** One static control-dependence parent: predicate block + outcome. */
struct CdParent
{
    ir::BlockId pred;    //!< the predicate (branching) block
    uint8_t outcome;     //!< successor index taken (0 or 1 for Br)

    bool
    operator==(const CdParent& o) const
    {
        return pred == o.pred && outcome == o.outcome;
    }
};

/**
 * Intraprocedural control dependence of one function, computed with
 * the Ferrante–Ottenstein–Warren construction: for each CFG edge A->B
 * where B does not post-dominate A, every block on the post-dominator
 * tree path from B up to (excluding) ipostdom(A) is control dependent
 * on (A, outcome of the edge).
 *
 * Blocks with no parents (e.g. the entry's always-executed prefix) are
 * control dependent on the function's invocation itself; the dynamic
 * tracer attributes those instances to the calling instruction.
 */
class ControlDep
{
  public:
    ControlDep(const ir::Function& fn, const DomTree& postdom);

    /** Static CD parents of block @p b (deduplicated). */
    const std::vector<CdParent>&
    parents(ir::BlockId b) const
    {
        return parents_[b];
    }

    /** Immediate post-dominator of @p b (may be the virtual exit). */
    ir::BlockId ipostdom(ir::BlockId b) const { return pd_->idom(b); }

    const DomTree& postdomTree() const { return *pd_; }

  private:
    const DomTree* pd_;
    std::vector<std::vector<CdParent>> parents_;
};

} // namespace analysis
} // namespace wet

#endif // WET_ANALYSIS_CONTROLDEP_H
