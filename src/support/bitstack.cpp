#include "bitstack.h"

#include "error.h"

namespace wet {
namespace support {

void
BitStack::push(bool bit)
{
    size_t word = nbits_ / 64;
    size_t off = nbits_ % 64;
    if (word == words_.size())
        words_.push_back(0);
    if (bit)
        words_[word] |= (uint64_t{1} << off);
    else
        words_[word] &= ~(uint64_t{1} << off);
    ++nbits_;
}

bool
BitStack::pop()
{
    WET_ASSERT(nbits_ > 0, "pop from empty BitStack");
    bool bit = get(nbits_ - 1);
    --nbits_;
    return bit;
}

bool
BitStack::get(size_t i) const
{
    WET_ASSERT(i < nbits_, "BitStack::get out of range: " << i);
    return (words_[i / 64] >> (i % 64)) & 1;
}

void
BitStack::pushBits(uint64_t v, unsigned width)
{
    WET_ASSERT(width <= 64, "pushBits width too large");
    for (unsigned i = 0; i < width; ++i)
        push((v >> i) & 1);
}

uint64_t
BitStack::popBits(unsigned width)
{
    WET_ASSERT(width <= 64 && nbits_ >= width,
               "popBits underflow or bad width");
    uint64_t v = getBits(nbits_ - width, width);
    for (unsigned i = 0; i < width; ++i)
        pop();
    return v;
}

uint64_t
BitStack::getBits(size_t i, unsigned width) const
{
    WET_ASSERT(width <= 64 && i + width <= nbits_,
               "getBits out of range");
    uint64_t v = 0;
    for (unsigned k = 0; k < width; ++k)
        v |= static_cast<uint64_t>(get(i + k)) << k;
    return v;
}

void
BitStack::clear()
{
    words_.clear();
    nbits_ = 0;
}

} // namespace support
} // namespace wet
