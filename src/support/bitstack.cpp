#include "bitstack.h"

#include <cstring>

#include "error.h"

namespace wet {
namespace support {

uint64_t
BitStack::word(size_t w) const
{
    if (ext_) {
        WET_ASSERT(w < extWords_, "BitStack word out of range");
#if defined(__BYTE_ORDER__) &&                                       \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
        uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<uint64_t>(ext_[w * 8 + b]) << (8 * b);
        return v;
#else
        // Little-endian host: the stored layout is the native layout,
        // and memcpy tolerates any alignment of the mapped span.
        uint64_t v;
        std::memcpy(&v, ext_ + w * 8, sizeof v);
        return v;
#endif
    }
    return words_[w];
}

const std::vector<uint64_t>&
BitStack::words() const
{
    WET_ASSERT(!ext_, "words() on a borrowed BitStack");
    return words_;
}

BitStack
BitStack::fromSpan(const uint8_t* words_le, size_t nwords,
                   size_t nbits)
{
    WET_ASSERT(nbits <= nwords * 64,
               "BitStack span holds fewer bits than declared");
    BitStack bs;
    bs.ext_ = words_le;
    bs.extWords_ = nwords;
    bs.nbits_ = nbits;
    return bs;
}

void
BitStack::ensureOwned()
{
    if (!ext_)
        return;
    words_.resize(extWords_);
    for (size_t w = 0; w < extWords_; ++w)
        words_[w] = word(w);
    ext_ = nullptr;
    extWords_ = 0;
}

void
BitStack::push(bool bit)
{
    ensureOwned();
    size_t w = nbits_ / 64;
    size_t off = nbits_ % 64;
    if (w == words_.size())
        words_.push_back(0);
    if (bit)
        words_[w] |= (uint64_t{1} << off);
    else
        words_[w] &= ~(uint64_t{1} << off);
    ++nbits_;
}

bool
BitStack::pop()
{
    WET_ASSERT(nbits_ > 0, "pop from empty BitStack");
    ensureOwned();
    bool bit = get(nbits_ - 1);
    --nbits_;
    return bit;
}

bool
BitStack::get(size_t i) const
{
    WET_ASSERT(i < nbits_, "BitStack::get out of range: " << i);
    return (word(i / 64) >> (i % 64)) & 1;
}

void
BitStack::pushBits(uint64_t v, unsigned width)
{
    WET_ASSERT(width <= 64, "pushBits width too large");
    for (unsigned i = 0; i < width; ++i)
        push((v >> i) & 1);
}

uint64_t
BitStack::popBits(unsigned width)
{
    WET_ASSERT(width <= 64 && nbits_ >= width,
               "popBits underflow or bad width");
    uint64_t v = getBits(nbits_ - width, width);
    for (unsigned i = 0; i < width; ++i)
        pop();
    return v;
}

uint64_t
BitStack::getBits(size_t i, unsigned width) const
{
    WET_ASSERT(width <= 64 && i + width <= nbits_,
               "getBits out of range");
    uint64_t v = 0;
    for (unsigned k = 0; k < width; ++k)
        v |= static_cast<uint64_t>(get(i + k)) << k;
    return v;
}

void
BitStack::clear()
{
    words_.clear();
    ext_ = nullptr;
    extWords_ = 0;
    nbits_ = 0;
}

} // namespace support
} // namespace wet
