#include "sizes.h"

#include <cstdio>

namespace wet {
namespace support {

std::string
formatFixed(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
formatBytes(uint64_t bytes)
{
    static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    return formatFixed(v, u == 0 ? 0 : 2) + " " + units[u];
}

std::string
formatCount(uint64_t n)
{
    std::string raw = std::to_string(n);
    std::string out;
    int c = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (c && c % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++c;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace support
} // namespace wet
