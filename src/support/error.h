#ifndef WET_SUPPORT_ERROR_H
#define WET_SUPPORT_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace wet {

/**
 * Exception thrown for user-level errors: malformed programs, bad
 * configuration, out-of-range queries. Mirrors gem5's fatal(): the
 * condition is the caller's fault, not a library bug.
 */
class WetError : public std::runtime_error
{
  public:
    explicit WetError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace support {

/** Abort with a message; used for internal invariant violations. */
[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);

/** Throw WetError with location information attached. */
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);

} // namespace support
} // namespace wet

/**
 * WET_ASSERT(cond, msg): internal invariant check. Violations indicate a
 * bug in the library itself (panic semantics: aborts). The message
 * expression may use operator<< chaining.
 */
#define WET_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream wet_assert_os_;                              \
            wet_assert_os_ << "assertion failed: " #cond ": " << msg;      \
            ::wet::support::panicImpl(__FILE__, __LINE__,                   \
                                      wet_assert_os_.str());                \
        }                                                                   \
    } while (0)

/**
 * WET_FATAL(msg): report a user-level error (throws WetError). Use when
 * the caller supplied invalid input and the operation cannot continue.
 */
#define WET_FATAL(msg)                                                      \
    do {                                                                    \
        std::ostringstream wet_fatal_os_;                                   \
        wet_fatal_os_ << msg;                                               \
        ::wet::support::fatalImpl(__FILE__, __LINE__, wet_fatal_os_.str()); \
    } while (0)

#endif // WET_SUPPORT_ERROR_H
