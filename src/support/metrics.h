#ifndef WET_SUPPORT_METRICS_H
#define WET_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <string>

namespace wet {
namespace support {

/**
 * Small named-counter and latency registry for long-lived serving
 * components (the query session layer). Counters are created on first
 * touch; latency samples aggregate into count/total/min/max so the
 * registry stays O(#names) regardless of traffic. Rendering is
 * deterministic (names sorted) so stats output can be golden-tested.
 */
class Metrics
{
  public:
    /** A latency series aggregated in nanoseconds. */
    struct Latency
    {
        uint64_t count = 0;
        uint64_t totalNs = 0;
        uint64_t minNs = UINT64_MAX;
        uint64_t maxNs = 0;

        double
        meanUs() const
        {
            return count == 0 ? 0.0
                              : static_cast<double>(totalNs) /
                                    static_cast<double>(count) / 1e3;
        }
    };

    /** Counter cell for @p name, created at zero on first touch. */
    uint64_t& counter(const std::string& name);

    /** Add @p v to counter @p name. */
    void
    add(const std::string& name, uint64_t v)
    {
        counter(name) += v;
    }

    /** Record one latency sample for @p name. */
    void recordLatency(const std::string& name, uint64_t ns);

    const std::map<std::string, uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Latency>& latencies() const
    {
        return latencies_;
    }

    /** Human-readable block, one metric per line. */
    std::string renderText() const;

    /** One JSON object: {"counters": {...}, "latencies_us": {...}}. */
    std::string renderJson() const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Latency> latencies_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_METRICS_H
