#ifndef WET_SUPPORT_METRICS_H
#define WET_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace wet {
namespace support {

/**
 * Small named-counter and latency registry for long-lived serving
 * components (the query session and serve layers). Counters are
 * created on first touch; latency samples aggregate into
 * count/total/min/max so the registry stays O(#names) regardless of
 * traffic. Rendering is deterministic (names sorted) so stats output
 * can be golden-tested.
 *
 * Thread safety: the mutating entry points — add(), set(),
 * recordLatency(), merge() — and the renderers are serialized on an
 * internal mutex, so concurrent sessions and a server aggregating
 * per-connection registries can share one instance without losing
 * updates (the 8-thread hammer test pins exact totals). The raw
 * accessors counter()/counters()/latencies() hand out references
 * into the registry and therefore require external quiescence: call
 * them only when no other thread is mutating this instance.
 */
class Metrics
{
  public:
    /** A latency series aggregated in nanoseconds. */
    struct Latency
    {
        uint64_t count = 0;
        uint64_t totalNs = 0;
        uint64_t minNs = UINT64_MAX;
        uint64_t maxNs = 0;

        double
        meanUs() const
        {
            return count == 0 ? 0.0
                              : static_cast<double>(totalNs) /
                                    static_cast<double>(count) / 1e3;
        }
    };

    Metrics() = default;
    Metrics(const Metrics&) = delete;
    Metrics& operator=(const Metrics&) = delete;

    /** Counter cell for @p name, created at zero on first touch.
     *  Requires external quiescence (see the class comment). */
    uint64_t& counter(const std::string& name);

    /** Add @p v to counter @p name. Thread-safe. */
    void add(const std::string& name, uint64_t v);

    /** Set counter @p name to @p v (gauge write). Thread-safe. */
    void set(const std::string& name, uint64_t v);

    /** Record one latency sample for @p name. Thread-safe. */
    void recordLatency(const std::string& name, uint64_t ns);

    /**
     * Fold another registry into this one: counters add, latency
     * series merge (counts/totals add, min/max combine). The server
     * uses this to aggregate a finished connection's session metrics
     * into the global registry. Thread-safe on this instance; @p other
     * must be quiescent for the duration of the call.
     */
    void merge(const Metrics& other);

    const std::map<std::string, uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Latency>& latencies() const
    {
        return latencies_;
    }

    /** Human-readable block, one metric per line. Thread-safe. */
    std::string renderText() const;

    /** One JSON object: {"counters": {...}, "latencies_us": {...}}.
     *  Thread-safe. */
    std::string renderJson() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Latency> latencies_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_METRICS_H
