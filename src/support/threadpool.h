#ifndef WET_SUPPORT_THREADPOOL_H
#define WET_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wet {
namespace support {

/**
 * Fixed-size worker pool with a bounded task queue.
 *
 * The pool exists to fan out *independent, deterministic* work —
 * tier-2 stream compression and per-function module analyses — so its
 * contract is deliberately small (see DESIGN.md §8):
 *
 *  - `threads <= 1` degrades to serial: no worker threads are
 *    started and submit() runs the task inline, so single-threaded
 *    callers pay no synchronization and follow the same code path
 *    that the parallel build takes.
 *  - The queue is bounded; submit() blocks when it is full
 *    (backpressure instead of unbounded task memory).
 *  - A task that throws does not kill the pool: the first exception
 *    is captured and rethrown by the next wait(); later tasks still
 *    run and the pool stays usable afterwards.
 *  - submit() after shutdown() throws WetError; work that raced in
 *    before the shutdown is drained, not dropped.
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers (0 is treated as 1 = serial). The
     * queue holds at most @p queue_capacity pending tasks.
     */
    explicit ThreadPool(unsigned threads,
                        size_t queue_capacity = 256);

    /** Joins all workers (implicit shutdown; exceptions dropped). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Enqueue @p task; blocks while the queue is full. Throws
     * WetError if the pool has been shut down.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception any task raised (clearing it, so the pool
     * remains usable).
     */
    void wait();

    /**
     * Drain the queue, join all workers, and reject further
     * submit() calls. Idempotent. Does not rethrow task exceptions;
     * call wait() first if those matter.
     */
    void shutdown();

  private:
    void workerLoop();
    void recordError();

    const unsigned threads_;
    const size_t capacity_;

    std::mutex m_;
    std::condition_variable cvWorker_; //!< queue non-empty / stopping
    std::condition_variable cvSpace_;  //!< queue below capacity
    std::condition_variable cvIdle_;   //!< queue empty + none active
    std::deque<std::function<void()>> queue_;
    size_t active_ = 0;
    bool stopped_ = false;  //!< submit() rejected
    bool stopping_ = false; //!< workers exit once drained
    std::exception_ptr firstError_;
    std::vector<std::thread> workers_;
};

/**
 * Run `fn(i)` for every i in [0, n), fanning out across @p pool
 * (serial when @p pool is null or single-threaded). Work is handed
 * out index-at-a-time, so callers get determinism by writing result
 * i into a pre-sized slot i — *which* worker computes a slot never
 * matters. The first exception thrown by any fn(i) is rethrown here
 * after all workers stop; remaining indices are abandoned.
 */
void parallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/**
 * Thread count from the WET_THREADS environment variable, or
 * @p fallback when unset/unparsable/zero. The conventional override
 * knob for every surface that does not expose --threads itself.
 */
unsigned envThreadCount(unsigned fallback = 1);

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_THREADPOOL_H
