#include "governor.h"

#include "support/failpoint.h"
#include "support/metrics.h"

namespace wet {
namespace support {

namespace {

/** Deadline/resident checks happen every this many decode steps: the
 *  steady_clock read and (much costlier) mincore walk must not show
 *  up on the per-step fast path. */
constexpr uint64_t kPollInterval = 1024;

} // namespace

thread_local Governor* Governor::active_ = nullptr;

void
Governor::begin(const Limits& limits,
                std::function<uint64_t()> resident, Metrics* metrics)
{
    end();
    limits_ = limits;
    resident_ = std::move(resident);
    metrics_ = metrics;
    steps_ = 0;
    nextPoll_ = 1; // first charge polls, so a pre-exceeded gauge
                   // trips deterministically at the window's start
    hasDeadline_ = limits.timeoutMs != 0;
    if (hasDeadline_)
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(limits.timeoutMs);
    windowOpen_ = true;
    active_ = this;
}

void
Governor::end()
{
    if (!windowOpen_)
        return;
    windowOpen_ = false;
    if (active_ == this)
        active_ = nullptr;
}

void
Governor::chargeImpl(uint64_t steps)
{
    steps_ += steps;
    if (limits_.maxDecodeSteps != 0 &&
        steps_ > limits_.maxDecodeSteps)
    {
        trip("decode-steps",
             "decode-step budget exhausted (" +
                 std::to_string(steps_) + " > " +
                 std::to_string(limits_.maxDecodeSteps) + ")");
    }
    if (steps_ >= nextPoll_) {
        nextPoll_ = steps_ + kPollInterval;
        pollImpl();
    }
}

void
Governor::pollImpl()
{
    if (hasDeadline_ &&
        (std::chrono::steady_clock::now() >= deadline_ ||
         WET_FAILPOINT_HIT("support.governor.deadline")))
    {
        trip("timeout", "query exceeded its " +
                            std::to_string(limits_.timeoutMs) +
                            " ms budget");
    }
    if (limits_.maxResidentBytes != 0 && resident_) {
        uint64_t r = resident_();
        if (r > limits_.maxResidentBytes)
            trip("resident-bytes",
                 "artifact resident set " + std::to_string(r) +
                     " bytes exceeds the " +
                     std::to_string(limits_.maxResidentBytes) +
                     "-byte budget");
    }
}

void
Governor::trip(const char* which, const std::string& msg)
{
    if (metrics_ != nullptr)
        metrics_->add(std::string("governor.") + which + ".trips", 1);
    // Close the window first: the throw unwinds through code that may
    // itself decode (destructors), which must not re-trip.
    end();
    throw GovernorLimit(which, msg);
}

} // namespace support
} // namespace wet
