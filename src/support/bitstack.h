#ifndef WET_SUPPORT_BITSTACK_H
#define WET_SUPPORT_BITSTACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wet {
namespace support {

/**
 * A stack of single bits with random read access.
 *
 * The tier-2 codecs store one hit/miss flag per stream position here;
 * cursors read the flags forwards or backwards while the builder pushes
 * and pops them stack-wise.
 */
class BitStack
{
  public:
    BitStack() = default;

    /** Push one bit onto the end of the stack. */
    void push(bool bit);

    /** Pop and return the last bit. Stack must be non-empty. */
    bool pop();

    /** Read the bit at index @p i (0-based from the bottom). */
    bool get(size_t i) const;

    /** Push the low @p width bits of @p v (LSB first). */
    void pushBits(uint64_t v, unsigned width);

    /** Pop @p width bits pushed with pushBits. */
    uint64_t popBits(unsigned width);

    /** Read @p width bits starting at bit index @p i. */
    uint64_t getBits(size_t i, unsigned width) const;

    size_t size() const { return nbits_; }
    bool empty() const { return nbits_ == 0; }
    void clear();

    /** Storage footprint in bytes (rounded up). */
    size_t sizeBytes() const { return (nbits_ + 7) / 8; }

    /** Raw word storage (for serialization). */
    const std::vector<uint64_t>& words() const { return words_; }

    /** Reconstruct from raw words (deserialization). */
    static BitStack
    fromWords(std::vector<uint64_t> words, size_t nbits)
    {
        BitStack bs;
        bs.words_ = std::move(words);
        bs.nbits_ = nbits;
        return bs;
    }

  private:
    std::vector<uint64_t> words_;
    size_t nbits_ = 0;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_BITSTACK_H
