#ifndef WET_SUPPORT_BITSTACK_H
#define WET_SUPPORT_BITSTACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wet {
namespace support {

/**
 * A stack of single bits with random read access.
 *
 * The tier-2 codecs store one hit/miss flag per stream position here;
 * cursors read the flags forwards or backwards while the builder pushes
 * and pops them stack-wise.
 *
 * Storage is either owned (a word vector) or borrowed: a span of
 * little-endian 64-bit words inside memory someone else keeps alive
 * (e.g. an mmap'd artifact view). Reads never copy; the first mutation
 * of a borrowed stack materializes a private copy.
 */
class BitStack
{
  public:
    BitStack() = default;

    /** Push one bit onto the end of the stack. */
    void push(bool bit);

    /** Pop and return the last bit. Stack must be non-empty. */
    bool pop();

    /** Read the bit at index @p i (0-based from the bottom). */
    bool get(size_t i) const;

    /** Push the low @p width bits of @p v (LSB first). */
    void pushBits(uint64_t v, unsigned width);

    /** Pop @p width bits pushed with pushBits. */
    uint64_t popBits(unsigned width);

    /** Read @p width bits starting at bit index @p i. */
    uint64_t getBits(size_t i, unsigned width) const;

    size_t size() const { return nbits_; }
    bool empty() const { return nbits_ == 0; }
    void clear();

    /** Storage footprint in bytes (rounded up). */
    size_t sizeBytes() const { return (nbits_ + 7) / 8; }

    /** Number of 64-bit storage words (owned or borrowed). */
    size_t
    numWords() const
    {
        return ext_ ? extWords_ : words_.size();
    }

    /** Storage word @p w, regardless of ownership. */
    uint64_t word(size_t w) const;

    /** True when the storage is a borrowed span (zero-copy load). */
    bool borrowed() const { return ext_ != nullptr; }

    /** Owned word storage; only valid on a non-borrowed stack. */
    const std::vector<uint64_t>& words() const;

    /** Reconstruct from raw words (owning deserialization). */
    static BitStack
    fromWords(std::vector<uint64_t> words, size_t nbits)
    {
        BitStack bs;
        bs.words_ = std::move(words);
        bs.nbits_ = nbits;
        return bs;
    }

    /**
     * Zero-copy view over @p nwords little-endian 64-bit words stored
     * at @p words_le (no alignment requirement). The caller must keep
     * the memory alive and unchanged for the lifetime of this stack
     * and anything copied from it; nbits must not exceed the storage.
     */
    static BitStack fromSpan(const uint8_t* words_le, size_t nwords,
                             size_t nbits);

  private:
    /** Copy borrowed storage into words_ before a mutation. */
    void ensureOwned();

    std::vector<uint64_t> words_;
    const uint8_t* ext_ = nullptr; //!< borrowed LE words when non-null
    size_t extWords_ = 0;
    size_t nbits_ = 0;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_BITSTACK_H
