#include "metrics.h"

#include <algorithm>
#include <sstream>

namespace wet {
namespace support {

uint64_t&
Metrics::counter(const std::string& name)
{
    return counters_[name];
}

void
Metrics::add(const std::string& name, uint64_t v)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += v;
}

void
Metrics::set(const std::string& name, uint64_t v)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] = v;
}

void
Metrics::recordLatency(const std::string& name, uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    Latency& l = latencies_[name];
    ++l.count;
    l.totalNs += ns;
    l.minNs = std::min(l.minNs, ns);
    l.maxNs = std::max(l.maxNs, ns);
}

void
Metrics::merge(const Metrics& other)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, v] : other.counters_)
        counters_[name] += v;
    for (const auto& [name, ol] : other.latencies_) {
        Latency& l = latencies_[name];
        l.count += ol.count;
        l.totalNs += ol.totalNs;
        l.minNs = std::min(l.minNs, ol.minNs);
        l.maxNs = std::max(l.maxNs, ol.maxNs);
    }
}

namespace {

double
us(uint64_t ns)
{
    return static_cast<double>(ns) / 1e3;
}

void
jsonNumber(std::ostringstream& os, double v)
{
    std::ostringstream tmp;
    tmp.precision(3);
    tmp << std::fixed << v;
    os << tmp.str();
}

} // namespace

std::string
Metrics::renderText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    for (const auto& [name, v] : counters_)
        os << name << ": " << v << "\n";
    for (const auto& [name, l] : latencies_) {
        os << name << ": n=" << l.count << " mean_us=" << l.meanUs();
        if (l.count > 0)
            os << " min_us=" << us(l.minNs) << " max_us=" << us(l.maxNs);
        os << "\n";
    }
    return os.str();
}

std::string
Metrics::renderJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << v;
    }
    os << "},\"latencies_us\":{";
    first = true;
    for (const auto& [name, l] : latencies_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":{\"count\":" << l.count << ",\"mean\":";
        jsonNumber(os, l.meanUs());
        os << ",\"min\":";
        jsonNumber(os, l.count ? us(l.minNs) : 0.0);
        os << ",\"max\":";
        jsonNumber(os, us(l.maxNs));
        os << "}";
    }
    os << "}}";
    return os.str();
}

} // namespace support
} // namespace wet
