#ifndef WET_SUPPORT_HASH_H
#define WET_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace wet {
namespace support {

/** Finalizing 64-bit mix (splitmix64 finalizer). */
inline uint64_t
mix64(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine a hash accumulator with one more value. */
inline uint64_t
hashCombine(uint64_t seed, uint64_t v)
{
    return mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

/**
 * Hash a window of @p n values into a table index below 2^bits.
 * Used by the FCM codecs to map a context to a lookup-table slot.
 */
inline size_t
hashContext(const uint64_t* vals, size_t n, unsigned bits)
{
    uint64_t h = 0x51'7c'c1'b7'27'22'0a'95ull;
    for (size_t i = 0; i < n; ++i)
        h = hashCombine(h, vals[i]);
    return static_cast<size_t>(h >> (64 - bits));
}

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_HASH_H
