#ifndef WET_SUPPORT_VARINT_H
#define WET_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wet {
namespace support {

/**
 * LEB128 variable-length integer buffer readable in both directions.
 *
 * Values are appended with the standard little-endian base-128 encoding
 * (continuation bit set on every byte except the last). Because the last
 * byte of every value is the only byte with a clear continuation bit, the
 * buffer can also be decoded backwards: scanning from the end of a value,
 * the preceding value's boundary is the previous byte with a clear
 * continuation bit. The tier-2 stream codecs rely on this to pop entries
 * off compressed stacks in O(length of entry).
 *
 * Storage is either owned (a byte vector, the default) or borrowed (a
 * span into memory someone else keeps alive, e.g. an mmap'd artifact
 * view). Reads never copy; the first mutation of a borrowed buffer
 * materializes a private copy so the mapped file is never written.
 */
class VarintBuffer
{
  public:
    VarintBuffer() = default;

    /** Append an unsigned value to the end of the buffer. */
    void pushUnsigned(uint64_t v);

    /** Append a signed value using zig-zag encoding. */
    void pushSigned(int64_t v);

    /** Remove and return the last unsigned value. Buffer must be
     *  non-empty. */
    uint64_t popUnsigned();

    /** Remove and return the last signed (zig-zag) value. */
    int64_t popSigned();

    /**
     * Decode the unsigned value starting at byte offset @p pos.
     * @param pos in: start offset; out: offset one past the value.
     */
    uint64_t readUnsignedAt(size_t& pos) const;

    /** Decode the signed (zig-zag) value starting at byte offset. */
    int64_t readSignedAt(size_t& pos) const;

    /**
     * Decode the unsigned value that *ends* at byte offset @p pos - 1.
     * @param pos in: offset one past the value; out: start offset of the
     *        value, suitable for a subsequent backward read.
     */
    uint64_t readUnsignedBefore(size_t& pos) const;

    /** Backward variant of readSignedAt. */
    int64_t readSignedBefore(size_t& pos) const;

    size_t sizeBytes() const { return ext_ ? extSize_ : bytes_.size(); }
    bool empty() const { return sizeBytes() == 0; }
    void clear();

    /** Truncate the buffer to @p nbytes bytes (must be a value
     *  boundary; only checked in debug builds). */
    void truncate(size_t nbytes);

    /** Raw byte storage, regardless of ownership. */
    const uint8_t* data() const
    {
        return ext_ ? ext_ : bytes_.data();
    }

    /** True when the storage is a borrowed span (zero-copy load). */
    bool borrowed() const { return ext_ != nullptr; }

    /** Owned byte vector; only valid on an owned (non-borrowed)
     *  buffer — serialization of freshly encoded streams. */
    const std::vector<uint8_t>& bytes() const;

    /** Reconstruct from raw bytes (owning deserialization). */
    static VarintBuffer
    fromBytes(std::vector<uint8_t> bytes)
    {
        VarintBuffer b;
        b.bytes_ = std::move(bytes);
        return b;
    }

    /**
     * Zero-copy view over @p n bytes at @p data. The caller must keep
     * the memory alive and unchanged for the lifetime of this buffer
     * and anything copied from it.
     */
    static VarintBuffer
    fromSpan(const uint8_t* data, size_t n)
    {
        VarintBuffer b;
        b.ext_ = data;
        b.extSize_ = n;
        return b;
    }

    static uint64_t zigzagEncode(int64_t v);
    static int64_t zigzagDecode(uint64_t u);

  private:
    /** Copy borrowed storage into bytes_ before a mutation. */
    void ensureOwned();

    std::vector<uint8_t> bytes_;
    const uint8_t* ext_ = nullptr; //!< borrowed storage when non-null
    size_t extSize_ = 0;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_VARINT_H
