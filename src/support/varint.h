#ifndef WET_SUPPORT_VARINT_H
#define WET_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wet {
namespace support {

/**
 * LEB128 variable-length integer buffer readable in both directions.
 *
 * Values are appended with the standard little-endian base-128 encoding
 * (continuation bit set on every byte except the last). Because the last
 * byte of every value is the only byte with a clear continuation bit, the
 * buffer can also be decoded backwards: scanning from the end of a value,
 * the preceding value's boundary is the previous byte with a clear
 * continuation bit. The tier-2 stream codecs rely on this to pop entries
 * off compressed stacks in O(length of entry).
 */
class VarintBuffer
{
  public:
    VarintBuffer() = default;

    /** Append an unsigned value to the end of the buffer. */
    void pushUnsigned(uint64_t v);

    /** Append a signed value using zig-zag encoding. */
    void pushSigned(int64_t v);

    /** Remove and return the last unsigned value. Buffer must be
     *  non-empty. */
    uint64_t popUnsigned();

    /** Remove and return the last signed (zig-zag) value. */
    int64_t popSigned();

    /**
     * Decode the unsigned value starting at byte offset @p pos.
     * @param pos in: start offset; out: offset one past the value.
     */
    uint64_t readUnsignedAt(size_t& pos) const;

    /** Decode the signed (zig-zag) value starting at byte offset. */
    int64_t readSignedAt(size_t& pos) const;

    /**
     * Decode the unsigned value that *ends* at byte offset @p pos - 1.
     * @param pos in: offset one past the value; out: start offset of the
     *        value, suitable for a subsequent backward read.
     */
    uint64_t readUnsignedBefore(size_t& pos) const;

    /** Backward variant of readSignedAt. */
    int64_t readSignedBefore(size_t& pos) const;

    size_t sizeBytes() const { return bytes_.size(); }
    bool empty() const { return bytes_.empty(); }
    void clear() { bytes_.clear(); }

    /** Truncate the buffer to @p nbytes bytes (must be a value
     *  boundary; only checked in debug builds). */
    void truncate(size_t nbytes);

    const std::vector<uint8_t>& bytes() const { return bytes_; }

    /** Reconstruct from raw bytes (deserialization). */
    static VarintBuffer
    fromBytes(std::vector<uint8_t> bytes)
    {
        VarintBuffer b;
        b.bytes_ = std::move(bytes);
        return b;
    }

    static uint64_t zigzagEncode(int64_t v);
    static int64_t zigzagDecode(uint64_t u);

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_VARINT_H
