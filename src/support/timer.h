#ifndef WET_SUPPORT_TIMER_H
#define WET_SUPPORT_TIMER_H

#include <chrono>

namespace wet {
namespace support {

/** Simple wall-clock stopwatch used by the benchmark harnesses. */
class Timer
{
  public:
    Timer() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_TIMER_H
