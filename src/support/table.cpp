#include "table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "error.h"

namespace wet {
namespace support {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    WET_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    WET_ASSERT(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::toString(const std::string& title) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string>& row, bool left0) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            // First column (benchmark name) left-aligned, rest right.
            if (c == 0 && left0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << "\n";
    };

    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);

    os << title << "\n";
    os << std::string(total, '-') << "\n";
    emitRow(headers_, true);
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emitRow(row, true);
    os << std::string(total, '-') << "\n";
    return os.str();
}

void
TablePrinter::print(const std::string& title) const
{
    std::fputs(toString(title).c_str(), stdout);
    std::fflush(stdout);
}

} // namespace support
} // namespace wet
