#ifndef WET_SUPPORT_RNG_H
#define WET_SUPPORT_RNG_H

#include <cstdint>

namespace wet {
namespace support {

/**
 * Deterministic 64-bit pseudo-random generator (splitmix64).
 *
 * Used for workload input generation and property tests; deterministic
 * across platforms so that experiments and tests are reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    uint64_t state_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_RNG_H
