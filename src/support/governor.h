#ifndef WET_SUPPORT_GOVERNOR_H
#define WET_SUPPORT_GOVERNOR_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "support/error.h"

namespace wet {

/**
 * Thrown when a per-query resource governor trips. Derives from
 * WetError — a tripped limit is an environment/input condition, never
 * a library bug — but stays catchable on its own so serving layers
 * can turn it into a graceful truncation result instead of an error
 * record.
 */
class GovernorLimit : public WetError
{
  public:
    GovernorLimit(std::string which, const std::string& msg)
        : WetError(msg), which_(std::move(which))
    {
    }

    /** Which limit tripped: "decode-steps", "resident-bytes",
     *  or "timeout". */
    const std::string& which() const { return which_; }

  private:
    std::string which_;
};

namespace support {

class Metrics;

/**
 * Per-query resource governor, enforced at the session boundary.
 *
 * A QuerySession::Scope begins/ends one governed window. While a
 * window is active on the current thread, decode work anywhere below
 * (StreamCursor machine steps) is charged against the decode-step
 * budget through a thread-local hook, and every poll interval the
 * governor additionally checks the wall-clock deadline and the
 * artifact's resident-byte gauge. Query drivers may also call poll()
 * per emitted item so cache-warm (decode-free) loops stay governed.
 *
 * Tripping any limit throws GovernorLimit after bumping the
 * corresponding `governor.<limit>.trips` metric; the query's partial
 * output stands and the serving loop reports a truncation result.
 * With no window active the charge hook is one thread-local load.
 */
class Governor
{
  public:
    struct Limits
    {
        uint64_t maxDecodeSteps = 0; //!< 0 = unlimited
        uint64_t maxResidentBytes = 0;
        uint64_t timeoutMs = 0;

        bool
        any() const
        {
            return maxDecodeSteps != 0 || maxResidentBytes != 0 ||
                   timeoutMs != 0;
        }
    };

    ~Governor() { end(); }

    /**
     * Open a governed window on the calling thread. @p resident
     * samples the artifact backing's resident bytes (may be empty);
     * @p metrics receives trip counters (may be null). Windows do not
     * nest — begin() replaces any previous window of this governor.
     */
    void begin(const Limits& limits,
               std::function<uint64_t()> resident,
               Metrics* metrics);

    /** Close the window (idempotent). */
    void end();

    /** Charge @p steps decode steps to the active window of the
     *  calling thread, if any. Called from the codec layer. */
    static void
    charge(uint64_t steps)
    {
        if (active_ != nullptr)
            active_->chargeImpl(steps);
    }

    /** Deadline/resident check for decode-free loops (no-op when no
     *  window is active on this thread). */
    static void
    poll()
    {
        if (active_ != nullptr)
            active_->pollImpl();
    }

    uint64_t steps() const { return steps_; }

  private:
    void chargeImpl(uint64_t steps);
    void pollImpl();
    [[noreturn]] void trip(const char* which, const std::string& msg);

    Limits limits_;
    std::function<uint64_t()> resident_;
    Metrics* metrics_ = nullptr;
    uint64_t steps_ = 0;
    uint64_t nextPoll_ = 0;
    std::chrono::steady_clock::time_point deadline_;
    bool hasDeadline_ = false;
    bool windowOpen_ = false;

    static thread_local Governor* active_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_GOVERNOR_H
