#include "varint.h"

#include "error.h"

namespace wet {
namespace support {

uint64_t
VarintBuffer::zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
VarintBuffer::zigzagDecode(uint64_t u)
{
    return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

const std::vector<uint8_t>&
VarintBuffer::bytes() const
{
    WET_ASSERT(!ext_, "bytes() on a borrowed VarintBuffer");
    return bytes_;
}

void
VarintBuffer::ensureOwned()
{
    if (!ext_)
        return;
    bytes_.assign(ext_, ext_ + extSize_);
    ext_ = nullptr;
    extSize_ = 0;
}

void
VarintBuffer::clear()
{
    bytes_.clear();
    ext_ = nullptr;
    extSize_ = 0;
}

void
VarintBuffer::pushUnsigned(uint64_t v)
{
    ensureOwned();
    while (v >= 0x80) {
        bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(v));
}

void
VarintBuffer::pushSigned(int64_t v)
{
    pushUnsigned(zigzagEncode(v));
}

uint64_t
VarintBuffer::readUnsignedAt(size_t& pos) const
{
    const uint8_t* d = data();
    const size_t size = sizeBytes();
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        // Checked per byte: a truncated buffer whose last byte still
        // has the continuation bit set must not read past the end.
        WET_ASSERT(pos < size, "varint read past end at " << pos);
        uint8_t b = d[pos++];
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
        WET_ASSERT(shift < 64, "varint too long");
    }
    return v;
}

int64_t
VarintBuffer::readSignedAt(size_t& pos) const
{
    return zigzagDecode(readUnsignedAt(pos));
}

uint64_t
VarintBuffer::readUnsignedBefore(size_t& pos) const
{
    const uint8_t* d = data();
    WET_ASSERT(pos > 0 && pos <= sizeBytes(),
               "varint backward read at " << pos);
    // The value's final byte (at pos - 1) has a clear continuation bit;
    // every earlier byte of the same value has it set.
    size_t start = pos - 1;
    while (start > 0 && (d[start - 1] & 0x80))
        --start;
    pos = start;
    size_t tmp = start;
    return readUnsignedAt(tmp);
}

int64_t
VarintBuffer::readSignedBefore(size_t& pos) const
{
    return zigzagDecode(readUnsignedBefore(pos));
}

uint64_t
VarintBuffer::popUnsigned()
{
    ensureOwned();
    size_t pos = bytes_.size();
    uint64_t v = readUnsignedBefore(pos);
    bytes_.resize(pos);
    return v;
}

int64_t
VarintBuffer::popSigned()
{
    return zigzagDecode(popUnsigned());
}

void
VarintBuffer::truncate(size_t nbytes)
{
    ensureOwned();
    WET_ASSERT(nbytes <= bytes_.size(), "truncate beyond size");
    bytes_.resize(nbytes);
}

} // namespace support
} // namespace wet
