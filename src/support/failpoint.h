#ifndef WET_SUPPORT_FAILPOINT_H
#define WET_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wet {
namespace support {

/**
 * Fault-injection framework: named failpoints compiled into the I/O,
 * mmap, decode, cache-eviction, and allocation-heavy paths, armed at
 * runtime from a spec string (the `--failpoints` CLI flag or the
 * WET_FAILPOINTS environment variable).
 *
 * A spec is a comma-separated list of `site=mode` entries:
 *
 *   off           disarm the site
 *   once          fire on the next hit, then disarm
 *   nth:N         fire on the N-th hit only (1-based)
 *   prob:P:S      fire each hit with probability P percent, using a
 *                 deterministic RNG seeded with S
 *   crash         _Exit(134) on the next hit (simulated crash; no
 *                 flush, no destructors — what a power cut leaves)
 *   crash-nth:N   crash on the N-th hit
 *
 * Firing a non-crash trigger throws WetError("injected fault at
 * <site>"), which the serving layers treat exactly like any other
 * recoverable input/environment fault. Sites the caller wants to
 * *degrade* on rather than fail (e.g. mmap falling back to a buffered
 * read) use WET_FAILPOINT_HIT and branch on the result.
 *
 * The set of sites is a closed registry (see failpoint.cpp): arming
 * an unknown site is an error, so sweeps and specs cannot silently
 * rot, and `wet_cli failpoints` can enumerate every site. A lint
 * script (tools/check_error_split.sh) keeps the registry and the
 * WET_FAILPOINT uses in the source in sync.
 *
 * When nothing is armed the per-hit cost is one relaxed atomic load.
 */
class FailPoints
{
  public:
    /** Global instance; parses WET_FAILPOINTS on first access. */
    static FailPoints& instance();

    /** Arm triggers from a spec string. Throws WetError on a
     *  malformed spec or an unknown site name. */
    void arm(const std::string& spec);

    /** Disarm every site and reset all hit/trip counters. */
    void disarmAll();

    /** All registered site names, sorted (the sweep drives this). */
    static std::vector<std::string> registry();

    /** Times @p site fired (threw or crashed) since the last reset. */
    uint64_t trips(const std::string& site) const;

    /** Times @p site was evaluated since the last reset. */
    uint64_t hits(const std::string& site) const;

    /** Fast gate: false unless some site is armed. */
    static bool
    anyArmed()
    {
        return armedCount_.load(std::memory_order_relaxed) != 0;
    }

    /**
     * Evaluate @p site: count the hit and decide whether its trigger
     * fires now. A crash-mode trigger never returns (process exit); an
     * error-mode trigger returns true and the caller degrades or
     * throws. Call only behind anyArmed() (the macros do).
     */
    bool fired(const char* site);

    /** fired() + throw WetError on true (the WET_FAILPOINT macro). */
    void check(const char* site);

  private:
    FailPoints();
    struct Impl;
    Impl* impl_;
    static std::atomic<uint64_t> armedCount_;
    friend struct FailPointsAccess;
};

} // namespace support
} // namespace wet

/**
 * WET_FAILPOINT(site): fault-injection site with fail semantics — an
 * armed trigger throws WetError (or crashes in crash mode). Near-zero
 * cost when nothing is armed.
 */
#define WET_FAILPOINT(site)                                          \
    do {                                                             \
        if (::wet::support::FailPoints::anyArmed())                  \
            ::wet::support::FailPoints::instance().check(site);      \
    } while (0)

/**
 * WET_FAILPOINT_HIT(site): fault-injection site with degrade
 * semantics — evaluates to true when the armed trigger fires, so the
 * call site can take its own failure branch (fall back, report a
 * diagnostic) instead of unwinding.
 */
#define WET_FAILPOINT_HIT(site)                                      \
    (::wet::support::FailPoints::anyArmed() &&                       \
     ::wet::support::FailPoints::instance().fired(site))

#endif // WET_SUPPORT_FAILPOINT_H
