#include "threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "support/error.h"

namespace wet {
namespace support {

ThreadPool::ThreadPool(unsigned threads, size_t queue_capacity)
    : threads_(threads == 0 ? 1u : threads),
      capacity_(queue_capacity == 0 ? 1u : queue_capacity)
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void
ThreadPool::recordError()
{
    // Caller holds m_ (serial path) or must lock: workers lock here.
    if (!firstError_)
        firstError_ = std::current_exception();
}

void
ThreadPool::submit(std::function<void()> task)
{
    WET_ASSERT(task, "ThreadPool::submit requires a callable task");
    if (threads_ <= 1) {
        std::unique_lock<std::mutex> lk(m_);
        if (stopped_)
            WET_FATAL("task submitted after ThreadPool shutdown");
        lk.unlock();
        // Inline execution, same contract as the parallel path: the
        // exception surfaces at wait(), not at submit().
        try {
            task();
        } catch (...) {
            lk.lock();
            recordError();
        }
        return;
    }
    std::unique_lock<std::mutex> lk(m_);
    if (stopped_)
        WET_FATAL("task submitted after ThreadPool shutdown");
    cvSpace_.wait(lk, [&] {
        return queue_.size() < capacity_ || stopped_;
    });
    if (stopped_)
        WET_FATAL("task submitted after ThreadPool shutdown");
    queue_.push_back(std::move(task));
    cvWorker_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(m_);
    cvIdle_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
    std::exception_ptr e = firstError_;
    firstError_ = nullptr;
    lk.unlock();
    if (e)
        std::rethrow_exception(e);
}

void
ThreadPool::shutdown()
{
    {
        std::unique_lock<std::mutex> lk(m_);
        if (stopped_)
            return;
        stopped_ = true;
        stopping_ = true;
    }
    cvWorker_.notify_all();
    cvSpace_.notify_all();
    for (auto& w : workers_)
        w.join();
    workers_.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvWorker_.wait(lk, [&] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        cvSpace_.notify_one();
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lk(m_);
            recordError();
        }
        {
            std::unique_lock<std::mutex> lk(m_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cvIdle_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool* pool, size_t n,
            const std::function<void(size_t)>& fn)
{
    if (!pool || pool->threads() <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // Index-at-a-time work stealing: each chunk worker pulls the
    // next unclaimed index. Determinism is the caller's slot-per-
    // index discipline, not scheduling order. On the first failure
    // every chunk stops claiming new indices; the exception itself
    // travels through the pool's capture and out of wait().
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    auto chunk = [&] {
        size_t i;
        while (!failed.load(std::memory_order_relaxed) &&
               (i = next.fetch_add(1)) < n)
        {
            try {
                fn(i);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                throw; // pool records it; wait() rethrows
            }
        }
    };
    const unsigned tasks =
        static_cast<unsigned>(std::min<size_t>(n, pool->threads()));
    unsigned submitted = 0;
    try {
        for (; submitted < tasks; ++submitted)
            pool->submit(chunk);
    } catch (...) {
        // Chunks already queued capture this frame's locals: they
        // must finish before the frame unwinds.
        failed.store(true, std::memory_order_relaxed);
        if (submitted > 0) {
            try {
                pool->wait();
            } catch (...) {
            }
        }
        throw;
    }
    pool->wait();
}

unsigned
envThreadCount(unsigned fallback)
{
    // Read once during startup, before any worker threads exist.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("WET_THREADS");
    if (!env)
        return fallback;
    unsigned long v = std::strtoul(env, nullptr, 10);
    if (v == 0 || v > 1024)
        return fallback;
    return static_cast<unsigned>(v);
}

} // namespace support
} // namespace wet
