#include "error.h"

#include <cstdio>
#include <cstdlib>

namespace wet {
namespace support {

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << file << ":" << line << ": " << msg;
    throw WetError(os.str());
}

} // namespace support
} // namespace wet
