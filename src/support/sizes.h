#ifndef WET_SUPPORT_SIZES_H
#define WET_SUPPORT_SIZES_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace wet {
namespace support {

/** Bytes expressed in binary megabytes (as the paper reports sizes). */
inline double
toMB(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/** Format a double with @p prec decimal places. */
std::string formatFixed(double v, int prec = 2);

/** Human readable byte count, e.g. "1.25 MB". */
std::string formatBytes(uint64_t bytes);

/** Format a count with thousands separators, e.g. "1,234,567". */
std::string formatCount(uint64_t n);

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_SIZES_H
