#include "failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "support/error.h"
#include "support/rng.h"

namespace wet {
namespace support {

namespace {

/**
 * The closed failpoint registry. Every WET_FAILPOINT/WET_FAILPOINT_HIT
 * site in the source must appear here (tools/check_error_split.sh
 * enforces the bijection), and arm() rejects names that do not.
 */
// failpoint-registry-begin
const char* const kSites[] = {
    "codec.cursor.back",
    "codec.cursor.init",
    "codec.cursor.step",
    "core.access.value",
    "core.cache.evict",
    "core.cache.insert",
    "core.session.query",
    "core.session.segment",
    "support.governor.deadline",
    "wetio.load.stream",
    "wetio.load.sync",
    "wetio.manifest.append",
    "wetio.manifest.open",
    "wetio.open",
    "wetio.open.mmap",
    "wetio.open.read",
    "wetio.save.dirsync",
    "wetio.save.fsync",
    "wetio.save.open",
    "wetio.save.rename",
    "wetio.save.write",
    "wetio.seg.load",
    "wetio.seg.save",
};
// failpoint-registry-end

enum class Mode { Off, Once, Nth, Prob, Crash, CrashNth };

struct Trigger
{
    Mode mode = Mode::Off;
    uint64_t n = 0;       //!< nth/crash-nth target (1-based)
    uint64_t probPct = 0; //!< prob percentage
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t trips = 0;
};

[[noreturn]] void
simulatedCrash()
{
    // No flush, no destructors: exactly what the process would leave
    // behind if the machine lost power at this instant.
    std::_Exit(134);
}

} // namespace

struct FailPoints::Impl
{
    std::mutex mu;
    std::map<std::string, Trigger> triggers;

    bool
    known(const std::string& site) const
    {
        return std::binary_search(std::begin(kSites),
                                  std::end(kSites), site);
    }
};

std::atomic<uint64_t> FailPoints::armedCount_{0};

FailPoints::FailPoints() : impl_(new Impl) {}

FailPoints&
FailPoints::instance()
{
    static FailPoints fp;
    static std::once_flag envOnce;
    std::call_once(envOnce, [] {
        // Guarded by call_once; no concurrent setenv in this
        // process. NOLINTNEXTLINE(concurrency-mt-unsafe)
        if (const char* env = std::getenv("WET_FAILPOINTS")) {
            if (env[0] != '\0')
                fp.arm(env);
        }
    });
    return fp;
}

std::vector<std::string>
FailPoints::registry()
{
    return {std::begin(kSites), std::end(kSites)};
}

void
FailPoints::arm(const std::string& spec)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    size_t start = 0;
    while (start < spec.size()) {
        size_t comma = spec.find(',', start);
        std::string entry =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        start = comma == std::string::npos ? spec.size() : comma + 1;
        if (entry.empty())
            continue;
        size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            WET_FATAL("bad failpoint entry '"
                      << entry << "', expected site=mode");
        std::string site = entry.substr(0, eq);
        std::string mode = entry.substr(eq + 1);
        if (!impl_->known(site))
            WET_FATAL("unknown failpoint site '" << site << "'");

        Trigger t;
        auto tailNum = [&](size_t prefixLen,
                           const char* what) -> uint64_t {
            const std::string digits = mode.substr(prefixLen);
            if (digits.empty() ||
                digits.find_first_not_of("0123456789") !=
                    std::string::npos)
                WET_FATAL("bad " << what << " in failpoint mode '"
                                 << mode << "'");
            return std::strtoull(digits.c_str(), nullptr, 10);
        };
        if (mode == "off") {
            t.mode = Mode::Off;
        } else if (mode == "once") {
            t.mode = Mode::Once;
        } else if (mode == "crash") {
            t.mode = Mode::Crash;
        } else if (mode.rfind("nth:", 0) == 0) {
            t.mode = Mode::Nth;
            t.n = tailNum(4, "hit index");
            if (t.n == 0)
                WET_FATAL("failpoint nth index is 1-based");
        } else if (mode.rfind("crash-nth:", 0) == 0) {
            t.mode = Mode::CrashNth;
            t.n = tailNum(10, "hit index");
            if (t.n == 0)
                WET_FATAL("failpoint crash-nth index is 1-based");
        } else if (mode.rfind("prob:", 0) == 0) {
            size_t colon = mode.find(':', 5);
            if (colon == std::string::npos)
                WET_FATAL("failpoint prob mode needs prob:P:SEED");
            const std::string pct = mode.substr(5, colon - 5);
            if (pct.empty() ||
                pct.find_first_not_of("0123456789") !=
                    std::string::npos)
                WET_FATAL("bad percentage in failpoint mode '"
                          << mode << "'");
            t.mode = Mode::Prob;
            t.probPct = std::strtoull(pct.c_str(), nullptr, 10);
            if (t.probPct > 100)
                WET_FATAL("failpoint probability "
                          << t.probPct << " exceeds 100");
            t.rng = Rng(tailNum(colon + 1, "seed"));
        } else {
            WET_FATAL("unknown failpoint mode '" << mode << "'");
        }

        auto it = impl_->triggers.find(site);
        bool wasArmed =
            it != impl_->triggers.end() && it->second.mode != Mode::Off;
        bool nowArmed = t.mode != Mode::Off;
        if (it != impl_->triggers.end()) {
            t.hits = it->second.hits;
            t.trips = it->second.trips;
            it->second = t;
        } else {
            impl_->triggers.emplace(site, t);
        }
        if (nowArmed && !wasArmed)
            armedCount_.fetch_add(1, std::memory_order_relaxed);
        else if (!nowArmed && wasArmed)
            armedCount_.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
FailPoints::disarmAll()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    uint64_t armed = 0;
    for (const auto& [site, t] : impl_->triggers) {
        (void)site;
        if (t.mode != Mode::Off)
            ++armed;
    }
    impl_->triggers.clear();
    armedCount_.fetch_sub(armed, std::memory_order_relaxed);
}

uint64_t
FailPoints::trips(const std::string& site) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->triggers.find(site);
    return it == impl_->triggers.end() ? 0 : it->second.trips;
}

uint64_t
FailPoints::hits(const std::string& site) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->triggers.find(site);
    return it == impl_->triggers.end() ? 0 : it->second.hits;
}

bool
FailPoints::fired(const char* site)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->triggers.find(site);
    if (it == impl_->triggers.end())
        return false;
    Trigger& t = it->second;
    ++t.hits;
    bool fire = false;
    bool crash = false;
    switch (t.mode) {
    case Mode::Off:
        break;
    case Mode::Once:
        fire = true;
        t.mode = Mode::Off;
        armedCount_.fetch_sub(1, std::memory_order_relaxed);
        break;
    case Mode::Nth:
        fire = t.hits == t.n;
        break;
    case Mode::Prob:
        fire = t.rng.chance(t.probPct, 100);
        break;
    case Mode::Crash:
        fire = crash = true;
        break;
    case Mode::CrashNth:
        fire = crash = t.hits == t.n;
        break;
    }
    if (fire)
        ++t.trips;
    if (crash)
        simulatedCrash();
    return fire;
}

void
FailPoints::check(const char* site)
{
    if (fired(site))
        WET_FATAL("injected fault at " << site);
}

} // namespace support
} // namespace wet
