#ifndef WET_SUPPORT_TABLE_H
#define WET_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace wet {
namespace support {

/**
 * Console table printer used by the benchmark harnesses to emit rows in
 * the same layout as the paper's tables (right-aligned numeric columns,
 * a header, and an optional averages row).
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render to stdout with a title line above the header. */
    void print(const std::string& title) const;

    /** Render to a string (used by tests). */
    std::string toString(const std::string& title) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace support
} // namespace wet

#endif // WET_SUPPORT_TABLE_H
