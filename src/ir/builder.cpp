#include "builder.h"

#include "support/error.h"

namespace wet {
namespace ir {

FunctionBuilder::FunctionBuilder(ModuleBuilder& mb, std::string name,
                                 uint32_t num_params)
    : mb_(mb)
{
    fn_.name = std::move(name);
    fn_.numParams = num_params;
    fn_.numRegs = num_params;
    fn_.blocks.emplace_back();
    cur_ = 0;
}

RegId
FunctionBuilder::newReg()
{
    return fn_.numRegs++;
}

RegId
FunctionBuilder::param(uint32_t i) const
{
    WET_ASSERT(i < fn_.numParams, "param index out of range");
    return i;
}

BlockId
FunctionBuilder::newBlock()
{
    fn_.blocks.emplace_back();
    return static_cast<BlockId>(fn_.blocks.size() - 1);
}

void
FunctionBuilder::switchTo(BlockId b)
{
    WET_ASSERT(b < fn_.blocks.size(), "switchTo unknown block");
    cur_ = b;
}

bool
FunctionBuilder::terminated() const
{
    const auto& blk = fn_.blocks[cur_];
    return !blk.instrs.empty() && isTerminator(blk.instrs.back().op);
}

Instr&
FunctionBuilder::append(Instr in)
{
    WET_ASSERT(!terminated(),
               "emit into already-terminated block b" << cur_
               << " of function '" << fn_.name << "'");
    auto& blk = fn_.blocks[cur_];
    blk.instrs.push_back(std::move(in));
    return blk.instrs.back();
}

RegId
FunctionBuilder::emitBinary(Opcode op, RegId a, RegId b)
{
    WET_ASSERT(isBinaryAlu(op), "emitBinary with non-binary opcode");
    Instr in;
    in.op = op;
    in.dest = newReg();
    in.src0 = a;
    in.src1 = b;
    return append(std::move(in)).dest;
}

RegId
FunctionBuilder::emitUnary(Opcode op, RegId a)
{
    WET_ASSERT(op == Opcode::Neg || op == Opcode::Not ||
               op == Opcode::Mov, "emitUnary with non-unary opcode");
    Instr in;
    in.op = op;
    in.dest = newReg();
    in.src0 = a;
    return append(std::move(in)).dest;
}

void
FunctionBuilder::emitMovInto(RegId dest, RegId src)
{
    WET_ASSERT(dest < fn_.numRegs, "emitMovInto unknown dest");
    Instr in;
    in.op = Opcode::Mov;
    in.dest = dest;
    in.src0 = src;
    append(std::move(in));
}

void
FunctionBuilder::emitConstInto(RegId dest, int64_t v)
{
    WET_ASSERT(dest < fn_.numRegs, "emitConstInto unknown dest");
    Instr in;
    in.op = Opcode::Const;
    in.dest = dest;
    in.imm = v;
    append(std::move(in));
}

RegId
FunctionBuilder::emitConst(int64_t v)
{
    Instr in;
    in.op = Opcode::Const;
    in.dest = newReg();
    in.imm = v;
    return append(std::move(in)).dest;
}

RegId
FunctionBuilder::emitLoad(RegId addr, int64_t offset)
{
    Instr in;
    in.op = Opcode::Load;
    in.dest = newReg();
    in.src0 = addr;
    in.imm = offset;
    return append(std::move(in)).dest;
}

void
FunctionBuilder::emitStore(RegId addr, RegId value, int64_t offset)
{
    Instr in;
    in.op = Opcode::Store;
    in.src0 = addr;
    in.src1 = value;
    in.imm = offset;
    append(std::move(in));
}

RegId
FunctionBuilder::emitIn()
{
    Instr in;
    in.op = Opcode::In;
    in.dest = newReg();
    return append(std::move(in)).dest;
}

void
FunctionBuilder::emitOut(RegId v)
{
    Instr in;
    in.op = Opcode::Out;
    in.src0 = v;
    append(std::move(in));
}

RegId
FunctionBuilder::emitCall(const std::string& callee,
                          std::vector<RegId> args)
{
    Instr in;
    in.op = Opcode::Call;
    in.dest = newReg();
    in.args = std::move(args);
    in.imm = -1; // patched in ModuleBuilder::build()
    Instr& placed = append(std::move(in));
    auto& blk = fn_.blocks[cur_];
    mb_.pendingCalls_.push_back(ModuleBuilder::PendingCall{
        mb_.done_.size(), cur_,
        static_cast<uint32_t>(blk.instrs.size() - 1), callee});
    return placed.dest;
}

RegId
FunctionBuilder::emitSpawn(const std::string& callee,
                           std::vector<RegId> args)
{
    Instr in;
    in.op = Opcode::Spawn;
    in.dest = newReg();
    in.args = std::move(args);
    in.imm = -1; // patched in ModuleBuilder::build()
    Instr& placed = append(std::move(in));
    auto& blk = fn_.blocks[cur_];
    mb_.pendingCalls_.push_back(ModuleBuilder::PendingCall{
        mb_.done_.size(), cur_,
        static_cast<uint32_t>(blk.instrs.size() - 1), callee});
    return placed.dest;
}

RegId
FunctionBuilder::emitJoin(RegId tid)
{
    Instr in;
    in.op = Opcode::Join;
    in.dest = newReg();
    in.src0 = tid;
    return append(std::move(in)).dest;
}

void
FunctionBuilder::emitLock(RegId lockId)
{
    Instr in;
    in.op = Opcode::Lock;
    in.src0 = lockId;
    append(std::move(in));
}

void
FunctionBuilder::emitUnlock(RegId lockId)
{
    Instr in;
    in.op = Opcode::Unlock;
    in.src0 = lockId;
    append(std::move(in));
}

void
FunctionBuilder::emitBr(RegId cond, BlockId taken, BlockId fallthrough)
{
    Instr in;
    in.op = Opcode::Br;
    in.src0 = cond;
    append(std::move(in));
    fn_.blocks[cur_].succs = {taken, fallthrough};
}

void
FunctionBuilder::emitJmp(BlockId target)
{
    Instr in;
    in.op = Opcode::Jmp;
    append(std::move(in));
    fn_.blocks[cur_].succs = {target};
}

void
FunctionBuilder::emitRet(RegId v)
{
    Instr in;
    in.op = Opcode::Ret;
    in.src0 = v;
    append(std::move(in));
}

void
FunctionBuilder::emitHalt()
{
    Instr in;
    in.op = Opcode::Halt;
    append(std::move(in));
}

void
FunctionBuilder::sealWithRet()
{
    for (auto& blk : fn_.blocks) {
        if (blk.instrs.empty() || !isTerminator(blk.instrs.back().op)) {
            Instr in;
            in.op = Opcode::Ret;
            blk.instrs.push_back(std::move(in));
        }
    }
}

FunctionBuilder&
ModuleBuilder::beginFunction(const std::string& name,
                             uint32_t num_params)
{
    WET_ASSERT(!open_, "beginFunction while another function is open");
    open_.reset(new FunctionBuilder(*this, name, num_params));
    return *open_;
}

void
ModuleBuilder::endFunction()
{
    WET_ASSERT(open_, "endFunction with no open function");
    done_.push_back(std::move(open_->fn_));
    open_.reset();
}

Module
ModuleBuilder::build()
{
    WET_ASSERT(!open_, "build with an unfinished function");
    Module m;
    m.setMemWords(memWords_);
    for (auto& fn : done_)
        m.addFunction(std::move(fn));
    done_.clear();
    for (const auto& pc : pendingCalls_) {
        FuncId callee = m.functionByName(pc.callee);
        m.function(static_cast<FuncId>(pc.func))
            .blocks[pc.block].instrs[pc.index].imm = callee;
    }
    pendingCalls_.clear();
    m.finalize();
    return m;
}

} // namespace ir
} // namespace wet
