#ifndef WET_IR_MODULE_H
#define WET_IR_MODULE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instr.h"

namespace wet {
namespace ir {

/**
 * A basic block: a straight-line run of instructions ending in exactly
 * one terminator, plus its control-flow successors.
 */
struct BasicBlock
{
    std::vector<Instr> instrs;
    /** Successor blocks; for Br: [taken, not-taken]; Jmp: [target]. */
    std::vector<BlockId> succs;
    /** Predecessors; filled in by Module::finalize(). */
    std::vector<BlockId> preds;

    const Instr& terminator() const { return instrs.back(); }
    bool
    endsInBranch() const
    {
        return !instrs.empty() && instrs.back().op == Opcode::Br;
    }
};

/**
 * A function: blocks (entry is block 0), parameter count (parameters
 * arrive in registers 0..numParams-1), and the virtual register count.
 */
struct Function
{
    std::string name;
    FuncId id = 0;
    uint32_t numParams = 0;
    uint32_t numRegs = 0;
    std::vector<BasicBlock> blocks;

    const BasicBlock& block(BlockId b) const { return blocks[b]; }
    BlockId numBlocks() const
    { return static_cast<BlockId>(blocks.size()); }
};

/**
 * A whole program: functions plus the flat data memory size. After
 * construction, finalize() must be called once; it assigns dense
 * module-wide statement ids, computes predecessor lists, and verifies
 * structural well-formedness.
 */
class Module
{
  public:
    /** Append a function; returns its id. Must precede finalize(). */
    FuncId addFunction(Function fn);

    /**
     * Assign statement ids, build predecessor lists, and verify the
     * module. Throws WetError on malformed input. Idempotent.
     */
    void finalize();

    const Function& function(FuncId f) const { return functions_.at(f); }
    Function& function(FuncId f) { return functions_.at(f); }
    size_t numFunctions() const { return functions_.size(); }

    /** Find a function id by name; throws WetError if absent. */
    FuncId functionByName(const std::string& name) const;
    bool hasFunction(const std::string& name) const;

    /** Total statements in the module (valid after finalize). */
    uint32_t numStmts() const { return numStmts_; }

    /** Resolve a statement id to its location. */
    const StmtRef& stmtRef(StmtId s) const { return stmtRefs_.at(s); }

    /** The instruction for a statement id. */
    const Instr& instr(StmtId s) const;

    /** Entry function id ("main" if present, else function 0). */
    FuncId entryFunction() const;

    /** Size of the flat data memory, in 64-bit words. */
    uint64_t memWords() const { return memWords_; }
    void setMemWords(uint64_t w) { memWords_ = w; }

    bool finalized() const { return finalized_; }

    /** Render the whole module as text (for debugging and tests). */
    std::string dump() const;

  private:
    void verify() const;

    std::vector<Function> functions_;
    std::unordered_map<std::string, FuncId> byName_;
    std::vector<StmtRef> stmtRefs_;
    uint32_t numStmts_ = 0;
    uint64_t memWords_ = 1 << 20;
    bool finalized_ = false;
};

} // namespace ir
} // namespace wet

#endif // WET_IR_MODULE_H
