#include "opcode.h"

#include "support/error.h"

namespace wet {
namespace ir {

bool
hasDef(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::Out:
      case Opcode::Lock:
      case Opcode::Unlock:
      case Opcode::Br:
      case Opcode::Jmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Jmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
isBinaryAlu(Opcode op)
{
    return static_cast<int>(op) >= static_cast<int>(Opcode::Add) &&
           static_cast<int>(op) <= static_cast<int>(Opcode::CmpGe);
}

int
numUses(Opcode op)
{
    if (isBinaryAlu(op))
        return 2;
    switch (op) {
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Mov:
      case Opcode::Load:
      case Opcode::Out:
      case Opcode::Join:   // thread id
      case Opcode::Lock:   // lock number
      case Opcode::Unlock: // lock number
      case Opcode::Br:
        return 1;
      case Opcode::Store:
        return 2; // address, value
      case Opcode::Const:
      case Opcode::In:
      case Opcode::Jmp:
      case Opcode::Halt:
      case Opcode::Call:  // args carried separately
      case Opcode::Spawn: // args carried separately
        return 0;
      case Opcode::Ret:
        return 0; // optional value handled by caller via kNoReg check
      default:
        return 0;
    }
}

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::Mov: return "mov";
      case Opcode::Const: return "const";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::In: return "in";
      case Opcode::Out: return "out";
      case Opcode::Call: return "call";
      case Opcode::Spawn: return "spawn";
      case Opcode::Join: return "join";
      case Opcode::Lock: return "lock";
      case Opcode::Unlock: return "unlock";
      case Opcode::Br: return "br";
      case Opcode::Jmp: return "jmp";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

int64_t
evalBinary(Opcode op, int64_t a, int64_t b)
{
    auto u = [](int64_t x) { return static_cast<uint64_t>(x); };
    switch (op) {
      case Opcode::Add: return static_cast<int64_t>(u(a) + u(b));
      case Opcode::Sub: return static_cast<int64_t>(u(a) - u(b));
      case Opcode::Mul: return static_cast<int64_t>(u(a) * u(b));
      case Opcode::Div: return b == 0 ? 0 : (a == INT64_MIN && b == -1
                                             ? a : a / b);
      case Opcode::Rem: return b == 0 ? 0 : (a == INT64_MIN && b == -1
                                             ? 0 : a % b);
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return static_cast<int64_t>(u(a) << (u(b) & 63));
      case Opcode::Shr: return static_cast<int64_t>(u(a) >> (u(b) & 63));
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      default:
        WET_ASSERT(false, "evalBinary on non-binary opcode "
                              << opcodeName(op));
    }
    return 0;
}

int64_t
evalUnary(Opcode op, int64_t a)
{
    switch (op) {
      case Opcode::Neg:
        return static_cast<int64_t>(-static_cast<uint64_t>(a));
      case Opcode::Not: return ~a;
      case Opcode::Mov: return a;
      default:
        WET_ASSERT(false, "evalUnary on non-unary opcode "
                              << opcodeName(op));
    }
    return 0;
}

} // namespace ir
} // namespace wet
