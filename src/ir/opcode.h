#ifndef WET_IR_OPCODE_H
#define WET_IR_OPCODE_H

#include <cstdint>

namespace wet {
namespace ir {

/**
 * Opcodes of the intermediate representation.
 *
 * The IR is a three-address code over per-function virtual registers and
 * a flat word-addressed memory, standing in for Trimaran's intermediate
 * statements in the paper. Opcodes with a "def port" (they produce a
 * register result) get value labels in the WET; Store/Out/branches do
 * not, matching the paper's accounting.
 */
enum class Opcode : uint8_t {
    // Binary arithmetic/logic: dest = src0 op src1.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
    // Comparisons: dest = (src0 op src1) ? 1 : 0.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    // Unary: dest = op src0.
    Neg, Not, Mov,
    // dest = imm.
    Const,
    // dest = mem[src0 + imm].
    Load,
    // mem[src0 + imm] = src1.
    Store,
    // dest = next external input value.
    In,
    // emit src0 to the program's output stream.
    Out,
    // dest = call imm(args...); non-terminator.
    Call,
    // Concurrency (simulated threads; non-terminators).
    Spawn,  // dest = spawn imm(args...): start a thread, yields its id
    Join,   // dest = join src0: wait for thread src0, yields its return
    Lock,   // acquire lock number src0 (blocks while held)
    Unlock, // release lock number src0
    // Terminators.
    Br,   // if (src0 != 0) goto succ[0] else goto succ[1]
    Jmp,  // goto succ[0]
    Ret,  // return src0 (or nothing when src0 == kNoReg)
    Halt, // stop the program
};

/** Number of opcodes (for tables indexed by opcode). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::Halt) + 1;

/** True if the opcode produces a register result (has a def port). */
bool hasDef(Opcode op);

/** True if the opcode ends a basic block. */
bool isTerminator(Opcode op);

/** Number of register operands read (Call excluded: it reads args). */
int numUses(Opcode op);

/** True for binary ALU / comparison opcodes. */
bool isBinaryAlu(Opcode op);

/** Mnemonic, e.g. "add". */
const char* opcodeName(Opcode op);

/**
 * Evaluate a binary ALU / comparison opcode on two values. Division and
 * remainder by zero yield 0 (defined, deterministic semantics — the
 * value grouping compressor relies on statements being pure functions of
 * their operands). Shift counts are taken modulo 64.
 */
int64_t evalBinary(Opcode op, int64_t a, int64_t b);

/** Evaluate a unary opcode (Neg, Not, Mov). */
int64_t evalUnary(Opcode op, int64_t a);

} // namespace ir
} // namespace wet

#endif // WET_IR_OPCODE_H
