#include "module.h"

#include <sstream>

#include "support/error.h"

namespace wet {
namespace ir {

FuncId
Module::addFunction(Function fn)
{
    WET_ASSERT(!finalized_, "addFunction after finalize");
    FuncId id = static_cast<FuncId>(functions_.size());
    fn.id = id;
    if (byName_.count(fn.name))
        WET_FATAL("duplicate function name '" << fn.name << "'");
    byName_[fn.name] = id;
    functions_.push_back(std::move(fn));
    return id;
}

void
Module::finalize()
{
    if (finalized_)
        return;
    // Assign dense statement ids and the reverse map.
    stmtRefs_.clear();
    for (auto& fn : functions_) {
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            auto& blk = fn.blocks[b];
            blk.preds.clear();
            for (uint32_t i = 0; i < blk.instrs.size(); ++i) {
                blk.instrs[i].stmt =
                    static_cast<StmtId>(stmtRefs_.size());
                stmtRefs_.push_back(StmtRef{fn.id, b, i});
            }
        }
    }
    numStmts_ = static_cast<uint32_t>(stmtRefs_.size());
    // Predecessor lists.
    for (auto& fn : functions_) {
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            for (BlockId s : fn.blocks[b].succs) {
                if (s >= fn.numBlocks())
                    WET_FATAL("function '" << fn.name << "' block " << b
                              << " has out-of-range successor " << s);
                fn.blocks[s].preds.push_back(b);
            }
        }
    }
    verify();
    finalized_ = true;
}

void
Module::verify() const
{
    if (functions_.empty())
        WET_FATAL("module has no functions");
    for (const auto& fn : functions_) {
        if (fn.blocks.empty())
            WET_FATAL("function '" << fn.name << "' has no blocks");
        if (fn.numParams > fn.numRegs)
            WET_FATAL("function '" << fn.name
                      << "' has more params than registers");
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const auto& blk = fn.blocks[b];
            if (blk.instrs.empty())
                WET_FATAL("function '" << fn.name << "' block " << b
                          << " is empty");
            for (uint32_t i = 0; i < blk.instrs.size(); ++i) {
                const Instr& in = blk.instrs[i];
                bool last = (i + 1 == blk.instrs.size());
                if (isTerminator(in.op) != last)
                    WET_FATAL("function '" << fn.name << "' block " << b
                              << " instr " << i
                              << ": terminator placement invalid");
                auto checkReg = [&](RegId r, const char* what) {
                    if (r != kNoReg && r >= fn.numRegs)
                        WET_FATAL("function '" << fn.name << "' block "
                                  << b << " instr " << i << ": " << what
                                  << " register r" << r
                                  << " out of range");
                };
                if (hasDef(in.op) && in.op != Opcode::Call &&
                    in.dest == kNoReg) {
                    WET_FATAL("function '" << fn.name << "' block " << b
                              << " instr " << i << ": missing dest");
                }
                checkReg(in.dest == kNoReg ? kNoReg : in.dest, "dest");
                int uses = numUses(in.op);
                if (uses >= 1 && in.src0 == kNoReg &&
                    in.op != Opcode::Ret) {
                    WET_FATAL("function '" << fn.name << "' block " << b
                              << " instr " << i << ": missing src0");
                }
                checkReg(in.src0, "src0");
                if (uses >= 2 && in.src1 == kNoReg)
                    WET_FATAL("function '" << fn.name << "' block " << b
                              << " instr " << i << ": missing src1");
                checkReg(in.src1, "src1");
                if (in.op == Opcode::Ret)
                    checkReg(in.src0, "ret value");
                if (in.op == Opcode::Call ||
                    in.op == Opcode::Spawn) {
                    if (in.imm < 0 ||
                        static_cast<size_t>(in.imm) >= functions_.size())
                    {
                        WET_FATAL("function '" << fn.name
                                  << "': call to unknown function id "
                                  << in.imm);
                    }
                    const Function& callee =
                        functions_[static_cast<size_t>(in.imm)];
                    if (in.args.size() != callee.numParams)
                        WET_FATAL("call to '" << callee.name
                                  << "' passes " << in.args.size()
                                  << " args, expected "
                                  << callee.numParams);
                    for (RegId a : in.args)
                        checkReg(a, "call arg");
                }
            }
            const Instr& term = blk.terminator();
            size_t want = 0;
            switch (term.op) {
              case Opcode::Br: want = 2; break;
              case Opcode::Jmp: want = 1; break;
              default: want = 0; break;
            }
            if (blk.succs.size() != want)
                WET_FATAL("function '" << fn.name << "' block " << b
                          << ": terminator " << opcodeName(term.op)
                          << " expects " << want << " successors, has "
                          << blk.succs.size());
        }
    }
}

FuncId
Module::functionByName(const std::string& name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        WET_FATAL("no function named '" << name << "'");
    return it->second;
}

bool
Module::hasFunction(const std::string& name) const
{
    return byName_.count(name) != 0;
}

const Instr&
Module::instr(StmtId s) const
{
    const StmtRef& r = stmtRefs_.at(s);
    return functions_[r.func].blocks[r.block].instrs[r.index];
}

FuncId
Module::entryFunction() const
{
    auto it = byName_.find("main");
    return it == byName_.end() ? 0 : it->second;
}

std::string
Module::dump() const
{
    std::ostringstream os;
    for (const auto& fn : functions_) {
        os << "fn " << fn.name << "(" << fn.numParams << " params, "
           << fn.numRegs << " regs)\n";
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const auto& blk = fn.blocks[b];
            os << "  b" << b << ":";
            if (!blk.preds.empty()) {
                os << "  ; preds:";
                for (BlockId p : blk.preds)
                    os << " b" << p;
            }
            os << "\n";
            for (const Instr& in : blk.instrs) {
                os << "    ";
                if (in.stmt != kNoStmt)
                    os << "s" << in.stmt << ": ";
                if (hasDef(in.op) && in.dest != kNoReg)
                    os << "r" << in.dest << " = ";
                os << opcodeName(in.op);
                if (in.op == Opcode::Const) {
                    os << " " << in.imm;
                } else if (in.op == Opcode::Call ||
                           in.op == Opcode::Spawn) {
                    os << " @" << functions_[in.imm].name << "(";
                    for (size_t a = 0; a < in.args.size(); ++a)
                        os << (a ? ", " : "") << "r" << in.args[a];
                    os << ")";
                } else {
                    if (in.src0 != kNoReg)
                        os << " r" << in.src0;
                    if (in.src1 != kNoReg)
                        os << ", r" << in.src1;
                    if (in.op == Opcode::Load || in.op == Opcode::Store)
                        os << " +" << in.imm;
                }
                if (in.op == Opcode::Br)
                    os << " ? b" << blk.succs[0] << " : b"
                       << blk.succs[1];
                else if (in.op == Opcode::Jmp)
                    os << " b" << blk.succs[0];
                os << "\n";
            }
        }
    }
    return os.str();
}

} // namespace ir
} // namespace wet
