#ifndef WET_IR_INSTR_H
#define WET_IR_INSTR_H

#include <cstdint>
#include <limits>
#include <vector>

#include "ir/opcode.h"

namespace wet {
namespace ir {

/** Per-function virtual register index. */
using RegId = uint32_t;
/** Basic block index within a function. */
using BlockId = uint32_t;
/** Function index within a module. */
using FuncId = uint32_t;
/** Module-wide statement (instruction) id, dense from 0. */
using StmtId = uint32_t;

/** Sentinel meaning "no register" (e.g. a void return). */
constexpr RegId kNoReg = std::numeric_limits<RegId>::max();
/** Sentinel for "no statement". */
constexpr StmtId kNoStmt = std::numeric_limits<StmtId>::max();
/** Sentinel for "no block". */
constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/**
 * One IR instruction. A fixed three-address shape plus an argument
 * vector for calls. `stmt` is the module-wide dense id assigned by
 * Module::finalize(); all profile structures are keyed by it.
 */
struct Instr
{
    Opcode op = Opcode::Halt;
    RegId dest = kNoReg;
    RegId src0 = kNoReg;
    RegId src1 = kNoReg;
    /** Const: literal; Load/Store: address offset; Call: callee FuncId. */
    int64_t imm = 0;
    /** Call argument registers (empty otherwise). */
    std::vector<RegId> args;
    StmtId stmt = kNoStmt;
};

/** Location of a statement: function, block, and index in the block. */
struct StmtRef
{
    FuncId func = 0;
    BlockId block = 0;
    uint32_t index = 0;
};

} // namespace ir
} // namespace wet

#endif // WET_IR_INSTR_H
