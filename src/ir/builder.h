#ifndef WET_IR_BUILDER_H
#define WET_IR_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace wet {
namespace ir {

class ModuleBuilder;

/**
 * Incremental builder for one function. Obtained from
 * ModuleBuilder::beginFunction(); instructions are appended to the
 * current block (switch with switchTo()). Registers are allocated with
 * newReg(); parameters occupy registers 0..numParams-1.
 */
class FunctionBuilder
{
  public:
    /** Allocate a fresh virtual register. */
    RegId newReg();

    /** Parameter register @p i (just bounds-checked identity). */
    RegId param(uint32_t i) const;

    /** Create a new, initially empty basic block. */
    BlockId newBlock();

    /** Make @p b the insertion point for subsequent emits. */
    void switchTo(BlockId b);

    BlockId currentBlock() const { return cur_; }

    /** True once the current block has a terminator. */
    bool terminated() const;

    RegId emitBinary(Opcode op, RegId a, RegId b);
    RegId emitUnary(Opcode op, RegId a);

    /** Mov into a caller-chosen register (used for variable stores). */
    void emitMovInto(RegId dest, RegId src);

    /** Const into a caller-chosen register. */
    void emitConstInto(RegId dest, int64_t v);
    RegId emitConst(int64_t v);
    RegId emitMov(RegId a) { return emitUnary(Opcode::Mov, a); }
    RegId emitLoad(RegId addr, int64_t offset = 0);
    void emitStore(RegId addr, RegId value, int64_t offset = 0);
    RegId emitIn();
    void emitOut(RegId v);

    /** Call by callee name; resolved when the module is built. */
    RegId emitCall(const std::string& callee, std::vector<RegId> args);

    /** Spawn a thread running @p callee; yields the thread id. */
    RegId emitSpawn(const std::string& callee, std::vector<RegId> args);

    /** Join thread @p tid; yields the thread's return value. */
    RegId emitJoin(RegId tid);

    void emitLock(RegId lockId);
    void emitUnlock(RegId lockId);

    void emitBr(RegId cond, BlockId taken, BlockId fallthrough);
    void emitJmp(BlockId target);
    void emitRet(RegId v = kNoReg);
    void emitHalt();

    /**
     * Append `ret` to every block that still lacks a terminator.
     * Called once by code generators before the function is committed
     * so that fall-through ends and unreachable tails are well formed.
     */
    void sealWithRet();

    uint32_t numParams() const { return fn_.numParams; }

  private:
    friend class ModuleBuilder;
    FunctionBuilder(ModuleBuilder& mb, std::string name,
                    uint32_t num_params);

    Instr& append(Instr in);

    ModuleBuilder& mb_;
    Function fn_;
    BlockId cur_ = 0;
};

/**
 * Builder for a whole Module. Usage:
 *
 *     ModuleBuilder mb;
 *     auto& f = mb.beginFunction("main", 0);
 *     ... emit ...
 *     mb.endFunction();
 *     ir::Module m = mb.build();
 */
class ModuleBuilder
{
  public:
    /** Start a new function; only one may be open at a time. */
    FunctionBuilder& beginFunction(const std::string& name,
                                   uint32_t num_params);

    /** Commit the currently open function to the module. */
    void endFunction();

    /** Set the data memory size of the built module, in words. */
    void setMemWords(uint64_t w) { memWords_ = w; }

    /**
     * Resolve pending call targets, finalize, and return the module.
     * The builder must not be reused afterwards.
     */
    Module build();

  private:
    friend class FunctionBuilder;

    struct PendingCall
    {
        size_t func;
        BlockId block;
        uint32_t index;
        std::string callee;
    };

    std::vector<Function> done_;
    std::unique_ptr<FunctionBuilder> open_;
    std::vector<PendingCall> pendingCalls_;
    uint64_t memWords_ = 1 << 20;
};

} // namespace ir
} // namespace wet

#endif // WET_IR_BUILDER_H
