#include "parser.h"

#include "support/error.h"

namespace wet {
namespace lang {

namespace {

/** Binary operator precedence; higher binds tighter. 0 = not binary. */
int
binaryPrec(TokKind k)
{
    switch (k) {
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge: return 7;
      case TokKind::EqEq:
      case TokKind::Ne: return 6;
      case TokKind::Amp: return 5;
      case TokKind::Caret: return 4;
      case TokKind::Pipe: return 3;
      case TokKind::AndAnd: return 2;
      case TokKind::OrOr: return 1;
      default: return 0;
    }
}

ExprPtr
makeExpr(ExprKind kind, const Token& at)
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = at.line;
    e->col = at.col;
    return e;
}

StmtPtr
makeStmt(StmtKind kind, const Token& at)
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = at.line;
    s->col = at.col;
    return s;
}

} // namespace

Parser::Parser(std::vector<Token> tokens) : toks_(std::move(tokens))
{
    // The lexer always appends End; a stream without it is a caller
    // bug, not reachable from any user-written source.
    WET_ASSERT(!toks_.empty() && toks_.back().kind == TokKind::End, // LINT: internal
               "token stream must end with End");
}

const Token&
Parser::peek(int ahead) const
{
    size_t p = pos_ + static_cast<size_t>(ahead);
    return p < toks_.size() ? toks_[p] : toks_.back();
}

const Token&
Parser::advance()
{
    const Token& t = peek();
    if (pos_ + 1 < toks_.size())
        ++pos_;
    return t;
}

bool
Parser::match(TokKind k)
{
    if (check(k)) {
        advance();
        return true;
    }
    return false;
}

const Token&
Parser::expect(TokKind k, const char* context)
{
    if (!check(k)) {
        error(peek(), std::string("expected ") + tokKindName(k) +
                          " in " + context + ", found " +
                          tokKindName(peek().kind));
    }
    return advance();
}

void
Parser::error(const Token& at, const std::string& msg) const
{
    WET_FATAL("parse error at " << at.line << ":" << at.col << ": "
                                << msg);
}

Program
Parser::parseProgram()
{
    Program prog;
    while (!check(TokKind::End)) {
        if (match(TokKind::KwConst)) {
            const Token& name = expect(TokKind::Ident, "const");
            expect(TokKind::Assign, "const");
            bool neg = match(TokKind::Minus);
            const Token& val = expect(TokKind::Int, "const");
            expect(TokKind::Semi, "const");
            if (prog.consts.count(name.text))
                error(name, "duplicate const '" + name.text + "'");
            prog.consts[name.text] = neg ? -val.value : val.value;
        } else if (check(TokKind::KwFn)) {
            prog.functions.push_back(parseFunction());
        } else {
            error(peek(), "expected 'fn' or 'const' at top level");
        }
    }
    return prog;
}

FuncDecl
Parser::parseFunction()
{
    FuncDecl fn;
    const Token& kw = expect(TokKind::KwFn, "function");
    fn.line = kw.line;
    fn.name = expect(TokKind::Ident, "function name").text;
    expect(TokKind::LParen, "function parameters");
    if (!check(TokKind::RParen)) {
        for (;;) {
            fn.params.push_back(
                expect(TokKind::Ident, "parameter").text);
            if (!match(TokKind::Comma))
                break;
        }
    }
    expect(TokKind::RParen, "function parameters");
    fn.body = parseBlock();
    return fn;
}

std::vector<StmtPtr>
Parser::parseBlock()
{
    expect(TokKind::LBrace, "block");
    std::vector<StmtPtr> stmts;
    while (!check(TokKind::RBrace)) {
        if (check(TokKind::End))
            error(peek(), "unterminated block");
        stmts.push_back(parseStmt());
    }
    expect(TokKind::RBrace, "block");
    return stmts;
}

StmtPtr
Parser::parseStmt()
{
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::LBrace: {
        auto s = makeStmt(StmtKind::Block, t);
        s->body = parseBlock();
        return s;
      }
      case TokKind::KwIf: {
        advance();
        auto s = makeStmt(StmtKind::If, t);
        expect(TokKind::LParen, "if condition");
        s->e1 = parseExpr();
        expect(TokKind::RParen, "if condition");
        s->body = parseBlock();
        if (match(TokKind::KwElse)) {
            if (check(TokKind::KwIf)) {
                s->elseBody.push_back(parseStmt());
            } else {
                s->elseBody = parseBlock();
            }
        }
        return s;
      }
      case TokKind::KwWhile: {
        advance();
        auto s = makeStmt(StmtKind::While, t);
        expect(TokKind::LParen, "while condition");
        s->e1 = parseExpr();
        expect(TokKind::RParen, "while condition");
        s->body = parseBlock();
        return s;
      }
      case TokKind::KwFor: {
        advance();
        auto s = makeStmt(StmtKind::For, t);
        expect(TokKind::LParen, "for clauses");
        if (!check(TokKind::Semi))
            s->sub1 = parseSimpleStmt(false);
        expect(TokKind::Semi, "for clauses");
        if (!check(TokKind::Semi))
            s->e1 = parseExpr();
        expect(TokKind::Semi, "for clauses");
        if (!check(TokKind::RParen))
            s->sub2 = parseSimpleStmt(false);
        expect(TokKind::RParen, "for clauses");
        s->body = parseBlock();
        return s;
      }
      case TokKind::KwBreak: {
        advance();
        expect(TokKind::Semi, "break");
        return makeStmt(StmtKind::Break, t);
      }
      case TokKind::KwContinue: {
        advance();
        expect(TokKind::Semi, "continue");
        return makeStmt(StmtKind::Continue, t);
      }
      case TokKind::KwReturn: {
        advance();
        auto s = makeStmt(StmtKind::Return, t);
        if (!check(TokKind::Semi))
            s->e1 = parseExpr();
        expect(TokKind::Semi, "return");
        return s;
      }
      case TokKind::KwOut: {
        advance();
        auto s = makeStmt(StmtKind::Out, t);
        expect(TokKind::LParen, "out");
        s->e1 = parseExpr();
        expect(TokKind::RParen, "out");
        expect(TokKind::Semi, "out");
        return s;
      }
      case TokKind::KwHalt: {
        advance();
        expect(TokKind::Semi, "halt");
        return makeStmt(StmtKind::Halt, t);
      }
      case TokKind::KwLock:
      case TokKind::KwUnlock: {
        advance();
        auto s = makeStmt(t.kind == TokKind::KwLock
                              ? StmtKind::Lock
                              : StmtKind::Unlock,
                          t);
        const char* ctx =
            t.kind == TokKind::KwLock ? "lock" : "unlock";
        expect(TokKind::LParen, ctx);
        s->e1 = parseExpr();
        expect(TokKind::RParen, ctx);
        expect(TokKind::Semi, ctx);
        return s;
      }
      default: {
        StmtPtr s = parseSimpleStmt(true);
        return s;
      }
    }
}

StmtPtr
Parser::parseSimpleStmt(bool require_semi)
{
    const Token& t = peek();
    StmtPtr s;
    if (t.kind == TokKind::KwVar) {
        advance();
        s = makeStmt(StmtKind::VarDecl, t);
        s->name = expect(TokKind::Ident, "var declaration").text;
        expect(TokKind::Assign, "var declaration");
        s->e1 = parseExpr();
    } else if (t.kind == TokKind::KwMem) {
        advance();
        s = makeStmt(StmtKind::MemStore, t);
        expect(TokKind::LBracket, "mem store");
        s->e1 = parseExpr();
        expect(TokKind::RBracket, "mem store");
        expect(TokKind::Assign, "mem store");
        s->e2 = parseExpr();
    } else if (t.kind == TokKind::Ident &&
               peek(1).kind == TokKind::Assign)
    {
        advance();
        advance();
        s = makeStmt(StmtKind::Assign, t);
        s->name = t.text;
        s->e1 = parseExpr();
    } else {
        s = makeStmt(StmtKind::ExprStmt, t);
        s->e1 = parseExpr();
    }
    if (require_semi)
        expect(TokKind::Semi, "statement");
    return s;
}

ExprPtr
Parser::parseExpr()
{
    return parseBinaryRhs(1, parseUnary());
}

ExprPtr
Parser::parseBinaryRhs(int min_prec, ExprPtr lhs)
{
    for (;;) {
        TokKind k = peek().kind;
        int prec = binaryPrec(k);
        if (prec < min_prec)
            return lhs;
        const Token& opTok = advance();
        ExprPtr rhs = parseUnary();
        // Left-associative: bind tighter operators to the right first.
        for (;;) {
            int next = binaryPrec(peek().kind);
            if (next <= prec)
                break;
            rhs = parseBinaryRhs(next, std::move(rhs));
        }
        ExprKind kind = ExprKind::Binary;
        if (k == TokKind::AndAnd)
            kind = ExprKind::LogicalAnd;
        else if (k == TokKind::OrOr)
            kind = ExprKind::LogicalOr;
        auto e = makeExpr(kind, opTok);
        e->op = k;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::parseUnary()
{
    const Token& t = peek();
    if (t.kind == TokKind::Minus || t.kind == TokKind::Bang ||
        t.kind == TokKind::Tilde)
    {
        advance();
        auto e = makeExpr(ExprKind::Unary, t);
        e->op = t.kind;
        e->lhs = parseUnary();
        return e;
    }
    return parsePrimary();
}

ExprPtr
Parser::parsePrimary()
{
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::Int: {
        advance();
        auto e = makeExpr(ExprKind::IntLit, t);
        e->intValue = t.value;
        return e;
      }
      case TokKind::KwIn: {
        advance();
        expect(TokKind::LParen, "in()");
        expect(TokKind::RParen, "in()");
        return makeExpr(ExprKind::Input, t);
      }
      case TokKind::KwSpawn: {
        advance();
        const Token& callee = expect(TokKind::Ident, "spawn");
        auto e = makeExpr(ExprKind::Spawn, t);
        e->name = callee.text;
        expect(TokKind::LParen, "spawn arguments");
        if (!check(TokKind::RParen)) {
            for (;;) {
                e->args.push_back(parseExpr());
                if (!match(TokKind::Comma))
                    break;
            }
        }
        expect(TokKind::RParen, "spawn arguments");
        return e;
      }
      case TokKind::KwJoin: {
        advance();
        auto e = makeExpr(ExprKind::Join, t);
        expect(TokKind::LParen, "join");
        e->lhs = parseExpr();
        expect(TokKind::RParen, "join");
        return e;
      }
      case TokKind::KwMem: {
        advance();
        expect(TokKind::LBracket, "mem load");
        auto e = makeExpr(ExprKind::MemLoad, t);
        e->lhs = parseExpr();
        expect(TokKind::RBracket, "mem load");
        return e;
      }
      case TokKind::LParen: {
        advance();
        ExprPtr e = parseExpr();
        expect(TokKind::RParen, "parenthesized expression");
        return e;
      }
      case TokKind::Ident: {
        advance();
        if (match(TokKind::LParen)) {
            auto e = makeExpr(ExprKind::Call, t);
            e->name = t.text;
            if (!check(TokKind::RParen)) {
                for (;;) {
                    e->args.push_back(parseExpr());
                    if (!match(TokKind::Comma))
                        break;
                }
            }
            expect(TokKind::RParen, "call arguments");
            return e;
        }
        auto e = makeExpr(ExprKind::VarRef, t);
        e->name = t.text;
        return e;
      }
      default:
        error(t, std::string("expected expression, found ") +
                     tokKindName(t.kind));
    }
}

} // namespace lang
} // namespace wet
