#include "codegen.h"

#include "lang/lexer.h"
#include "lang/parser.h"
#include "support/error.h"

namespace wet {
namespace lang {

using ir::Opcode;
using ir::RegId;

namespace {

/** Map a binary operator token to the IR opcode implementing it. */
Opcode
binaryOpcode(TokKind k)
{
    switch (k) {
      case TokKind::Plus: return Opcode::Add;
      case TokKind::Minus: return Opcode::Sub;
      case TokKind::Star: return Opcode::Mul;
      case TokKind::Slash: return Opcode::Div;
      case TokKind::Percent: return Opcode::Rem;
      case TokKind::Amp: return Opcode::And;
      case TokKind::Pipe: return Opcode::Or;
      case TokKind::Caret: return Opcode::Xor;
      case TokKind::Shl: return Opcode::Shl;
      case TokKind::Shr: return Opcode::Shr;
      case TokKind::EqEq: return Opcode::CmpEq;
      case TokKind::Ne: return Opcode::CmpNe;
      case TokKind::Lt: return Opcode::CmpLt;
      case TokKind::Le: return Opcode::CmpLe;
      case TokKind::Gt: return Opcode::CmpGt;
      case TokKind::Ge: return Opcode::CmpGe;
      default:
        WET_ASSERT(false, "no opcode for token " << tokKindName(k)); // LINT: internal
    }
    return Opcode::Add;
}

} // namespace

void
CodeGen::error(int line, int col, const std::string& msg) const
{
    WET_FATAL("semantic error at " << line << ":" << col << ": " << msg);
}

ir::Module
CodeGen::compile(const Program& prog, uint64_t mem_words)
{
    prog_ = &prog;
    mb_.setMemWords(mem_words);
    arity_.clear();
    for (const auto& fn : prog.functions) {
        if (arity_.count(fn.name))
            WET_FATAL("duplicate function '" << fn.name << "'");
        if (prog.consts.count(fn.name))
            WET_FATAL("'" << fn.name << "' is both const and function");
        arity_[fn.name] = fn.params.size();
    }
    if (!arity_.count("main"))
        WET_FATAL("program has no 'main' function");
    for (const auto& fn : prog.functions)
        genFunction(fn);
    return mb_.build();
}

void
CodeGen::genFunction(const FuncDecl& fn)
{
    fb_ = &mb_.beginFunction(fn.name,
                             static_cast<uint32_t>(fn.params.size()));
    scopes_.clear();
    scopes_.emplace_back();
    for (uint32_t i = 0; i < fn.params.size(); ++i) {
        if (scopes_.back().count(fn.params[i]))
            WET_FATAL("function '" << fn.name
                      << "': duplicate parameter '" << fn.params[i]
                      << "'");
        scopes_.back()[fn.params[i]] = fb_->param(i);
    }
    loops_.clear();
    genStmts(fn.body);
    fb_->sealWithRet();
    mb_.endFunction();
    fb_ = nullptr;
}

void
CodeGen::genStmts(const std::vector<StmtPtr>& stmts)
{
    for (const auto& s : stmts)
        genStmt(*s);
}

RegId
CodeGen::lookupVar(const Expr& at) const
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto f = it->find(at.name);
        if (f != it->end())
            return f->second;
    }
    return ir::kNoReg;
}

void
CodeGen::declareVar(const Stmt& at, RegId reg)
{
    if (scopes_.back().count(at.name))
        error(at.line, at.col,
              "redeclaration of '" + at.name + "' in the same scope");
    scopes_.back()[at.name] = reg;
}

void
CodeGen::genStmt(const Stmt& s)
{
    // Code after return/break/continue is unreachable; give it a fresh
    // (never-jumped-to) block so emission stays well formed.
    if (fb_->terminated())
        fb_->switchTo(fb_->newBlock());

    switch (s.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        genStmts(s.body);
        scopes_.pop_back();
        break;
      }
      case StmtKind::VarDecl: {
        RegId value = genExpr(*s.e1);
        RegId reg = fb_->newReg();
        fb_->emitMovInto(reg, value);
        declareVar(s, reg);
        break;
      }
      case StmtKind::Assign: {
        RegId value = genExpr(*s.e1);
        Expr ref;
        ref.name = s.name;
        RegId reg = lookupVar(ref);
        if (reg == ir::kNoReg)
            error(s.line, s.col,
                  "assignment to undeclared variable '" + s.name + "'");
        fb_->emitMovInto(reg, value);
        break;
      }
      case StmtKind::MemStore: {
        RegId addr = genExpr(*s.e1);
        RegId value = genExpr(*s.e2);
        fb_->emitStore(addr, value);
        break;
      }
      case StmtKind::If: {
        RegId cond = genExpr(*s.e1);
        ir::BlockId thenB = fb_->newBlock();
        ir::BlockId elseB =
            s.elseBody.empty() ? ir::kNoBlock : fb_->newBlock();
        ir::BlockId endB = fb_->newBlock();
        fb_->emitBr(cond, thenB,
                    s.elseBody.empty() ? endB : elseB);
        fb_->switchTo(thenB);
        scopes_.emplace_back();
        genStmts(s.body);
        scopes_.pop_back();
        if (!fb_->terminated())
            fb_->emitJmp(endB);
        if (!s.elseBody.empty()) {
            fb_->switchTo(elseB);
            scopes_.emplace_back();
            genStmts(s.elseBody);
            scopes_.pop_back();
            if (!fb_->terminated())
                fb_->emitJmp(endB);
        }
        fb_->switchTo(endB);
        break;
      }
      case StmtKind::While: {
        ir::BlockId headB = fb_->newBlock();
        ir::BlockId bodyB = fb_->newBlock();
        ir::BlockId endB = fb_->newBlock();
        fb_->emitJmp(headB);
        fb_->switchTo(headB);
        RegId cond = genExpr(*s.e1);
        fb_->emitBr(cond, bodyB, endB);
        fb_->switchTo(bodyB);
        loops_.push_back(LoopCtx{headB, endB});
        scopes_.emplace_back();
        genStmts(s.body);
        scopes_.pop_back();
        loops_.pop_back();
        if (!fb_->terminated())
            fb_->emitJmp(headB);
        fb_->switchTo(endB);
        break;
      }
      case StmtKind::For: {
        scopes_.emplace_back(); // scope for the init clause
        if (s.sub1)
            genStmt(*s.sub1);
        ir::BlockId headB = fb_->newBlock();
        ir::BlockId bodyB = fb_->newBlock();
        ir::BlockId stepB = fb_->newBlock();
        ir::BlockId endB = fb_->newBlock();
        fb_->emitJmp(headB);
        fb_->switchTo(headB);
        if (s.e1) {
            RegId cond = genExpr(*s.e1);
            fb_->emitBr(cond, bodyB, endB);
        } else {
            fb_->emitJmp(bodyB);
        }
        fb_->switchTo(bodyB);
        loops_.push_back(LoopCtx{stepB, endB});
        scopes_.emplace_back();
        genStmts(s.body);
        scopes_.pop_back();
        loops_.pop_back();
        if (!fb_->terminated())
            fb_->emitJmp(stepB);
        fb_->switchTo(stepB);
        if (s.sub2)
            genStmt(*s.sub2);
        fb_->emitJmp(headB);
        fb_->switchTo(endB);
        scopes_.pop_back();
        break;
      }
      case StmtKind::Break: {
        if (loops_.empty())
            error(s.line, s.col, "'break' outside a loop");
        fb_->emitJmp(loops_.back().breakTarget);
        break;
      }
      case StmtKind::Continue: {
        if (loops_.empty())
            error(s.line, s.col, "'continue' outside a loop");
        fb_->emitJmp(loops_.back().continueTarget);
        break;
      }
      case StmtKind::Return: {
        if (s.e1) {
            RegId v = genExpr(*s.e1);
            fb_->emitRet(v);
        } else {
            fb_->emitRet();
        }
        break;
      }
      case StmtKind::Out: {
        RegId v = genExpr(*s.e1);
        fb_->emitOut(v);
        break;
      }
      case StmtKind::Halt: {
        fb_->emitHalt();
        break;
      }
      case StmtKind::ExprStmt: {
        genExpr(*s.e1);
        break;
      }
      case StmtKind::Lock: {
        RegId id = genExpr(*s.e1);
        fb_->emitLock(id);
        break;
      }
      case StmtKind::Unlock: {
        RegId id = genExpr(*s.e1);
        fb_->emitUnlock(id);
        break;
      }
    }
}

RegId
CodeGen::genExpr(const Expr& e)
{
    switch (e.kind) {
      case ExprKind::IntLit:
        return fb_->emitConst(e.intValue);
      case ExprKind::VarRef: {
        RegId reg = lookupVar(e);
        if (reg != ir::kNoReg)
            return reg;
        auto c = prog_->consts.find(e.name);
        if (c != prog_->consts.end())
            return fb_->emitConst(c->second);
        error(e.line, e.col, "unknown identifier '" + e.name + "'");
        break; // unreachable: error() does not return
      }
      case ExprKind::Unary: {
        RegId a = genExpr(*e.lhs);
        switch (e.op) {
          case TokKind::Minus:
            return fb_->emitUnary(Opcode::Neg, a);
          case TokKind::Tilde:
            return fb_->emitUnary(Opcode::Not, a);
          case TokKind::Bang: {
            RegId zero = fb_->emitConst(0);
            return fb_->emitBinary(Opcode::CmpEq, a, zero);
          }
          default:
            WET_ASSERT(false, "bad unary operator"); // LINT: internal
        }
        return ir::kNoReg; // unreachable
      }
      case ExprKind::Binary: {
        RegId a = genExpr(*e.lhs);
        RegId b = genExpr(*e.rhs);
        return fb_->emitBinary(binaryOpcode(e.op), a, b);
      }
      case ExprKind::LogicalAnd:
        return genLogical(e, true);
      case ExprKind::LogicalOr:
        return genLogical(e, false);
      case ExprKind::Call: {
        auto it = arity_.find(e.name);
        if (it == arity_.end())
            error(e.line, e.col,
                  "call to unknown function '" + e.name + "'");
        if (it->second != e.args.size())
            error(e.line, e.col,
                  "'" + e.name + "' expects " +
                      std::to_string(it->second) + " arguments, got " +
                      std::to_string(e.args.size()));
        std::vector<RegId> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args)
            args.push_back(genExpr(*a));
        return fb_->emitCall(e.name, std::move(args));
      }
      case ExprKind::Spawn: {
        auto it = arity_.find(e.name);
        if (it == arity_.end())
            error(e.line, e.col,
                  "spawn of unknown function '" + e.name + "'");
        if (it->second != e.args.size())
            error(e.line, e.col,
                  "'" + e.name + "' expects " +
                      std::to_string(it->second) + " arguments, got " +
                      std::to_string(e.args.size()));
        std::vector<RegId> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args)
            args.push_back(genExpr(*a));
        return fb_->emitSpawn(e.name, std::move(args));
      }
      case ExprKind::Join: {
        RegId tid = genExpr(*e.lhs);
        return fb_->emitJoin(tid);
      }
      case ExprKind::Input:
        return fb_->emitIn();
      case ExprKind::MemLoad: {
        RegId addr = genExpr(*e.lhs);
        return fb_->emitLoad(addr);
      }
    }
    WET_ASSERT(false, "unhandled expression kind"); // LINT: internal
    return ir::kNoReg;
}

RegId
CodeGen::genLogical(const Expr& e, bool is_and)
{
    // result = lhs && rhs  (or ||), short-circuit, normalized to 0/1.
    RegId result = fb_->newReg();
    ir::BlockId rhsB = fb_->newBlock();
    ir::BlockId shortB = fb_->newBlock();
    ir::BlockId endB = fb_->newBlock();

    RegId a = genExpr(*e.lhs);
    if (is_and)
        fb_->emitBr(a, rhsB, shortB);
    else
        fb_->emitBr(a, shortB, rhsB);

    fb_->switchTo(rhsB);
    RegId b = genExpr(*e.rhs);
    RegId zero = fb_->emitConst(0);
    RegId norm = fb_->emitBinary(Opcode::CmpNe, b, zero);
    fb_->emitMovInto(result, norm);
    fb_->emitJmp(endB);

    fb_->switchTo(shortB);
    fb_->emitConstInto(result, is_and ? 0 : 1);
    fb_->emitJmp(endB);

    fb_->switchTo(endB);
    return result;
}

ir::Module
compileString(const std::string& source, uint64_t mem_words)
{
    Lexer lexer(source);
    Parser parser(lexer.lexAll());
    Program prog = parser.parseProgram();
    CodeGen cg;
    return cg.compile(prog, mem_words);
}

} // namespace lang
} // namespace wet
