#ifndef WET_LANG_AST_H
#define WET_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/token.h"

namespace wet {
namespace lang {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Expression node kinds. */
enum class ExprKind : uint8_t {
    IntLit,     //!< integer literal (value)
    VarRef,     //!< variable or top-level const reference (name)
    Unary,      //!< op applied to lhs (-, !, ~)
    Binary,     //!< lhs op rhs (arithmetic, comparison, bitwise)
    LogicalAnd, //!< short-circuit &&
    LogicalOr,  //!< short-circuit ||
    Call,       //!< name(args...)
    Input,      //!< in()
    MemLoad,    //!< mem[lhs]
    Spawn,      //!< spawn name(args...) — yields the thread id
    Join,       //!< join(lhs) — yields the joined thread's return
};

/** One expression AST node (variant-style; fields used per kind). */
struct Expr
{
    ExprKind kind = ExprKind::IntLit;
    int line = 0;
    int col = 0;
    int64_t intValue = 0;
    std::string name;
    TokKind op = TokKind::End;
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t {
    VarDecl,  //!< var name = e1;
    Assign,   //!< name = e1;
    MemStore, //!< mem[e1] = e2;
    If,       //!< if (e1) body else elseBody
    While,    //!< while (e1) body
    For,      //!< for (sub1; e1; sub2) body
    Break,
    Continue,
    Return,   //!< return e1?;
    Out,      //!< out(e1);
    Halt,
    ExprStmt, //!< e1; (typically a call)
    Block,    //!< { body }
    Lock,     //!< lock(e1);
    Unlock,   //!< unlock(e1);
};

/** One statement AST node. */
struct Stmt
{
    StmtKind kind = StmtKind::Block;
    int line = 0;
    int col = 0;
    std::string name;
    ExprPtr e1;
    ExprPtr e2;
    StmtPtr sub1; //!< for-init
    StmtPtr sub2; //!< for-step
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> elseBody;
};

/** A parsed function definition. */
struct FuncDecl
{
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    int line = 0;
};

/** A whole parsed program. */
struct Program
{
    std::unordered_map<std::string, int64_t> consts;
    std::vector<FuncDecl> functions;
};

} // namespace lang
} // namespace wet

#endif // WET_LANG_AST_H
