#include "lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/error.h"

namespace wet {
namespace lang {

const char*
tokKindName(TokKind k)
{
    switch (k) {
      case TokKind::End: return "end of input";
      case TokKind::Ident: return "identifier";
      case TokKind::Int: return "integer";
      case TokKind::KwFn: return "'fn'";
      case TokKind::KwVar: return "'var'";
      case TokKind::KwConst: return "'const'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwWhile: return "'while'";
      case TokKind::KwFor: return "'for'";
      case TokKind::KwBreak: return "'break'";
      case TokKind::KwContinue: return "'continue'";
      case TokKind::KwReturn: return "'return'";
      case TokKind::KwOut: return "'out'";
      case TokKind::KwIn: return "'in'";
      case TokKind::KwMem: return "'mem'";
      case TokKind::KwHalt: return "'halt'";
      case TokKind::KwSpawn: return "'spawn'";
      case TokKind::KwJoin: return "'join'";
      case TokKind::KwLock: return "'lock'";
      case TokKind::KwUnlock: return "'unlock'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Comma: return "','";
      case TokKind::Semi: return "';'";
      case TokKind::Assign: return "'='";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::Lt: return "'<'";
      case TokKind::Le: return "'<='";
      case TokKind::Gt: return "'>'";
      case TokKind::Ge: return "'>='";
      case TokKind::EqEq: return "'=='";
      case TokKind::Ne: return "'!='";
      case TokKind::AndAnd: return "'&&'";
      case TokKind::OrOr: return "'||'";
    }
    return "?";
}

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char
Lexer::peek(int ahead) const
{
    size_t p = pos_ + static_cast<size_t>(ahead);
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    char c = peek();
    if (c == '\0')
        return c;
    ++pos_;
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool
Lexer::match(char c)
{
    if (peek() == c) {
        advance();
        return true;
    }
    return false;
}

void
Lexer::error(const std::string& msg) const
{
    WET_FATAL("lex error at " << line_ << ":" << col_ << ": " << msg);
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0')
                    error("unterminated block comment");
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> toks;
    for (;;) {
        Token t = next();
        bool end = (t.kind == TokKind::End);
        toks.push_back(std::move(t));
        if (end)
            return toks;
    }
}

Token
Lexer::next()
{
    static const std::unordered_map<std::string, TokKind> keywords = {
        {"fn", TokKind::KwFn},       {"var", TokKind::KwVar},
        {"const", TokKind::KwConst}, {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},   {"while", TokKind::KwWhile},
        {"for", TokKind::KwFor},     {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue},
        {"return", TokKind::KwReturn},
        {"out", TokKind::KwOut},     {"in", TokKind::KwIn},
        {"mem", TokKind::KwMem},     {"halt", TokKind::KwHalt},
        {"spawn", TokKind::KwSpawn}, {"join", TokKind::KwJoin},
        {"lock", TokKind::KwLock},   {"unlock", TokKind::KwUnlock},
    };

    skipWhitespaceAndComments();
    Token t;
    t.line = line_;
    t.col = col_;
    char c = peek();
    if (c == '\0') {
        t.kind = TokKind::End;
        return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_')
        {
            ident.push_back(advance());
        }
        auto it = keywords.find(ident);
        if (it != keywords.end()) {
            t.kind = it->second;
        } else {
            t.kind = TokKind::Ident;
            t.text = std::move(ident);
        }
        return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
        uint64_t v = 0;
        if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
                error("expected hex digits after 0x");
            while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                char d = advance();
                uint64_t digit =
                    std::isdigit(static_cast<unsigned char>(d))
                        ? static_cast<uint64_t>(d - '0')
                        : static_cast<uint64_t>(
                              std::tolower(d) - 'a' + 10);
                v = v * 16 + digit;
            }
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                v = v * 10 + static_cast<uint64_t>(advance() - '0');
        }
        t.kind = TokKind::Int;
        t.value = static_cast<int64_t>(v);
        return t;
    }
    advance();
    switch (c) {
      case '(': t.kind = TokKind::LParen; return t;
      case ')': t.kind = TokKind::RParen; return t;
      case '{': t.kind = TokKind::LBrace; return t;
      case '}': t.kind = TokKind::RBrace; return t;
      case '[': t.kind = TokKind::LBracket; return t;
      case ']': t.kind = TokKind::RBracket; return t;
      case ',': t.kind = TokKind::Comma; return t;
      case ';': t.kind = TokKind::Semi; return t;
      case '+': t.kind = TokKind::Plus; return t;
      case '-': t.kind = TokKind::Minus; return t;
      case '*': t.kind = TokKind::Star; return t;
      case '/': t.kind = TokKind::Slash; return t;
      case '%': t.kind = TokKind::Percent; return t;
      case '^': t.kind = TokKind::Caret; return t;
      case '~': t.kind = TokKind::Tilde; return t;
      case '&':
        t.kind = match('&') ? TokKind::AndAnd : TokKind::Amp;
        return t;
      case '|':
        t.kind = match('|') ? TokKind::OrOr : TokKind::Pipe;
        return t;
      case '!':
        t.kind = match('=') ? TokKind::Ne : TokKind::Bang;
        return t;
      case '=':
        t.kind = match('=') ? TokKind::EqEq : TokKind::Assign;
        return t;
      case '<':
        if (match('<'))
            t.kind = TokKind::Shl;
        else if (match('='))
            t.kind = TokKind::Le;
        else
            t.kind = TokKind::Lt;
        return t;
      case '>':
        if (match('>'))
            t.kind = TokKind::Shr;
        else if (match('='))
            t.kind = TokKind::Ge;
        else
            t.kind = TokKind::Gt;
        return t;
      default:
        error(std::string("unexpected character '") + c + "'");
    }
}

} // namespace lang
} // namespace wet
