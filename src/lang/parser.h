#ifndef WET_LANG_PARSER_H
#define WET_LANG_PARSER_H

#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/token.h"

namespace wet {
namespace lang {

/**
 * Recursive-descent parser for wetlang. Produces a Program AST; all
 * syntax errors are reported as WetError with line/column positions.
 *
 * Grammar sketch:
 *
 *     program := (const | fn)*
 *     const   := 'const' IDENT '=' ('-')? INT ';'
 *     fn      := 'fn' IDENT '(' params? ')' block
 *     stmt    := 'var' IDENT '=' expr ';' | IDENT '=' expr ';'
 *              | 'mem' '[' expr ']' '=' expr ';'
 *              | 'if' '(' expr ')' block ('else' (block | if-stmt))?
 *              | 'while' '(' expr ')' block
 *              | 'for' '(' simple? ';' expr? ';' simple? ')' block
 *              | 'break' ';' | 'continue' ';' | 'return' expr? ';'
 *              | 'out' '(' expr ')' ';' | 'halt' ';' | expr ';' | block
 *     expr    := precedence-climbing over || && | ^ & == != < <= > >=
 *                << >> + - * / % with unary - ! ~ and primaries
 *                INT IDENT call 'in()' 'mem[expr]' '(' expr ')'
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens);

    /** Parse the whole token stream into a Program. */
    Program parseProgram();

  private:
    const Token& peek(int ahead = 0) const;
    const Token& advance();
    bool check(TokKind k) const { return peek().kind == k; }
    bool match(TokKind k);
    const Token& expect(TokKind k, const char* context);
    [[noreturn]] void error(const Token& at, const std::string& msg) const;

    FuncDecl parseFunction();
    StmtPtr parseStmt();
    StmtPtr parseSimpleStmt(bool require_semi);
    std::vector<StmtPtr> parseBlock();
    ExprPtr parseExpr();
    ExprPtr parseBinaryRhs(int min_prec, ExprPtr lhs);
    ExprPtr parseUnary();
    ExprPtr parsePrimary();

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace lang
} // namespace wet

#endif // WET_LANG_PARSER_H
