#ifndef WET_LANG_LEXER_H
#define WET_LANG_LEXER_H

#include <string>
#include <vector>

#include "lang/token.h"

namespace wet {
namespace lang {

/**
 * Lexer for wetlang. Supports decimal and 0x hex integer literals,
 * identifiers, `//` line comments, and `/ * ... * /` block comments.
 * Throws WetError with line/column info on invalid input.
 */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lex the entire input; the last token is always TokKind::End. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool match(char c);
    void skipWhitespaceAndComments();
    [[noreturn]] void error(const std::string& msg) const;

    std::string src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace lang
} // namespace wet

#endif // WET_LANG_LEXER_H
