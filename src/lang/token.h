#ifndef WET_LANG_TOKEN_H
#define WET_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace wet {
namespace lang {

/** Token kinds of the wetlang frontend. */
enum class TokKind : uint8_t {
    End,
    Ident,
    Int,
    // Keywords.
    KwFn, KwVar, KwConst, KwIf, KwElse, KwWhile, KwFor, KwBreak,
    KwContinue, KwReturn, KwOut, KwIn, KwMem, KwHalt,
    KwSpawn, KwJoin, KwLock, KwUnlock,
    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi,
    Assign,          // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,        // << >>
    Lt, Le, Gt, Ge, EqEq, Ne,
    AndAnd, OrOr,
};

/** One lexed token with its source location (1-based line/column). */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;   // identifier spelling
    int64_t value = 0;  // integer literal value
    int line = 0;
    int col = 0;
};

/** Printable name of a token kind (for diagnostics). */
const char* tokKindName(TokKind k);

} // namespace lang
} // namespace wet

#endif // WET_LANG_TOKEN_H
