#ifndef WET_LANG_CODEGEN_H
#define WET_LANG_CODEGEN_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/builder.h"
#include "lang/ast.h"
#include "support/error.h"

namespace wet {
namespace lang {

/**
 * Translates a parsed wetlang Program into an ir::Module.
 *
 * Variables live in per-function virtual registers; `mem[e]` becomes
 * Load/Store against the module's flat memory; `&&`/`||` short-circuit
 * via control flow (producing realistic branchy CFGs for the profiler).
 * Semantic errors (unknown identifier, arity mismatch, break outside a
 * loop, missing `main`) are reported as WetError.
 */
class CodeGen
{
  public:
    /**
     * Compile @p prog into a finalized module.
     * @param mem_words size of the module's flat data memory.
     */
    ir::Module compile(const Program& prog, uint64_t mem_words);

  private:
    struct LoopCtx
    {
        ir::BlockId continueTarget;
        ir::BlockId breakTarget;
    };

    void genFunction(const FuncDecl& fn);
    void genStmts(const std::vector<StmtPtr>& stmts);
    void genStmt(const Stmt& s);
    ir::RegId genExpr(const Expr& e);
    ir::RegId genLogical(const Expr& e, bool is_and);

    ir::RegId lookupVar(const Expr& at) const;
    void declareVar(const Stmt& at, ir::RegId reg);

    [[noreturn]] void error(int line, int col,
                            const std::string& msg) const;

    const Program* prog_ = nullptr;
    ir::ModuleBuilder mb_;
    ir::FunctionBuilder* fb_ = nullptr;
    std::vector<std::unordered_map<std::string, ir::RegId>> scopes_;
    std::vector<LoopCtx> loops_;
    std::unordered_map<std::string, size_t> arity_;
};

/**
 * Convenience entry point: lex, parse, and compile wetlang source.
 * @param source program text
 * @param mem_words flat data memory size in 64-bit words
 */
ir::Module compileString(const std::string& source,
                         uint64_t mem_words = 1 << 20);

} // namespace lang
} // namespace wet

#endif // WET_LANG_CODEGEN_H
