#include "session.h"

#include <exception>

#include "support/failpoint.h"

namespace wet {
namespace core {

namespace {

// Same analysis budget the CLI has always used for one-shot queries.
constexpr uint64_t kAnalysisBudget = uint64_t{1} << 24;

} // namespace

QuerySession::QuerySession(const ir::Module& mod,
                           const WetCompressed& c,
                           std::shared_ptr<ArtifactBacking> backing,
                           SessionOptions opt)
    : mod_(&mod), c_(&c), backing_(std::move(backing)), opt_(opt),
      cache_(opt.cacheCapacity), access_(c, mod, &cache_),
      cursorSlice_(c, &cache_), decodeSlice_(c, &cache_)
{
}

const analysis::ModuleAnalysis&
QuerySession::moduleAnalysis()
{
    if (!ma_) {
        support::Timer t;
        ma_ = std::make_unique<analysis::ModuleAnalysis>(
            *mod_, kAnalysisBudget, opt_.threads);
        metrics_.recordLatency(
            "latency.module_analysis",
            static_cast<uint64_t>(t.seconds() * 1e9));
    }
    return *ma_;
}

const analysis::StaticDepGraph&
QuerySession::depGraph()
{
    if (!sdg_) {
        const analysis::ModuleAnalysis& ma = moduleAnalysis();
        support::Timer t;
        sdg_ = std::make_unique<analysis::StaticDepGraph>(ma);
        metrics_.recordLatency(
            "latency.static_depgraph",
            static_cast<uint64_t>(t.seconds() * 1e9));
    }
    return *sdg_;
}

QuerySession::Scope::Scope(QuerySession& s, std::string kind)
    : s_(&s), kind_(std::move(kind)), before_(s.cache_.stats()),
      uncaught_(std::uncaught_exceptions())
{
    WET_FAILPOINT("core.session.query");
    s_->cache_.resetTouched();
    if (s_->opt_.limits.any())
        s_->governor_.begin(
            s_->opt_.limits,
            [b = s_->backing_.get()]() -> uint64_t {
                return b != nullptr ? b->residentBytes() : 0;
            },
            &s_->metrics_);
}

QuerySession::Scope::~Scope()
{
    s_->governor_.end();
    uint64_t ns = static_cast<uint64_t>(timer_.seconds() * 1e9);
    support::Metrics& m = s_->metrics_;
    const StreamCache::Stats& now = s_->cache_.stats();
    m.add("queries", 1);
    m.add("queries." + kind_, 1);
    m.add("cache.hits", now.hits - before_.hits);
    m.add("cache.misses", now.misses - before_.misses);
    m.add("cache.evictions", now.evictions - before_.evictions);
    m.add("streams.touched", s_->cache_.touchedCount());
    m.recordLatency("latency." + kind_, ns);
    if (std::uncaught_exceptions() > uncaught_) {
        // Unwinding out of a failed query: readers it touched may
        // hold partial decode state, so retire them all. They rebuild
        // from the immutable artifact on next use, which keeps later
        // answers byte-identical to a fresh session's.
        m.add("queries.failed", 1);
        s_->cache_.quarantineTouched();
    }
    // The query is over: no reader references remain, so deferred
    // evictions can finally be freed.
    s_->cache_.purge();
    s_->cache_.resetTouched();
}

void
QuerySession::sampleGauges()
{
    metrics_.counter("artifact.bytes_total") =
        backing_ ? backing_->sizeBytes() : 0;
    metrics_.counter("artifact.bytes_resident") =
        backing_ ? backing_->residentBytes() : 0;
    metrics_.counter("cache.capacity") = cache_.capacity();
    metrics_.counter("cache.entries") = cache_.size();
}

std::string
QuerySession::statsText()
{
    sampleGauges();
    std::string out;
    if (backing_)
        out += "backend: " + backing_->backendName() + "\n";
    out += metrics_.renderText();
    return out;
}

std::string
QuerySession::statsJson()
{
    sampleGauges();
    std::string j = metrics_.renderJson();
    if (backing_)
        j = "{\"backend\":\"" + backing_->backendName() + "\"," +
            j.substr(1);
    return j;
}

} // namespace core
} // namespace wet
