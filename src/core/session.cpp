#include "session.h"

#include <exception>

#include "support/failpoint.h"

namespace wet {
namespace core {

QuerySession::QuerySession(std::shared_ptr<SharedArtifact> shared,
                           SessionOptions opt)
    : shared_(std::move(shared)), opt_(opt),
      cache_(opt.cacheCapacity),
      access_(shared_->compressed(), shared_->module(), &cache_),
      cursorSlice_(shared_->compressed(), &cache_),
      decodeSlice_(shared_->compressed(), &cache_)
{
}

QuerySession::QuerySession(const ir::Module& mod,
                           const WetCompressed& c,
                           std::shared_ptr<ArtifactBacking> backing,
                           SessionOptions opt)
    : QuerySession(std::make_shared<SharedArtifact>(
                       mod, c, std::move(backing), opt.threads),
                   opt)
{
}

const analysis::ModuleAnalysis&
QuerySession::moduleAnalysis()
{
    if (!shared_->hasModuleAnalysis()) {
        support::Timer t;
        const analysis::ModuleAnalysis& ma = shared_->moduleAnalysis();
        metrics_.recordLatency(
            "latency.module_analysis",
            static_cast<uint64_t>(t.seconds() * 1e9));
        return ma;
    }
    return shared_->moduleAnalysis();
}

const analysis::StaticDepGraph&
QuerySession::depGraph()
{
    if (!shared_->hasDepGraph()) {
        moduleAnalysis();
        support::Timer t;
        const analysis::StaticDepGraph& sdg = shared_->depGraph();
        metrics_.recordLatency(
            "latency.static_depgraph",
            static_cast<uint64_t>(t.seconds() * 1e9));
        return sdg;
    }
    return shared_->depGraph();
}

QuerySession::Scope::Scope(QuerySession& s, std::string kind)
    : s_(&s), kind_(std::move(kind)), before_(s.cache_.stats()),
      uncaught_(std::uncaught_exceptions())
{
    WET_FAILPOINT("core.session.query");
    s_->cache_.resetTouched();
    if (s_->opt_.limits.any())
        s_->governor_.begin(
            s_->opt_.limits,
            [b = s_->shared_->backing().get()]() -> uint64_t {
                return b != nullptr ? b->residentBytes() : 0;
            },
            &s_->metrics_);
}

QuerySession::Scope::~Scope()
{
    s_->governor_.end();
    uint64_t ns = static_cast<uint64_t>(timer_.seconds() * 1e9);
    support::Metrics& m = s_->metrics_;
    const StreamCache::Stats& now = s_->cache_.stats();
    m.add("queries", 1);
    m.add("queries." + kind_, 1);
    m.add("cache.hits", now.hits - before_.hits);
    m.add("cache.misses", now.misses - before_.misses);
    m.add("cache.evictions", now.evictions - before_.evictions);
    m.add("streams.touched", s_->cache_.touchedCount());
    m.recordLatency("latency." + kind_, ns);
    if (std::uncaught_exceptions() > uncaught_) {
        // Unwinding out of a failed query: readers it touched may
        // hold partial decode state, so retire them all. They rebuild
        // from the immutable artifact on next use, which keeps later
        // answers byte-identical to a fresh session's.
        m.add("queries.failed", 1);
        s_->cache_.quarantineTouched();
    }
    // The query is over: no reader references remain, so deferred
    // evictions can finally be freed.
    s_->cache_.purge();
    s_->cache_.resetTouched();
}

void
QuerySession::sampleGauges()
{
    ArtifactBacking* b = shared_->backing().get();
    metrics_.set("artifact.bytes_total", b ? b->sizeBytes() : 0);
    metrics_.set("artifact.bytes_resident",
                 b ? b->residentBytes() : 0);
    metrics_.set("cache.capacity", cache_.capacity());
    metrics_.set("cache.entries", cache_.size());
}

std::string
QuerySession::statsText()
{
    sampleGauges();
    std::string out;
    if (shared_->backing())
        out += "backend: " + shared_->backing()->backendName() + "\n";
    out += metrics_.renderText();
    return out;
}

std::string
QuerySession::statsJson()
{
    sampleGauges();
    std::string j = metrics_.renderJson();
    if (shared_->backing())
        j = "{\"backend\":\"" + shared_->backing()->backendName() +
            "\"," + j.substr(1);
    return j;
}

} // namespace core
} // namespace wet
